package mead_test

import (
	"fmt"
	"time"

	"mead"
)

// ExampleRun executes a small faulty scenario under the MEAD proactive
// fail-over scheme and shows that no failure reaches the client.
func ExampleRun() {
	res, err := mead.Run(mead.Scenario{
		Scheme:      mead.MeadMessage,
		Invocations: 200,
		Period:      100 * time.Microsecond,
		InjectFault: true,
		Fault: mead.FaultConfig{
			Tick:      time.Millisecond,
			ChunkUnit: 16,
			Seed:      1,
		},
		RestartDelay:    20 * time.Millisecond,
		CheckpointEvery: 10 * time.Millisecond,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("invocations: %d\n", len(res.RTTs))
	fmt.Printf("exceptions seen by the application: %d\n", res.ClientFailures())
	// Output:
	// invocations: 200
	// exceptions seen by the application: 0
}

// ExampleNewDeployment boots a deployment and performs one invocation
// through a client strategy.
func ExampleNewDeployment() {
	dep, err := mead.NewDeployment(mead.Scenario{Scheme: mead.LocationForward})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer dep.Close()

	strat, err := dep.NewClient()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer strat.Close()

	out := strat.Invoke()
	fmt.Printf("served by %s, error: %v\n", out.Replica, out.Err)
	// Output:
	// served by r1, error: <nil>
}

// ExampleParseScheme round-trips a scheme name.
func ExampleParseScheme() {
	s, _ := mead.ParseScheme("mead-message")
	fmt.Println(s, s.Proactive())
	// Output:
	// mead-message true
}
