//go:build !race

package mead

// raceEnabled mirrors the race-detector build tag for the alloc guards;
// see guard_race_test.go.
const raceEnabled = false
