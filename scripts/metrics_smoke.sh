#!/bin/sh
# metrics_smoke.sh — end-to-end smoke test of the telemetry endpoint:
# boots a minimal deployment (hub, naming service, one replica with
# -metrics), drives a short client workload, and validates the /metrics
# (Prometheus text + JSON) and /trace (JSONL) responses.
set -eu

HUB_PORT=${HUB_PORT:-14803}
NAMES_PORT=${NAMES_PORT:-14804}
METRICS_PORT=${METRICS_PORT:-19090}
HUB=127.0.0.1:$HUB_PORT
NAMES=127.0.0.1:$NAMES_PORT
METRICS=127.0.0.1:$METRICS_PORT

workdir=$(mktemp -d)
pids=""
cleanup() {
    for pid in $pids; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "metrics-smoke: building binaries"
go build -o "$workdir" ./cmd/mead-hub ./cmd/mead-names ./cmd/mead-server ./cmd/mead-client

"$workdir/mead-hub" -addr "$HUB" &
pids="$pids $!"
"$workdir/mead-names" -addr "$NAMES" &
pids="$pids $!"
sleep 0.3

"$workdir/mead-server" -name r1 -hub "$HUB" -names "$NAMES" \
    -scheme mead-message -metrics "$METRICS" &
pids="$pids $!"

# Wait for the metrics endpoint to come up.
i=0
until curl -fsS "http://$METRICS/metrics" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "metrics-smoke: endpoint never came up" >&2
        exit 1
    fi
    sleep 0.1
done

echo "metrics-smoke: driving client workload"
"$workdir/mead-client" -hub "$HUB" -names "$NAMES" -scheme mead-message \
    -n 50 -period 1ms >/dev/null

prom="$workdir/metrics.prom"
json="$workdir/metrics.json"
trace="$workdir/trace.jsonl"
curl -fsS "http://$METRICS/metrics" >"$prom"
curl -fsS "http://$METRICS/metrics?format=json" >"$json"
curl -fsS "http://$METRICS/trace" >"$trace"

fail() {
    echo "metrics-smoke: FAIL: $1" >&2
    exit 1
}

# Prometheus text format: HELP/TYPE headers and the server-side counters
# the client workload must have moved.
grep -q '^# TYPE mead_server_requests_total counter$' "$prom" ||
    fail "missing TYPE line for mead_server_requests_total"
grep -q '^# TYPE mead_dispatch_seconds summary$' "$prom" ||
    fail "missing TYPE line for mead_dispatch_seconds"
served=$(awk '$1 ~ /^mead_server_requests_total/ { print $NF }' "$prom" | head -1)
[ -n "$served" ] && [ "$served" -ge 50 ] ||
    fail "mead_server_requests_total=$served, want >= 50"
grep -q 'mead_dispatch_seconds{.*quantile="0.99"' "$prom" ||
    fail "missing dispatch p99 quantile series"

# JSON document shape.
grep -q '"scheme": *"mead-message"' "$json" || fail "JSON export missing scheme"
grep -q '"mead_server_requests_total"' "$json" || fail "JSON export missing counters"

# Trace endpoint answers (the replica's trace may be empty on a clean run;
# the check is that the endpoint serves JSONL without error).
[ -f "$trace" ] || fail "trace endpoint unreachable"

echo "metrics-smoke: OK (server dispatched $served requests)"
