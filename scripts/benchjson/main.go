// Command benchjson converts `go test -bench` text output (stdin) into the
// machine-readable benchmark snapshot committed as BENCH_<n>.json and
// consumed by benchcompare. It needs nothing beyond the Go toolchain.
//
// Each result line like
//
//	BenchmarkInvokePipelined-4   500   4493 ns/op   775 B/op   12 allocs/op
//
// becomes one entry keyed by (name, cpu), where cpu is the trailing
// `-N` GOMAXPROCS suffix (absent means 1). Across repeated runs
// (-count=3) the ns/op kept per bench is selected by -keep: "min" (the
// default, the least-noise estimate for a fresh gate run) or "max" (the
// slowest estimate, used when writing the committed baseline so the 15%
// regression margin absorbs scheduler noise between machines instead of
// being consumed by a lucky baseline run). Bytes/op and allocs/op always
// keep their maxima, so the snapshot is conservative for the allocation
// gate either way. Output is sorted and contains no timestamps, keeping
// the committed file diff-stable.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name        string  `json:"name"`
	CPU         int     `json:"cpu"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Snapshot is the committed file layout.
type Snapshot struct {
	Schema     string  `json:"schema"`
	Go         string  `json:"go,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	keep := flag.String("keep", "min", "which ns/op estimate to keep across repeated runs: min (fresh gate runs) or max (committed baselines)")
	flag.Parse()
	if *keep != "min" && *keep != "max" {
		return fmt.Errorf("-keep must be min or max, got %q", *keep)
	}
	keepMax := *keep == "max"

	best := map[string]Entry{}
	var goline string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if v, ok := strings.CutPrefix(line, "go version "); ok {
			goline = v
			continue
		}
		e, ok := parseLine(line)
		if !ok {
			continue
		}
		k := fmt.Sprintf("%s\x00%d", e.Name, e.CPU)
		prev, seen := best[k]
		if !seen {
			best[k] = e
			continue
		}
		if keepMax == (e.NsPerOp > prev.NsPerOp) && e.NsPerOp != prev.NsPerOp {
			prev.NsPerOp = e.NsPerOp
			prev.Iters = e.Iters
		}
		if e.BytesPerOp > prev.BytesPerOp {
			prev.BytesPerOp = e.BytesPerOp
		}
		if e.AllocsPerOp > prev.AllocsPerOp {
			prev.AllocsPerOp = e.AllocsPerOp
		}
		best[k] = prev
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(best) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin")
	}

	snap := Snapshot{Schema: "mead-bench/1", Go: goline}
	for _, e := range best {
		snap.Benchmarks = append(snap.Benchmarks, e)
	}
	sort.Slice(snap.Benchmarks, func(i, j int) bool {
		a, b := snap.Benchmarks[i], snap.Benchmarks[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.CPU < b.CPU
	})

	out := json.NewEncoder(os.Stdout)
	out.SetIndent("", "  ")
	return out.Encode(snap)
}

// parseLine parses one `Benchmark... <iters> <val> ns/op [...]` line.
func parseLine(line string) (Entry, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Entry{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Entry{}, false
	}
	e := Entry{Name: fields[0], CPU: 1}
	// The trailing -N is the GOMAXPROCS suffix; sub-benchmark slashes may
	// also contain dashes, so only split on the final one when numeric.
	if i := strings.LastIndexByte(e.Name, '-'); i > 0 {
		if n, err := strconv.Atoi(e.Name[i+1:]); err == nil {
			e.Name, e.CPU = e.Name[:i], n
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e.Iters = iters
	got := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			e.NsPerOp, got = v, true
		case "B/op":
			e.BytesPerOp = int64(v)
		case "allocs/op":
			e.AllocsPerOp = int64(v)
		}
	}
	return e, got
}
