// Command benchcompare gates performance regressions: it compares a fresh
// benchjson snapshot against the committed baseline and exits non-zero if
// any benchmark regressed. Pure Go, no dependencies — usable both from
// `make bench-compare` and the CI bench job.
//
//	benchcompare BASELINE.json FRESH.json
//
// Rules, per (name, cpu) pair present in the baseline:
//   - missing from the fresh run: fail (a silently dropped bench is a
//     coverage regression, not a pass);
//   - ns/op over baseline by more than the slack: fail. Micro-benches
//     (in-memory encode/decode) get 15% with an absolute 25ns floor; the
//     macro invocation benches — full TCP round trips whose wall clock
//     swings ~35% run-to-run even on an idle host — get 60%, which still
//     catches any structural regression (an added syscall, a lost batching
//     path) while staying above scheduler noise;
//   - allocs/op: strict for near-zero baselines (≤2 allocs — the wire-path
//     guards — any increase fails); above that, the 15% rule. Alloc counts
//     are noise-free, so they stay tight even where ns/op cannot.
//
// Benchmarks only present in the fresh run are reported but never fail:
// adding coverage is not a regression.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

type entry struct {
	Name        string  `json:"name"`
	CPU         int     `json:"cpu"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type snapshot struct {
	Schema     string  `json:"schema"`
	Benchmarks []entry `json:"benchmarks"`
}

const (
	nsSlackFraction = 0.15 // micro-bench gate: >15% ns/op over baseline fails
	nsSlackMacro    = 0.60 // macro (TCP round-trip) gate: wall clock is noisy
	nsSlackFloorNs  = 25.0 // ignore sub-25ns swings outright
	strictAllocsMax = 2    // baselines at or under this gate allocs exactly
)

// nsSlack picks the ns/op gate for one benchmark: the invocation benches
// measure whole TCP round trips and inherit the host scheduler's jitter.
func nsSlack(name string) float64 {
	if strings.Contains(name, "Invocations") || strings.Contains(name, "Invoke") {
		return nsSlackMacro
	}
	return nsSlackFraction
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: benchcompare BASELINE.json FRESH.json")
	}
	base, err := load(args[0])
	if err != nil {
		return err
	}
	fresh, err := load(args[1])
	if err != nil {
		return err
	}

	key := func(e entry) string { return fmt.Sprintf("%s\x00%d", e.Name, e.CPU) }
	freshBy := map[string]entry{}
	for _, e := range fresh.Benchmarks {
		freshBy[key(e)] = e
	}

	failures := 0
	for _, old := range base.Benchmarks {
		now, ok := freshBy[key(old)]
		delete(freshBy, key(old))
		if !ok {
			failures++
			fmt.Printf("FAIL %s (cpu=%d): missing from fresh run\n", old.Name, old.CPU)
			continue
		}
		status := "ok  "
		var notes []string
		slack := nsSlack(old.Name)
		if over := now.NsPerOp - old.NsPerOp; over > nsSlackFloorNs && now.NsPerOp > old.NsPerOp*(1+slack) {
			status = "FAIL"
			notes = append(notes, fmt.Sprintf("ns/op +%.1f%% over the %.0f%% gate", 100*(now.NsPerOp/old.NsPerOp-1), 100*slack))
		}
		switch {
		case old.AllocsPerOp <= strictAllocsMax && now.AllocsPerOp > old.AllocsPerOp:
			status = "FAIL"
			notes = append(notes, fmt.Sprintf("allocs/op %d -> %d on a zero-alloc-guarded path", old.AllocsPerOp, now.AllocsPerOp))
		case float64(now.AllocsPerOp) > float64(old.AllocsPerOp)*(1+nsSlackFraction):
			status = "FAIL"
			notes = append(notes, fmt.Sprintf("allocs/op %d -> %d over the 15%% gate", old.AllocsPerOp, now.AllocsPerOp))
		}
		if status == "FAIL" {
			failures++
		}
		fmt.Printf("%s %s (cpu=%d): %.1f -> %.1f ns/op, %d -> %d allocs/op",
			status, old.Name, old.CPU, old.NsPerOp, now.NsPerOp, old.AllocsPerOp, now.AllocsPerOp)
		for _, n := range notes {
			fmt.Printf(" [%s]", n)
		}
		fmt.Println()
	}
	for _, e := range fresh.Benchmarks {
		if _, stillNew := freshBy[key(e)]; stillNew {
			fmt.Printf("new  %s (cpu=%d): %.1f ns/op, %d allocs/op (no baseline)\n",
				e.Name, e.CPU, e.NsPerOp, e.AllocsPerOp)
		}
	}

	if failures > 0 {
		return fmt.Errorf("%d benchmark(s) regressed against %s", failures, args[0])
	}
	fmt.Printf("all %d baseline benchmark(s) within bounds\n", len(base.Benchmarks))
	return nil
}

func load(path string) (snapshot, error) {
	var s snapshot
	b, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(b, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	if s.Schema != "mead-bench/1" {
		return s, fmt.Errorf("%s: unknown schema %q", path, s.Schema)
	}
	return s, nil
}
