#!/bin/sh
# dr_smoke.sh — end-to-end disaster-recovery smoke test over real processes:
# boots a three-replica deployment with durable state (-statedir), drives a
# client workload, SIGKILLs every replica at once (the kill-all drill),
# cold-restarts the group from the on-disk op logs and checkpoints, and
# asserts via the metrics endpoint that the primary replayed its entire log
# before serving the follow-up workload.
set -eu

HUB_PORT=${HUB_PORT:-15803}
NAMES_PORT=${NAMES_PORT:-15804}
METRICS_PORT=${METRICS_PORT:-19190}
HUB=127.0.0.1:$HUB_PORT
NAMES=127.0.0.1:$NAMES_PORT
METRICS=127.0.0.1:$METRICS_PORT
INVOCATIONS=40

workdir=$(mktemp -d)
statedir="$workdir/state"
pids=""
server_pids=""
cleanup() {
    for pid in $pids $server_pids; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

fail() {
    echo "dr-smoke: FAIL: $1" >&2
    exit 1
}

echo "dr-smoke: building binaries"
go build -o "$workdir" ./cmd/mead-hub ./cmd/mead-names ./cmd/mead-server ./cmd/mead-client

"$workdir/mead-hub" -addr "$HUB" &
pids="$pids $!"
"$workdir/mead-names" -addr "$NAMES" &
pids="$pids $!"
sleep 0.3

start_servers() {
    extra1=$1
    server_pids=""
    for r in r1 r2 r3; do
        if [ "$r" = r1 ]; then
            # shellcheck disable=SC2086
            "$workdir/mead-server" -name "$r" -hub "$HUB" -names "$NAMES" \
                -scheme mead-message -statedir "$statedir" $extra1 2>/dev/null &
        else
            "$workdir/mead-server" -name "$r" -hub "$HUB" -names "$NAMES" \
                -scheme mead-message -statedir "$statedir" 2>/dev/null &
        fi
        server_pids="$server_pids $!"
        sleep 0.2
    done
}

echo "dr-smoke: booting the durable group"
start_servers ""
sleep 0.3

echo "dr-smoke: driving $INVOCATIONS invocations"
"$workdir/mead-client" -hub "$HUB" -names "$NAMES" -scheme mead-message \
    -n "$INVOCATIONS" -period 1ms >/dev/null

# Let the write-behind logs drain, then destroy every replica at once.
sleep 0.5
echo "dr-smoke: SIGKILL all replicas"
for pid in $server_pids; do kill -9 "$pid" 2>/dev/null || true; done
server_pids=""
sleep 0.5

[ -s "$statedir/r1/oplog" ] || fail "r1 left no op log behind"

echo "dr-smoke: cold restart from $statedir"
start_servers "-metrics $METRICS"
i=0
until curl -fsS "http://$METRICS/metrics" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -le 50 ] || fail "restarted replica's metrics endpoint never came up"
    sleep 0.1
done

prom="$workdir/metrics.prom"
curl -fsS "http://$METRICS/metrics" >"$prom"
replayed=$(awk '$1 ~ /^mead_ops_replayed_total/ { print $NF }' "$prom" | head -1)
[ -n "$replayed" ] && [ "$replayed" -eq "$INVOCATIONS" ] ||
    fail "mead_ops_replayed_total=$replayed, want $INVOCATIONS (the primary's full log)"

echo "dr-smoke: driving the restarted group"
"$workdir/mead-client" -hub "$HUB" -names "$NAMES" -scheme mead-message \
    -n 10 -period 1ms >/dev/null

curl -fsS "http://$METRICS/metrics" >"$prom"
served=$(awk '$1 ~ /^mead_server_requests_total/ { print $NF }' "$prom" | head -1)
[ -n "$served" ] && [ "$served" -ge 10 ] ||
    fail "restarted primary served $served requests, want >= 10"

echo "dr-smoke: OK (replayed $replayed ops, served $served post-restart requests)"
