package mead

import (
	"strings"
	"testing"
	"time"
)

func smallScenario(scheme Scheme) Scenario {
	return Scenario{
		Scheme:      scheme,
		Invocations: 300,
		Period:      150 * time.Microsecond,
		InjectFault: true,
		Fault: FaultConfig{
			Tick:      time.Millisecond,
			ChunkUnit: 16,
			Seed:      9,
		},
		RestartDelay:    20 * time.Millisecond,
		ProactiveDelay:  5 * time.Millisecond,
		CheckpointEvery: 10 * time.Millisecond,
		QueryTimeout:    20 * time.Millisecond,
	}
}

func TestPublicRunMeadMessage(t *testing.T) {
	res, err := Run(smallScenario(MeadMessage))
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != MeadMessage || len(res.RTTs) != 300 {
		t.Fatalf("result = scheme %v, %d RTTs", res.Scheme, len(res.RTTs))
	}
	if res.ClientFailures() != 0 {
		t.Fatalf("proactive run leaked exceptions: %v", res.Exceptions)
	}
	if res.ServerFailures == 0 {
		t.Fatal("no server-side failures under injection")
	}
}

func TestPublicSchemesAndParse(t *testing.T) {
	all := Schemes()
	if len(all) != 5 {
		t.Fatalf("Schemes() = %d", len(all))
	}
	for _, s := range all {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseScheme(%v) = %v, %v", s, got, err)
		}
	}
}

func TestPublicDeploymentAccessors(t *testing.T) {
	dep, err := NewDeployment(smallScenario(LocationForward))
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if dep.HubAddr() == "" || dep.NamesAddr() == "" {
		t.Fatal("missing infra addresses")
	}
	if dep.Service() != "timeofday" || !strings.HasPrefix(dep.Group(), "mead.") {
		t.Fatalf("service/group = %q/%q", dep.Service(), dep.Group())
	}
	if len(dep.Replicas()) != 3 {
		t.Fatalf("replicas = %d", len(dep.Replicas()))
	}
	strat, err := dep.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer strat.Close()
	if out := strat.Invoke(); out.Err != nil {
		t.Fatal(out.Err)
	}
	if dep.Recovery() == nil || dep.Hub() == nil {
		t.Fatal("nil component accessors")
	}
}

func TestPublicStatsHelpers(t *testing.T) {
	series := []time.Duration{time.Millisecond, 2 * time.Millisecond, 30 * time.Millisecond}
	sum := Summarize(series)
	if sum.Count != 3 || sum.Max != 30*time.Millisecond {
		t.Fatalf("summary = %+v", sum)
	}
	if out := Outliers(series); out.MaxSpike != 30*time.Millisecond {
		t.Fatalf("outliers = %+v", out)
	}
}

func TestPublicNamingRoundTrip(t *testing.T) {
	srv := NewNamingServer()
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewNamingClient(srv.Addr())
	if _, err := c.List("x/"); err != nil {
		t.Fatal(err)
	}
}
