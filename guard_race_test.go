//go:build race

package mead

// raceEnabled mirrors the race-detector build tag for the alloc guards:
// under -race, sync.Pool deliberately drops a quarter of Puts to expose
// reuse races, so pooled paths show fractional per-op allocations that do
// not exist in a normal build.
const raceEnabled = true
