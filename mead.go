package mead

import (
	"time"

	"mead/internal/client"
	"mead/internal/experiment"
	"mead/internal/faultinject"
	"mead/internal/ftmgr"
	"mead/internal/gcs"
	"mead/internal/idl"
	"mead/internal/namesvc"
	"mead/internal/recovery"
	"mead/internal/replica"
	"mead/internal/stats"
	"mead/internal/telemetry"
)

// Core types re-exported from the implementation packages.
type (
	// Scheme selects one of the five recovery strategies of Table 1.
	Scheme = ftmgr.Scheme

	// Scenario parameterizes an experiment run (workload, thresholds,
	// fault model, restart delays).
	Scenario = experiment.Scenario
	// Result holds one run's measurements (RTT series, fail-overs,
	// exception counts, bandwidth).
	Result = experiment.Result
	// FailoverSample marks an invocation that performed a hand-off.
	FailoverSample = experiment.FailoverSample
	// Deployment is a booted MEAD system (hub, naming, recovery manager,
	// replicas).
	Deployment = experiment.Deployment
	// Table1 reproduces the paper's Table 1.
	Table1 = experiment.Table1
	// Table1Row is one strategy's row of Table 1.
	Table1Row = experiment.Table1Row
	// SweepPoint is one Figure 5 measurement.
	SweepPoint = experiment.SweepPoint

	// FaultConfig parameterizes the Weibull memory-leak injector.
	FaultConfig = faultinject.Config

	// ServiceConfig describes a replicated service.
	ServiceConfig = replica.ServiceConfig
	// Replica is one warm-passive replica instance.
	Replica = replica.Replica
	// ExitReason reports why a replica instance terminated.
	ExitReason = replica.ExitReason

	// ClientConfig parameterizes a client recovery strategy.
	ClientConfig = client.Config
	// Strategy is a client under one recovery scheme.
	Strategy = client.Strategy
	// Outcome describes one invocation as the application saw it.
	Outcome = client.Outcome

	// Hub is the group-communication sequencer (the Spread stand-in).
	Hub = gcs.Hub
	// NamingServer is the Naming Service daemon.
	NamingServer = namesvc.Server
	// NamingClient talks to the Naming Service.
	NamingClient = namesvc.Client

	// RecoveryConfig parameterizes the Recovery Manager.
	RecoveryConfig = recovery.Config
	// RecoveryManager relaunches failed replicas.
	RecoveryManager = recovery.Manager
	// Factory launches replica instances for the Recovery Manager.
	Factory = recovery.Factory
	// FactoryFunc adapts a function to Factory.
	FactoryFunc = recovery.FactoryFunc

	// Telemetry is a process-wide observability instance: lock-free
	// counters, latency histograms, and the bounded recovery-event trace.
	// All methods are nil-safe, so an unset *Telemetry disables
	// instrumentation with no further checks.
	Telemetry = telemetry.Telemetry
	// TelemetrySnapshot is a point-in-time histogram snapshot (count, sum,
	// max, quantiles).
	TelemetrySnapshot = telemetry.Snapshot
	// TraceEvent is one recovery-trace entry.
	TraceEvent = telemetry.Event
	// MetricsServer serves /metrics (Prometheus or JSON) and /trace (JSONL)
	// over HTTP.
	MetricsServer = telemetry.Server
	// HubOption configures the group-communication hub.
	HubOption = gcs.HubOption

	// Series is a labelled RTT series (Figures 3 and 4).
	Series = stats.Series
	// OutlierReport is the 3-sigma jitter analysis (Section 5.2.5).
	OutlierReport = stats.OutlierReport
	// Summary holds descriptive statistics of a duration series.
	Summary = stats.Summary
)

// The five recovery strategies of Table 1.
const (
	// ReactiveNoCache waits for a failure and re-resolves through the
	// Naming Service (baseline).
	ReactiveNoCache = ftmgr.ReactiveNoCache
	// ReactiveCache pre-resolves all replicas and walks the cache.
	ReactiveCache = ftmgr.ReactiveCache
	// NeedsAddressing masks abrupt failures via a group query and a
	// fabricated GIOP NEEDS_ADDRESSING_MODE reply.
	NeedsAddressing = ftmgr.NeedsAddressing
	// LocationForward migrates clients with fabricated GIOP
	// LOCATION_FORWARD replies carrying the next replica's IOR.
	LocationForward = ftmgr.LocationForward
	// MeadMessage piggybacks MEAD fail-over messages onto regular replies
	// and redirects the connection without retransmission.
	MeadMessage = ftmgr.MeadMessage
)

// Replica exit reasons.
const (
	ExitCrashed     = replica.ExitCrashed
	ExitRejuvenated = replica.ExitRejuvenated
	ExitStopped     = replica.ExitStopped
)

// Schemes lists all five strategies in Table 1 order.
func Schemes() []Scheme { return ftmgr.Schemes() }

// ParseScheme parses a Scheme's String form.
func ParseScheme(s string) (Scheme, error) { return ftmgr.ParseScheme(s) }

// Run executes one experiment scenario.
func Run(sc Scenario) (*Result, error) { return experiment.Run(sc) }

// NewDeployment boots a complete MEAD system for the scenario without
// driving a workload.
func NewDeployment(sc Scenario) (*Deployment, error) { return experiment.NewDeployment(sc) }

// RunTable1 runs all five strategies and derives the paper's Table 1.
func RunTable1(template Scenario) (*Table1, map[Scheme]*Result, error) {
	return experiment.RunTable1(template)
}

// BuildTable1 derives Table 1 from already-collected per-scheme results.
func BuildTable1(results map[Scheme]*Result) *Table1 { return experiment.BuildTable1(results) }

// RunThresholdSweep reproduces Figure 5 (bandwidth versus rejuvenation
// threshold).
func RunThresholdSweep(template Scenario, thresholds []float64, schemes []Scheme) ([]SweepPoint, error) {
	return experiment.RunThresholdSweep(template, thresholds, schemes)
}

// FormatSweep renders Figure 5's data as a table.
func FormatSweep(points []SweepPoint) string { return experiment.FormatSweep(points) }

// RunFaultFree runs the jitter baseline (no fault injection).
func RunFaultFree(template Scenario) (*Result, error) { return experiment.RunFaultFree(template) }

// NewHub returns an unstarted group-communication hub.
func NewHub(opts ...HubOption) *Hub { return gcs.NewHub(opts...) }

// WithHubTelemetry attaches telemetry to a hub (multicast and view-change
// counters).
func WithHubTelemetry(t *Telemetry) HubOption { return gcs.WithHubTelemetry(t) }

// NewTelemetry returns a telemetry instance labelled with scheme (usually a
// Scheme's String form; empty for scheme-less processes like the hub).
func NewTelemetry(scheme string) *Telemetry {
	return telemetry.New(telemetry.WithScheme(scheme))
}

// ServeMetrics starts an HTTP endpoint on addr exposing t at /metrics
// (Prometheus text format; JSON via ?format=json or Accept) and the
// recovery-event trace at /trace (JSONL).
func ServeMetrics(addr string, t *Telemetry) (*MetricsServer, error) {
	return telemetry.Serve(addr, t)
}

// NewNamingServer returns an unstarted Naming Service.
func NewNamingServer() *NamingServer { return namesvc.NewServer() }

// NewNamingClient returns a client for the Naming Service at addr.
func NewNamingClient(addr string) *NamingClient { return namesvc.NewClient(addr) }

// NewReplica returns an unstarted replica named name.
func NewReplica(name string, cfg ServiceConfig) (*Replica, error) { return replica.New(name, cfg) }

// NewRecoveryManager returns an unstarted Recovery Manager.
func NewRecoveryManager(cfg RecoveryConfig) (*RecoveryManager, error) { return recovery.New(cfg) }

// DialGroup connects a GCS member (needed by RecoveryConfig.Member).
func DialGroup(hubAddr, memberName string) (*gcs.Member, error) {
	return gcs.Dial(hubAddr, memberName)
}

// NewClient builds a client strategy.
func NewClient(cfg ClientConfig) (Strategy, error) { return client.New(cfg) }

// IDLFile is a parsed OMG IDL compilation unit.
type IDLFile = idl.File

// ParseIDL parses OMG IDL source (the subset in internal/idl).
func ParseIDL(src string) (*IDLFile, error) { return idl.Parse(src) }

// GenerateStubs emits Go client stubs and servant adapters for parsed IDL,
// as the cmd/mead-idl compiler does.
func GenerateStubs(f *IDLFile, pkg string) ([]byte, error) { return idl.Generate(f, pkg) }

// Summarize computes descriptive statistics over a duration series.
func Summarize(series []time.Duration) Summary { return stats.Summarize(series) }

// Outliers computes the 3-sigma outlier report of a duration series.
func Outliers(series []time.Duration) OutlierReport { return stats.Outliers(series) }
