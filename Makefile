GO ?= go

.PHONY: check vet build test bench-smoke bench

## check: the full verification gate — static analysis, build, race-enabled
## tests, and a one-iteration smoke pass over every benchmark (which also
## exercises the alloc-reporting paths).
check: vet build test bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

## bench-smoke: run every benchmark once. Catches bit-rot in the benchmark
## harnesses (including the alloc-guarded GIOP/CDR micro-benches and the
## pipelined-invocation throughput benches) without the cost of a real
## measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

## bench: a real measurement pass over the transport benchmarks used in
## EXPERIMENTS.md (encode/parse micro-benches and serialized-vs-pipelined
## invocation throughput).
bench:
	$(GO) test -run '^$$' -bench 'GIOPRequestEncode|RequestParse|Invocations' -benchtime=20000x .
