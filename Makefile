GO ?= go
GOFMT ?= gofmt

# BENCH_ID numbers the committed benchmark snapshot (BENCH_$(BENCH_ID).json);
# bump it when a PR re-baselines the perf gate.
BENCH_ID ?= 10
BENCH_PATTERN = GIOPRequestEncode|GIOPRequestDecode|GIOPReplyDecode|SerializedInvocations|PipelinedInvocations|InvokePipelined

.PHONY: check fmt-check vet build test bench-smoke bench bench-json bench-compare fuzz-smoke chaos-smoke metrics-smoke dr-smoke

## check: the full verification gate — formatting, static analysis, build,
## race-enabled tests, and a one-iteration smoke pass over every benchmark
## (which also exercises the alloc-reporting paths). Run `make bench-compare`
## afterwards to gate wire-path performance against the committed
## BENCH_$(BENCH_ID).json snapshot, and `make bench-json` to re-baseline it.
check: fmt-check vet build test bench-smoke

## fmt-check: fail (listing the offenders) when any tracked Go file is not
## gofmt-clean.
fmt-check:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

## chaos-smoke: the deterministic network-chaos suite — the netfault
## injector's own tests plus the {scheme × fault-plan} conformance matrix
## and the same-seed determinism check, all race-enabled.
chaos-smoke:
	$(GO) test -race -count=1 -run 'Chaos|Cut|Blackhole|Partition|Duplicate|ShortWrites|Latency|Seeded|Determin|Table1' \
		./internal/netfault/ ./internal/experiment/

## metrics-smoke: boot a real multi-process deployment with -metrics, drive
## a client workload, and validate the Prometheus/JSON/JSONL responses of
## the telemetry endpoint.
metrics-smoke:
	sh scripts/metrics_smoke.sh

## dr-smoke: the disaster-recovery gate — the durable subsystem's own tests
## plus the disaster chaos suite (kill-all cold restart, torn-tail and
## corrupted-record truncation, restart-time at-most-once), race-enabled,
## then a real multi-process kill-all drill over -statedir.
dr-smoke:
	$(GO) test -race -count=1 ./internal/durable/
	$(GO) test -race -count=1 -run 'Disaster' ./internal/experiment/
	sh scripts/dr_smoke.sh

## bench-smoke: run every benchmark once. Catches bit-rot in the benchmark
## harnesses (including the alloc-guarded GIOP/CDR micro-benches and the
## pipelined-invocation throughput benches) without the cost of a real
## measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

## bench: a real measurement pass over the transport benchmarks used in
## EXPERIMENTS.md (encode/decode micro-benches and serialized-vs-pipelined
## invocation throughput).
bench:
	$(GO) test -run '^$$' -bench 'GIOPRequestEncode|GIOPRequestDecode|GIOPReplyDecode|RequestParse|Invocations' -benchmem -benchtime=20000x .

## bench-json: write the machine-readable benchmark snapshot
## BENCH_$(BENCH_ID).json at the repo root — the perf-gate baseline that CI
## compares fresh runs against. Runs the wire-path benches repeatedly at
## GOMAXPROCS 1/2/4 and keeps the per-bench MAXIMUM ns/op (and maximum
## allocs/op): the baseline records the slowest observed estimate while the
## bench-compare gate keeps the fastest of its fresh runs, so the 15%
## ns/op margin gates genuine regressions rather than run-to-run scheduler
## noise. Pure go; no external tools.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime=10000x -count=3 -cpu 1,2,4 . \
		| $(GO) run ./scripts/benchjson -keep max > BENCH_$(BENCH_ID).json
	@echo "wrote BENCH_$(BENCH_ID).json"

## bench-compare: re-measure the wire-path benches and fail if any regresses
## against the committed BENCH_$(BENCH_ID).json: 15% ns/op on the
## encode/decode micro-benches, 60% on the macro TCP round-trip invocation
## benches (their wall clock swings ~35% run-to-run on an idle host), and
## any added allocation on a zero-alloc-guarded path. This is the CI perf
## gate.
bench-compare:
	@tmp="$$(mktemp)"; trap 'rm -f "$$tmp"' EXIT; \
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime=10000x -count=3 -cpu 1,2,4 . \
		| $(GO) run ./scripts/benchjson > "$$tmp" && \
	$(GO) run ./scripts/benchcompare BENCH_$(BENCH_ID).json "$$tmp"

## fuzz-smoke: a short burst over each fuzz target (decode paths and the CDR
## string reader) to keep them healthy; CI-friendly at ~30s total.
fuzz-smoke:
	$(GO) test ./internal/giop/ -run '^$$' -fuzz FuzzDecodeRequest -fuzztime 8s
	$(GO) test ./internal/giop/ -run '^$$' -fuzz FuzzDecodeReply -fuzztime 8s
	$(GO) test ./internal/cdr/ -run '^$$' -fuzz FuzzReadString -fuzztime 8s
	$(GO) test ./internal/cdr/ -run '^$$' -fuzz FuzzDecoderStream -fuzztime 8s
	$(GO) test ./internal/durable/ -run '^$$' -fuzz FuzzLogRecordDecode -fuzztime 8s
	$(GO) test ./internal/durable/ -run '^$$' -fuzz FuzzCheckpointDecode -fuzztime 8s
