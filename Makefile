GO ?= go
GOFMT ?= gofmt

.PHONY: check fmt-check vet build test bench-smoke bench fuzz-smoke chaos-smoke metrics-smoke

## check: the full verification gate — formatting, static analysis, build,
## race-enabled tests, and a one-iteration smoke pass over every benchmark
## (which also exercises the alloc-reporting paths).
check: fmt-check vet build test bench-smoke

## fmt-check: fail (listing the offenders) when any tracked Go file is not
## gofmt-clean.
fmt-check:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

## chaos-smoke: the deterministic network-chaos suite — the netfault
## injector's own tests plus the {scheme × fault-plan} conformance matrix
## and the same-seed determinism check, all race-enabled.
chaos-smoke:
	$(GO) test -race -count=1 -run 'Chaos|Cut|Blackhole|Partition|Duplicate|ShortWrites|Latency|Seeded|Determin|Table1' \
		./internal/netfault/ ./internal/experiment/

## metrics-smoke: boot a real multi-process deployment with -metrics, drive
## a client workload, and validate the Prometheus/JSON/JSONL responses of
## the telemetry endpoint.
metrics-smoke:
	sh scripts/metrics_smoke.sh

## bench-smoke: run every benchmark once. Catches bit-rot in the benchmark
## harnesses (including the alloc-guarded GIOP/CDR micro-benches and the
## pipelined-invocation throughput benches) without the cost of a real
## measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

## bench: a real measurement pass over the transport benchmarks used in
## EXPERIMENTS.md (encode/decode micro-benches and serialized-vs-pipelined
## invocation throughput).
bench:
	$(GO) test -run '^$$' -bench 'GIOPRequestEncode|GIOPRequestDecode|GIOPReplyDecode|RequestParse|Invocations' -benchmem -benchtime=20000x .

## fuzz-smoke: a short burst over each fuzz target (decode paths and the CDR
## string reader) to keep them healthy; CI-friendly at ~30s total.
fuzz-smoke:
	$(GO) test ./internal/giop/ -run '^$$' -fuzz FuzzDecodeRequest -fuzztime 8s
	$(GO) test ./internal/giop/ -run '^$$' -fuzz FuzzDecodeReply -fuzztime 8s
	$(GO) test ./internal/cdr/ -run '^$$' -fuzz FuzzReadString -fuzztime 8s
	$(GO) test ./internal/cdr/ -run '^$$' -fuzz FuzzDecoderStream -fuzztime 8s
