module mead

go 1.22
