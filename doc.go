// Package mead is a from-scratch Go reproduction of "Proactive Recovery in
// Distributed CORBA Applications" (Pertet & Narasimhan, DSN 2004): the MEAD
// proactive-dependability framework, rebuilt on a purpose-written GIOP/IIOP
// mini-ORB with transparent connection interception, a totally-ordered
// group-communication substrate, a Naming Service, warm passive
// replication, a Recovery Manager, and the paper's Weibull memory-leak
// fault injector.
//
// The package exposes three layers:
//
//   - Building blocks — NewHub, NewNamingServer, NewReplica,
//     NewRecoveryManager, NewClient — to assemble a deployment by hand (see
//     examples/timeofday).
//   - Deployment — NewDeployment boots a complete system (hub + naming +
//     recovery manager + N replicas) in one call.
//   - Experiments — Run, RunTable1, RunThresholdSweep, RunFaultFree
//     regenerate the paper's Table 1 and Figures 3, 4 and 5.
//
// The five recovery strategies of the paper's Table 1 are the Scheme
// constants: ReactiveNoCache, ReactiveCache, NeedsAddressing,
// LocationForward and MeadMessage.
package mead
