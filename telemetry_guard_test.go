package mead

import (
	"testing"

	"mead/internal/orb"
	"mead/internal/telemetry"
)

// BenchmarkInvoke is the uninstrumented baseline: the pooled zero-allocation
// invoke path with no telemetry attached.
func BenchmarkInvoke(b *testing.B) {
	runInvocationBench(b, 1, true)
}

// BenchmarkInvokeInstrumented is the same workload with a live Telemetry
// instance attached: every invocation increments the sharded counters, feeds
// the RTT histogram, and appends a request-sent event to the trace ring.
// Compare its allocs/op against BenchmarkInvoke: the telemetry layer's
// zero-steady-state-allocation contract means the two must match.
func BenchmarkInvokeInstrumented(b *testing.B) {
	tel := telemetry.New(telemetry.WithScheme("bench"))
	runInvocationBench(b, 1, true, orb.WithTelemetry(tel))
}

// TestTelemetryAddsNoAllocs is the alloc-guard behind the telemetry layer's
// headline claim: attaching telemetry to the pooled invoke path adds zero
// heap allocations per invocation. It measures both benchmarks in-process
// and fails on any added alloc. The wall-clock delta is reported (and only
// loosely bounded — CI wall clocks are too noisy for a tight latency gate;
// the sub-5% overhead figure is measured on a quiet machine, see
// EXPERIMENTS.md).
func TestTelemetryAddsNoAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc-guard runs two in-process benchmarks")
	}
	baseline := testing.Benchmark(BenchmarkInvoke)
	instrumented := testing.Benchmark(BenchmarkInvokeInstrumented)

	ba, ia := baseline.AllocsPerOp(), instrumented.AllocsPerOp()
	t.Logf("allocs/op: baseline %d, instrumented %d", ba, ia)
	if ia > ba {
		t.Errorf("telemetry added allocations: %d allocs/op instrumented vs %d baseline", ia, ba)
	}

	bns, ins := baseline.NsPerOp(), instrumented.NsPerOp()
	if bns > 0 {
		delta := 100 * float64(ins-bns) / float64(bns)
		t.Logf("ns/op: baseline %d, instrumented %d (%+.1f%%)", bns, ins, delta)
		if float64(ins) > 1.5*float64(bns) {
			t.Errorf("instrumented invoke %dns/op implausibly above baseline %dns/op", ins, bns)
		}
	}
}
