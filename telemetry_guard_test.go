package mead

import (
	"sync"
	"testing"
	"time"

	"mead/internal/cdr"
	"mead/internal/durable"
	"mead/internal/orb"
	"mead/internal/telemetry"
)

// BenchmarkInvoke is the uninstrumented baseline: the pooled zero-allocation
// invoke path with no telemetry attached.
func BenchmarkInvoke(b *testing.B) {
	runInvocationBench(b, 1, true)
}

// BenchmarkInvokeInstrumented is the same workload with a live Telemetry
// instance attached: every invocation increments the sharded counters, feeds
// the RTT histogram, and appends a request-sent event to the trace ring.
// Compare its allocs/op against BenchmarkInvoke: the telemetry layer's
// zero-steady-state-allocation contract means the two must match.
func BenchmarkInvokeInstrumented(b *testing.B) {
	tel := telemetry.New(telemetry.WithScheme("bench"))
	runInvocationBench(b, 1, true, orb.WithTelemetry(tel))
}

// BenchmarkInvokeDurable puts the durable write path under the same
// workload: every dispatch executes the replica's op sequence — advance the
// counters under the state lock, frame the op into a pooled buffer and hand
// it to the store's writer goroutine. Compare its allocs/op against
// BenchmarkInvoke: the append path's buffer pooling means logging every op
// must add zero steady-state heap allocations per invocation.
func BenchmarkInvokeDurable(b *testing.B) {
	store, _, err := durable.Open(durable.Config{Dir: b.TempDir(), Replica: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	var mu sync.Mutex
	var counter uint64
	servant := orb.ServantFunc(func(op string, args *cdr.Decoder, result *cdr.Encoder) error {
		mu.Lock()
		counter++
		store.Append(durable.Op{OpNumber: counter, Counter: counter, Client: "bench-client", ClientSeq: counter})
		mu.Unlock()
		result.WriteLongLong(time.Now().UnixNano())
		return nil
	})
	runInvocationBenchServant(b, 1, true, servant)
}

// minBench runs one benchmark three times and keeps the minimum allocs/op
// and ns/op. A single testing.Benchmark run can report phantom allocations
// when the whole test suite executes in parallel (GC pressure from sibling
// packages empties the sync.Pools mid-measurement, so warm-up refills get
// amortized over too few iterations); the steady-state minimum is the
// number the zero-alloc contract is about.
func minBench(f func(*testing.B)) (allocs, ns int64) {
	for i := 0; i < 3; i++ {
		r := testing.Benchmark(f)
		if i == 0 || r.AllocsPerOp() < allocs {
			allocs = r.AllocsPerOp()
		}
		if i == 0 || r.NsPerOp() < ns {
			ns = r.NsPerOp()
		}
	}
	return allocs, ns
}

// TestDurableAddsNoAllocs is the durable subsystem's alloc-guard: appending
// every executed op to the durable log must not add a single steady-state
// heap allocation to the pooled invoke path. Same method and caveats as
// TestTelemetryAddsNoAllocs below.
func TestDurableAddsNoAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc-guard runs in-process benchmarks")
	}
	ba, bns := minBench(BenchmarkInvoke)
	da, dns := minBench(BenchmarkInvokeDurable)

	// The race detector's sync.Pool drops a quarter of Puts by design, so
	// the pooled append buffer shows up as a fractional allocation per op
	// under -race only (13 vs 13 in a normal build). Allow that one
	// artifact; a genuine per-op allocation would still push past it.
	slack := int64(0)
	if raceEnabled {
		slack = 1
	}
	t.Logf("allocs/op: baseline %d, durable %d (race slack %d)", ba, da, slack)
	if da > ba+slack {
		t.Errorf("durable logging added allocations: %d allocs/op durable vs %d baseline", da, ba)
	}

	if bns > 0 {
		delta := 100 * float64(dns-bns) / float64(bns)
		t.Logf("ns/op: baseline %d, durable %d (%+.1f%%)", bns, dns, delta)
		if float64(dns) > 1.5*float64(bns) {
			t.Errorf("durable invoke %dns/op implausibly above baseline %dns/op", dns, bns)
		}
	}
}

// TestTelemetryAddsNoAllocs is the alloc-guard behind the telemetry layer's
// headline claim: attaching telemetry to the pooled invoke path adds zero
// heap allocations per invocation. It measures both benchmarks in-process
// and fails on any added alloc. The wall-clock delta is reported (and only
// loosely bounded — CI wall clocks are too noisy for a tight latency gate;
// the sub-5% overhead figure is measured on a quiet machine, see
// EXPERIMENTS.md).
func TestTelemetryAddsNoAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc-guard runs in-process benchmarks")
	}
	ba, bns := minBench(BenchmarkInvoke)
	ia, ins := minBench(BenchmarkInvokeInstrumented)

	t.Logf("allocs/op: baseline %d, instrumented %d", ba, ia)
	if ia > ba {
		t.Errorf("telemetry added allocations: %d allocs/op instrumented vs %d baseline", ia, ba)
	}

	if bns > 0 {
		delta := 100 * float64(ins-bns) / float64(bns)
		t.Logf("ns/op: baseline %d, instrumented %d (%+.1f%%)", bns, ins, delta)
		if float64(ins) > 1.5*float64(bns) {
			t.Errorf("instrumented invoke %dns/op implausibly above baseline %dns/op", ins, bns)
		}
	}
}
