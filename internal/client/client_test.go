package client

import (
	"errors"
	"testing"
	"time"

	"mead/internal/ftmgr"
	"mead/internal/gcs"
	"mead/internal/giop"
	"mead/internal/namesvc"
	"mead/internal/replica"
)

func startInfra(t *testing.T) (*gcs.Hub, *namesvc.Server) {
	t.Helper()
	hub := gcs.NewHub()
	if err := hub.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Close() })
	names := namesvc.NewServer()
	if err := names.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = names.Close() })
	return hub, names
}

func startReplicas(t *testing.T, hub *gcs.Hub, names *namesvc.Server, scheme ftmgr.Scheme, n int) []*replica.Replica {
	t.Helper()
	cfg := replica.ServiceConfig{
		Service:         "timeofday",
		HubAddr:         hub.Addr(),
		NamesAddr:       names.Addr(),
		Scheme:          scheme,
		CheckpointEvery: 5 * time.Millisecond,
	}
	reps := make([]*replica.Replica, 0, n)
	for i := 1; i <= n; i++ {
		r, err := replica.New("r"+string(rune('0'+i)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(r.Stop)
		reps = append(reps, r)
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(hub.Members(cfg.Group())) < n {
		if time.Now().After(deadline) {
			t.Fatal("replicas never formed the group")
		}
		time.Sleep(2 * time.Millisecond)
	}
	return reps
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Scheme: ftmgr.ReactiveNoCache}); err == nil {
		t.Fatal("missing service accepted")
	}
	if _, err := New(Config{Scheme: ftmgr.NeedsAddressing, Service: "s", NamesAddr: "127.0.0.1:1"}); err == nil {
		t.Fatal("NEEDS_ADDRESSING without hub accepted")
	}
	if _, err := New(Config{Scheme: ftmgr.Scheme(0), Service: "s", NamesAddr: "127.0.0.1:1"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestSchemesReported(t *testing.T) {
	hub, names := startInfra(t)
	startReplicas(t, hub, names, ftmgr.ReactiveNoCache, 1)
	for _, scheme := range ftmgr.Schemes() {
		s, err := New(Config{
			Scheme:    scheme,
			Service:   "timeofday",
			NamesAddr: names.Addr(),
			HubAddr:   hub.Addr(),
		})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if s.Scheme() != scheme {
			t.Fatalf("Scheme() = %v, want %v", s.Scheme(), scheme)
		}
		_ = s.Close()
	}
}

func TestInvokeAgainstEmptyNaming(t *testing.T) {
	_, names := startInfra(t)
	s, err := New(Config{Scheme: ftmgr.ReactiveNoCache, Service: "ghost", NamesAddr: names.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	out := s.Invoke()
	if out.Err == nil {
		t.Fatal("invoke with no bindings succeeded")
	}
}

func TestAllSchemesServeHappyPath(t *testing.T) {
	hub, names := startInfra(t)
	startReplicas(t, hub, names, ftmgr.MeadMessage, 3)
	for _, scheme := range ftmgr.Schemes() {
		t.Run(scheme.String(), func(t *testing.T) {
			s, err := New(Config{
				Scheme:    scheme,
				Service:   "timeofday",
				NamesAddr: names.Addr(),
				HubAddr:   hub.Addr(),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			for i := 0; i < 10; i++ {
				out := s.Invoke()
				if out.Err != nil {
					t.Fatalf("invocation %d: %v", i, out.Err)
				}
				if out.Failover || len(out.Exceptions) != 0 {
					t.Fatalf("fault-free run produced %+v", out)
				}
				if out.RTT <= 0 {
					t.Fatal("non-positive RTT")
				}
			}
		})
	}
}

func TestClassify(t *testing.T) {
	if name, ok := classify(giop.CommFailure(1, giop.CompletedMaybe)); !ok || name != "COMM_FAILURE" {
		t.Fatalf("classify COMM_FAILURE = %q, %v", name, ok)
	}
	if name, ok := classify(giop.Transient(1, giop.CompletedNo)); !ok || name != "TRANSIENT" {
		t.Fatalf("classify TRANSIENT = %q, %v", name, ok)
	}
	if name, ok := classify(&giop.SystemException{RepoID: giop.RepoInternal}); !ok || name != giop.RepoInternal {
		t.Fatalf("classify INTERNAL = %q, %v", name, ok)
	}
	if _, ok := classify(errors.New("plain")); ok {
		t.Fatal("plain error classified as CORBA exception")
	}
}

func TestReactiveCacheRefreshPicksUpRestartedReplica(t *testing.T) {
	hub, names := startInfra(t)
	reps := startReplicas(t, hub, names, ftmgr.ReactiveCache, 2)
	s, err := New(Config{
		Scheme:    ftmgr.ReactiveCache,
		Service:   "timeofday",
		NamesAddr: names.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if out := s.Invoke(); out.Err != nil || out.Replica != "r1" {
		t.Fatalf("outcome = %+v", out)
	}
	// Crash r1; client fails over to r2 from its cache.
	reps[0].Crash()
	<-reps[0].Done()
	if out := s.Invoke(); out.Err != nil || out.Replica != "r2" {
		t.Fatalf("outcome = %+v", out)
	}
	// Restart r1 (new instance, new port, same name -> rebind).
	cfg := replica.ServiceConfig{
		Service:   "timeofday",
		HubAddr:   hub.Addr(),
		NamesAddr: names.Addr(),
		Scheme:    ftmgr.ReactiveCache,
	}
	r1b, err := replica.New("r1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r1b.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r1b.Stop)

	// Crash r2: the cache is exhausted, the refresh must find the
	// restarted r1 at its NEW address.
	reps[1].Crash()
	<-reps[1].Done()
	out := s.Invoke()
	if out.Err != nil {
		t.Fatalf("refresh failover: %v (%v)", out.Err, out.Exceptions)
	}
	if out.Replica != "r1" {
		t.Fatalf("responder = %q, want restarted r1", out.Replica)
	}
}

func TestOutcomeRTTIncludesRecovery(t *testing.T) {
	hub, names := startInfra(t)
	reps := startReplicas(t, hub, names, ftmgr.ReactiveNoCache, 2)
	s, err := New(Config{Scheme: ftmgr.ReactiveNoCache, Service: "timeofday", NamesAddr: names.Addr(), HubAddr: hub.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if out := s.Invoke(); out.Err != nil {
		t.Fatal(out.Err)
	}
	base := s.Invoke()
	if base.Err != nil {
		t.Fatal(base.Err)
	}
	reps[0].Crash()
	<-reps[0].Done()
	spike := s.Invoke()
	if spike.Err != nil {
		t.Fatal(spike.Err)
	}
	if !spike.Failover {
		t.Fatal("failover not flagged")
	}
	if spike.RTT <= base.RTT {
		t.Fatalf("failover RTT %v not above baseline %v", spike.RTT, base.RTT)
	}
}
