package client

import (
	"time"

	"mead/internal/ftmgr"
	"mead/internal/namesvc"
)

// reactive implements the two classical baselines of Section 5.
//
// Without cache: "the client waited until it detected a server failure
// before contacting the CORBA Naming Service for the address of the next
// available server replica."
//
// With cache: "the client first contacted the CORBA Naming Service and
// obtained the addresses of the three server replicas, and stored them in a
// collocated cache. When the client detected the failure of a server
// replica, it moved on to the next entry in the cache, and only contacted
// the CORBA Naming Service once it exhausted all of the entries."
type reactive struct {
	*base
	cached bool

	cache    []namesvc.Entry
	cacheIdx int
}

var _ Strategy = (*reactive)(nil)

func (r *reactive) Scheme() ftmgr.Scheme {
	if r.cached {
		return ftmgr.ReactiveCache
	}
	return ftmgr.ReactiveNoCache
}

func (r *reactive) Invoke() (out Outcome) {
	start := time.Now()
	r.nextSeq() // retries below reuse this sequence number
	defer func() {
		out.RTT = time.Since(start)
		r.record(&out)
	}()

	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		if err := r.ensureRef(); err != nil {
			out.Err = err
			return out
		}
		err := r.call(&out)
		if err == nil {
			out.Err = nil
			return out
		}
		name, isCORBA := classify(err)
		if !isCORBA {
			out.Err = err
			return out
		}
		// The application catches the exception and fails over.
		r.noteException(name)
		out.Exceptions = append(out.Exceptions, name)
		out.Failover = true
		r.advance()
		out.Err = err // kept if every attempt fails
	}
	return out
}

// ensureRef lazily establishes the initial reference (the initial naming
// spike at the start of each run in Figures 3 and 4).
func (r *reactive) ensureRef() error {
	if r.ref != nil {
		return nil
	}
	if !r.cached {
		return r.resolveAt(0)
	}
	return r.refreshCache(0)
}

// refreshCache re-resolves all replica references in one sweep — exactly
// the behaviour that creates stale entries: "Stale cache references occur
// when we refreshed the cache before a faulty replica has had a chance to
// restart and register itself with the CORBA Naming Service."
func (r *reactive) refreshCache(startIdx int) error {
	entries, err := r.names.List(r.cfg.Service + "/")
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return errNoReplicas(r.cfg.Service)
	}
	r.cache = entries
	r.cacheIdx = startIdx % len(entries)
	r.bindCacheEntry()
	return nil
}

func (r *reactive) bindCacheEntry() {
	if r.ref != nil {
		_ = r.ref.Close()
	}
	r.ref = r.orb.Object(r.cache[r.cacheIdx].IOR)
	r.bindTo(r.cache[r.cacheIdx])
}

// advance moves to the next replica after a failure.
func (r *reactive) advance() {
	if !r.cached {
		// Contact the Naming Service for the next available replica.
		_ = r.resolveAt(r.idx + 1)
		return
	}
	r.cacheIdx++
	if r.cacheIdx >= len(r.cache) {
		// Cache exhausted: re-resolve all entries (the larger spike).
		if err := r.refreshCache(0); err != nil {
			r.ref = nil
		}
		return
	}
	r.bindCacheEntry()
}

type errNoReplicas string

func (e errNoReplicas) Error() string { return "client: no replicas bound under " + string(e) }

// proactive implements the client side of the three proactive schemes. The
// transparent hand-offs happen inside the ORB (LOCATION_FORWARD) or the
// interceptor (NEEDS_ADDRESSING, MEAD); the strategy only measures them and
// falls back to reactive re-resolution when an exception does reach the
// application (which the paper observed for NEEDS_ADDRESSING in ~25% of
// server failures).
type proactive struct {
	*base
	scheme ftmgr.Scheme
	cm     *ftmgr.ClientManager
	member interface{ Close() error }

	lastForwards  int
	lastFailovers int
}

var _ Strategy = (*proactive)(nil)

func (p *proactive) Scheme() ftmgr.Scheme { return p.scheme }

func (p *proactive) Close() error {
	err := p.base.Close()
	if p.member != nil {
		_ = p.member.Close()
	}
	return err
}

func (p *proactive) Invoke() (out Outcome) {
	start := time.Now()
	p.nextSeq() // retries below reuse this sequence number
	defer func() {
		out.RTT = time.Since(start)
		p.record(&out)
	}()

	for attempt := 0; attempt < p.cfg.MaxAttempts; attempt++ {
		if p.ref == nil {
			if err := p.resolveAt(p.idx); err != nil {
				out.Err = err
				return out
			}
		}
		err := p.call(&out)
		out.Failover = out.Failover || p.transparentHandoffs()
		if err == nil {
			out.Err = nil
			return out
		}
		name, isCORBA := classify(err)
		if !isCORBA {
			out.Err = err
			return out
		}
		p.noteException(name)
		out.Exceptions = append(out.Exceptions, name)
		out.Failover = true
		// Reactive fallback: next replica via the Naming Service.
		if rerr := p.resolveAt(p.idx + 1); rerr != nil {
			out.Err = rerr
			return out
		}
		out.Err = err
	}
	return out
}

// transparentHandoffs reports (and consumes) any hand-offs the ORB or the
// interceptor performed since the last check.
func (p *proactive) transparentHandoffs() bool {
	happened := false
	if p.ref != nil {
		if f := p.ref.Stats().Forwards + p.ref.Stats().Retransmissions; f != p.lastForwards {
			p.lastForwards = f
			happened = true
		}
	}
	if p.cm != nil {
		if f := p.cm.Failovers(); f != p.lastFailovers {
			p.lastFailovers = f
			happened = true
		}
	}
	return happened
}
