// Package client implements the five client-side recovery strategies of
// Table 1: the two classical reactive baselines (with and without a cached
// reference list) and the client halves of the three proactive schemes.
// All strategies invoke the paper's test application: "a simple CORBA
// client ... requested the time-of-day at 1ms intervals from one of three
// warm-passively replicated CORBA servers".
package client

import (
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"mead/internal/cdr"
	"mead/internal/ftmgr"
	"mead/internal/gcs"
	"mead/internal/giop"
	"mead/internal/namesvc"
	"mead/internal/orb"
	"mead/internal/telemetry"
)

// Outcome describes one logical invocation as the client application
// experienced it: its end-to-end round-trip time (including any recovery
// actions), the CORBA exceptions that reached the application, and whether
// a fail-over happened underneath it.
type Outcome struct {
	// RTT is the wall-clock time from request start to the first
	// successful reply (or final failure).
	RTT time.Duration
	// Err is non-nil if the invocation ultimately failed.
	Err error
	// Exceptions lists the CORBA system exceptions the application
	// caught during this invocation ("COMM_FAILURE", "TRANSIENT").
	Exceptions []string
	// Failover reports that a recovery action (reactive retry or
	// transparent proactive hand-off) occurred during this invocation.
	Failover bool
	// Replica is the responding replica's name.
	Replica string
	// Timestamp is the server's reported time-of-day (ns).
	Timestamp int64
	// Counter is the server's replicated state counter.
	Counter uint64
}

// Strategy performs time-of-day invocations under one recovery scheme.
type Strategy interface {
	// Scheme identifies the strategy.
	Scheme() ftmgr.Scheme
	// Invoke performs one logical invocation.
	Invoke() Outcome
	// Close releases connections.
	Close() error
}

// Config parameterizes a client strategy.
type Config struct {
	// Scheme selects the strategy.
	Scheme ftmgr.Scheme
	// Service is the replicated service name.
	Service string
	// NamesAddr is the Naming Service endpoint.
	NamesAddr string
	// HubAddr is the GCS hub endpoint (NEEDS_ADDRESSING only).
	HubAddr string
	// MemberName is the client's GCS private name (NEEDS_ADDRESSING only).
	MemberName string
	// QueryTimeout is the NEEDS_ADDRESSING group-query window
	// (default 10 ms, as in the paper).
	QueryTimeout time.Duration
	// DialTimeout bounds connection attempts (default 2 s).
	DialTimeout time.Duration
	// MaxAttempts bounds recovery retries within one logical invocation
	// (default 8).
	MaxAttempts int
	// Dial opens every transport connection this strategy makes — ORB
	// connections, interceptor redirection dials, and the GCS member link.
	// The chaos harness substitutes netfault's injecting dialer; nil means
	// net.DialTimeout.
	Dial orb.DialFunc
	// SharedPool switches the client ORB onto the shared multiplexed
	// transport (one connection per replica address, concurrent in-flight
	// requests demultiplexed by request id). Supported for the reactive
	// and LOCATION_FORWARD schemes; the interceptor-based schemes
	// (NEEDS_ADDRESSING, MEAD) assume one in-flight request per connection
	// and reject it.
	SharedPool bool
	// PoolStripes widens the shared pool to N multiplexed connections per
	// replica address (0 or 1 means one). Placement is power-of-two-choices
	// on the per-stripe in-flight count. Only meaningful with SharedPool.
	PoolStripes int
	// Batching lets the pooled transport coalesce concurrent request bursts
	// into single batch frames — a vendor extension that only servers built
	// from this codebase decode, so enable it only inside this deployment.
	// Only meaningful with SharedPool.
	Batching bool
	// Telemetry, when set, is threaded through the ORB and interceptor and
	// additionally records application-visible exceptions (labelled with
	// the replica the client was bound to) and steady/fail-over round-trip
	// histograms.
	Telemetry *telemetry.Telemetry
	// ClientID is the at-most-once identity sent with every invocation:
	// retries of one logical invocation reuse its sequence number, so a
	// replica that already executed the request (including a replica that
	// restarted and replayed its durable dedup table) answers from cache
	// instead of re-executing. Empty derives a process-unique id; set it
	// explicitly only to correlate retransmissions across client restarts
	// (tests). Never reuse an id with a fresh sequence space against
	// durable replicas — the persisted table would suppress the new
	// client's early requests.
	ClientID string
}

func (c Config) group() string { return "mead." + c.Service }

// New builds the strategy for cfg.Scheme.
func New(cfg Config) (Strategy, error) {
	if cfg.Service == "" || cfg.NamesAddr == "" {
		return nil, errors.New("client: Service and NamesAddr required")
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.ClientID == "" {
		// Process-unique by construction: a restarted experiment (or a
		// fresh strategy over a reused state directory) must not collide
		// with a persisted dedup row for an earlier client.
		cfg.ClientID = fmt.Sprintf("c%d-%d", os.Getpid(), clientIDs.Add(1))
	}
	base := &base{
		cfg:   cfg,
		names: namesvc.NewClient(cfg.NamesAddr),
	}
	baseOpts := []orb.ClientOption{orb.WithDialTimeout(cfg.DialTimeout)}
	if cfg.Dial != nil {
		baseOpts = append(baseOpts, orb.WithDialer(cfg.Dial))
	}
	if cfg.Telemetry != nil {
		baseOpts = append(baseOpts, orb.WithTelemetry(cfg.Telemetry))
	}
	if cfg.SharedPool {
		switch cfg.Scheme {
		case ftmgr.ReactiveNoCache, ftmgr.ReactiveCache, ftmgr.LocationForward:
			baseOpts = append(baseOpts, orb.WithConnectionPool())
			if cfg.PoolStripes > 1 {
				baseOpts = append(baseOpts, orb.WithPoolStripes(cfg.PoolStripes))
			}
			if cfg.Batching {
				baseOpts = append(baseOpts, orb.WithRequestBatching())
			}
		default:
			return nil, fmt.Errorf("client: SharedPool is incompatible with scheme %v (its interceptor assumes one in-flight request per connection)", cfg.Scheme)
		}
	} else if cfg.PoolStripes > 1 || cfg.Batching {
		return nil, errors.New("client: PoolStripes/Batching require SharedPool")
	}
	switch cfg.Scheme {
	case ftmgr.ReactiveNoCache, ftmgr.ReactiveCache:
		base.orb = orb.NewClient(baseOpts...)
		return &reactive{base: base, cached: cfg.Scheme == ftmgr.ReactiveCache}, nil
	case ftmgr.LocationForward:
		// "The main advantage of this technique is that it does not
		// require an Interceptor at the client because the client ORB
		// handles the retransmission through native CORBA mechanisms."
		base.orb = orb.NewClient(baseOpts...)
		return &proactive{base: base, scheme: ftmgr.LocationForward}, nil
	case ftmgr.MeadMessage:
		cm, err := ftmgr.NewClientManager(ftmgr.ClientConfig{
			Scheme:      ftmgr.MeadMessage,
			DialTimeout: cfg.DialTimeout,
			Dial:        ftmgr.DialFunc(cfg.Dial),
			Telemetry:   cfg.Telemetry,
		})
		if err != nil {
			return nil, err
		}
		base.orb = orb.NewClient(append(baseOpts,
			orb.WithClientConnWrapper(cm.WrapClientConn))...)
		return &proactive{base: base, scheme: ftmgr.MeadMessage, cm: cm}, nil
	case ftmgr.NeedsAddressing:
		if cfg.HubAddr == "" {
			return nil, errors.New("client: NEEDS_ADDRESSING requires HubAddr")
		}
		name := cfg.MemberName
		if name == "" {
			name = fmt.Sprintf("client-%d", time.Now().UnixNano())
		}
		memberDial := gcs.DialFunc(cfg.Dial)
		if memberDial == nil {
			memberDial = net.DialTimeout
		}
		member, err := gcs.DialWith(memberDial, cfg.HubAddr, name)
		if err != nil {
			return nil, err
		}
		cm, err := ftmgr.NewClientManager(ftmgr.ClientConfig{
			Scheme:       ftmgr.NeedsAddressing,
			Member:       member,
			Group:        cfg.group(),
			QueryTimeout: cfg.QueryTimeout,
			DialTimeout:  cfg.DialTimeout,
			Dial:         ftmgr.DialFunc(cfg.Dial),
			Telemetry:    cfg.Telemetry,
		})
		if err != nil {
			_ = member.Close()
			return nil, err
		}
		base.orb = orb.NewClient(append(baseOpts,
			orb.WithClientConnWrapper(cm.WrapClientConn))...)
		return &proactive{base: base, scheme: ftmgr.NeedsAddressing, cm: cm, member: member}, nil
	default:
		return nil, fmt.Errorf("client: unknown scheme %v", cfg.Scheme)
	}
}

// clientIDs disambiguates derived ClientIDs within one process.
var clientIDs atomic.Uint64

// base holds the machinery shared by all strategies.
type base struct {
	cfg   Config
	orb   *orb.ClientORB
	names *namesvc.Client

	ref *orb.ObjectRef
	idx int // index (into the naming listing) of the current reference

	curReplica string // replica name of the current binding (telemetry label)
	curAddr    string // replica address of the current binding
	done       int    // completed logical invocations (for the warm-up skip)
	seq        uint64 // at-most-once sequence of the current logical invocation
}

// nextSeq advances the at-most-once sequence for a new logical invocation;
// every retry attempt within it reuses the same number.
func (b *base) nextSeq() { b.seq++ }

// bindTo records which replica the strategy is now bound to, for labelling
// exception events.
func (b *base) bindTo(entry namesvc.Entry) {
	b.curReplica = strings.TrimPrefix(entry.Name, b.cfg.Service+"/")
	b.curAddr, _ = entry.IOR.Addr()
}

// noteException emits the application-visible exception to the recovery
// trace, labelled with the replica the client was bound to when it surfaced.
func (b *base) noteException(name string) {
	tel := b.cfg.Telemetry
	if tel == nil {
		return
	}
	switch name {
	case "COMM_FAILURE":
		tel.CommFailureRaised(b.curReplica, b.curAddr)
	case "TRANSIENT":
		tel.TransientRaised(b.curReplica, b.curAddr)
	}
}

// record feeds the completed invocation into the steady or fail-over
// round-trip histogram. The first invocation is excluded from the steady
// histogram, mirroring Result.SteadyRTTs: it carries the initial naming
// resolution and connection establishment.
func (b *base) record(out *Outcome) {
	b.done++
	tel := b.cfg.Telemetry
	if tel == nil {
		return
	}
	switch {
	case out.Failover || out.Err != nil:
		tel.FailoverInvoke(out.RTT)
	case b.done > 1:
		tel.SteadyInvoke(out.RTT)
	}
}

func (b *base) Close() error {
	var err error
	if b.ref != nil {
		err = b.ref.Close()
	}
	if b.orb != nil {
		_ = b.orb.Close()
	}
	return err
}

// resolveAt fetches the naming listing and binds to entry idx (mod len).
// This is the visible "resolve spike" of the reactive schemes.
func (b *base) resolveAt(idx int) error {
	entries, err := b.names.List(b.cfg.Service + "/")
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("client: no replicas bound under %q", b.cfg.Service)
	}
	b.idx = ((idx % len(entries)) + len(entries)) % len(entries)
	if b.ref != nil {
		_ = b.ref.Close()
	}
	b.ref = b.orb.Object(entries[b.idx].IOR)
	b.bindTo(entries[b.idx])
	return nil
}

// call performs the actual time_of_day invocation on the current reference,
// carrying the client's at-most-once identity as operation arguments.
func (b *base) call(out *Outcome) error {
	return b.ref.Invoke("time_of_day", func(e *cdr.Encoder) {
		e.WriteString(b.cfg.ClientID)
		e.WriteULongLong(b.seq)
	}, func(d *cdr.Decoder) error {
		ts, err := d.ReadLongLong()
		if err != nil {
			return err
		}
		counter, err := d.ReadULongLong()
		if err != nil {
			return err
		}
		name, err := d.ReadString()
		if err != nil {
			return err
		}
		out.Timestamp = ts
		out.Counter = counter
		out.Replica = name
		return nil
	})
}

// classify maps an invocation error to the exception name the application
// observes.
func classify(err error) (string, bool) {
	var se *giop.SystemException
	if !errors.As(err, &se) {
		return "", false
	}
	switch se.RepoID {
	case giop.RepoCommFailure:
		return "COMM_FAILURE", true
	case giop.RepoTransient:
		return "TRANSIENT", true
	default:
		return se.RepoID, true
	}
}
