package netfault

import (
	"net"
	"sync"
	"time"

	"mead/internal/giop"
)

// stream mode: a wrapped connection is either a GIOP/MEAD frame stream
// (faults are frame-aware) or an opaque byte stream (the GCS wire; only
// windowed latency/segmentation apply). The first four bytes decide.
const (
	modeAuto = iota
	modeFrames
	modeOpaque
)

// conn interposes the injector on one transport connection. Outbound bytes
// are reassembled into frames so faults can target the triggering request
// frame precisely; inbound bytes are reassembled so reply frames can be
// torn, duplicated or delayed as armed by the request that provoked them.
type conn struct {
	inj   *Injector
	under net.Conn
	addr  string

	wmu sync.Mutex // serializes writers (frame reassembly state)
	rmu sync.Mutex // serializes readers

	mu        sync.Mutex // guards everything below
	mode      int
	dead      error // sticky: all further I/O fails with this
	closed    bool
	closedCh  chan struct{}
	closeOnce sync.Once

	// write side (guarded by mu; long operations run under wmu only)
	wbuf       []byte
	dropWrites bool      // blackhole/partition window active
	resetAt    time.Time // when a stalled connection finally dies

	// read side, armed by the request frame that provokes the reply
	readLat     time.Duration
	dupReply    bool
	cutReplyMid bool
	stalled     bool // blackhole/partition: reads hang until resetAt

	raw        []byte // inbound bytes not yet assembled into frames
	rbuf       []byte // processed bytes ready for the caller
	pendingErr error  // surfaced once rbuf drains
	tmp        []byte
}

func newConn(i *Injector, under net.Conn, addr string) *conn {
	return &conn{
		inj:      i,
		under:    under,
		addr:     addr,
		closedCh: make(chan struct{}),
		tmp:      make([]byte, 32*1024),
	}
}

// --- write path ---------------------------------------------------------

func (c *conn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()

	c.mu.Lock()
	if c.dead != nil {
		err := c.dead
		c.mu.Unlock()
		return 0, err
	}
	if c.dropWrites {
		if time.Now().Before(c.resetAt) {
			c.mu.Unlock()
			return len(p), nil // silently swallowed: half-open connection
		}
		c.dead = errReset("write")
		err := c.dead
		c.mu.Unlock()
		c.under.Close()
		return 0, err
	}
	c.wbuf = append(c.wbuf, p...)
	c.mu.Unlock()

	for {
		c.mu.Lock()
		if c.mode == modeOpaque {
			buf := c.wbuf
			c.wbuf = nil
			c.mu.Unlock()
			if len(buf) == 0 {
				return len(p), nil
			}
			if err := c.writeOpaque(buf); err != nil {
				return 0, err
			}
			return len(p), nil
		}
		n, ferr := giop.WireFrameLen(c.wbuf)
		if ferr != nil {
			if c.mode == modeAuto {
				c.mode = modeOpaque
				c.mu.Unlock()
				continue
			}
			// Mid-stream garbage from the layer above; pass it through
			// rather than wedge the connection.
			buf := c.wbuf
			c.wbuf = nil
			c.mu.Unlock()
			if err := c.writeAll(buf); err != nil {
				return 0, err
			}
			return len(p), nil
		}
		if n == 0 {
			c.mu.Unlock()
			return len(p), nil // partial frame: wait for more bytes
		}
		c.mode = modeFrames
		frame := append([]byte(nil), c.wbuf[:n]...)
		rest := copy(c.wbuf, c.wbuf[n:])
		c.wbuf = c.wbuf[:rest]
		c.mu.Unlock()

		if err := c.writeFrame(frame); err != nil {
			return 0, err
		}
	}
}

// writeFrame applies the plan to one complete outbound frame. Only GIOP
// Request frames advance the injector's request clock and trigger events;
// replies, MEAD control frames and GCS traffic pass through verbatim.
func (c *conn) writeFrame(frame []byte) error {
	var act action
	if isGIOPType(frame, giop.MsgRequest) {
		act = c.inj.takeRequest(c.addr)
	}

	if act.blackhole || act.partition {
		c.mu.Lock()
		c.dropWrites = true
		c.stalled = true
		c.resetAt = time.Now().Add(act.hold)
		at := c.resetAt
		c.mu.Unlock()
		// Wake any reader blocked in under.Read so it can start stalling
		// deterministically instead of hanging on a dead stream.
		c.under.SetReadDeadline(at)
		return nil // the triggering frame vanishes into the hole
	}

	if act.latency > 0 {
		c.sleep(act.latency)
	}

	if act.cutRequestMid {
		half := frame[:len(frame)/2]
		c.under.Write(half) //nolint:errcheck // the reset supersedes any write error
		err := errReset("write")
		c.mu.Lock()
		c.dead = err
		c.mu.Unlock()
		c.under.Close()
		return err
	}

	// Arm the read side before the request leaves, so a fast reply cannot
	// race past the armed fault.
	if act.cutReplyMid || act.dupReply || act.latency > 0 {
		c.mu.Lock()
		c.cutReplyMid = c.cutReplyMid || act.cutReplyMid
		c.dupReply = c.dupReply || act.dupReply
		c.readLat += act.latency
		c.mu.Unlock()
	}

	var err error
	if act.segment > 0 {
		err = c.writeSegmented(frame, act.segment, act.segmentPace)
	} else {
		err = c.writeAll(frame)
	}
	if err != nil {
		return err
	}

	if act.cutAfter {
		// The request made it out whole; the connection dies before the
		// reply can return (COMPLETED_MAYBE).
		c.under.Close()
	}
	return nil
}

// writeOpaque applies the currently active windowed faults to a non-GIOP
// byte stream (the GCS wire protocol).
func (c *conn) writeOpaque(buf []byte) error {
	act := c.inj.passiveActions(c.addr)
	if act.latency > 0 {
		c.sleep(act.latency)
	}
	if act.segment > 0 {
		return c.writeSegmented(buf, act.segment, act.segmentPace)
	}
	return c.writeAll(buf)
}

func (c *conn) writeAll(buf []byte) error {
	_, err := c.under.Write(buf)
	return err
}

func (c *conn) writeSegmented(buf []byte, segment int, pace time.Duration) error {
	for len(buf) > 0 {
		n := segment
		if n > len(buf) {
			n = len(buf)
		}
		if _, err := c.under.Write(buf[:n]); err != nil {
			return err
		}
		buf = buf[n:]
		if pace > 0 && len(buf) > 0 {
			c.sleep(pace)
		}
	}
	return nil
}

// --- read path ----------------------------------------------------------

func (c *conn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()

	for {
		c.mu.Lock()
		if len(c.rbuf) > 0 {
			n := copy(p, c.rbuf)
			rest := copy(c.rbuf, c.rbuf[n:])
			c.rbuf = c.rbuf[:rest]
			c.mu.Unlock()
			return n, nil
		}
		if c.pendingErr != nil {
			err := c.pendingErr
			c.dead = err
			c.mu.Unlock()
			return 0, err
		}
		if c.dead != nil {
			err := c.dead
			c.mu.Unlock()
			return 0, err
		}
		stalled, resetAt := c.stalled, c.resetAt
		c.mu.Unlock()

		if stalled {
			if d := time.Until(resetAt); d > 0 {
				select {
				case <-time.After(d):
				case <-c.closedCh:
					return 0, net.ErrClosed
				}
			}
			err := errReset("read")
			c.mu.Lock()
			c.dead = err
			c.mu.Unlock()
			c.under.Close()
			return 0, err
		}

		n, err := c.under.Read(c.tmp)
		if n > 0 {
			if ferr := c.ingest(c.tmp[:n]); ferr != nil {
				// Fault-induced reset mid-ingest: deliver what was
				// processed, then surface it.
				c.mu.Lock()
				c.pendingErr = ferr
				c.mu.Unlock()
			}
		}
		if err != nil {
			c.mu.Lock()
			if c.stalled {
				c.mu.Unlock()
				continue // the arming deadline fired; stall branch takes over
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				// A caller-set deadline (e.g. the GCS handshake) expired:
				// surface it without poisoning the connection.
				if len(c.rbuf) > 0 {
					c.mu.Unlock()
					continue
				}
				c.mu.Unlock()
				return 0, err
			}
			// Real stream end: flush any torn trailing bytes first so the
			// layer above sees exactly what hit the wire.
			if len(c.raw) > 0 {
				c.rbuf = append(c.rbuf, c.raw...)
				c.raw = nil
			}
			c.pendingErr = err
			c.mu.Unlock()
		}
	}
}

// ingest folds freshly read bytes into the inbound reassembly buffer and
// applies armed read-side faults frame by frame. A non-nil return is a
// fault-fabricated reset that must surface after rbuf drains.
func (c *conn) ingest(b []byte) error {
	c.mu.Lock()
	c.raw = append(c.raw, b...)

	if c.mode == modeAuto && len(c.raw) >= 4 {
		switch string(c.raw[:4]) {
		case giop.Magic, giop.MeadMagic:
			c.mode = modeFrames
		default:
			c.mode = modeOpaque
		}
	}
	if c.mode != modeFrames {
		// Opaque (or still undecided short) stream: pass bytes straight
		// through. Windowed latency was already charged on the write side.
		c.rbuf = append(c.rbuf, c.raw...)
		c.raw = c.raw[:0]
		c.mu.Unlock()
		return nil
	}

	for {
		n, ferr := giop.WireFrameLen(c.raw)
		if ferr != nil {
			// Desynced inbound stream; hand the bytes up unmodified.
			c.rbuf = append(c.rbuf, c.raw...)
			c.raw = c.raw[:0]
			c.mu.Unlock()
			return nil
		}
		if n == 0 {
			c.mu.Unlock()
			return nil
		}
		frame := append([]byte(nil), c.raw[:n]...)
		rest := copy(c.raw, c.raw[n:])
		c.raw = c.raw[:rest]

		lat := c.readLat
		c.readLat = 0
		if lat > 0 {
			c.mu.Unlock()
			c.sleep(lat)
			c.mu.Lock()
		}

		if isGIOPType(frame, giop.MsgReply) {
			if c.cutReplyMid {
				c.cutReplyMid = false
				c.rbuf = append(c.rbuf, frame[:len(frame)/2]...)
				c.raw = c.raw[:0] // everything after the tear is lost
				c.mu.Unlock()
				c.under.Close()
				return errReset("read")
			}
			if c.dupReply {
				c.dupReply = false
				c.rbuf = append(c.rbuf, frame...)
			}
		}
		c.rbuf = append(c.rbuf, frame...)
	}
}

// --- plumbing -----------------------------------------------------------

func (c *conn) Close() error {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		close(c.closedCh)
	})
	return c.under.Close()
}

// sleep waits for d unless the connection is closed first.
func (c *conn) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.closedCh:
	}
}

func (c *conn) LocalAddr() net.Addr                { return c.under.LocalAddr() }
func (c *conn) RemoteAddr() net.Addr               { return c.under.RemoteAddr() }
func (c *conn) SetDeadline(t time.Time) error      { return c.under.SetDeadline(t) }
func (c *conn) SetReadDeadline(t time.Time) error  { return c.under.SetReadDeadline(t) }
func (c *conn) SetWriteDeadline(t time.Time) error { return c.under.SetWriteDeadline(t) }

// isGIOPType reports whether the frame is a GIOP message of the given type
// (MEAD control frames and opaque bytes are not).
func isGIOPType(frame []byte, typ giop.MsgType) bool {
	if len(frame) < giop.HeaderLen || string(frame[:4]) != giop.Magic {
		return false
	}
	h, err := giop.ParseHeader(frame[:giop.HeaderLen])
	return err == nil && h.Type == typ
}
