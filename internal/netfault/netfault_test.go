package netfault_test

import (
	"errors"
	"testing"
	"time"

	"mead/internal/cdr"
	"mead/internal/giop"
	"mead/internal/netfault"
	"mead/internal/orb"
)

// echoRig is a plain ORB server plus a client whose transport runs through
// a netfault injector — the minimal wire to exercise each fault kind.
type echoRig struct {
	t   *testing.T
	srv *orb.ServerORB
	cli *orb.ClientORB
	ref *orb.ObjectRef
	inj *netfault.Injector
}

func newEchoRig(t *testing.T, seed int64, plan netfault.Plan) *echoRig {
	t.Helper()
	inj, err := netfault.NewInjector(seed, plan)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	srv := orb.NewServer()
	srv.Register([]byte("echo"), orb.ServantFunc(func(op string, args *cdr.Decoder, result *cdr.Encoder) error {
		s, err := args.ReadString()
		if err != nil {
			return err
		}
		result.WriteString(s)
		return nil
	}))
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	ior, err := srv.IORFor("IDL:Echo:1.0", []byte("echo"))
	if err != nil {
		t.Fatalf("IORFor: %v", err)
	}
	cli := orb.NewClient(orb.WithDialer(inj.DialTimeout), orb.WithDialTimeout(2*time.Second))
	ref := cli.Object(ior)
	t.Cleanup(func() { _ = ref.Close(); _ = cli.Close() })
	return &echoRig{t: t, srv: srv, cli: cli, ref: ref, inj: inj}
}

// invoke performs one echo round trip, returning the invocation error.
func (r *echoRig) invoke() error {
	return r.ref.Invoke("echo",
		func(e *cdr.Encoder) { e.WriteString("ping") },
		func(d *cdr.Decoder) error {
			s, err := d.ReadString()
			if err != nil {
				return err
			}
			if s != "ping" {
				r.t.Errorf("echoed %q, want %q", s, "ping")
			}
			return nil
		})
}

// drive runs n invocations and reports successes and the CORBA exceptions
// observed, by repository id.
func (r *echoRig) drive(n int) (successes int, excepts map[string]int) {
	excepts = make(map[string]int)
	for i := 0; i < n; i++ {
		err := r.invoke()
		if err == nil {
			successes++
			continue
		}
		var se *giop.SystemException
		if errors.As(err, &se) {
			excepts[se.RepoID]++
		} else {
			r.t.Fatalf("invocation %d: non-CORBA error %v", i, err)
		}
	}
	return successes, excepts
}

func TestCleanWirePassthrough(t *testing.T) {
	rig := newEchoRig(t, 1, nil)
	succ, excepts := rig.drive(16)
	if succ != 16 || len(excepts) != 0 {
		t.Fatalf("clean wire: %d/16 succeeded, exceptions %v", succ, excepts)
	}
	if got := rig.inj.Requests(); got != 16 {
		t.Fatalf("request clock = %d, want 16", got)
	}
	if got := rig.srv.Served(); got != 16 {
		t.Fatalf("served = %d, want 16", got)
	}
}

func TestCutRequestMidFrame(t *testing.T) {
	rig := newEchoRig(t, 1, netfault.Plan{
		{Kind: netfault.CutRequestMidFrame, At: 2},
	})
	succ, excepts := rig.drive(4)
	if succ != 3 {
		t.Fatalf("successes = %d, want 3 (exceptions %v)", succ, excepts)
	}
	if excepts[giop.RepoCommFailure] != 1 {
		t.Fatalf("COMM_FAILURE count = %d, want 1 (%v)", excepts[giop.RepoCommFailure], excepts)
	}
	if fired := rig.inj.Fired("cut-request-mid-frame"); fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	// The torn request must never execute: exactly the 3 successes ran.
	if got := rig.srv.Served(); got != 3 {
		t.Fatalf("served = %d, want 3 (torn request executed?)", got)
	}
}

func TestCutAfterRequest(t *testing.T) {
	rig := newEchoRig(t, 1, netfault.Plan{
		{Kind: netfault.CutAfterRequest, At: 2},
	})
	succ, excepts := rig.drive(4)
	if succ != 3 || excepts[giop.RepoCommFailure] != 1 {
		t.Fatalf("successes = %d, exceptions = %v; want 3 and one COMM_FAILURE", succ, excepts)
	}
	// The request whose reply was lost DID execute (COMPLETED_MAYBE):
	// served = successes + the one fired cut.
	want := uint64(3 + rig.inj.Fired("cut-after-request"))
	if got := rig.srv.Served(); got != want {
		t.Fatalf("served = %d, want %d", got, want)
	}
}

func TestCutReplyMidFrame(t *testing.T) {
	rig := newEchoRig(t, 1, netfault.Plan{
		{Kind: netfault.CutReplyMidFrame, At: 1},
	})
	succ, excepts := rig.drive(4)
	if succ != 3 || excepts[giop.RepoCommFailure] != 1 {
		t.Fatalf("successes = %d, exceptions = %v; want 3 and one COMM_FAILURE", succ, excepts)
	}
	if got := rig.srv.Served(); got != 4 {
		t.Fatalf("served = %d, want 4 (torn-reply request executed)", got)
	}
}

func TestDuplicateReplyIsDiscarded(t *testing.T) {
	rig := newEchoRig(t, 1, netfault.Plan{
		{Kind: netfault.DuplicateReply, At: 1},
	})
	// The duplicated reply sits in the stream ahead of later replies; the
	// ORB must skip the stale request id instead of erroring.
	succ, excepts := rig.drive(6)
	if succ != 6 || len(excepts) != 0 {
		t.Fatalf("successes = %d, exceptions = %v; want 6 clean", succ, excepts)
	}
	if fired := rig.inj.Fired("duplicate-reply"); fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if got := rig.srv.Served(); got != 6 {
		t.Fatalf("served = %d, want 6 (duplication must not re-execute)", got)
	}
}

func TestShortWritesReassemble(t *testing.T) {
	rig := newEchoRig(t, 1, netfault.Plan{
		{Kind: netfault.ShortWrites, At: 0, For: -1, SegmentBytes: 3},
	})
	succ, excepts := rig.drive(8)
	if succ != 8 || len(excepts) != 0 {
		t.Fatalf("successes = %d, exceptions = %v; want 8 clean", succ, excepts)
	}
}

func TestLatencyDelaysInvocation(t *testing.T) {
	const lat = 30 * time.Millisecond
	rig := newEchoRig(t, 1, netfault.Plan{
		{Kind: netfault.Latency, At: 1, Latency: lat},
	})
	if err := rig.invoke(); err != nil {
		t.Fatalf("invocation 0: %v", err)
	}
	start := time.Now()
	if err := rig.invoke(); err != nil {
		t.Fatalf("invocation 1: %v", err)
	}
	if rtt := time.Since(start); rtt < lat {
		t.Fatalf("delayed invocation RTT = %v, want >= %v", rtt, lat)
	}
	if err := rig.invoke(); err != nil {
		t.Fatalf("invocation 2: %v", err)
	}
}

func TestBlackholeStallsThenResets(t *testing.T) {
	const hold = 40 * time.Millisecond
	rig := newEchoRig(t, 1, netfault.Plan{
		{Kind: netfault.Blackhole, At: 1, Hold: hold},
	})
	if err := rig.invoke(); err != nil {
		t.Fatalf("invocation 0: %v", err)
	}
	start := time.Now()
	err := rig.invoke()
	elapsed := time.Since(start)
	var se *giop.SystemException
	if !errors.As(err, &se) || se.RepoID != giop.RepoCommFailure {
		t.Fatalf("blackholed invocation: err = %v, want COMM_FAILURE", err)
	}
	if elapsed < hold-5*time.Millisecond {
		t.Fatalf("blackholed invocation failed after %v, want ~%v stall (half-open, not fail-fast)", elapsed, hold)
	}
	// The swallowed request must never have reached the server.
	if got := rig.srv.Served(); got != 1 {
		t.Fatalf("served = %d, want 1", got)
	}
	if err := rig.invoke(); err != nil {
		t.Fatalf("post-blackhole invocation: %v", err)
	}
}

func TestPartitionRefusesDialsUntilHeal(t *testing.T) {
	const hold = 20 * time.Millisecond
	const heal = 250 * time.Millisecond
	rig := newEchoRig(t, 1, netfault.Plan{
		{Kind: netfault.Partition, At: 1, Hold: hold, Heal: heal},
	})
	if err := rig.invoke(); err != nil {
		t.Fatalf("invocation 0: %v", err)
	}
	start := time.Now()
	err := rig.invoke()
	var se *giop.SystemException
	if !errors.As(err, &se) || se.RepoID != giop.RepoCommFailure {
		t.Fatalf("partitioned invocation: err = %v, want COMM_FAILURE", err)
	}
	// Inside the heal window the redial is refused: TRANSIENT, the stale
	// cached-reference signature.
	err = rig.invoke()
	if time.Since(start) < heal {
		if !errors.As(err, &se) || se.RepoID != giop.RepoTransient {
			t.Fatalf("dial during partition: err = %v, want TRANSIENT", err)
		}
	}
	time.Sleep(heal)
	if err := rig.invoke(); err != nil {
		t.Fatalf("post-heal invocation: %v", err)
	}
}

func TestPlanValidation(t *testing.T) {
	bad := []netfault.Plan{
		{{Kind: 0, At: 0}},
		{{Kind: netfault.Latency, At: -1, Latency: time.Millisecond}},
		{{Kind: netfault.ShortWrites, At: 0}},
		{{Kind: netfault.Latency, At: 0}},
	}
	for i, p := range bad {
		if _, err := netfault.NewInjector(1, p); err == nil {
			t.Errorf("plan %d: validation passed, want error", i)
		}
	}
	if err := (netfault.Plan{}).Validate(); err != nil {
		t.Errorf("empty plan: %v", err)
	}
}
