// Package netfault is a deterministic, seedable wire-fault injection layer
// for the MEAD transport stack. It wraps the TCP connections *under* the
// interceptor boundary (the same layer the paper's LD_PRELOAD interceptor
// owns), so every recovery scheme — reactive or proactive — experiences
// faults exactly where a real deployment would: on the wire, beneath an
// unmodified ORB.
//
// Faults are scheduled by a Plan: a list of named Events keyed on the
// global count of outbound GIOP Request frames (the invocation count), so a
// single seed plus a plan reproduces the identical fault sequence on every
// run. The injectable conditions cover the messy failure modes that
// message-logging and checkpointing systems treat as first class: abrupt
// resets mid-frame and between frames, read/write latency with seeded
// jitter, short writes that split a GIOP frame across TCP segments, silent
// half-open blackholes, duplicated reply frames, and one-way partitions of
// a host:port pair.
//
// The injector hands out wrapped connections through DialTimeout (matching
// the dialer signature of orb.WithDialer, ftmgr.ClientConfig.Dial and
// gcs.DialWith) or Wrap (for accepted, server-side connections). Non-GIOP
// streams (the GCS wire protocol) are handled in an opaque byte mode where
// latency and segmentation still apply.
package netfault

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"syscall"
	"time"
)

// FaultKind identifies one injectable wire condition.
type FaultKind int

// Fault kinds.
const (
	// CutRequestMidFrame writes half of the triggering request frame,
	// then resets the connection: the peer discards the truncated frame,
	// so the request is never executed.
	CutRequestMidFrame FaultKind = iota + 1
	// CutAfterRequest writes the triggering request frame in full, then
	// resets the connection before the reply can arrive: the request
	// executes but its reply is lost (CORBA's COMPLETED_MAYBE case).
	CutAfterRequest
	// CutReplyMidFrame delivers only the first half of the next inbound
	// GIOP Reply frame, then resets: the request executed, the client saw
	// a torn reply.
	CutReplyMidFrame
	// Latency delays every affected request frame (and the next inbound
	// frame it provokes) by Event.Latency plus a seeded uniform jitter in
	// [0, Event.Jitter). Windowed.
	Latency
	// ShortWrites splits every affected outbound frame into
	// Event.SegmentBytes-sized Write calls, exercising the peer's frame
	// reassembly. Windowed.
	ShortWrites
	// Blackhole silently swallows the triggering request and everything
	// after it — writes succeed but carry nothing, reads stall — for
	// Event.Hold, after which the connection resets (the half-open
	// connection finally dying, as a TCP retransmission timeout would).
	Blackhole
	// DuplicateReply delivers the next inbound GIOP Reply frame twice.
	DuplicateReply
	// Partition cuts the client->server direction of the triggering
	// connection's host:port for Event.Heal: new dials to that address
	// are refused, the triggering connection swallows writes and resets
	// after Event.Hold. The reverse direction is unaffected (one-way).
	Partition
)

func (k FaultKind) String() string {
	switch k {
	case CutRequestMidFrame:
		return "cut-request-mid-frame"
	case CutAfterRequest:
		return "cut-after-request"
	case CutReplyMidFrame:
		return "cut-reply-mid-frame"
	case Latency:
		return "latency"
	case ShortWrites:
		return "short-writes"
	case Blackhole:
		return "blackhole"
	case DuplicateReply:
		return "duplicate-reply"
	case Partition:
		return "partition"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// windowed reports whether the kind stays active over a span of requests
// (true) or fires exactly once at Event.At (false).
func (k FaultKind) windowed() bool { return k == Latency || k == ShortWrites }

// Event schedules one fault. Events are keyed on the injector's global
// outbound GIOP Request count: the first request through any injected
// connection is request 0.
type Event struct {
	// Name labels the event in Fired accounting (defaults to Kind.String).
	Name string
	// Kind selects the fault.
	Kind FaultKind
	// At is the 0-based global request ordinal that triggers the event.
	At int
	// For widens windowed kinds (Latency, ShortWrites) to the requests
	// [At, At+For); 0 means width 1, a negative For means "active
	// forever" (used for opaque, non-request streams such as the GCS
	// wire, which never advance the request counter).
	For int
	// Addr restricts the event to connections whose dial target is this
	// host:port; empty matches any connection.
	Addr string
	// Latency and Jitter parameterize Latency events (and the pacing of
	// ShortWrites segments, when set).
	Latency time.Duration
	Jitter  time.Duration
	// SegmentBytes is the ShortWrites segment size.
	SegmentBytes int
	// Hold is how long a Blackhole or Partition connection stalls before
	// it resets (default 20ms).
	Hold time.Duration
	// Heal is how long a Partition refuses new dials to the address,
	// measured from the trigger (default: Hold, i.e. the partition heals
	// exactly when the stalled connection dies).
	Heal time.Duration
}

func (e Event) name() string {
	if e.Name != "" {
		return e.Name
	}
	return e.Kind.String()
}

// matches reports whether the event applies to request ordinal req on a
// connection to addr.
func (e Event) matches(req int, addr string) bool {
	if e.Addr != "" && e.Addr != addr {
		return false
	}
	if e.Kind.windowed() {
		if e.For < 0 {
			return req >= e.At
		}
		width := e.For
		if width == 0 {
			width = 1
		}
		return req >= e.At && req < e.At+width
	}
	return req == e.At
}

// Plan is a schedule of fault events. The zero value injects nothing.
type Plan []Event

// Validate rejects malformed plans before a run starts.
func (p Plan) Validate() error {
	for i, e := range p {
		if e.Kind < CutRequestMidFrame || e.Kind > Partition {
			return fmt.Errorf("netfault: event %d (%s): unknown kind %d", i, e.name(), int(e.Kind))
		}
		if e.At < 0 {
			return fmt.Errorf("netfault: event %d (%s): negative At", i, e.name())
		}
		if e.Kind == ShortWrites && e.SegmentBytes <= 0 {
			return fmt.Errorf("netfault: event %d (%s): ShortWrites needs SegmentBytes", i, e.name())
		}
		if e.Kind == Latency && e.Latency <= 0 && e.Jitter <= 0 {
			return fmt.Errorf("netfault: event %d (%s): Latency needs Latency or Jitter", i, e.name())
		}
	}
	return nil
}

// defaultHold bounds how long blackholed/partitioned connections stall
// before dying; the analogue of a (greatly compressed) TCP retransmission
// timeout.
const defaultHold = 20 * time.Millisecond

// DialFunc is the transport dial signature shared by orb.WithDialer,
// ftmgr.ClientConfig.Dial and gcs.DialWith.
type DialFunc func(network, addr string, timeout time.Duration) (net.Conn, error)

// Injector executes a Plan over the connections it wraps. All randomness
// (latency jitter) comes from a single seeded PRNG, and all triggers are
// keyed on the deterministic request count, so two runs with the same seed
// and plan inject the identical fault sequence.
type Injector struct {
	base DialFunc

	mu         sync.Mutex
	plan       Plan
	rng        *rand.Rand
	requests   int
	fired      map[string]int
	oneShot    map[int]bool         // plan index -> already fired
	partitions map[string]time.Time // addr -> dials refused until
}

// NewInjector builds an injector for the plan, seeded for reproducible
// jitter. The plan must Validate.
func NewInjector(seed int64, plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		base:       net.DialTimeout,
		plan:       plan,
		rng:        rand.New(rand.NewSource(seed)),
		fired:      make(map[string]int),
		oneShot:    make(map[int]bool),
		partitions: make(map[string]time.Time),
	}, nil
}

// SetBaseDialer replaces the underlying dialer (tests; default
// net.DialTimeout). Must be called before any connection is made.
func (i *Injector) SetBaseDialer(d DialFunc) { i.base = d }

// DialTimeout dials addr and wraps the connection for injection; it
// matches DialFunc, so it plugs into orb.WithDialer, ftmgr redirection
// dials and gcs.DialWith directly. Dials to a partitioned address are
// refused with ECONNREFUSED until the partition heals.
func (i *Injector) DialTimeout(network, addr string, timeout time.Duration) (net.Conn, error) {
	i.mu.Lock()
	until, cut := i.partitions[addr]
	i.mu.Unlock()
	if cut && time.Now().Before(until) {
		return nil, &net.OpError{Op: "dial", Net: network, Addr: nil,
			Err: syscall.ECONNREFUSED}
	}
	c, err := i.base(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	return i.Wrap(c, addr), nil
}

// Wrap interposes the injector on an existing connection (an accepted
// server-side conn, or a transport dialed elsewhere). addr is the peer
// host:port used for Event.Addr matching.
func (i *Injector) Wrap(c net.Conn, addr string) net.Conn {
	return newConn(i, c, addr)
}

// Requests returns how many outbound GIOP Request frames the injector has
// observed (the global event clock).
func (i *Injector) Requests() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.requests
}

// Fired returns how many times the named event applied to a frame.
func (i *Injector) Fired(name string) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fired[name]
}

// FiredAll snapshots the per-event application counts.
func (i *Injector) FiredAll() map[string]int {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[string]int, len(i.fired))
	for k, v := range i.fired {
		out[k] = v
	}
	return out
}

// FiredTotal sums Fired over the given event names (all events when none
// are named).
func (i *Injector) FiredTotal(names ...string) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	if len(names) == 0 {
		total := 0
		for _, v := range i.fired {
			total += v
		}
		return total
	}
	total := 0
	for _, n := range names {
		total += i.fired[n]
	}
	return total
}

// action is the fault set resolved for one outbound request frame.
type action struct {
	latency       time.Duration
	segment       int
	segmentPace   time.Duration
	cutRequestMid bool
	cutAfter      bool
	cutReplyMid   bool
	dupReply      bool
	blackhole     bool
	partition     bool
	hold          time.Duration
	heal          time.Duration
}

// takeRequest consumes one tick of the request clock for a connection to
// addr and resolves the actions to apply to that request.
func (i *Injector) takeRequest(addr string) action {
	i.mu.Lock()
	defer i.mu.Unlock()
	req := i.requests
	i.requests++
	var a action
	for idx, e := range i.plan {
		if !e.matches(req, addr) {
			continue
		}
		if !e.Kind.windowed() {
			if i.oneShot[idx] {
				continue
			}
			i.oneShot[idx] = true
		}
		i.fired[e.name()]++
		i.applyLocked(&a, e, addr)
	}
	return a
}

// passiveActions resolves the windowed faults currently active for an
// opaque (non-GIOP) stream to addr, without advancing the request clock.
func (i *Injector) passiveActions(addr string) action {
	i.mu.Lock()
	defer i.mu.Unlock()
	var a action
	for _, e := range i.plan {
		if !e.Kind.windowed() || !e.matches(i.requests, addr) {
			continue
		}
		i.fired[e.name()]++
		i.applyLocked(&a, e, addr)
	}
	return a
}

// applyLocked folds event e into the action. Callers hold i.mu.
func (i *Injector) applyLocked(a *action, e Event, addr string) {
	switch e.Kind {
	case Latency:
		d := e.Latency
		if e.Jitter > 0 {
			d += time.Duration(i.rng.Int63n(int64(e.Jitter)))
		}
		a.latency += d
	case ShortWrites:
		a.segment = e.SegmentBytes
		a.segmentPace = e.Latency
	case CutRequestMidFrame:
		a.cutRequestMid = true
	case CutAfterRequest:
		a.cutAfter = true
	case CutReplyMidFrame:
		a.cutReplyMid = true
	case DuplicateReply:
		a.dupReply = true
	case Blackhole:
		a.blackhole = true
		a.hold = holdOrDefault(e.Hold)
	case Partition:
		a.partition = true
		a.hold = holdOrDefault(e.Hold)
		a.heal = e.Heal
		if a.heal <= 0 {
			a.heal = a.hold
		}
		i.partitions[addr] = time.Now().Add(a.heal)
	}
}

func holdOrDefault(d time.Duration) time.Duration {
	if d <= 0 {
		return defaultHold
	}
	return d
}

// errReset fabricates the error signature of an abrupt peer reset, which
// interceptor.Conn (via isStreamEnd) and the ORB treat exactly like a
// crashed replica's RST.
func errReset(op string) error {
	return &net.OpError{Op: op, Net: "tcp", Err: syscall.ECONNRESET}
}
