package netfault

import (
	"testing"
	"time"
)

// TestSeededJitterIsDeterministic drives the request clock of two injectors
// built from the same seed and plan and asserts the jittered latency draws
// are identical — the property that makes chaos runs reproducible from a
// single seed.
func TestSeededJitterIsDeterministic(t *testing.T) {
	plan := Plan{
		{Kind: Latency, At: 0, For: -1, Latency: time.Millisecond, Jitter: 5 * time.Millisecond},
		{Kind: DuplicateReply, At: 7},
	}
	mk := func() []time.Duration {
		inj, err := NewInjector(42, plan)
		if err != nil {
			t.Fatalf("NewInjector: %v", err)
		}
		var draws []time.Duration
		for i := 0; i < 32; i++ {
			draws = append(draws, inj.takeRequest("host:1").latency)
		}
		return draws
	}
	a, b := mk(), mk()
	varied := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %v vs %v — same seed diverged", i, a[i], b[i])
		}
		if a[i] != a[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter draws never varied; PRNG not applied")
	}
}

// TestDifferentSeedsDiverge guards against the PRNG being ignored.
func TestDifferentSeedsDiverge(t *testing.T) {
	plan := Plan{{Kind: Latency, At: 0, For: -1, Jitter: 10 * time.Millisecond}}
	draw := func(seed int64) []time.Duration {
		inj, err := NewInjector(seed, plan)
		if err != nil {
			t.Fatalf("NewInjector: %v", err)
		}
		var out []time.Duration
		for i := 0; i < 16; i++ {
			out = append(out, inj.takeRequest("h:1").latency)
		}
		return out
	}
	a, b := draw(1), draw(2)
	for i := range a {
		if a[i] != b[i] {
			return
		}
	}
	t.Fatal("different seeds produced identical jitter series")
}

// TestEventWindows pins the At/For matching semantics.
func TestEventWindows(t *testing.T) {
	inj, err := NewInjector(1, Plan{
		{Name: "w", Kind: ShortWrites, At: 2, For: 3, SegmentBytes: 4},
		{Name: "o", Kind: CutAfterRequest, At: 4},
		{Name: "addr", Kind: CutAfterRequest, At: 5, Addr: "other:9"},
	})
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	for i := 0; i < 8; i++ {
		a := inj.takeRequest("host:1")
		wantSeg := i >= 2 && i < 5
		if (a.segment != 0) != wantSeg {
			t.Errorf("request %d: segment active = %v, want %v", i, a.segment != 0, wantSeg)
		}
		if a.cutAfter != (i == 4) {
			t.Errorf("request %d: cutAfter = %v, want %v", i, a.cutAfter, i == 4)
		}
	}
	if got := inj.Fired("w"); got != 3 {
		t.Errorf("windowed fired = %d, want 3", got)
	}
	if got := inj.Fired("o"); got != 1 {
		t.Errorf("one-shot fired = %d, want 1", got)
	}
	if got := inj.Fired("addr"); got != 0 {
		t.Errorf("addr-restricted fired = %d, want 0", got)
	}
}
