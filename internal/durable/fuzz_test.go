package durable

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzLogRecordDecode hammers the op-record decoder with hostile input. The
// decoder must never panic, must only ever return data that re-encodes to
// the exact bytes it consumed (no lossy acceptance), and must classify all
// damage as torn or corrupt.
func FuzzLogRecordDecode(f *testing.F) {
	seed := func(op Op) {
		rec := make([]byte, opRecordSize(op))
		encodeOpRecord(rec, op)
		f.Add(rec)
		f.Add(rec[:len(rec)-3]) // torn tail
		flip := append([]byte(nil), rec...)
		flip[len(flip)-1] ^= 0xff
		f.Add(flip) // CRC damage
	}
	seed(Op{OpNumber: 1, Counter: 7})
	seed(Op{OpNumber: 2, Counter: 8, Client: "client-1", ClientSeq: 3})
	seed(Op{OpNumber: 1 << 62, Counter: 1<<64 - 1, Client: "xyz", ClientSeq: 1 << 33})
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, b []byte) {
		op, n, err := DecodeLogRecord(b)
		if err != nil {
			if !errors.Is(err, ErrTornRecord) && !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		re := make([]byte, opRecordSize(op))
		if encodeOpRecord(re, op) != n || !bytes.Equal(re, b[:n]) {
			t.Fatalf("decode/encode not bijective for %+v", op)
		}
	})
}

// FuzzCheckpointDecode hammers the snapshot decoder (the checkpoint file's
// payload and the recovery handshake's wire body). It must never panic and
// must only accept payloads it can reproduce byte-for-byte.
func FuzzCheckpointDecode(f *testing.F) {
	f.Add(EncodeSnapshot(Snapshot{}))
	f.Add(EncodeSnapshot(Snapshot{OpNumber: 42, Counter: 420}))
	f.Add(EncodeSnapshot(Snapshot{OpNumber: 7, Counter: 70, Dedup: []DedupEntry{
		{Client: "a", Seq: 1, Counter: 10},
		{Client: "client-long-name", Seq: 9, Counter: 70},
	}}))
	f.Add([]byte{})
	f.Add([]byte{version, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeSnapshot(b)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeSnapshot(s), b) {
			t.Fatalf("decode/encode not bijective for %+v", s)
		}
	})
}
