package durable

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"mead/internal/giop"
)

// Config parameterizes one replica's durable store.
type Config struct {
	// Dir is the replica's state directory (created if absent). Each
	// replica must own its directory exclusively.
	Dir string
	// Replica names the owning replica (fault-plan matching, log lines).
	Replica string
	// Faults, when non-nil, injects deterministic I/O faults (tests).
	Faults *FaultInjector
	// QueueDepth bounds the append queue (default 4096); a full queue
	// blocks the appender, trading invoke latency for durability.
	QueueDepth int
	// Logf, if set, receives progress lines.
	Logf func(format string, args ...interface{})
}

// RecoverResult describes what Open reconstructed from disk.
type RecoverResult struct {
	// Snap is the recovered state: checkpoint plus replayed log suffix.
	Snap Snapshot
	// CheckpointLoaded reports that a valid checkpoint file was read.
	CheckpointLoaded bool
	// CheckpointDamaged reports that a checkpoint file existed but failed
	// validation and was ignored (the log and the live group must fill in).
	CheckpointDamaged bool
	// Replayed is how many log records were applied on top of the
	// checkpoint.
	Replayed int
	// Truncated reports that a torn or corrupt log tail was detected and
	// cut off — those records are never silently replayed.
	Truncated bool
	// TruncatedBytes is how many trailing bytes the truncation dropped.
	TruncatedBytes int
}

// wreq is one writer-queue entry: exactly one field set.
type wreq struct {
	buf  *giop.MsgBuf  // framed op record to append
	snap *Snapshot     // checkpoint request
	done chan struct{} // flush barrier
}

// Store is one replica's durable state: the append-only op log plus the
// incremental checkpoint file, maintained by a single writer goroutine fed
// over a buffered channel so Append never does I/O on the caller's
// goroutine and allocates nothing in steady state.
//
// Ordering contract: the caller appends ops in execution order and calls
// Checkpoint(snap) only after every op covered by snap (OpNumber <=
// snap.OpNumber) has been appended. Queue order then guarantees that when
// the writer processes the checkpoint, the log holds exactly the covered
// prefix, so truncating it to empty is the log-suffix truncation.
type Store struct {
	cfg Config

	ch chan wreq
	wg sync.WaitGroup

	mu     sync.RWMutex // guards closed vs. in-flight sends
	closed bool

	logBytes atomic.Int64 // bytes appended since the last checkpoint

	// Writer-goroutine state (no locking needed).
	f       *os.File
	w       *bufio.Writer
	wedged  bool // a TornWrite fired: drop everything from here on
	wErr    error
	appends int64
	dropped int64
}

func (s *Store) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Store) logPath() string  { return filepath.Join(s.cfg.Dir, "oplog") }
func (s *Store) ckptPath() string { return filepath.Join(s.cfg.Dir, "checkpoint") }

// Open loads the replica's durable state — checkpoint, then the log suffix,
// truncating a torn or corrupt tail — and returns a Store ready to append.
// Damaged state is recovered past, never fatal: a missing or invalid
// checkpoint falls back to log-only replay, and an empty directory yields
// zero state (the recovery handshake then fetches everything live).
func Open(cfg Config) (*Store, RecoverResult, error) {
	if cfg.Dir == "" {
		return nil, RecoverResult{}, fmt.Errorf("durable: Dir required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4096
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, RecoverResult{}, fmt.Errorf("durable: %w", err)
	}
	s := &Store{cfg: cfg, ch: make(chan wreq, cfg.QueueDepth)}

	var res RecoverResult
	if raw, err := os.ReadFile(s.ckptPath()); err == nil {
		if snap, derr := decodeCheckpointFile(raw); derr == nil {
			res.Snap = snap
			res.CheckpointLoaded = true
		} else {
			res.CheckpointDamaged = true
			s.logf("durable %s: checkpoint damaged (%v), ignoring", cfg.Replica, derr)
		}
	} else if !os.IsNotExist(err) {
		return nil, RecoverResult{}, fmt.Errorf("durable: %w", err)
	}

	f, err := os.OpenFile(s.logPath(), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, RecoverResult{}, fmt.Errorf("durable: %w", err)
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		_ = f.Close()
		return nil, RecoverResult{}, fmt.Errorf("durable: %w", err)
	}
	goodEnd, err := s.replay(raw, &res)
	if err != nil {
		_ = f.Close()
		return nil, RecoverResult{}, err
	}
	if goodEnd < int64(len(raw)) {
		res.Truncated = true
		res.TruncatedBytes = len(raw) - int(goodEnd)
		s.logf("durable %s: truncating %d damaged log byte(s) at offset %d",
			cfg.Replica, res.TruncatedBytes, goodEnd)
		if err := f.Truncate(goodEnd); err != nil {
			_ = f.Close()
			return nil, RecoverResult{}, fmt.Errorf("durable: %w", err)
		}
	}
	if _, err := f.Seek(goodEnd, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, RecoverResult{}, fmt.Errorf("durable: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriterSize(f, 64<<10)
	if len(raw) < headerSize {
		// Fresh (or headerless) log: write the file header.
		if _, err := f.Seek(0, io.SeekStart); err == nil {
			_ = f.Truncate(0)
			_, _ = s.w.WriteString(logMagic)
			_ = s.w.WriteByte(version)
			_ = s.w.Flush()
		}
	}
	s.logBytes.Store(goodEnd - int64(headerSize))
	if s.logBytes.Load() < 0 {
		s.logBytes.Store(0)
	}

	s.wg.Add(1)
	go s.writeLoop()
	return s, res, nil
}

// replay scans the raw log contents, applying every valid record past the
// checkpoint onto res.Snap, and returns the offset of the last good byte.
// Damage (torn tail, CRC mismatch, op-number discontinuity) stops the scan:
// everything from the first bad byte on is reported for truncation.
func (s *Store) replay(raw []byte, res *RecoverResult) (int64, error) {
	if len(raw) < headerSize {
		return 0, nil
	}
	if string(raw[:len(logMagic)]) != logMagic || raw[len(logMagic)] != version {
		s.logf("durable %s: log header invalid, discarding file", s.cfg.Replica)
		return 0, nil
	}
	dedup := make(map[string]DedupEntry, len(res.Snap.Dedup))
	for _, e := range res.Snap.Dedup {
		dedup[e.Client] = e
	}
	cur := res.Snap
	off := headerSize
	for off < len(raw) {
		op, n, err := DecodeLogRecord(raw[off:])
		if err != nil {
			// Torn or corrupt tail: stop here; the caller truncates. A
			// record that fails validation is never applied.
			break
		}
		if op.OpNumber <= cur.OpNumber {
			// Covered by the checkpoint (a crash between checkpoint rename
			// and log truncation leaves such a prefix). Skip idempotently.
			off += n
			continue
		}
		if op.OpNumber != cur.OpNumber+1 {
			// Discontinuity: the log skips ops. Applying past a gap would
			// silently corrupt state, so recovery stops trusting the file
			// here.
			s.logf("durable %s: op-number gap (%d after %d), truncating",
				s.cfg.Replica, op.OpNumber, cur.OpNumber)
			break
		}
		cur.OpNumber = op.OpNumber
		cur.Counter = op.Counter
		if op.Client != "" {
			if e, ok := dedup[op.Client]; !ok || op.ClientSeq > e.Seq {
				dedup[op.Client] = DedupEntry{Client: op.Client, Seq: op.ClientSeq, Counter: op.Counter}
			}
		}
		res.Replayed++
		off += n
	}
	cur.Dedup = flattenDedup(dedup)
	res.Snap = cur
	return int64(off), nil
}

// flattenDedup renders a dedup map as a canonically ordered entry list.
func flattenDedup(m map[string]DedupEntry) []DedupEntry {
	if len(m) == 0 {
		return nil
	}
	out := make([]DedupEntry, 0, len(m))
	for _, e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Client < out[j].Client })
	return out
}

// Append queues one executed operation for the log. It does no I/O itself:
// the record is encoded into a pooled buffer and handed to the writer
// goroutine, so the caller's steady state allocates nothing. Appends after
// Close are dropped.
func (s *Store) Append(op Op) {
	size := opRecordSize(op)
	mb := giop.GetMsgBuf(size)
	encodeOpRecord(mb.Bytes(), op)
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		mb.Release()
		return
	}
	s.logBytes.Add(int64(size))
	s.ch <- wreq{buf: mb}
	s.mu.RUnlock()
}

// LogBytes returns how many record bytes have been appended since the last
// checkpoint — the incremental-checkpoint trigger.
func (s *Store) LogBytes() int64 { return s.logBytes.Load() }

// Checkpoint queues an incremental checkpoint: the snapshot is written to a
// temporary file, fsynced, atomically renamed over the previous checkpoint,
// and the op log is truncated to empty (every logged op is covered — see
// the ordering contract on Store). The snapshot's Dedup slice is owned by
// the store from this call on.
func (s *Store) Checkpoint(snap Snapshot) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return
	}
	s.logBytes.Store(0)
	s.ch <- wreq{snap: &snap}
	s.mu.RUnlock()
}

// Barrier blocks until every previously queued append and checkpoint has
// been written and flushed (tests and orderly shutdown).
func (s *Store) Barrier() {
	done := make(chan struct{})
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return
	}
	s.ch <- wreq{done: done}
	s.mu.RUnlock()
	<-done
}

// Close drains the queue, flushes and syncs the log, and releases the
// files. (A hard process kill would not get this flush; the explicit
// fault injector models that loss deterministically instead — see
// FaultPlan.)
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.ch)
	s.mu.Unlock()
	s.wg.Wait()
}

// Err returns the first write error the writer hit (nil-safe diagnostics;
// a store with a sticky error keeps accepting appends but drops them).
func (s *Store) Err() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.wErr
}

// Dropped returns how many appends were discarded after a wedge or write
// error.
func (s *Store) Dropped() int64 { return atomic.LoadInt64(&s.dropped) }

func (s *Store) writeLoop() {
	defer s.wg.Done()
	defer func() {
		s.flush()
		if !s.wedged {
			_ = s.f.Sync()
		}
		_ = s.f.Close()
	}()
	for {
		req, ok := <-s.ch
		if !ok {
			return
		}
		s.handle(req)
		// Group commit: drain whatever queued behind this request before
		// paying for a flush.
		for {
			select {
			case req, ok := <-s.ch:
				if !ok {
					return
				}
				s.handle(req)
				continue
			default:
			}
			break
		}
		s.flush()
	}
}

func (s *Store) handle(req wreq) {
	switch {
	case req.buf != nil:
		s.handleAppend(req.buf)
	case req.snap != nil:
		s.handleCheckpoint(*req.snap)
	case req.done != nil:
		s.flush()
		close(req.done)
	}
}

func (s *Store) handleAppend(mb *giop.MsgBuf) {
	defer mb.Release()
	if s.wedged || s.wErr != nil {
		atomic.AddInt64(&s.dropped, 1)
		return
	}
	rec := mb.Bytes()
	a := s.cfg.Faults.takeAppend(s.cfg.Replica, len(rec))
	s.appends++
	if a.corrupt && a.corruptAt < len(rec) {
		rec[a.corruptAt] ^= a.corruptXor
	}
	if a.torn {
		_, err := s.w.Write(rec[:a.tornBytes])
		s.noteErr(err)
		s.wedged = true
		s.logf("durable %s: torn write injected after %d/%d bytes, store wedged",
			s.cfg.Replica, a.tornBytes, len(rec))
		return
	}
	if a.segment > 0 {
		for off := 0; off < len(rec); off += a.segment {
			end := off + a.segment
			if end > len(rec) {
				end = len(rec)
			}
			if _, err := s.w.Write(rec[off:end]); err != nil {
				s.noteErr(err)
				return
			}
		}
		return
	}
	_, err := s.w.Write(rec)
	s.noteErr(err)
}

func (s *Store) handleCheckpoint(snap Snapshot) {
	if s.wedged || s.wErr != nil {
		return
	}
	s.flush()
	tmp := s.ckptPath() + ".tmp"
	if err := os.WriteFile(tmp, encodeCheckpointFile(snap), 0o644); err != nil {
		s.noteErr(err)
		return
	}
	if s.cfg.Faults.takeSync(s.cfg.Replica) {
		// Injected fsync failure: abandon this checkpoint (the previous one
		// and the log still cover the state).
		s.logf("durable %s: checkpoint fsync fault injected, keeping previous checkpoint", s.cfg.Replica)
		_ = os.Remove(tmp)
		return
	}
	if tf, err := os.OpenFile(tmp, os.O_RDWR, 0o644); err == nil {
		serr := tf.Sync()
		_ = tf.Close()
		if serr != nil {
			s.noteErr(serr)
			_ = os.Remove(tmp)
			return
		}
	}
	if err := os.Rename(tmp, s.ckptPath()); err != nil {
		s.noteErr(err)
		return
	}
	if d, err := os.Open(s.cfg.Dir); err == nil {
		_ = d.Sync() // best-effort directory durability
		_ = d.Close()
	}
	// Log-suffix truncation: everything in the log is covered by the
	// snapshot just persisted (ordering contract), so the suffix restarts
	// empty.
	if err := s.f.Truncate(int64(headerSize)); err != nil {
		s.noteErr(err)
		return
	}
	if _, err := s.f.Seek(int64(headerSize), io.SeekStart); err != nil {
		s.noteErr(err)
		return
	}
	s.w.Reset(s.f)
}

func (s *Store) flush() {
	if s.w != nil {
		s.noteErr(s.w.Flush())
	}
}

func (s *Store) noteErr(err error) {
	if err == nil || s.wErr != nil {
		return
	}
	s.mu.Lock()
	if s.wErr == nil {
		s.wErr = err
	}
	s.mu.Unlock()
	s.logf("durable %s: write error: %v", s.cfg.Replica, err)
}
