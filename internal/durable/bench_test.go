package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// BenchmarkLogReplay measures cold-restart recovery time as a function of
// log length: one full Open (checkpoint read + log scan + truncation check)
// over a log of n records. EXPERIMENTS.md tabulates these.
func BenchmarkLogReplay(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			s, _, err := Open(Config{Dir: dir, Replica: "bench"})
			if err != nil {
				b.Fatal(err)
			}
			for i := 1; i <= n; i++ {
				s.Append(Op{OpNumber: uint64(i), Counter: uint64(i), Client: "client-1", ClientSeq: uint64(i)})
			}
			s.Close()
			fi, err := os.Stat(filepath.Join(dir, "oplog"))
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(fi.Size())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, res, err := Open(Config{Dir: dir, Replica: "bench"})
				if err != nil {
					b.Fatal(err)
				}
				if res.Replayed != n {
					b.Fatalf("replayed %d, want %d", res.Replayed, n)
				}
				s.Close()
			}
		})
	}
}

// BenchmarkAppend measures the caller-side cost of queueing one op record —
// the amount added to the invoke hot path. It must stay at 0 allocs/op.
func BenchmarkAppend(b *testing.B) {
	dir := b.TempDir()
	s, _, err := Open(Config{Dir: dir, Replica: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Append(Op{OpNumber: uint64(i + 1), Counter: uint64(i + 1), Client: "client-1", ClientSeq: uint64(i + 1)})
	}
}
