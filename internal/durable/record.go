// Package durable is the replica's disaster-recovery state subsystem: an
// append-only operation log with CRC-framed records plus an incremental
// checkpoint file (snapshot + log-suffix truncation). Warm-passive
// replication alone relies on live state transfer, so a replica that
// restarts after rejuvenation or a crash rejoins blind; the durable store
// lets it replay its own history first and then fetch only the delta from
// the live group (the VSR-style recovery handshake in internal/ftmgr and
// internal/replica), following the message-logging + checkpointing design
// of the CORBA bank-servers disaster-recovery report (arXiv:0911.3092).
//
// On-disk layout (one directory per replica, docs/PROTOCOL.md §11):
//
//	oplog      file header, then a run of CRC-framed operation records
//	checkpoint file header, then one CRC-framed snapshot record
//
// Appends are written off the invocation hot path: the servant encodes one
// record into a pooled buffer (giop.MsgBuf) and hands it to a dedicated
// writer goroutine over a buffered channel, so the steady-state invoke path
// stays allocation-free. Group commit: the writer drains whatever has
// queued, writes it in one buffered burst, and flushes; fsync happens at
// checkpoints and on Close, so a hard crash can lose an unsynced log tail —
// exactly the torn-tail case recovery detects and truncates past.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// File headers. The version octet follows the 4-byte magic.
const (
	logMagic  = "MDOP"
	ckptMagic = "MDCK"
	version   = 1
)

// headerSize is the length of each file's header: magic + version octet.
const headerSize = len(logMagic) + 1

// frameOverhead is the per-record framing cost: u32 payload length followed
// by the u32 CRC-32C of the payload.
const frameOverhead = 8

// MaxRecordSize bounds one framed record's payload; anything claiming more
// is corruption, not data.
const MaxRecordSize = 64 << 10

// recOp tags an operation-record payload (the only record kind today; the
// octet leaves room for e.g. membership or epoch records later).
const recOp = 1

// castagnoli is the CRC-32C table shared by all framing (the polynomial
// with hardware support on both amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Op is one executed application operation: the unit of the log. OpNumber
// is the dense, monotonically increasing execution index (the VSR
// op-number); Counter is the replicated state value after executing it.
// Client/ClientSeq carry the invoker's at-most-once identity so replaying
// the log also rebuilds the dedup table ("" means an anonymous, non-deduped
// invocation).
type Op struct {
	OpNumber  uint64
	Counter   uint64
	Client    string
	ClientSeq uint64
}

// DedupEntry is one client's row of the at-most-once table: the highest
// invocation sequence executed for the client and the state counter its
// execution produced (returned verbatim to suppressed retransmissions).
type DedupEntry struct {
	Client  string
	Seq     uint64
	Counter uint64
}

// Snapshot is the checkpointable replica state: everything needed to
// restart without the log prefix it covers.
type Snapshot struct {
	// OpNumber is the last operation the snapshot covers; log records with
	// OpNumber beyond it are the incremental suffix to replay.
	OpNumber uint64
	// Counter is the replicated state counter at OpNumber.
	Counter uint64
	// Dedup is the at-most-once table at OpNumber.
	Dedup []DedupEntry
}

// Decode errors. ErrTornRecord marks an incomplete tail (the record frame
// runs past the available bytes — a write interrupted by a crash);
// ErrCorruptRecord marks a structurally complete record whose CRC or shape
// is wrong. Recovery truncates the log at either; neither is ever replayed.
var (
	ErrTornRecord    = errors.New("durable: torn record (incomplete tail)")
	ErrCorruptRecord = errors.New("durable: corrupt record (CRC or framing mismatch)")
)

// opRecordSize returns the framed size of op's log record.
func opRecordSize(op Op) int {
	return frameOverhead + opPayloadSize(op)
}

func opPayloadSize(op Op) int {
	return 1 + 8 + 8 + 8 + 2 + len(op.Client)
}

// encodeOpRecord frames op into dst, which must hold opRecordSize(op)
// bytes, and returns the bytes written. It allocates nothing.
func encodeOpRecord(dst []byte, op Op) int {
	n := opPayloadSize(op)
	binary.BigEndian.PutUint32(dst[0:4], uint32(n))
	p := dst[frameOverhead : frameOverhead+n]
	p[0] = recOp
	binary.BigEndian.PutUint64(p[1:9], op.OpNumber)
	binary.BigEndian.PutUint64(p[9:17], op.Counter)
	binary.BigEndian.PutUint64(p[17:25], op.ClientSeq)
	binary.BigEndian.PutUint16(p[25:27], uint16(len(op.Client)))
	copy(p[27:], op.Client)
	binary.BigEndian.PutUint32(dst[4:8], crc32.Checksum(p, castagnoli))
	return frameOverhead + n
}

// DecodeLogRecord decodes one framed operation record from the front of b,
// returning the record and the bytes consumed. ErrTornRecord means b ends
// mid-record (an interrupted append); ErrCorruptRecord means the frame is
// complete but its CRC or structure is invalid. It is the fuzz surface for
// the log decoder and never panics on hostile input.
func DecodeLogRecord(b []byte) (Op, int, error) {
	if len(b) < frameOverhead {
		return Op{}, 0, ErrTornRecord
	}
	n := int(binary.BigEndian.Uint32(b[0:4]))
	if n < 27 || n > MaxRecordSize {
		return Op{}, 0, ErrCorruptRecord
	}
	if len(b) < frameOverhead+n {
		return Op{}, 0, ErrTornRecord
	}
	p := b[frameOverhead : frameOverhead+n]
	if crc32.Checksum(p, castagnoli) != binary.BigEndian.Uint32(b[4:8]) {
		return Op{}, 0, ErrCorruptRecord
	}
	if p[0] != recOp {
		return Op{}, 0, ErrCorruptRecord
	}
	clen := int(binary.BigEndian.Uint16(p[25:27]))
	if 27+clen != n {
		return Op{}, 0, ErrCorruptRecord
	}
	op := Op{
		OpNumber:  binary.BigEndian.Uint64(p[1:9]),
		Counter:   binary.BigEndian.Uint64(p[9:17]),
		ClientSeq: binary.BigEndian.Uint64(p[17:25]),
		Client:    string(p[27 : 27+clen]),
	}
	return op, frameOverhead + n, nil
}

// EncodeSnapshot renders a snapshot payload (unframed). The same payload
// travels in three places: the checkpoint file, the warm-passive Checkpoint
// multicast's Data field, and the RecoveryState handshake answer.
func EncodeSnapshot(s Snapshot) []byte {
	size := 1 + 8 + 8 + 4
	for _, e := range s.Dedup {
		size += 2 + len(e.Client) + 8 + 8
	}
	b := make([]byte, size)
	b[0] = version
	binary.BigEndian.PutUint64(b[1:9], s.OpNumber)
	binary.BigEndian.PutUint64(b[9:17], s.Counter)
	binary.BigEndian.PutUint32(b[17:21], uint32(len(s.Dedup)))
	off := 21
	for _, e := range s.Dedup {
		binary.BigEndian.PutUint16(b[off:], uint16(len(e.Client)))
		off += 2
		off += copy(b[off:], e.Client)
		binary.BigEndian.PutUint64(b[off:], e.Seq)
		off += 8
		binary.BigEndian.PutUint64(b[off:], e.Counter)
		off += 8
	}
	return b
}

// DecodeSnapshot parses a snapshot payload. It is the fuzz surface for the
// checkpoint decoder and never panics on hostile input.
func DecodeSnapshot(b []byte) (Snapshot, error) {
	var s Snapshot
	if len(b) < 21 {
		return s, ErrCorruptRecord
	}
	if b[0] != version {
		return s, fmt.Errorf("durable: snapshot version %d unsupported", b[0])
	}
	s.OpNumber = binary.BigEndian.Uint64(b[1:9])
	s.Counter = binary.BigEndian.Uint64(b[9:17])
	n := int(binary.BigEndian.Uint32(b[17:21]))
	// Each entry needs at least 18 bytes; reject implausible counts before
	// allocating.
	if n < 0 || n > (len(b)-21)/18 {
		return s, ErrCorruptRecord
	}
	off := 21
	if n > 0 {
		s.Dedup = make([]DedupEntry, 0, n)
	}
	for i := 0; i < n; i++ {
		if off+2 > len(b) {
			return Snapshot{}, ErrCorruptRecord
		}
		clen := int(binary.BigEndian.Uint16(b[off:]))
		off += 2
		if off+clen+16 > len(b) {
			return Snapshot{}, ErrCorruptRecord
		}
		e := DedupEntry{Client: string(b[off : off+clen])}
		off += clen
		e.Seq = binary.BigEndian.Uint64(b[off:])
		off += 8
		e.Counter = binary.BigEndian.Uint64(b[off:])
		off += 8
		s.Dedup = append(s.Dedup, e)
	}
	if off != len(b) {
		return Snapshot{}, ErrCorruptRecord
	}
	return s, nil
}

// encodeCheckpointFile renders the complete checkpoint file contents:
// header plus one CRC-framed snapshot payload.
func encodeCheckpointFile(s Snapshot) []byte {
	payload := EncodeSnapshot(s)
	b := make([]byte, headerSize+frameOverhead+len(payload))
	copy(b, ckptMagic)
	b[len(ckptMagic)] = version
	binary.BigEndian.PutUint32(b[headerSize:], uint32(len(payload)))
	binary.BigEndian.PutUint32(b[headerSize+4:], crc32.Checksum(payload, castagnoli))
	copy(b[headerSize+frameOverhead:], payload)
	return b
}

// decodeCheckpointFile parses a whole checkpoint file.
func decodeCheckpointFile(b []byte) (Snapshot, error) {
	if len(b) < headerSize+frameOverhead {
		return Snapshot{}, ErrCorruptRecord
	}
	if string(b[:len(ckptMagic)]) != ckptMagic || b[len(ckptMagic)] != version {
		return Snapshot{}, ErrCorruptRecord
	}
	n := int(binary.BigEndian.Uint32(b[headerSize:]))
	if n < 0 || headerSize+frameOverhead+n != len(b) {
		return Snapshot{}, ErrCorruptRecord
	}
	payload := b[headerSize+frameOverhead:]
	if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(b[headerSize+4:]) {
		return Snapshot{}, ErrCorruptRecord
	}
	return DecodeSnapshot(payload)
}
