package durable

import (
	"fmt"
	"math/rand"
	"sync"
)

// FaultKind identifies one injectable durable-I/O condition. The injector
// mirrors internal/netfault's plan style — named events keyed on a
// deterministic ordinal — so log-truncation tests never depend on timing:
// the same seed and plan damage the same byte of the same record on every
// run.
type FaultKind int

// Fault kinds.
const (
	// TornWrite writes only the first TornBytes of the triggering record
	// (default: half), then wedges the store: every later append and sync
	// is silently dropped, as if the process had crashed mid-write. The
	// on-disk log ends in an incomplete frame that recovery must detect
	// (ErrTornRecord) and truncate past.
	TornWrite FaultKind = iota + 1
	// ShortWrite splits each affected record append into SegmentBytes-sized
	// write calls (a page-cache-boundary simulation). Windowed; must be
	// invisible to recovery — the bytes still land in order.
	ShortWrite
	// CorruptWrite flips one seeded-random payload byte of the triggering
	// record as it is written. The frame length stays intact, so recovery
	// sees a structurally complete record whose CRC fails
	// (ErrCorruptRecord) and truncates there.
	CorruptWrite
	// SyncError makes the store's next fsync report failure (counted; the
	// store keeps running with weakened durability, which recovery covers).
	SyncError
)

func (k FaultKind) String() string {
	switch k {
	case TornWrite:
		return "torn-write"
	case ShortWrite:
		return "short-write"
	case CorruptWrite:
		return "corrupt-write"
	case SyncError:
		return "sync-error"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// windowed reports whether the kind stays active over a span of appends.
func (k FaultKind) windowed() bool { return k == ShortWrite }

// FaultEvent schedules one durable-I/O fault. Append-keyed kinds trigger on
// the store's 0-based append ordinal (counted per replica store, so one
// shared injector can target replicas independently); SyncError triggers on
// the store's 0-based sync ordinal instead.
type FaultEvent struct {
	// Name labels the event in Fired accounting (defaults to Kind.String).
	Name string
	// Kind selects the fault.
	Kind FaultKind
	// At is the 0-based ordinal (append count for write kinds, sync count
	// for SyncError) that triggers the event.
	At int
	// For widens windowed kinds (ShortWrite) to the ordinals [At, At+For);
	// 0 means width 1, negative means active forever.
	For int
	// Replica restricts the event to the named replica's store; empty
	// matches any store.
	Replica string
	// TornBytes is how many bytes of the triggering record a TornWrite
	// leaves on disk (default: half the framed record).
	TornBytes int
	// SegmentBytes is the ShortWrite segment size.
	SegmentBytes int
}

func (e FaultEvent) name() string {
	if e.Name != "" {
		return e.Name
	}
	return e.Kind.String()
}

func (e FaultEvent) matches(ordinal int, replica string) bool {
	if e.Replica != "" && e.Replica != replica {
		return false
	}
	if e.Kind.windowed() {
		if e.For < 0 {
			return ordinal >= e.At
		}
		width := e.For
		if width == 0 {
			width = 1
		}
		return ordinal >= e.At && ordinal < e.At+width
	}
	return ordinal == e.At
}

// FaultPlan is a schedule of durable-I/O faults. The zero value injects
// nothing.
type FaultPlan []FaultEvent

// Validate rejects malformed plans before a run starts.
func (p FaultPlan) Validate() error {
	for i, e := range p {
		if e.Kind < TornWrite || e.Kind > SyncError {
			return fmt.Errorf("durable: event %d (%s): unknown kind %d", i, e.name(), int(e.Kind))
		}
		if e.At < 0 {
			return fmt.Errorf("durable: event %d (%s): negative At", i, e.name())
		}
		if e.Kind == ShortWrite && e.SegmentBytes <= 0 {
			return fmt.Errorf("durable: event %d (%s): ShortWrite needs SegmentBytes", i, e.name())
		}
	}
	return nil
}

// FaultInjector executes a FaultPlan over the stores that reference it. All
// randomness (the corrupted byte's position and XOR mask) comes from one
// seeded PRNG and all triggers are keyed on per-replica append/sync
// ordinals, so two runs with the same seed and plan damage the identical
// bytes.
type FaultInjector struct {
	mu      sync.Mutex
	plan    FaultPlan
	rng     *rand.Rand
	appends map[string]int // replica -> append ordinal
	syncs   map[string]int // replica -> sync ordinal
	fired   map[string]int
	oneShot map[int]bool // plan index -> already fired
}

// NewFaultInjector builds an injector for the plan, seeded for reproducible
// corruption. The plan must Validate.
func NewFaultInjector(seed int64, plan FaultPlan) (*FaultInjector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &FaultInjector{
		plan:    plan,
		rng:     rand.New(rand.NewSource(seed)),
		appends: make(map[string]int),
		syncs:   make(map[string]int),
		fired:   make(map[string]int),
		oneShot: make(map[int]bool),
	}, nil
}

// Fired returns how many times the named event applied.
func (f *FaultInjector) Fired(name string) int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired[name]
}

// FiredAll snapshots the per-event application counts.
func (f *FaultInjector) FiredAll() map[string]int {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int, len(f.fired))
	for k, v := range f.fired {
		out[k] = v
	}
	return out
}

// ioAction is the fault set resolved for one record append.
type ioAction struct {
	torn       bool
	tornBytes  int
	corruptAt  int
	corruptXor byte
	corrupt    bool
	segment    int
}

// takeAppend consumes one tick of replica's append ordinal and resolves the
// actions to apply to a framed record of recLen bytes. A nil injector is a
// no-op.
func (f *FaultInjector) takeAppend(replica string, recLen int) ioAction {
	if f == nil {
		return ioAction{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ord := f.appends[replica]
	f.appends[replica] = ord + 1
	var a ioAction
	for idx, e := range f.plan {
		if e.Kind == SyncError || !e.matches(ord, replica) {
			continue
		}
		if !e.Kind.windowed() {
			if f.oneShot[idx] {
				continue
			}
			f.oneShot[idx] = true
		}
		f.fired[e.name()]++
		switch e.Kind {
		case TornWrite:
			a.torn = true
			a.tornBytes = e.TornBytes
			if a.tornBytes <= 0 || a.tornBytes >= recLen {
				a.tornBytes = recLen / 2
			}
		case CorruptWrite:
			a.corrupt = true
			// Damage a payload byte (offset >= frameOverhead) so the frame
			// length survives and the CRC is what catches it; the XOR mask
			// is drawn from [1, 255] so the byte always changes.
			if recLen > frameOverhead {
				a.corruptAt = frameOverhead + f.rng.Intn(recLen-frameOverhead)
			}
			a.corruptXor = byte(1 + f.rng.Intn(255))
		case ShortWrite:
			a.segment = e.SegmentBytes
		}
	}
	return a
}

// takeSync consumes one tick of replica's sync ordinal and reports whether
// this fsync should fail.
func (f *FaultInjector) takeSync(replica string) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ord := f.syncs[replica]
	f.syncs[replica] = ord + 1
	fail := false
	for idx, e := range f.plan {
		if e.Kind != SyncError || !e.matches(ord, replica) {
			continue
		}
		if f.oneShot[idx] {
			continue
		}
		f.oneShot[idx] = true
		f.fired[e.name()]++
		fail = true
	}
	return fail
}
