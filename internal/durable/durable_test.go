package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testOp(n uint64, client string, seq uint64) Op {
	return Op{OpNumber: n, Counter: n * 10, Client: client, ClientSeq: seq}
}

func TestOpRecordRoundTrip(t *testing.T) {
	ops := []Op{
		{OpNumber: 1, Counter: 7},
		{OpNumber: 2, Counter: 8, Client: "client-1", ClientSeq: 3},
		{OpNumber: 1<<63 + 9, Counter: 1<<64 - 1, Client: "x", ClientSeq: 1 << 40},
	}
	for _, want := range ops {
		buf := make([]byte, opRecordSize(want))
		n := encodeOpRecord(buf, want)
		if n != len(buf) {
			t.Fatalf("encodeOpRecord wrote %d, want %d", n, len(buf))
		}
		got, consumed, err := DecodeLogRecord(buf)
		if err != nil {
			t.Fatalf("DecodeLogRecord(%+v): %v", want, err)
		}
		if consumed != n {
			t.Fatalf("consumed %d, want %d", consumed, n)
		}
		if got != want {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestDecodeLogRecordDamage(t *testing.T) {
	op := testOp(5, "client-1", 2)
	rec := make([]byte, opRecordSize(op))
	encodeOpRecord(rec, op)

	// Every strict prefix is torn, never corrupt: an interrupted append
	// must read as an incomplete tail.
	for i := 0; i < len(rec); i++ {
		if _, _, err := DecodeLogRecord(rec[:i]); !errors.Is(err, ErrTornRecord) {
			t.Fatalf("prefix %d/%d: got %v, want ErrTornRecord", i, len(rec), err)
		}
	}
	// Any flipped payload byte is corrupt (frame intact, CRC wrong).
	for i := frameOverhead; i < len(rec); i++ {
		mut := append([]byte(nil), rec...)
		mut[i] ^= 0x41
		if _, _, err := DecodeLogRecord(mut); !errors.Is(err, ErrCorruptRecord) {
			t.Fatalf("flip byte %d: got %v, want ErrCorruptRecord", i, err)
		}
	}
	// A frame length beyond MaxRecordSize is corruption, not a huge read.
	huge := append([]byte(nil), rec...)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := DecodeLogRecord(huge); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("oversized frame: got %v, want ErrCorruptRecord", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	snaps := []Snapshot{
		{},
		{OpNumber: 42, Counter: 420},
		{OpNumber: 7, Counter: 70, Dedup: []DedupEntry{
			{Client: "a", Seq: 1, Counter: 10},
			{Client: "client-long-name", Seq: 9, Counter: 70},
		}},
	}
	for _, want := range snaps {
		got, err := DecodeSnapshot(EncodeSnapshot(want))
		if err != nil {
			t.Fatalf("DecodeSnapshot(%+v): %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
		fgot, err := decodeCheckpointFile(encodeCheckpointFile(want))
		if err != nil {
			t.Fatalf("decodeCheckpointFile(%+v): %v", want, err)
		}
		if !reflect.DeepEqual(fgot, want) {
			t.Fatalf("file round trip: got %+v want %+v", fgot, want)
		}
	}
	// Trailing garbage and implausible entry counts are rejected.
	enc := EncodeSnapshot(snaps[2])
	if _, err := DecodeSnapshot(append(enc, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[17], bad[18], bad[19], bad[20] = 0xff, 0xff, 0xff, 0xff
	if _, err := DecodeSnapshot(bad); err == nil {
		t.Fatal("implausible entry count accepted")
	}
}

// openStore opens a store in dir, failing the test on error.
func openStore(t *testing.T, dir string, inj *FaultInjector) (*Store, RecoverResult) {
	t.Helper()
	s, res, err := Open(Config{Dir: dir, Replica: "r1", Faults: inj, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, res
}

func TestStoreAppendRecover(t *testing.T) {
	dir := t.TempDir()
	s, res := openStore(t, dir, nil)
	if res.Replayed != 0 || res.CheckpointLoaded || res.Truncated {
		t.Fatalf("fresh dir: unexpected recovery %+v", res)
	}
	for i := uint64(1); i <= 20; i++ {
		s.Append(Op{OpNumber: i, Counter: i, Client: "c1", ClientSeq: i})
	}
	s.Close()

	s2, res2 := openStore(t, dir, nil)
	defer s2.Close()
	if res2.Replayed != 20 || res2.Truncated {
		t.Fatalf("recovery: %+v", res2)
	}
	want := Snapshot{OpNumber: 20, Counter: 20,
		Dedup: []DedupEntry{{Client: "c1", Seq: 20, Counter: 20}}}
	if !reflect.DeepEqual(res2.Snap, want) {
		t.Fatalf("recovered %+v, want %+v", res2.Snap, want)
	}
}

func TestStoreCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir, nil)
	for i := uint64(1); i <= 10; i++ {
		s.Append(testOp(i, "", 0))
	}
	s.Checkpoint(Snapshot{OpNumber: 10, Counter: 100})
	s.Barrier()
	if got := s.LogBytes(); got != 0 {
		t.Fatalf("LogBytes after checkpoint = %d, want 0", got)
	}
	fi, err := os.Stat(filepath.Join(dir, "oplog"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(headerSize) {
		t.Fatalf("oplog size after checkpoint = %d, want header only (%d)", fi.Size(), headerSize)
	}
	// The incremental suffix: ops past the checkpoint live in the log.
	for i := uint64(11); i <= 13; i++ {
		s.Append(testOp(i, "", 0))
	}
	s.Close()

	s2, res := openStore(t, dir, nil)
	defer s2.Close()
	if !res.CheckpointLoaded || res.Replayed != 3 || res.Truncated {
		t.Fatalf("recovery: %+v", res)
	}
	if res.Snap.OpNumber != 13 || res.Snap.Counter != 130 {
		t.Fatalf("recovered %+v, want op 13 counter 130", res.Snap)
	}
}

func TestStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	inj, err := NewFaultInjector(1, FaultPlan{{Name: "tear", Kind: TornWrite, At: 7}})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := openStore(t, dir, inj)
	for i := uint64(1); i <= 10; i++ {
		s.Append(testOp(i, "c", i))
	}
	s.Close()
	if inj.Fired("tear") != 1 {
		t.Fatalf("tear fired %d times, want 1", inj.Fired("tear"))
	}

	s2, res := openStore(t, dir, nil)
	defer s2.Close()
	if !res.Truncated || res.TruncatedBytes == 0 {
		t.Fatalf("torn tail not truncated: %+v", res)
	}
	// Append ordinal 7 is op 8: ops 1..7 survive, the torn record and
	// everything after it (dropped by the wedge) do not.
	if res.Replayed != 7 || res.Snap.OpNumber != 7 {
		t.Fatalf("recovered %+v (replayed %d), want ops 1..7", res.Snap, res.Replayed)
	}
	// The truncated store accepts new appends at the recovered position.
	s2.Append(testOp(8, "c", 8))
	s2.Barrier()
}

func TestStoreCorruptRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	inj, err := NewFaultInjector(99, FaultPlan{{Name: "flip", Kind: CorruptWrite, At: 4}})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := openStore(t, dir, inj)
	for i := uint64(1); i <= 10; i++ {
		s.Append(testOp(i, "c", i))
	}
	s.Close()

	s2, res := openStore(t, dir, nil)
	defer s2.Close()
	if !res.Truncated {
		t.Fatalf("corrupt record not truncated: %+v", res)
	}
	// The CRC catches the damaged record (ordinal 4 = op 5); recovery stops
	// there and never replays it or the records behind it.
	if res.Replayed != 4 || res.Snap.OpNumber != 4 {
		t.Fatalf("recovered %+v (replayed %d), want ops 1..4", res.Snap, res.Replayed)
	}
}

func TestStoreShortWriteInvisible(t *testing.T) {
	dir := t.TempDir()
	inj, err := NewFaultInjector(5, FaultPlan{
		{Kind: ShortWrite, At: 0, For: -1, SegmentBytes: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := openStore(t, dir, inj)
	for i := uint64(1); i <= 10; i++ {
		s.Append(testOp(i, "cc", i))
	}
	s.Close()

	s2, res := openStore(t, dir, nil)
	defer s2.Close()
	if res.Truncated || res.Replayed != 10 || res.Snap.OpNumber != 10 {
		t.Fatalf("short writes must be invisible to recovery: %+v", res)
	}
}

func TestStoreSyncFaultKeepsPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	inj, err := NewFaultInjector(2, FaultPlan{{Name: "nosync", Kind: SyncError, At: 1}})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := openStore(t, dir, inj)
	for i := uint64(1); i <= 5; i++ {
		s.Append(testOp(i, "", 0))
	}
	s.Checkpoint(Snapshot{OpNumber: 5, Counter: 50}) // sync ordinal 0: succeeds
	for i := uint64(6); i <= 8; i++ {
		s.Append(testOp(i, "", 0))
	}
	s.Checkpoint(Snapshot{OpNumber: 8, Counter: 80}) // sync ordinal 1: fault
	s.Barrier()
	if inj.Fired("nosync") != 1 {
		t.Fatalf("nosync fired %d times, want 1", inj.Fired("nosync"))
	}
	for i := uint64(9); i <= 10; i++ {
		s.Append(testOp(i, "", 0))
	}
	s.Close()

	// The failed checkpoint was abandoned, so recovery = checkpoint@5 +
	// replayed suffix 6..10 (the log was NOT truncated at 8).
	s2, res := openStore(t, dir, nil)
	defer s2.Close()
	if !res.CheckpointLoaded || res.Replayed != 5 {
		t.Fatalf("recovery after sync fault: %+v", res)
	}
	if res.Snap.OpNumber != 10 || res.Snap.Counter != 100 {
		t.Fatalf("recovered %+v, want op 10 counter 100", res.Snap)
	}
}

func TestStoreDamagedCheckpointIgnored(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir, nil)
	for i := uint64(1); i <= 6; i++ {
		s.Append(testOp(i, "", 0))
	}
	s.Close()
	// Plant a garbage checkpoint; recovery must fall back to the log alone.
	if err := os.WriteFile(filepath.Join(dir, "checkpoint"), []byte("MDCK\x01garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, res := openStore(t, dir, nil)
	defer s2.Close()
	if res.CheckpointLoaded || !res.CheckpointDamaged {
		t.Fatalf("damaged checkpoint not flagged: %+v", res)
	}
	if res.Replayed != 6 || res.Snap.OpNumber != 6 {
		t.Fatalf("recovered %+v, want ops 1..6 from log", res.Snap)
	}
}

func TestStoreRecoveryDeterministic(t *testing.T) {
	// Same seed, same plan, same appends → byte-identical on-disk state and
	// identical recovery on both runs.
	var logs [2][]byte
	var snaps [2]Snapshot
	for run := 0; run < 2; run++ {
		dir := t.TempDir()
		inj, err := NewFaultInjector(1234, FaultPlan{
			{Kind: CorruptWrite, At: 9},
			{Kind: ShortWrite, At: 2, For: 3, SegmentBytes: 5},
		})
		if err != nil {
			t.Fatal(err)
		}
		s, _ := openStore(t, dir, inj)
		for i := uint64(1); i <= 12; i++ {
			s.Append(testOp(i, "client-1", i))
		}
		s.Close()
		raw, err := os.ReadFile(filepath.Join(dir, "oplog"))
		if err != nil {
			t.Fatal(err)
		}
		logs[run] = raw
		_, res := openStore(t, dir, nil)
		snaps[run] = res.Snap
	}
	if !bytes.Equal(logs[0], logs[1]) {
		t.Fatal("same seed+plan produced different on-disk logs")
	}
	if !reflect.DeepEqual(snaps[0], snaps[1]) {
		t.Fatalf("same seed+plan recovered differently: %+v vs %+v", snaps[0], snaps[1])
	}
}

func TestStoreOpNumberGapTruncated(t *testing.T) {
	dir := t.TempDir()
	// Hand-build a log whose records skip an op number; recovery must stop
	// at the gap rather than silently applying past it.
	var buf bytes.Buffer
	buf.WriteString(logMagic)
	buf.WriteByte(version)
	for _, n := range []uint64{1, 2, 5} {
		rec := make([]byte, opRecordSize(testOp(n, "", 0)))
		encodeOpRecord(rec, testOp(n, "", 0))
		buf.Write(rec)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "oplog"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	s, res := openStore(t, dir, nil)
	defer s.Close()
	if !res.Truncated || res.Replayed != 2 || res.Snap.OpNumber != 2 {
		t.Fatalf("gap not truncated: %+v", res)
	}
}

func TestFaultPlanValidate(t *testing.T) {
	bad := []FaultPlan{
		{{Kind: 0}},
		{{Kind: TornWrite, At: -1}},
		{{Kind: ShortWrite, At: 0}}, // missing SegmentBytes
	}
	for i, p := range bad {
		if _, err := NewFaultInjector(1, p); err == nil {
			t.Fatalf("plan %d accepted, want error", i)
		}
	}
	if err := (FaultPlan{}).Validate(); err != nil {
		t.Fatalf("empty plan rejected: %v", err)
	}
}
