package giop

import (
	"sync"
	"sync/atomic"
)

// Pooled inbound message buffers.
//
// The encode/send side became allocation-free in the previous transport
// pass (pooled CDR encoders, single-buffer header+body); this is the
// receive-side mirror. Every connection reader takes its message bodies
// from a size-classed sync.Pool and releases them once the reply/dispatch
// path has finished decoding, so a steady-state invocation cycle recycles
// the same few buffers instead of allocating one body (plus copies) per
// message.
//
// Ownership rule (docs/PROTOCOL.md §8): the reader that obtains a MsgBuf
// owns it until it hands it off (e.g. through a reply channel or to a
// dispatch goroutine); exactly one owner calls Release, after which the
// buffer — and everything borrowed from it by the zero-copy decoders — is
// dead. Batch frames relax this to a reference count: each sub-request
// dispatched from one batch body Retains the buffer, and the last Release
// recycles it (docs/PROTOCOL.md §10).

// msgBufClasses are the pooled capacity classes. Class 0 covers the common
// small request/reply bodies, class 1 typical argument payloads, class 2
// fragmented bulk messages. Bodies larger than the top class are allocated
// directly and dropped on Release.
var msgBufClasses = [...]int{512, 8 << 10, 64 << 10}

var msgBufPools [len(msgBufClasses)]sync.Pool

func init() {
	for i := range msgBufPools {
		class := msgBufClasses[i]
		msgBufPools[i].New = func() any {
			return &MsgBuf{b: make([]byte, 0, class)}
		}
	}
}

// MsgBuf is one pooled message-body buffer. The wrapper struct (rather than
// a bare slice) round-trips through sync.Pool without boxing allocations,
// which is what keeps Release itself free.
type MsgBuf struct {
	b    []byte
	refs atomic.Int32
}

// Bytes returns the buffer's current contents.
func (m *MsgBuf) Bytes() []byte { return m.b }

// classFor returns the index of the smallest class holding n, or -1 when n
// exceeds the top class.
func classFor(n int) int {
	for i, c := range msgBufClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// GetMsgBuf returns a pooled buffer with len n (contents undefined). Bodies
// beyond the top size class get a dedicated allocation; Release then simply
// drops them.
func GetMsgBuf(n int) *MsgBuf {
	ci := classFor(n)
	if ci < 0 {
		m := &MsgBuf{b: make([]byte, n)}
		m.refs.Store(1)
		return m
	}
	m := msgBufPools[ci].Get().(*MsgBuf)
	m.refs.Store(1)
	m.b = m.b[:n]
	return m
}

// Retain adds a reference: one extra Release is then required before the
// buffer recycles. The server uses it to dispatch the sub-requests of one
// batch frame concurrently while they all borrow the same body.
func (m *MsgBuf) Retain() {
	m.refs.Add(1)
}

// Release drops one reference; the last one returns the buffer to its
// size-class pool. The releasing caller must not touch the MsgBuf, its
// Bytes, or any slice borrowed from them afterwards. Release on nil is a
// no-op so error paths can release unconditionally.
func (m *MsgBuf) Release() {
	if m == nil {
		return
	}
	if m.refs.Add(-1) > 0 {
		return
	}
	c := cap(m.b)
	for i, class := range msgBufClasses {
		if c == class {
			m.b = m.b[:0]
			msgBufPools[i].Put(m)
			return
		}
	}
	// Oversized or foreign backing array: let the GC have it.
}

// grow extends m to length n, switching to a larger class (and recycling
// the old backing array) when the current one is too small. Fragment
// reassembly uses it to append continuation bodies in place.
func (m *MsgBuf) grow(n int) {
	if n <= cap(m.b) {
		m.b = m.b[:n]
		return
	}
	old := m.b
	var nb []byte
	if ci := classFor(n); ci >= 0 {
		r := msgBufPools[ci].Get().(*MsgBuf)
		nb = r.b[:n]
		copy(nb, old)
		// Hand the old array back under the recycled wrapper — only after
		// the copy above: once released, a concurrent reader may own it.
		r.b = old
		r.refs.Store(1)
		r.Release()
	} else {
		// Beyond the top class: grow geometrically so a long fragment train
		// does not reallocate per fragment.
		capNeed := 2 * cap(old)
		if capNeed < n {
			capNeed = n
		}
		nb = make([]byte, n, capNeed)
		copy(nb, old)
		rel := &MsgBuf{b: old}
		rel.refs.Store(1)
		rel.Release()
	}
	m.b = nb
}
