package giop

import (
	"bytes"
	"testing"

	"mead/internal/cdr"
)

func TestGetMsgBufSizing(t *testing.T) {
	cases := []struct {
		n       int
		wantCap int // 0 means "exactly n" (oversized path)
	}{
		{0, 512},
		{1, 512},
		{512, 512},
		{513, 8 << 10},
		{8 << 10, 8 << 10},
		{(8 << 10) + 1, 64 << 10},
		{64 << 10, 64 << 10},
	}
	for _, c := range cases {
		mb := GetMsgBuf(c.n)
		if len(mb.Bytes()) != c.n {
			t.Errorf("GetMsgBuf(%d): len = %d", c.n, len(mb.Bytes()))
		}
		if cap(mb.b) != c.wantCap {
			t.Errorf("GetMsgBuf(%d): cap = %d, want %d", c.n, cap(mb.b), c.wantCap)
		}
		mb.Release()
	}
	over := (64 << 10) + 1
	mb := GetMsgBuf(over)
	if len(mb.Bytes()) != over {
		t.Fatalf("oversized: len = %d", len(mb.Bytes()))
	}
	mb.Release() // dropped, not pooled; must not panic
}

func TestMsgBufReleaseNil(t *testing.T) {
	var mb *MsgBuf
	mb.Release() // error paths release unconditionally
}

func TestMsgBufGrowPreservesContents(t *testing.T) {
	mb := GetMsgBuf(100)
	for i := range mb.b {
		mb.b[i] = byte(i)
	}
	snapshot := append([]byte(nil), mb.Bytes()...)

	// Within-class growth.
	mb.grow(200)
	if len(mb.Bytes()) != 200 || !bytes.Equal(mb.Bytes()[:100], snapshot) {
		t.Fatal("in-place grow lost contents")
	}
	// Cross-class growth.
	mb.grow(10 << 10)
	if len(mb.Bytes()) != 10<<10 || !bytes.Equal(mb.Bytes()[:100], snapshot) {
		t.Fatal("cross-class grow lost contents")
	}
	// Beyond the top class.
	mb.grow((64 << 10) + 5)
	if len(mb.Bytes()) != (64<<10)+5 || !bytes.Equal(mb.Bytes()[:100], snapshot) {
		t.Fatal("oversized grow lost contents")
	}
	mb.Release()
}

// TestMsgBufPoolClassInvariant checks that recycling never plants a
// wrong-capacity buffer in a class pool: after arbitrary get/grow/release
// traffic, fresh buffers from each class still have that class's capacity.
func TestMsgBufPoolClassInvariant(t *testing.T) {
	for i := 0; i < 100; i++ {
		mb := GetMsgBuf(64)
		mb.grow(1 << 10)
		mb.grow(20 << 10)
		mb.Release()
	}
	for _, n := range []int{1, 600, 9 << 10} {
		mb := GetMsgBuf(n)
		ci := classFor(n)
		if cap(mb.b) != msgBufClasses[ci] {
			t.Fatalf("GetMsgBuf(%d): cap %d escaped its class %d", n, cap(mb.b), msgBufClasses[ci])
		}
		mb.Release()
	}
}

// TestDecodeRequestAllocs is the steady-state guard for the zero-allocation
// receive path: decoding a warm request (pooled decoder, borrowed octets,
// interned operation name) must not allocate.
func TestDecodeRequestAllocs(t *testing.T) {
	msg := EncodeRequest(cdr.BigEndian, RequestHeader{
		RequestID:        7,
		ResponseExpected: true,
		ObjectKey:        MakeObjectKey("svc", "obj"),
		Operation:        "ping",
	}, nil)
	body := msg[HeaderLen:]
	// Warm the interner and pools.
	if _, d, err := DecodeRequest(cdr.BigEndian, body); err != nil {
		t.Fatal(err)
	} else {
		d.Release()
	}
	allocs := testing.AllocsPerRun(100, func() {
		_, d, err := DecodeRequest(cdr.BigEndian, body)
		if err != nil {
			t.Fatal(err)
		}
		d.Release()
	})
	if allocs > 2 {
		t.Fatalf("DecodeRequest allocates %.1f objects per op, want <= 2", allocs)
	}
}

// TestDecodeReplyAllocs mirrors TestDecodeRequestAllocs for the client side.
func TestDecodeReplyAllocs(t *testing.T) {
	msg := EncodeReply(cdr.BigEndian, ReplyHeader{RequestID: 7, Status: ReplyNoException},
		func(e *cdr.Encoder) { e.WriteULong(42) })
	body := msg[HeaderLen:]
	if _, d, err := DecodeReply(cdr.BigEndian, body); err != nil {
		t.Fatal(err)
	} else {
		d.Release()
	}
	allocs := testing.AllocsPerRun(100, func() {
		_, d, err := DecodeReply(cdr.BigEndian, body)
		if err != nil {
			t.Fatal(err)
		}
		d.Release()
	})
	if allocs > 2 {
		t.Fatalf("DecodeReply allocates %.1f objects per op, want <= 2", allocs)
	}
}

// TestReadMessagePooledAllocs checks the framing layer itself recycles: a
// warm non-fragmented read allocates nothing.
func TestReadMessagePooledAllocs(t *testing.T) {
	msg := EncodeMessage(cdr.BigEndian, MsgRequest, bytes.Repeat([]byte{1}, 64))
	rd := bytes.NewReader(msg)
	allocs := testing.AllocsPerRun(100, func() {
		rd.Reset(msg)
		_, mb, err := ReadMessagePooled(rd)
		if err != nil {
			t.Fatal(err)
		}
		mb.Release()
	})
	if allocs > 0 {
		t.Fatalf("ReadMessagePooled allocates %.1f objects per op, want 0", allocs)
	}
}
