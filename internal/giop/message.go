// Package giop implements the subset of the OMG General Inter-ORB Protocol
// (GIOP) that the MEAD proactive-recovery framework manipulates: message
// framing, Request and Reply headers, system exceptions, Interoperable
// Object References (IORs) with IIOP profiles, persistent object keys with
// the paper's 16-bit hash, and the custom MEAD messages that the framework
// piggybacks onto regular GIOP replies.
//
// Framing follows GIOP 1.0 with the GIOP 1.2 reply-status extensions
// (LOCATION_FORWARD_PERM and NEEDS_ADDRESSING_MODE), which is exactly the
// vocabulary the paper's three proactive schemes use. CDR alignment inside a
// message body is computed relative to the start of the body; both sides of
// this implementation agree on that convention.
package giop

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"mead/internal/cdr"
)

// Protocol constants.
const (
	// Magic is the four-byte GIOP message prefix.
	Magic = "GIOP"
	// HeaderLen is the fixed GIOP message header length.
	HeaderLen = 12
	// DefaultMaxMessageSize is the default bound on accepted message and
	// frame bodies, guarding against corrupt or hostile length prefixes.
	DefaultMaxMessageSize = 16 << 20
	// VersionMajor and VersionMinor identify the GIOP framing in use.
	VersionMajor = 1
	VersionMinor = 0
)

var maxMessageSize atomic.Int64

func init() { maxMessageSize.Store(DefaultMaxMessageSize) }

// MaxMessageSize returns the current bound on message/frame body sizes.
// Every frame reader (GIOP headers, MEAD headers, fragment reassembly)
// checks a length prefix against it before allocating.
func MaxMessageSize() int { return int(maxMessageSize.Load()) }

// SetMaxMessageSize reconfigures the body-size bound (process-wide) and
// returns the previous value. Values below HeaderLen are clamped to
// HeaderLen; use DefaultMaxMessageSize to restore the default.
func SetMaxMessageSize(n int) int {
	if n < HeaderLen {
		n = HeaderLen
	}
	return int(maxMessageSize.Swap(int64(n)))
}

// MsgType identifies a GIOP message kind.
type MsgType uint8

// GIOP message types.
const (
	MsgRequest         MsgType = 0
	MsgReply           MsgType = 1
	MsgCancelRequest   MsgType = 2
	MsgLocateRequest   MsgType = 3
	MsgLocateReply     MsgType = 4
	MsgCloseConnection MsgType = 5
	MsgMessageError    MsgType = 6
)

func (t MsgType) String() string {
	switch t {
	case MsgRequest:
		return "Request"
	case MsgReply:
		return "Reply"
	case MsgCancelRequest:
		return "CancelRequest"
	case MsgLocateRequest:
		return "LocateRequest"
	case MsgLocateReply:
		return "LocateReply"
	case MsgCloseConnection:
		return "CloseConnection"
	case MsgMessageError:
		return "MessageError"
	case MsgFragment:
		return "Fragment"
	case MsgBatch:
		return "Batch"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Framing errors.
var (
	// ErrBadMagic reports a frame that does not begin with "GIOP" (or
	// "MEAD" where MEAD frames are allowed).
	ErrBadMagic = errors.New("giop: bad magic")
	// ErrBadVersion reports an unsupported GIOP version.
	ErrBadVersion = errors.New("giop: unsupported version")
	// ErrTooLarge reports a message body exceeding MaxMessageSize.
	ErrTooLarge = errors.New("giop: message exceeds maximum size")
)

// Header is the fixed 12-byte GIOP message header.
type Header struct {
	Major uint8
	Minor uint8
	Order cdr.ByteOrder
	Type  MsgType
	Size  uint32 // body length, excluding the header itself
	// Fragmented mirrors the GIOP 1.1 more-fragments flag: the message is
	// continued by Fragment messages. Readers that reassemble clear it.
	Fragmented bool
}

// EncodeHeader renders the 12-byte wire form of h.
func EncodeHeader(h Header) []byte {
	b := make([]byte, HeaderLen)
	putHeader(b, h)
	return b
}

// putHeader writes the 12-byte wire form of h into b (len(b) >= HeaderLen).
func putHeader(b []byte, h Header) {
	copy(b, Magic)
	b[4] = h.Major
	b[5] = h.Minor
	b[6] = byte(h.Order) & 1
	if h.Fragmented {
		b[6] |= FlagMoreFragments
	}
	b[7] = byte(h.Type)
	if h.Order == cdr.LittleEndian {
		b[8] = byte(h.Size)
		b[9] = byte(h.Size >> 8)
		b[10] = byte(h.Size >> 16)
		b[11] = byte(h.Size >> 24)
	} else {
		b[8] = byte(h.Size >> 24)
		b[9] = byte(h.Size >> 16)
		b[10] = byte(h.Size >> 8)
		b[11] = byte(h.Size)
	}
}

// ParseHeader decodes a 12-byte GIOP header.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderLen {
		return Header{}, fmt.Errorf("giop: header too short (%d bytes): %w", len(b), io.ErrUnexpectedEOF)
	}
	if string(b[:4]) != Magic {
		return Header{}, fmt.Errorf("%w: % x", ErrBadMagic, b[:4])
	}
	h := Header{
		Major:      b[4],
		Minor:      b[5],
		Order:      cdr.ByteOrder(b[6] & 1),
		Type:       MsgType(b[7]),
		Fragmented: b[6]&FlagMoreFragments != 0,
	}
	if h.Major != VersionMajor {
		return Header{}, fmt.Errorf("%w: %d.%d", ErrBadVersion, h.Major, h.Minor)
	}
	if h.Order == cdr.LittleEndian {
		h.Size = uint32(b[8]) | uint32(b[9])<<8 | uint32(b[10])<<16 | uint32(b[11])<<24
	} else {
		h.Size = uint32(b[8])<<24 | uint32(b[9])<<16 | uint32(b[10])<<8 | uint32(b[11])
	}
	if int64(h.Size) > int64(MaxMessageSize()) {
		return Header{}, fmt.Errorf("%w: %d bytes", ErrTooLarge, h.Size)
	}
	return h, nil
}

// EncodeMessage renders a complete GIOP message (header + body) for the
// given type, in the given byte order.
func EncodeMessage(order cdr.ByteOrder, t MsgType, body []byte) []byte {
	h := Header{Major: VersionMajor, Minor: VersionMinor, Order: order, Type: t, Size: uint32(len(body))}
	out := make([]byte, HeaderLen+len(body))
	putHeader(out, h)
	copy(out[HeaderLen:], body)
	return out
}

// beginMessage starts the single-buffer encoding fast path: a pooled
// encoder primed with a placeholder GIOP header, rebased so the body that
// follows forms its own CDR alignment origin (the splice convention both
// peers use). Finish with finishMessage.
func beginMessage(order cdr.ByteOrder) *cdr.Encoder {
	e := cdr.GetEncoder(order)
	e.Skip(HeaderLen)
	e.Rebase()
	return e
}

// finishMessage patches the GIOP header over the placeholder, copies the
// completed message into an exactly sized buffer (the encode path's single
// allocation), and releases the pooled encoder.
func finishMessage(e *cdr.Encoder, order cdr.ByteOrder, t MsgType) []byte {
	buf := e.Bytes()
	putHeader(buf, Header{
		Major: VersionMajor, Minor: VersionMinor,
		Order: order, Type: t, Size: uint32(len(buf) - HeaderLen),
	})
	out := make([]byte, len(buf))
	copy(out, buf)
	e.Release()
	return out
}

// finishMessagePooled patches the GIOP header over the placeholder and
// returns the pooled encoder itself instead of copying the message out: the
// vectored-write fast path. Ownership of the encoder transfers to the
// caller, who hands it to a connection writer; the writer Releases it after
// the transport write returns (docs/PROTOCOL.md §10), which is what removes
// finishMessage's per-message copy and allocation.
func finishMessagePooled(e *cdr.Encoder, order cdr.ByteOrder, t MsgType) *cdr.Encoder {
	buf := e.Bytes()
	putHeader(buf, Header{
		Major: VersionMajor, Minor: VersionMinor,
		Order: order, Type: t, Size: uint32(len(buf) - HeaderLen),
	})
	return e
}

// WriteMessage writes a complete GIOP message to w.
func WriteMessage(w io.Writer, order cdr.ByteOrder, t MsgType, body []byte) error {
	if _, err := w.Write(EncodeMessage(order, t, body)); err != nil {
		return fmt.Errorf("giop: write %v: %w", t, err)
	}
	return nil
}

// ReadMessage reads one logical GIOP message from r, transparently
// reassembling GIOP 1.1 fragments. The returned body is freshly allocated
// and owned by the caller; steady-state connection readers use
// ReadMessagePooled instead, which recycles bodies through the buffer pool.
func ReadMessage(r io.Reader) (Header, []byte, error) {
	h, body, err := readMessageRaw(r)
	if err != nil {
		return Header{}, nil, err
	}
	for fragmented := h.Fragmented; fragmented; {
		fh, err := readHeader(r)
		if err != nil {
			return Header{}, nil, fmt.Errorf("giop: reading continuation fragment: %w", err)
		}
		if fh.Type != MsgFragment {
			return Header{}, nil, fmt.Errorf("giop: expected Fragment, got %v", fh.Type)
		}
		off := len(body)
		if off+int(fh.Size) > MaxMessageSize() {
			return Header{}, nil, fmt.Errorf("%w: reassembled message", ErrTooLarge)
		}
		body = growBytes(body, off+int(fh.Size))
		if _, err := io.ReadFull(r, body[off:]); err != nil {
			return Header{}, nil, fmt.Errorf("giop: short body for %v: %w", fh.Type, err)
		}
		fragmented = fh.Fragmented
	}
	h.Fragmented = false
	h.Size = uint32(len(body))
	return h, body, nil
}

// growBytes extends b to length n, reallocating geometrically so fragment
// trains append each body directly into place instead of building and then
// concatenating intermediate frames.
func growBytes(b []byte, n int) []byte {
	if n <= cap(b) {
		return b[:n]
	}
	newCap := 2 * cap(b)
	if newCap < n {
		newCap = n
	}
	nb := make([]byte, n, newCap)
	copy(nb, b)
	return nb
}
