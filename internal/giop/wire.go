package giop

import "fmt"

// WireFrameLen reports the total on-wire length of the frame (GIOP or MEAD)
// at the head of buf. (0, nil) means buf holds only a prefix of the frame —
// wait for more bytes. A non-nil error means the head of the stream can
// never become a valid frame (bad magic or version, or a length prefix over
// MaxMessageSize). Stream-splicing layers (the interceptor's write path, the
// netfault chaos shim) share this to find frame boundaries without decoding
// message bodies.
func WireFrameLen(buf []byte) (int, error) {
	if len(buf) < HeaderLen { // both header formats are 12 bytes
		return 0, nil
	}
	switch string(buf[:4]) {
	case Magic:
		h, err := ParseHeader(buf[:HeaderLen])
		if err != nil {
			return 0, err
		}
		total := HeaderLen + int(h.Size)
		if len(buf) < total {
			return 0, nil
		}
		return total, nil
	case MeadMagic:
		_, n, err := ParseMeadHeader(buf[:MeadHeaderLen])
		if err != nil {
			return 0, err
		}
		total := MeadHeaderLen + int(n)
		if len(buf) < total {
			return 0, nil
		}
		return total, nil
	default:
		return 0, fmt.Errorf("%w: % x", ErrBadMagic, buf[:4])
	}
}
