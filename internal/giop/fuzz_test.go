package giop

import (
	"bytes"
	"testing"

	"mead/internal/cdr"
)

// Fuzz targets for the zero-copy decode path. The borrow/intern refactor
// must hold two properties for arbitrary (hostile) bodies:
//
//  1. no panics or out-of-bounds reads — every malformed body is rejected
//     with an error; and
//  2. no aliasing corruption — decoding the same body twice yields identical
//     headers, and decoded fields never extend past the body (capacity-capped
//     borrows), so appending to one can't scribble on the message.

func fuzzSeedRequests() [][]byte {
	var seeds [][]byte
	for _, msg := range [][]byte{
		EncodeRequest(cdr.BigEndian, RequestHeader{
			RequestID:        1,
			ResponseExpected: true,
			ObjectKey:        MakeObjectKey("svc", "obj"),
			Operation:        "ping",
		}, nil),
		EncodeRequest(cdr.LittleEndian, RequestHeader{
			RequestID:        0xFFFFFFFF,
			ResponseExpected: false,
			ObjectKey:        []byte{0},
			Operation:        "x",
			Principal:        []byte("me"),
			ServiceContexts:  []ServiceContext{{ID: 7, Data: []byte{1, 2, 3}}},
		}, func(e *cdr.Encoder) { e.WriteString("arg"); e.WriteULong(9) }),
	} {
		seeds = append(seeds, msg[HeaderLen:])
	}
	seeds = append(seeds, nil, []byte{0}, bytes.Repeat([]byte{0xFF}, 40))
	return seeds
}

func FuzzDecodeRequest(f *testing.F) {
	for _, s := range fuzzSeedRequests() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		for _, order := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
			hdr1, d1, err1 := DecodeRequest(order, body)
			if err1 != nil {
				continue
			}
			// Borrowed fields must stay inside the body and be capacity-capped.
			checkBorrow(t, body, hdr1.ObjectKey, "ObjectKey")
			checkBorrow(t, body, hdr1.Principal, "Principal")
			for _, sc := range hdr1.ServiceContexts {
				checkBorrow(t, body, sc.Data, "ServiceContext.Data")
			}
			rest1 := append([]byte(nil), d1.Rest()...)
			d1.Release()

			hdr2, d2, err2 := DecodeRequest(order, body)
			if err2 != nil {
				t.Fatalf("decode not deterministic: %v then %v", err1, err2)
			}
			if hdr1.RequestID != hdr2.RequestID || hdr1.Operation != hdr2.Operation ||
				!bytes.Equal(hdr1.ObjectKey, hdr2.ObjectKey) {
				t.Fatalf("decode not deterministic: %+v vs %+v", hdr1, hdr2)
			}
			if !bytes.Equal(rest1, d2.Rest()) {
				t.Fatal("argument stream not deterministic")
			}
			d2.Release()

			// The id-only fast path must agree with the full parse.
			if id, err := RequestIDOf(order, body); err != nil || id != hdr1.RequestID {
				t.Fatalf("RequestIDOf = %d, %v; DecodeRequest id = %d", id, err, hdr1.RequestID)
			}
		}
	})
}

func FuzzDecodeReply(f *testing.F) {
	okReply := EncodeReply(cdr.BigEndian, ReplyHeader{RequestID: 3, Status: ReplyNoException},
		func(e *cdr.Encoder) { e.WriteULong(42) })
	exReply := EncodeReply(cdr.LittleEndian, ReplyHeader{
		RequestID:       4,
		Status:          ReplySystemException,
		ServiceContexts: []ServiceContext{{ID: 1, Data: []byte{9}}},
	}, func(e *cdr.Encoder) {
		EncodeSystemException(e, &giopInternal)
	})
	f.Add(okReply[HeaderLen:])
	f.Add(exReply[HeaderLen:])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xAA}, 23))
	f.Fuzz(func(t *testing.T, body []byte) {
		for _, order := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
			hdr1, d1, err := DecodeReply(order, body)
			if err != nil {
				continue
			}
			for _, sc := range hdr1.ServiceContexts {
				checkBorrow(t, body, sc.Data, "ServiceContext.Data")
			}
			if hdr1.Status == ReplySystemException {
				// Exercise the interning decode on arbitrary exception bodies.
				_, _ = DecodeSystemException(d1)
			}
			d1.Release()
			if id, err := ReplyIDOf(order, body); err != nil || id != hdr1.RequestID {
				t.Fatalf("ReplyIDOf = %d, %v; DecodeReply id = %d", id, err, hdr1.RequestID)
			}
		}
	})
}

var giopInternal = SystemException{RepoID: RepoInternal, Minor: 1, Completed: CompletedNo}

// checkBorrow asserts that a borrowed slice lies within body and cannot be
// appended into the bytes that follow it (capacity-capped).
func checkBorrow(t *testing.T, body, b []byte, what string) {
	t.Helper()
	if len(b) == 0 {
		return
	}
	if len(b) > len(body) {
		t.Fatalf("%s: %d bytes borrowed from a %d-byte body", what, len(b), len(body))
	}
	if cap(b) != len(b) {
		t.Fatalf("%s: borrow not capacity-capped (len %d, cap %d)", what, len(b), cap(b))
	}
}
