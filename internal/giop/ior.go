package giop

import (
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"

	"mead/internal/cdr"
)

// Profile tags.
const (
	// TagInternetIOP identifies an IIOP (TCP) profile.
	TagInternetIOP uint32 = 0
)

// TaggedProfile is one profile of an IOR; Data is a CDR encapsulation whose
// layout depends on Tag.
type TaggedProfile struct {
	Tag  uint32
	Data []byte
}

// IOR is an Interoperable Object Reference: the typed, located name of a
// CORBA object. The paper's LOCATION_FORWARD scheme ships IORs of the next
// available replica in fabricated replies.
type IOR struct {
	TypeID   string
	Profiles []TaggedProfile
}

// IIOPProfile is the decoded body of a TAG_INTERNET_IOP profile.
type IIOPProfile struct {
	Major     uint8
	Minor     uint8
	Host      string
	Port      uint16
	ObjectKey []byte
}

// IOR errors.
var (
	// ErrNoIIOPProfile reports an IOR without a usable IIOP profile.
	ErrNoIIOPProfile = errors.New("giop: IOR has no IIOP profile")
	// ErrBadIOR reports a malformed stringified IOR.
	ErrBadIOR = errors.New("giop: malformed stringified IOR")
)

// NewIOR builds a single-profile IIOP IOR for an object at host:port with
// the given persistent object key.
func NewIOR(typeID, host string, port uint16, objectKey []byte) IOR {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteOctet(byte(cdr.BigEndian))
	e.WriteOctet(VersionMajor)
	e.WriteOctet(VersionMinor)
	e.WriteString(host)
	e.WriteUShort(port)
	e.WriteOctets(objectKey)
	return IOR{
		TypeID:   typeID,
		Profiles: []TaggedProfile{{Tag: TagInternetIOP, Data: e.Bytes()}},
	}
}

// NewIORForAddr is NewIOR taking a combined "host:port" address.
func NewIORForAddr(typeID, addr string, objectKey []byte) (IOR, error) {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return IOR{}, fmt.Errorf("giop: bad address %q: %w", addr, err)
	}
	port, err := strconv.ParseUint(portStr, 10, 16)
	if err != nil {
		return IOR{}, fmt.Errorf("giop: bad port in %q: %w", addr, err)
	}
	return NewIOR(typeID, host, uint16(port), objectKey), nil
}

// IIOP returns the first IIOP profile of the IOR.
func (ior IOR) IIOP() (IIOPProfile, error) {
	for _, p := range ior.Profiles {
		if p.Tag != TagInternetIOP {
			continue
		}
		if len(p.Data) < 3 {
			return IIOPProfile{}, fmt.Errorf("giop: IIOP profile too short: %w", cdr.ErrTruncated)
		}
		d := cdr.NewDecoder(p.Data, cdr.ByteOrder(p.Data[0]&1))
		if _, err := d.ReadOctet(); err != nil { // byte-order flag
			return IIOPProfile{}, err
		}
		var prof IIOPProfile
		var err error
		if prof.Major, err = d.ReadOctet(); err != nil {
			return IIOPProfile{}, fmt.Errorf("giop: IIOP major: %w", err)
		}
		if prof.Minor, err = d.ReadOctet(); err != nil {
			return IIOPProfile{}, fmt.Errorf("giop: IIOP minor: %w", err)
		}
		if prof.Host, err = d.ReadString(); err != nil {
			return IIOPProfile{}, fmt.Errorf("giop: IIOP host: %w", err)
		}
		if prof.Port, err = d.ReadUShort(); err != nil {
			return IIOPProfile{}, fmt.Errorf("giop: IIOP port: %w", err)
		}
		if prof.ObjectKey, err = d.ReadOctets(); err != nil {
			return IIOPProfile{}, fmt.Errorf("giop: IIOP object key: %w", err)
		}
		return prof, nil
	}
	return IIOPProfile{}, ErrNoIIOPProfile
}

// Addr returns the "host:port" endpoint of the IOR's IIOP profile.
func (ior IOR) Addr() (string, error) {
	prof, err := ior.IIOP()
	if err != nil {
		return "", err
	}
	return net.JoinHostPort(prof.Host, strconv.Itoa(int(prof.Port))), nil
}

// EncodeIOR appends the CDR form of ior to e.
func EncodeIOR(e *cdr.Encoder, ior IOR) {
	e.WriteString(ior.TypeID)
	e.WriteULong(uint32(len(ior.Profiles)))
	for _, p := range ior.Profiles {
		e.WriteULong(p.Tag)
		e.WriteOctets(p.Data)
	}
}

// DecodeIOR reads the CDR form of an IOR from d.
func DecodeIOR(d *cdr.Decoder) (IOR, error) {
	var ior IOR
	var err error
	if ior.TypeID, err = d.ReadString(); err != nil {
		return ior, fmt.Errorf("giop: IOR type id: %w", err)
	}
	n, err := d.ReadULong()
	if err != nil {
		return ior, fmt.Errorf("giop: IOR profile count: %w", err)
	}
	if n > 64 {
		return ior, fmt.Errorf("giop: implausible IOR profile count %d", n)
	}
	for i := uint32(0); i < n; i++ {
		var p TaggedProfile
		if p.Tag, err = d.ReadULong(); err != nil {
			return ior, fmt.Errorf("giop: IOR profile tag: %w", err)
		}
		if p.Data, err = d.ReadOctets(); err != nil {
			return ior, fmt.Errorf("giop: IOR profile data: %w", err)
		}
		ior.Profiles = append(ior.Profiles, p)
	}
	return ior, nil
}

// String renders the stringified "IOR:..." form: the hex dump of a CDR
// encapsulation holding the IOR, as registered with a Naming Service.
func (ior IOR) String() string {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteOctet(byte(cdr.BigEndian))
	EncodeIOR(e, ior)
	return "IOR:" + hex.EncodeToString(e.Bytes())
}

// ParseIOR parses the stringified "IOR:..." form.
func ParseIOR(s string) (IOR, error) {
	if !strings.HasPrefix(s, "IOR:") {
		return IOR{}, fmt.Errorf("%w: missing IOR: prefix", ErrBadIOR)
	}
	raw, err := hex.DecodeString(s[4:])
	if err != nil {
		return IOR{}, fmt.Errorf("%w: %v", ErrBadIOR, err)
	}
	if len(raw) < 1 {
		return IOR{}, fmt.Errorf("%w: empty body", ErrBadIOR)
	}
	d := cdr.NewDecoder(raw, cdr.ByteOrder(raw[0]&1))
	if _, err := d.ReadOctet(); err != nil {
		return IOR{}, err
	}
	ior, err := DecodeIOR(d)
	if err != nil {
		return IOR{}, fmt.Errorf("%w: %v", ErrBadIOR, err)
	}
	return ior, nil
}
