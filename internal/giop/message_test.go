package giop

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"mead/internal/cdr"
)

func TestHeaderRoundTrip(t *testing.T) {
	tests := []Header{
		{Major: 1, Minor: 0, Order: cdr.BigEndian, Type: MsgRequest, Size: 0},
		{Major: 1, Minor: 0, Order: cdr.LittleEndian, Type: MsgReply, Size: 1234},
		{Major: 1, Minor: 2, Order: cdr.BigEndian, Type: MsgCloseConnection, Size: 7},
	}
	for _, h := range tests {
		b := EncodeHeader(h)
		if len(b) != HeaderLen {
			t.Fatalf("header length %d, want %d", len(b), HeaderLen)
		}
		got, err := ParseHeader(b)
		if err != nil {
			t.Fatalf("ParseHeader(%+v): %v", h, err)
		}
		if got != h {
			t.Fatalf("round trip %+v -> %+v", h, got)
		}
	}
}

func TestParseHeaderErrors(t *testing.T) {
	if _, err := ParseHeader([]byte("GIO")); err == nil {
		t.Fatal("short header accepted")
	}
	bad := EncodeHeader(Header{Major: 1, Type: MsgRequest})
	bad[0] = 'X'
	if _, err := ParseHeader(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic err = %v", err)
	}
	ver := EncodeHeader(Header{Major: 2, Type: MsgRequest})
	if _, err := ParseHeader(ver); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version err = %v", err)
	}
	big := EncodeHeader(Header{Major: 1, Type: MsgRequest, Size: uint32(MaxMessageSize()) + 1})
	if _, err := ParseHeader(big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("too-large err = %v", err)
	}
}

func TestMessageRoundTripOverPipe(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("hello giop body")
	if err := WriteMessage(&buf, cdr.LittleEndian, MsgReply, body); err != nil {
		t.Fatal(err)
	}
	h, got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != MsgReply || h.Order != cdr.LittleEndian || h.Size != uint32(len(body)) {
		t.Fatalf("header = %+v", h)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("body = %q", got)
	}
}

func TestReadMessageTruncatedBody(t *testing.T) {
	msg := EncodeMessage(cdr.BigEndian, MsgRequest, []byte("full body"))
	_, _, err := ReadMessage(bytes.NewReader(msg[:len(msg)-3]))
	if err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestReadMessageEOF(t *testing.T) {
	_, _, err := ReadMessage(bytes.NewReader(nil))
	if !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	names := map[MsgType]string{
		MsgRequest:         "Request",
		MsgReply:           "Reply",
		MsgCancelRequest:   "CancelRequest",
		MsgLocateRequest:   "LocateRequest",
		MsgLocateReply:     "LocateReply",
		MsgCloseConnection: "CloseConnection",
		MsgMessageError:    "MessageError",
		MsgType(99):        "MsgType(99)",
	}
	for mt, want := range names {
		if got := mt.String(); got != want {
			t.Errorf("MsgType(%d).String() = %q, want %q", mt, got, want)
		}
	}
}

func TestQuickHeaderRoundTrip(t *testing.T) {
	f := func(minor uint8, little bool, mt uint8, size uint32) bool {
		order := cdr.BigEndian
		if little {
			order = cdr.LittleEndian
		}
		h := Header{Major: 1, Minor: minor, Order: order, Type: MsgType(mt % 7), Size: size % uint32(MaxMessageSize())}
		got, err := ParseHeader(EncodeHeader(h))
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
