package giop

import (
	"errors"
	"fmt"

	"mead/internal/cdr"
)

// GIOP defines no multi-message frame; this reproduction adds one as a
// vendor extension (the transport already carries custom MEAD frames on the
// same streams): message type 8, whose body is a concatenation of complete,
// unfragmented GIOP messages. The pooled client transport coalesces a burst
// of concurrent small requests into one batch frame, and the server decodes
// it back into independent dispatches — one transport read and one header
// parse for N requests.
//
// Batch frames travel client→server only, and only when the client opted in
// (orb.WithRequestBatching): replies are never batch-framed, so clients that
// predate the extension interoperate unchanged. Servers always accept them.
// Layout and ownership rules are documented in docs/PROTOCOL.md §10.

// MsgBatch is the vendor-extension batch message type. GIOP 1.1 stops at
// Fragment (7); 8 is outside the standard's numbering.
const MsgBatch MsgType = 8

// ErrBatchedFrame reports a malformed or disallowed sub-frame inside a
// batch body (nested batch, fragmented sub-message, torn trailing bytes).
var ErrBatchedFrame = errors.New("giop: malformed batched sub-frame")

// PutBatchHeader writes the 12-byte batch-frame header covering total bytes
// of already-encoded sub-frames into b (len(b) >= HeaderLen). The writer
// emits the header and the queued sub-frames as one vectored write, so the
// batch frame never exists contiguously in memory on the send side.
func PutBatchHeader(b []byte, order cdr.ByteOrder, total int) {
	putHeader(b, Header{
		Major: VersionMajor, Minor: VersionMinor,
		Order: order, Type: MsgBatch, Size: uint32(total),
	})
}

// ForEachInBatch walks the sub-frames of a batch-frame body, invoking fn
// with each sub-frame's parsed header and body. The body slices alias batch
// (zero-copy); callers that hand them to concurrent consumers must keep the
// backing buffer alive (MsgBuf.Retain) until every consumer is done.
//
// Every sub-frame is bounds-checked the same way the stream readers check
// wire frames: ParseHeader enforces MaxMessageSize on each sub-frame's
// length prefix, nested batches and fragmented sub-messages are rejected,
// and trailing bytes that cannot form a whole frame fail with
// ErrBatchedFrame rather than being silently dropped.
func ForEachInBatch(batch []byte, fn func(h Header, body []byte) error) error {
	for off := 0; off < len(batch); {
		rest := batch[off:]
		if len(rest) < HeaderLen {
			return fmt.Errorf("%w: %d trailing bytes", ErrBatchedFrame, len(rest))
		}
		h, err := ParseHeader(rest[:HeaderLen])
		if err != nil {
			return fmt.Errorf("giop: batched sub-frame at offset %d: %w", off, err)
		}
		if h.Type == MsgBatch {
			return fmt.Errorf("%w: nested batch", ErrBatchedFrame)
		}
		if h.Fragmented || h.Type == MsgFragment {
			return fmt.Errorf("%w: fragmented sub-message", ErrBatchedFrame)
		}
		end := HeaderLen + int(h.Size)
		if end > len(rest) {
			return fmt.Errorf("%w: sub-frame of %d bytes exceeds batch remainder %d",
				ErrBatchedFrame, h.Size, len(rest)-HeaderLen)
		}
		if err := fn(h, rest[HeaderLen:end:end]); err != nil {
			return err
		}
		off += end
	}
	return nil
}
