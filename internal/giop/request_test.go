package giop

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"mead/internal/cdr"
)

func testRequestHeader() RequestHeader {
	return RequestHeader{
		ServiceContexts:  []ServiceContext{{ID: ServiceContextMead, Data: []byte{1, 2}}},
		RequestID:        42,
		ResponseExpected: true,
		ObjectKey:        MakeObjectKey("timeofday", "clock"),
		Operation:        "time_of_day",
		Principal:        []byte("anon"),
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, order := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
		hdr := testRequestHeader()
		msg := EncodeRequest(order, hdr, func(e *cdr.Encoder) {
			e.WriteULong(7)
			e.WriteString("arg")
		})
		h, body, err := ReadMessage(bytes.NewReader(msg))
		if err != nil {
			t.Fatal(err)
		}
		if h.Type != MsgRequest {
			t.Fatalf("type = %v", h.Type)
		}
		got, args, err := DecodeRequest(h.Order, body)
		if err != nil {
			t.Fatal(err)
		}
		if got.RequestID != 42 || !got.ResponseExpected || got.Operation != "time_of_day" {
			t.Fatalf("header = %+v", got)
		}
		if !bytes.Equal(got.ObjectKey, hdr.ObjectKey) {
			t.Fatalf("object key = %q", got.ObjectKey)
		}
		if len(got.ServiceContexts) != 1 || got.ServiceContexts[0].ID != ServiceContextMead {
			t.Fatalf("service contexts = %+v", got.ServiceContexts)
		}
		if v, _ := args.ReadULong(); v != 7 {
			t.Fatalf("arg ulong = %d", v)
		}
		if s, _ := args.ReadString(); s != "arg" {
			t.Fatalf("arg string = %q", s)
		}
	}
}

func TestRequestNoArgs(t *testing.T) {
	msg := EncodeRequest(cdr.BigEndian, RequestHeader{RequestID: 1, Operation: "ping"}, nil)
	h, body, err := ReadMessage(bytes.NewReader(msg))
	if err != nil {
		t.Fatal(err)
	}
	got, args, err := DecodeRequest(h.Order, body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Operation != "ping" || args.Remaining() != 0 {
		t.Fatalf("header = %+v remaining = %d", got, args.Remaining())
	}
}

func TestDecodeRequestTruncated(t *testing.T) {
	msg := EncodeRequest(cdr.BigEndian, testRequestHeader(), nil)
	_, body, err := ReadMessage(bytes.NewReader(msg))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(body); cut += 5 {
		if _, _, err := DecodeRequest(cdr.BigEndian, body[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReplyRoundTripAllStatuses(t *testing.T) {
	statuses := []ReplyStatus{
		ReplyNoException, ReplyUserException, ReplySystemException,
		ReplyLocationForward, ReplyLocationForwardPerm, ReplyNeedsAddressingMode,
	}
	for _, st := range statuses {
		msg := EncodeReply(cdr.LittleEndian, ReplyHeader{RequestID: 9, Status: st}, nil)
		h, body, err := ReadMessage(bytes.NewReader(msg))
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := DecodeReply(h.Order, body)
		if err != nil {
			t.Fatalf("status %v: %v", st, err)
		}
		if got.RequestID != 9 || got.Status != st {
			t.Fatalf("reply header = %+v, want status %v", got, st)
		}
	}
}

func TestDecodeReplyUnknownStatus(t *testing.T) {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteULong(0) // no service contexts
	e.WriteULong(1) // request id
	e.WriteULong(77)
	if _, _, err := DecodeReply(cdr.BigEndian, e.Bytes()); err == nil {
		t.Fatal("unknown reply status accepted")
	}
}

func TestSystemExceptionRoundTrip(t *testing.T) {
	msg := EncodeReply(cdr.BigEndian, ReplyHeader{RequestID: 5, Status: ReplySystemException}, func(e *cdr.Encoder) {
		EncodeSystemException(e, CommFailure(2, CompletedMaybe))
	})
	h, body, err := ReadMessage(bytes.NewReader(msg))
	if err != nil {
		t.Fatal(err)
	}
	hdr, d, err := DecodeReply(h.Order, body)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Status != ReplySystemException {
		t.Fatalf("status = %v", hdr.Status)
	}
	se, err := DecodeSystemException(d)
	if err != nil {
		t.Fatal(err)
	}
	if se.RepoID != RepoCommFailure || se.Minor != 2 || se.Completed != CompletedMaybe {
		t.Fatalf("exception = %+v", se)
	}
}

func TestSystemExceptionErrorsIs(t *testing.T) {
	err := error(CommFailure(1, CompletedNo))
	if !errors.Is(err, &SystemException{RepoID: RepoCommFailure}) {
		t.Fatal("COMM_FAILURE does not match sentinel")
	}
	if errors.Is(err, &SystemException{RepoID: RepoTransient}) {
		t.Fatal("COMM_FAILURE matched TRANSIENT sentinel")
	}
	var se *SystemException
	if !errors.As(err, &se) || se.Minor != 1 {
		t.Fatal("errors.As failed")
	}
}

func TestExceptionErrorString(t *testing.T) {
	got := Transient(3, CompletedNo).Error()
	want := "CORBA system exception IDL:omg.org/CORBA/TRANSIENT:1.0 (minor 3, COMPLETED_NO)"
	if got != want {
		t.Fatalf("Error() = %q, want %q", got, want)
	}
}

func TestCompletionStatusString(t *testing.T) {
	if CompletedYes.String() != "COMPLETED_YES" || CompletionStatus(9).String() != "CompletionStatus(9)" {
		t.Fatal("unexpected CompletionStatus strings")
	}
}

func TestReplyStatusString(t *testing.T) {
	if ReplyLocationForward.String() != "LOCATION_FORWARD" ||
		ReplyNeedsAddressingMode.String() != "NEEDS_ADDRESSING_MODE" ||
		ReplyStatus(42).String() != "ReplyStatus(42)" {
		t.Fatal("unexpected ReplyStatus strings")
	}
}

func TestServiceContextCountGuard(t *testing.T) {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteULong(1 << 30)
	if _, _, err := DecodeRequest(cdr.BigEndian, e.Bytes()); err == nil {
		t.Fatal("implausible service-context count accepted")
	}
}

func TestQuickRequestRoundTrip(t *testing.T) {
	f := func(id uint32, respond bool, op string, key, principal []byte, little bool) bool {
		order := cdr.BigEndian
		if little {
			order = cdr.LittleEndian
		}
		hdr := RequestHeader{
			RequestID:        id,
			ResponseExpected: respond,
			ObjectKey:        key,
			Operation:        op,
			Principal:        principal,
		}
		msg := EncodeRequest(order, hdr, nil)
		h, body, err := ReadMessage(bytes.NewReader(msg))
		if err != nil {
			return false
		}
		got, _, err := DecodeRequest(h.Order, body)
		if err != nil {
			return false
		}
		return got.RequestID == id && got.ResponseExpected == respond &&
			got.Operation == op && bytes.Equal(got.ObjectKey, key) &&
			bytes.Equal(got.Principal, principal)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
