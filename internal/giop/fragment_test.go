package giop

import (
	"bytes"
	"testing"
	"testing/quick"

	"mead/internal/cdr"
)

func bigRequest(payload int) []byte {
	return EncodeRequest(cdr.BigEndian, RequestHeader{
		RequestID:        9,
		ResponseExpected: true,
		ObjectKey:        MakeObjectKey("s", "o"),
		Operation:        "bulk",
	}, func(e *cdr.Encoder) {
		e.WriteOctets(bytes.Repeat([]byte{0xAB}, payload))
	})
}

func TestFragmentMessageSmallUnchanged(t *testing.T) {
	msg := bigRequest(10)
	frames, err := FragmentMessage(msg, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 || !bytes.Equal(frames[0], msg) {
		t.Fatalf("small message was fragmented into %d frames", len(frames))
	}
}

func TestFragmentAndReassembleRoundTrip(t *testing.T) {
	msg := bigRequest(1000)
	frames, err := FragmentMessage(msg, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) < 8 {
		t.Fatalf("frames = %d, want many", len(frames))
	}
	// First frame is the original type with the more-flag; the rest are
	// Fragment messages.
	h0, err := ParseHeader(frames[0][:HeaderLen])
	if err != nil {
		t.Fatal(err)
	}
	if h0.Type != MsgRequest || !h0.Fragmented {
		t.Fatalf("first frame header = %+v", h0)
	}
	hn, err := ParseHeader(frames[len(frames)-1][:HeaderLen])
	if err != nil {
		t.Fatal(err)
	}
	if hn.Type != MsgFragment || hn.Fragmented {
		t.Fatalf("last frame header = %+v", hn)
	}

	var wire bytes.Buffer
	for _, f := range frames {
		wire.Write(f)
	}
	h, body, err := ReadMessage(&wire)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != MsgRequest || h.Fragmented {
		t.Fatalf("assembled header = %+v", h)
	}
	if !bytes.Equal(body, msg[HeaderLen:]) {
		t.Fatal("assembled body differs from original")
	}
	hdr, args, err := DecodeRequest(h.Order, body)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Operation != "bulk" {
		t.Fatalf("operation = %q", hdr.Operation)
	}
	data, err := args.ReadOctets()
	if err != nil || len(data) != 1000 {
		t.Fatalf("payload = %d bytes, %v", len(data), err)
	}
}

func TestReadFrameReassemblesFragments(t *testing.T) {
	msg := bigRequest(600)
	frames, err := FragmentMessage(msg, 100)
	if err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	for _, f := range frames {
		wire.Write(f)
	}
	wireLen := wire.Len()
	f, err := ReadFrame(&wire)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != FrameGIOP || f.Header.Type != MsgRequest || f.Header.Fragmented {
		t.Fatalf("frame = %+v", f.Header)
	}
	// Raw preserves every wire byte (pass-through fidelity).
	if len(f.Raw) != wireLen {
		t.Fatalf("raw = %d bytes, wire = %d", len(f.Raw), wireLen)
	}
	// Body is the assembled logical body.
	if !bytes.Equal(f.Body(), msg[HeaderLen:]) {
		t.Fatal("assembled frame body differs")
	}
}

// TestFragmentFramesIndependent guards against the aliasing bug where
// frames shared a growing backing array, so appending a later frame could
// scribble over an earlier one: every emitted frame must still carry its
// exact header and body chunk after the whole train has been built.
func TestFragmentFramesIndependent(t *testing.T) {
	const payload, maxBody = 1000, 128
	msg := bigRequest(payload)
	body := msg[HeaderLen:]
	frames, err := FragmentMessage(msg, maxBody)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for i, fr := range frames {
		h, err := ParseHeader(fr[:HeaderLen])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		chunk := fr[HeaderLen:]
		if int(h.Size) != len(chunk) {
			t.Fatalf("frame %d: header size %d, body %d", i, h.Size, len(chunk))
		}
		if !bytes.Equal(chunk, body[off:off+len(chunk)]) {
			t.Fatalf("frame %d: body chunk corrupted", i)
		}
		wantMore := off+len(chunk) < len(body)
		if h.Fragmented != wantMore {
			t.Fatalf("frame %d: more-fragments = %v, want %v", i, h.Fragmented, wantMore)
		}
		off += len(chunk)
	}
	if off != len(body) {
		t.Fatalf("frames cover %d bytes, body is %d", off, len(body))
	}
	// Writing into one frame's spare capacity must not leak into another.
	for i := range frames {
		frames[i] = append(frames[i], 0xFF)
	}
	off = 0
	for i, fr := range frames {
		chunk := fr[HeaderLen : len(fr)-1]
		if !bytes.Equal(chunk, body[off:off+len(chunk)]) {
			t.Fatalf("frame %d aliases a sibling's backing array", i)
		}
		off += len(chunk)
	}
}

func TestReadMessagePooledRoundTrip(t *testing.T) {
	msg := bigRequest(1000)
	frames, err := FragmentMessage(msg, 128)
	if err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	for _, f := range frames {
		wire.Write(f)
	}
	h, mb, err := ReadMessagePooled(&wire)
	if err != nil {
		t.Fatal(err)
	}
	defer mb.Release()
	if h.Type != MsgRequest || h.Fragmented {
		t.Fatalf("assembled header = %+v", h)
	}
	if int(h.Size) != len(mb.Bytes()) {
		t.Fatalf("header size %d, body %d", h.Size, len(mb.Bytes()))
	}
	if !bytes.Equal(mb.Bytes(), msg[HeaderLen:]) {
		t.Fatal("assembled body differs from original")
	}
}

func TestReadMessagePooledRejectsWrongContinuation(t *testing.T) {
	msg := bigRequest(600)
	frames, err := FragmentMessage(msg, 100)
	if err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	wire.Write(frames[0])
	wire.Write(EncodeMessage(cdr.BigEndian, MsgReply, nil))
	if _, _, err := ReadMessagePooled(&wire); err == nil {
		t.Fatal("wrong continuation accepted")
	}
}

func TestFragmentErrors(t *testing.T) {
	msg := bigRequest(100)
	if _, err := FragmentMessage(msg, 0); err == nil {
		t.Fatal("zero fragment size accepted")
	}
	if _, err := FragmentMessage(msg[:8], 64); err == nil {
		t.Fatal("short message accepted")
	}
	truncated := append([]byte(nil), msg...)
	truncated = truncated[:len(truncated)-4]
	if _, err := FragmentMessage(truncated, 64); err == nil {
		t.Fatal("length-mismatched message accepted")
	}
}

func TestReassemblyRejectsWrongContinuation(t *testing.T) {
	msg := bigRequest(600)
	frames, err := FragmentMessage(msg, 100)
	if err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	wire.Write(frames[0])
	// Follow with a non-Fragment message instead of the continuation.
	wire.Write(EncodeMessage(cdr.BigEndian, MsgReply, nil))
	if _, _, err := ReadMessage(&wire); err == nil {
		t.Fatal("wrong continuation accepted")
	}
}

func TestWriteMessageFragmentedDisabled(t *testing.T) {
	msg := bigRequest(300)
	var out bytes.Buffer
	if err := WriteMessageFragmented(&out, msg, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), msg) {
		t.Fatal("disabled fragmentation altered the message")
	}
}

func TestQuickFragmentRoundTrip(t *testing.T) {
	f := func(payloadLen uint16, fragSize uint8) bool {
		size := int(payloadLen%4000) + 1
		frag := int(fragSize%200) + 16
		msg := bigRequest(size)
		frames, err := FragmentMessage(msg, frag)
		if err != nil {
			return false
		}
		var wire bytes.Buffer
		for _, fr := range frames {
			wire.Write(fr)
		}
		_, body, err := ReadMessage(&wire)
		if err != nil {
			return false
		}
		return bytes.Equal(body, msg[HeaderLen:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
