package giop

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"mead/internal/cdr"
)

func TestNewIORAndIIOP(t *testing.T) {
	key := MakeObjectKey("timeofday", "clock")
	ior := NewIOR("IDL:mead/TimeOfDay:1.0", "127.0.0.1", 9999, key)
	prof, err := ior.IIOP()
	if err != nil {
		t.Fatal(err)
	}
	if prof.Host != "127.0.0.1" || prof.Port != 9999 {
		t.Fatalf("profile = %+v", prof)
	}
	if !bytes.Equal(prof.ObjectKey, key) {
		t.Fatalf("object key = %q", prof.ObjectKey)
	}
	addr, err := ior.Addr()
	if err != nil || addr != "127.0.0.1:9999" {
		t.Fatalf("addr = %q, %v", addr, err)
	}
}

func TestNewIORForAddr(t *testing.T) {
	ior, err := NewIORForAddr("IDL:x:1.0", "10.0.0.5:1234", []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := ior.Addr()
	if err != nil || addr != "10.0.0.5:1234" {
		t.Fatalf("addr = %q, %v", addr, err)
	}
	if _, err := NewIORForAddr("IDL:x:1.0", "no-port-here", nil); err == nil {
		t.Fatal("bad addr accepted")
	}
	if _, err := NewIORForAddr("IDL:x:1.0", "host:notaport", nil); err == nil {
		t.Fatal("bad port accepted")
	}
}

func TestIORCDRRoundTrip(t *testing.T) {
	ior := NewIOR("IDL:mead/TimeOfDay:1.0", "node-3.emulab.example", 2809, MakeObjectKey("svc", "obj"))
	for _, order := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
		e := cdr.NewEncoder(order)
		EncodeIOR(e, ior)
		got, err := DecodeIOR(cdr.NewDecoder(e.Bytes(), order))
		if err != nil {
			t.Fatal(err)
		}
		if got.TypeID != ior.TypeID || len(got.Profiles) != 1 {
			t.Fatalf("decoded IOR = %+v", got)
		}
		if !bytes.Equal(got.Profiles[0].Data, ior.Profiles[0].Data) {
			t.Fatal("profile data mismatch")
		}
	}
}

func TestIORStringifiedRoundTrip(t *testing.T) {
	ior := NewIOR("IDL:mead/TimeOfDay:1.0", "localhost", 40001, MakeObjectKey("timeofday", "clock"))
	s := ior.String()
	if !strings.HasPrefix(s, "IOR:") {
		t.Fatalf("stringified form = %q", s)
	}
	got, err := ParseIOR(s)
	if err != nil {
		t.Fatal(err)
	}
	if got.TypeID != ior.TypeID {
		t.Fatalf("type id = %q", got.TypeID)
	}
	gp, err := got.IIOP()
	if err != nil {
		t.Fatal(err)
	}
	if gp.Host != "localhost" || gp.Port != 40001 {
		t.Fatalf("profile = %+v", gp)
	}
}

func TestParseIORErrors(t *testing.T) {
	cases := []string{"", "ior:abcd", "IOR:zz", "IOR:"}
	for _, s := range cases {
		if _, err := ParseIOR(s); !errors.Is(err, ErrBadIOR) {
			t.Errorf("ParseIOR(%q) err = %v, want ErrBadIOR", s, err)
		}
	}
}

func TestIIOPMissingProfile(t *testing.T) {
	ior := IOR{TypeID: "IDL:x:1.0", Profiles: []TaggedProfile{{Tag: 99, Data: []byte{0}}}}
	if _, err := ior.IIOP(); !errors.Is(err, ErrNoIIOPProfile) {
		t.Fatalf("err = %v, want ErrNoIIOPProfile", err)
	}
	if _, err := (IOR{}).Addr(); err == nil {
		t.Fatal("empty IOR Addr() succeeded")
	}
}

func TestIIOPCorruptProfile(t *testing.T) {
	ior := IOR{Profiles: []TaggedProfile{{Tag: TagInternetIOP, Data: []byte{0, 1}}}}
	if _, err := ior.IIOP(); err == nil {
		t.Fatal("corrupt IIOP profile accepted")
	}
}

func TestDecodeIORProfileGuard(t *testing.T) {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteString("IDL:x:1.0")
	e.WriteULong(1 << 20)
	if _, err := DecodeIOR(cdr.NewDecoder(e.Bytes(), cdr.BigEndian)); err == nil {
		t.Fatal("implausible profile count accepted")
	}
}

func TestQuickIORStringRoundTrip(t *testing.T) {
	f := func(hostRaw uint16, port uint16, obj string) bool {
		host := "h" + strings.Repeat("x", int(hostRaw%20))
		ior := NewIOR("IDL:mead/T:1.0", host, port, MakeObjectKey("s", obj))
		got, err := ParseIOR(ior.String())
		if err != nil {
			return false
		}
		p1, err1 := ior.IIOP()
		p2, err2 := got.IIOP()
		if err1 != nil || err2 != nil {
			return false
		}
		return p1.Host == p2.Host && p1.Port == p2.Port && bytes.Equal(p1.ObjectKey, p2.ObjectKey)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
