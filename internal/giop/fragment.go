package giop

import (
	"fmt"
	"io"
	"sync"
)

// GIOP 1.1 fragmentation: a message whose header carries the
// more-fragments flag is continued by Fragment messages (type 7), the last
// of which clears the flag. TAO fragments large requests/replies this way;
// the mini-ORB supports it behind WithMaxBodyBytes options, and ReadMessage
// and ReadFrame reassemble transparently.

// MsgFragment is the GIOP 1.1 Fragment message type.
const MsgFragment MsgType = 7

// FlagMoreFragments is bit 1 of the header flags octet.
const FlagMoreFragments = 0x02

// FragmentMessage splits a complete GIOP message (header + body) into wire
// messages whose bodies are at most maxBody bytes. A message that already
// fits is returned unchanged as a single element. Each emitted frame owns
// its backing array, so later frames can never clobber earlier ones.
func FragmentMessage(raw []byte, maxBody int) ([][]byte, error) {
	if maxBody <= 0 {
		return nil, fmt.Errorf("giop: fragment size must be positive")
	}
	if len(raw) < HeaderLen {
		return nil, fmt.Errorf("giop: message too short to fragment")
	}
	h, err := ParseHeader(raw[:HeaderLen])
	if err != nil {
		return nil, err
	}
	body := raw[HeaderLen:]
	if len(body) != int(h.Size) {
		return nil, fmt.Errorf("giop: message length mismatch: header %d, body %d", h.Size, len(body))
	}
	if len(body) <= maxBody {
		return [][]byte{raw}, nil
	}

	out := make([][]byte, 0, (len(body)+maxBody-1)/maxBody)
	first := true
	for off := 0; off < len(body); off += maxBody {
		end := off + maxBody
		if end > len(body) {
			end = len(body)
		}
		chunk := body[off:end]
		hdr := Header{
			Major:      h.Major,
			Minor:      1, // fragments are a GIOP >=1.1 feature
			Order:      h.Order,
			Type:       h.Type,
			Size:       uint32(len(chunk)),
			Fragmented: end < len(body),
		}
		if !first {
			hdr.Type = MsgFragment
		}
		frame := make([]byte, HeaderLen+len(chunk))
		putHeader(frame, hdr)
		copy(frame[HeaderLen:], chunk)
		out = append(out, frame)
		first = false
	}
	return out, nil
}

// hdrScratchPool recycles the 12-byte header read buffers: a stack array
// would escape through the io.Reader interface and cost one allocation per
// message, which the zero-allocation receive path cannot afford.
var hdrScratchPool = sync.Pool{New: func() any { return new([HeaderLen]byte) }}

// readHeader reads and parses one 12-byte GIOP header.
func readHeader(r io.Reader) (Header, error) {
	hb := hdrScratchPool.Get().(*[HeaderLen]byte)
	var h Header
	_, err := io.ReadFull(r, hb[:])
	if err == nil {
		h, err = ParseHeader(hb[:])
	}
	hdrScratchPool.Put(hb)
	return h, err
}

// readMessageRaw reads a single wire message without reassembly.
func readMessageRaw(r io.Reader) (Header, []byte, error) {
	h, err := readHeader(r)
	if err != nil {
		return Header{}, nil, err
	}
	body := make([]byte, h.Size)
	if _, err := io.ReadFull(r, body); err != nil {
		return Header{}, nil, fmt.Errorf("giop: short body for %v: %w", h.Type, err)
	}
	return h, body, nil
}

// rawFrame re-renders a wire frame from its parsed parts.
func rawFrame(h Header, body []byte) []byte {
	frame := make([]byte, 0, HeaderLen+len(body))
	frame = append(frame, EncodeHeader(h)...)
	frame = append(frame, body...)
	return frame
}

// ReadMessagePooled reads one logical GIOP message into a pooled buffer,
// reassembling GIOP 1.1 fragments single-copy: each fragment body is read
// from the transport directly into its final position in the destination
// buffer, with no intermediate per-fragment frames. The returned header has
// the fragment flag cleared and Size set to the total body length.
//
// The caller owns the returned MsgBuf and must Release it once the body —
// and everything the zero-copy decoders borrowed from it — is no longer
// needed. This is the receive primitive of the steady-state ORB paths.
func ReadMessagePooled(r io.Reader) (Header, *MsgBuf, error) {
	h, err := readHeader(r)
	if err != nil {
		return Header{}, nil, err
	}
	mb := GetMsgBuf(int(h.Size))
	if _, err := io.ReadFull(r, mb.b); err != nil {
		mb.Release()
		return Header{}, nil, fmt.Errorf("giop: short body for %v: %w", h.Type, err)
	}
	for fragmented := h.Fragmented; fragmented; {
		fh, err := readHeader(r)
		if err != nil {
			mb.Release()
			return Header{}, nil, fmt.Errorf("giop: reading continuation fragment: %w", err)
		}
		if fh.Type != MsgFragment {
			mb.Release()
			return Header{}, nil, fmt.Errorf("giop: expected Fragment, got %v", fh.Type)
		}
		off := len(mb.b)
		if off+int(fh.Size) > MaxMessageSize() {
			mb.Release()
			return Header{}, nil, fmt.Errorf("%w: reassembled message", ErrTooLarge)
		}
		mb.grow(off + int(fh.Size))
		if _, err := io.ReadFull(r, mb.b[off:]); err != nil {
			mb.Release()
			return Header{}, nil, fmt.Errorf("giop: short body for %v: %w", fh.Type, err)
		}
		fragmented = fh.Fragmented
	}
	h.Fragmented = false
	h.Size = uint32(len(mb.b))
	return h, mb, nil
}

// WriteMessageFragmented writes a complete GIOP message, splitting it when
// its body exceeds maxBody (maxBody <= 0 disables fragmentation).
func WriteMessageFragmented(w io.Writer, raw []byte, maxBody int) error {
	if maxBody <= 0 {
		if _, err := w.Write(raw); err != nil {
			return fmt.Errorf("giop: write message: %w", err)
		}
		return nil
	}
	frames, err := FragmentMessage(raw, maxBody)
	if err != nil {
		return err
	}
	for _, frame := range frames {
		if _, err := w.Write(frame); err != nil {
			return fmt.Errorf("giop: write fragment: %w", err)
		}
	}
	return nil
}
