package giop

import (
	"fmt"
	"io"
)

// GIOP 1.1 fragmentation: a message whose header carries the
// more-fragments flag is continued by Fragment messages (type 7), the last
// of which clears the flag. TAO fragments large requests/replies this way;
// the mini-ORB supports it behind WithMaxBodyBytes options, and ReadMessage
// and ReadFrame reassemble transparently.

// MsgFragment is the GIOP 1.1 Fragment message type.
const MsgFragment MsgType = 7

// FlagMoreFragments is bit 1 of the header flags octet.
const FlagMoreFragments = 0x02

// FragmentMessage splits a complete GIOP message (header + body) into wire
// messages whose bodies are at most maxBody bytes. A message that already
// fits is returned unchanged as a single element.
func FragmentMessage(raw []byte, maxBody int) ([][]byte, error) {
	if maxBody <= 0 {
		return nil, fmt.Errorf("giop: fragment size must be positive")
	}
	if len(raw) < HeaderLen {
		return nil, fmt.Errorf("giop: message too short to fragment")
	}
	h, err := ParseHeader(raw[:HeaderLen])
	if err != nil {
		return nil, err
	}
	body := raw[HeaderLen:]
	if len(body) != int(h.Size) {
		return nil, fmt.Errorf("giop: message length mismatch: header %d, body %d", h.Size, len(body))
	}
	if len(body) <= maxBody {
		return [][]byte{raw}, nil
	}

	var out [][]byte
	first := true
	for off := 0; off < len(body); off += maxBody {
		end := off + maxBody
		if end > len(body) {
			end = len(body)
		}
		chunk := body[off:end]
		hdr := Header{
			Major:      h.Major,
			Minor:      1, // fragments are a GIOP >=1.1 feature
			Order:      h.Order,
			Type:       h.Type,
			Size:       uint32(len(chunk)),
			Fragmented: end < len(body),
		}
		if !first {
			hdr.Type = MsgFragment
		}
		frame := EncodeHeader(hdr)
		out = append(out, append(frame, chunk...))
		first = false
	}
	return out, nil
}

// readMessageRaw reads a single wire message without reassembly.
func readMessageRaw(r io.Reader) (Header, []byte, error) {
	var hb [HeaderLen]byte
	if _, err := io.ReadFull(r, hb[:]); err != nil {
		return Header{}, nil, err
	}
	h, err := ParseHeader(hb[:])
	if err != nil {
		return Header{}, nil, err
	}
	body := make([]byte, h.Size)
	if _, err := io.ReadFull(r, body); err != nil {
		return Header{}, nil, fmt.Errorf("giop: short body for %v: %w", h.Type, err)
	}
	return h, body, nil
}

// rawFrame re-renders a wire frame from its parsed parts.
func rawFrame(h Header, body []byte) []byte {
	frame := make([]byte, 0, HeaderLen+len(body))
	frame = append(frame, EncodeHeader(h)...)
	frame = append(frame, body...)
	return frame
}

// readAssembled reads one logical message, reassembling fragments. The
// returned header has the fragment flag cleared and Size set to the total
// body length; raws, if non-nil, collects every wire frame read.
func readAssembled(r io.Reader, raws *[][]byte) (Header, []byte, error) {
	h, body, err := readMessageRaw(r)
	if err != nil {
		return Header{}, nil, err
	}
	if raws != nil {
		*raws = append(*raws, rawFrame(h, body))
	}
	fragmented := h.Fragmented
	for fragmented {
		fh, fbody, err := readMessageRaw(r)
		if err != nil {
			return Header{}, nil, fmt.Errorf("giop: reading continuation fragment: %w", err)
		}
		if fh.Type != MsgFragment {
			return Header{}, nil, fmt.Errorf("giop: expected Fragment, got %v", fh.Type)
		}
		if len(body)+len(fbody) > MaxMessageSize() {
			return Header{}, nil, fmt.Errorf("%w: reassembled message", ErrTooLarge)
		}
		if raws != nil {
			*raws = append(*raws, rawFrame(fh, fbody))
		}
		body = append(body, fbody...)
		fragmented = fh.Fragmented
	}
	h.Fragmented = false
	h.Size = uint32(len(body))
	return h, body, nil
}

// WriteMessageFragmented writes a complete GIOP message, splitting it when
// its body exceeds maxBody (maxBody <= 0 disables fragmentation).
func WriteMessageFragmented(w io.Writer, raw []byte, maxBody int) error {
	if maxBody <= 0 {
		if _, err := w.Write(raw); err != nil {
			return fmt.Errorf("giop: write message: %w", err)
		}
		return nil
	}
	frames, err := FragmentMessage(raw, maxBody)
	if err != nil {
		return err
	}
	for _, frame := range frames {
		if _, err := w.Write(frame); err != nil {
			return fmt.Errorf("giop: write fragment: %w", err)
		}
	}
	return nil
}
