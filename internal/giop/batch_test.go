package giop

import (
	"bytes"
	"errors"
	"testing"

	"mead/internal/cdr"
)

// buildBatch concatenates complete messages under one batch header, the way
// the vectored writer does on the wire.
func buildBatch(order cdr.ByteOrder, msgs ...[]byte) []byte {
	var body []byte
	for _, m := range msgs {
		body = append(body, m...)
	}
	frame := make([]byte, HeaderLen+len(body))
	PutBatchHeader(frame, order, len(body))
	copy(frame[HeaderLen:], body)
	return frame
}

func TestBatchRoundTrip(t *testing.T) {
	reqs := [][]byte{
		EncodeRequest(cdr.BigEndian, RequestHeader{RequestID: 1, ResponseExpected: true, ObjectKey: []byte("k1"), Operation: "alpha"}, nil),
		EncodeRequest(cdr.BigEndian, RequestHeader{RequestID: 2, ObjectKey: []byte("k2"), Operation: "beta"},
			func(e *cdr.Encoder) { e.WriteULongLong(42) }),
		EncodeRequest(cdr.LittleEndian, RequestHeader{RequestID: 3, ObjectKey: []byte("k3"), Operation: "gamma"}, nil),
	}
	frame := buildBatch(cdr.BigEndian, reqs...)

	h, err := ParseHeader(frame[:HeaderLen])
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != MsgBatch {
		t.Fatalf("type = %v, want Batch", h.Type)
	}
	if int(h.Size) != len(frame)-HeaderLen {
		t.Fatalf("size = %d, want %d", h.Size, len(frame)-HeaderLen)
	}

	var got []uint32
	err = ForEachInBatch(frame[HeaderLen:], func(sh Header, body []byte) error {
		if sh.Type != MsgRequest {
			t.Fatalf("sub-frame type = %v", sh.Type)
		}
		hdr, d, err := DecodeRequest(sh.Order, body)
		if err != nil {
			return err
		}
		d.Release()
		got = append(got, hdr.RequestID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("decoded request ids = %v, want [1 2 3]", got)
	}
}

// TestBatchSubFrameBodiesAlias asserts the walk is zero-copy: each body
// slice points into the batch buffer.
func TestBatchSubFrameBodiesAlias(t *testing.T) {
	req := EncodeRequest(cdr.BigEndian, RequestHeader{RequestID: 9, ObjectKey: []byte("k"), Operation: "op"}, nil)
	frame := buildBatch(cdr.BigEndian, req, req)
	batch := frame[HeaderLen:]
	err := ForEachInBatch(batch, func(sh Header, body []byte) error {
		if len(body) == 0 {
			t.Fatal("empty sub-body")
		}
		if !sliceWithin(batch, body) {
			t.Fatal("sub-body does not alias the batch buffer")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func sliceWithin(outer, inner []byte) bool {
	if len(inner) == 0 {
		return true
	}
	for i := range outer {
		if &outer[i] == &inner[0] {
			return i+len(inner) <= len(outer)
		}
	}
	return false
}

// TestBatchOversizedFrameTooLarge is the bounded-reader guarantee on the
// batch path: both an oversized batch frame and an oversized sub-frame
// inside an accepted batch surface ErrTooLarge instead of an unbounded
// read.
func TestBatchOversizedFrameTooLarge(t *testing.T) {
	prev := SetMaxMessageSize(256)
	defer SetMaxMessageSize(prev)

	// Outer batch header larger than the limit: rejected at header parse,
	// before any body is read.
	var outer [HeaderLen]byte
	PutBatchHeader(outer[:], cdr.BigEndian, 10<<20)
	if _, err := ParseHeader(outer[:]); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized batch header: err = %v, want ErrTooLarge", err)
	}

	// Sub-frame header inside an accepted batch claiming an oversized body.
	var sub [HeaderLen]byte
	putHeader(sub[:], Header{Major: VersionMajor, Minor: VersionMinor, Type: MsgRequest, Size: 100 << 20})
	err := ForEachInBatch(sub[:], func(Header, []byte) error { return nil })
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized sub-frame: err = %v, want ErrTooLarge", err)
	}
}

func TestBatchRejectsMalformedSubFrames(t *testing.T) {
	req := EncodeRequest(cdr.BigEndian, RequestHeader{RequestID: 1, ObjectKey: []byte("k"), Operation: "op"}, nil)

	t.Run("nested batch", func(t *testing.T) {
		inner := buildBatch(cdr.BigEndian, req)
		frame := buildBatch(cdr.BigEndian, inner)
		err := ForEachInBatch(frame[HeaderLen:], func(Header, []byte) error { return nil })
		if !errors.Is(err, ErrBatchedFrame) {
			t.Fatalf("err = %v, want ErrBatchedFrame", err)
		}
	})

	t.Run("fragmented sub-message", func(t *testing.T) {
		frag := append([]byte(nil), req...)
		frag[6] |= FlagMoreFragments
		err := ForEachInBatch(frag, func(Header, []byte) error { return nil })
		if !errors.Is(err, ErrBatchedFrame) {
			t.Fatalf("err = %v, want ErrBatchedFrame", err)
		}
	})

	t.Run("trailing garbage", func(t *testing.T) {
		torn := append(append([]byte(nil), req...), 0xde, 0xad)
		err := ForEachInBatch(torn, func(Header, []byte) error { return nil })
		if err == nil {
			t.Fatal("torn trailing bytes accepted")
		}
	})

	t.Run("sub-frame exceeding remainder", func(t *testing.T) {
		truncated := append([]byte(nil), req...)
		truncated = truncated[:len(truncated)-1]
		err := ForEachInBatch(truncated, func(Header, []byte) error { return nil })
		if !errors.Is(err, ErrBatchedFrame) {
			t.Fatalf("err = %v, want ErrBatchedFrame", err)
		}
	})
}

// TestMsgBufRetainRelease covers the refcounting batch dispatch relies on:
// the buffer recycles only after the last reference drops, and the contents
// stay intact for every holder.
func TestMsgBufRetainRelease(t *testing.T) {
	mb := GetMsgBuf(64)
	copy(mb.Bytes(), bytes.Repeat([]byte{0xAB}, 64))
	mb.Retain()
	mb.Retain()

	mb.Release() // reader's reference
	mb.Release() // first dispatch
	for _, b := range mb.Bytes() {
		if b != 0xAB {
			t.Fatal("buffer recycled while references remained")
		}
	}
	mb.Release() // last dispatch; recycles
}
