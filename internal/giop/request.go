package giop

import (
	"errors"
	"fmt"

	"mead/internal/cdr"
)

// ReplyStatus is the GIOP reply_status discriminator. Values 0-3 are GIOP
// 1.0; 4 and 5 are the GIOP 1.2 extensions that the paper's proactive
// schemes rely on.
type ReplyStatus uint32

// Reply statuses.
const (
	ReplyNoException         ReplyStatus = 0
	ReplyUserException       ReplyStatus = 1
	ReplySystemException     ReplyStatus = 2
	ReplyLocationForward     ReplyStatus = 3
	ReplyLocationForwardPerm ReplyStatus = 4
	ReplyNeedsAddressingMode ReplyStatus = 5
)

func (s ReplyStatus) String() string {
	switch s {
	case ReplyNoException:
		return "NO_EXCEPTION"
	case ReplyUserException:
		return "USER_EXCEPTION"
	case ReplySystemException:
		return "SYSTEM_EXCEPTION"
	case ReplyLocationForward:
		return "LOCATION_FORWARD"
	case ReplyLocationForwardPerm:
		return "LOCATION_FORWARD_PERM"
	case ReplyNeedsAddressingMode:
		return "NEEDS_ADDRESSING_MODE"
	default:
		return fmt.Sprintf("ReplyStatus(%d)", uint32(s))
	}
}

// ServiceContext is one GIOP service-context entry. When produced by
// DecodeRequest/DecodeReply, Data borrows the message body (see the
// buffer-ownership rules in docs/PROTOCOL.md §8).
type ServiceContext struct {
	ID   uint32
	Data []byte
}

// interned deduplicates the hot repeated strings of the receive path —
// operation names and exception repository ids — so steady-state decoding
// allocates no strings. An application's distinct operation names are few;
// the bound only guards against hostile streams.
var interned = cdr.NewInterner(1024)

// ServiceContextMead is the (vendor-range) context id this reproduction uses
// for MEAD bookkeeping data carried inside standard GIOP messages.
const ServiceContextMead uint32 = 0x4D454144 // "MEAD"

func encodeServiceContexts(e *cdr.Encoder, scs []ServiceContext) {
	e.WriteULong(uint32(len(scs)))
	for _, sc := range scs {
		e.WriteULong(sc.ID)
		e.WriteOctets(sc.Data)
	}
}

func decodeServiceContexts(d *cdr.Decoder) ([]ServiceContext, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, fmt.Errorf("giop: service context count: %w", err)
	}
	if n > 1024 {
		return nil, fmt.Errorf("giop: implausible service context count %d", n)
	}
	var scs []ServiceContext
	for i := uint32(0); i < n; i++ {
		id, err := d.ReadULong()
		if err != nil {
			return nil, fmt.Errorf("giop: service context id: %w", err)
		}
		data, err := d.ReadOctetsBorrow()
		if err != nil {
			return nil, fmt.Errorf("giop: service context data: %w", err)
		}
		scs = append(scs, ServiceContext{ID: id, Data: data})
	}
	return scs, nil
}

// skipServiceContexts advances past the service-context list without
// materializing it — the zero-alloc prefix skip behind the request-id-only
// parses.
func skipServiceContexts(d *cdr.Decoder) error {
	n, err := d.ReadULong()
	if err != nil {
		return fmt.Errorf("giop: service context count: %w", err)
	}
	if n > 1024 {
		return fmt.Errorf("giop: implausible service context count %d", n)
	}
	for i := uint32(0); i < n; i++ {
		if _, err := d.ReadULong(); err != nil {
			return fmt.Errorf("giop: service context id: %w", err)
		}
		if _, err := d.ReadOctetsBorrow(); err != nil {
			return fmt.Errorf("giop: service context data: %w", err)
		}
	}
	return nil
}

// RequestHeader is the GIOP 1.0 Request message header.
type RequestHeader struct {
	ServiceContexts  []ServiceContext
	RequestID        uint32
	ResponseExpected bool
	ObjectKey        []byte
	Operation        string
	Principal        []byte
}

// EncodeRequest renders a complete GIOP Request message. writeArgs, if
// non-nil, encodes the operation arguments; they form their own CDR
// alignment origin (see Decoder.Rest), so both peers agree on padding
// regardless of the header's length.
func EncodeRequest(order cdr.ByteOrder, hdr RequestHeader, writeArgs func(*cdr.Encoder)) []byte {
	e := beginMessage(order)
	encodeServiceContexts(e, hdr.ServiceContexts)
	e.WriteULong(hdr.RequestID)
	e.WriteBool(hdr.ResponseExpected)
	e.WriteOctets(hdr.ObjectKey)
	e.WriteString(hdr.Operation)
	e.WriteOctets(hdr.Principal)
	if writeArgs != nil {
		e.Rebase() // arguments form their own alignment origin
		writeArgs(e)
	}
	return finishMessage(e, order, MsgRequest)
}

// EncodeRequestPooled is EncodeRequest without the final copy: the complete
// message stays in the pooled encoder's buffer and the encoder itself is
// returned (its Bytes are the wire frame). The caller must hand it to a
// writer that Releases it once the bytes are on the wire; see
// finishMessagePooled for the ownership rule.
func EncodeRequestPooled(order cdr.ByteOrder, hdr RequestHeader, writeArgs func(*cdr.Encoder)) *cdr.Encoder {
	e := beginMessage(order)
	encodeServiceContexts(e, hdr.ServiceContexts)
	e.WriteULong(hdr.RequestID)
	e.WriteBool(hdr.ResponseExpected)
	e.WriteOctets(hdr.ObjectKey)
	e.WriteString(hdr.Operation)
	e.WriteOctets(hdr.Principal)
	if writeArgs != nil {
		e.Rebase() // arguments form their own alignment origin
		writeArgs(e)
	}
	return finishMessagePooled(e, order, MsgRequest)
}

// DecodeRequest parses a Request body (as returned by ReadMessage or
// ReadMessagePooled), yielding the header and a decoder positioned at the
// operation arguments.
//
// The decode is zero-copy: ObjectKey, Principal, and service-context Data
// borrow body, and Operation is an interned string. Header slices (and the
// argument decoder's stream) are valid only as long as body; copy them to
// retain past its release. The returned decoder is pooled — hot paths give
// it back with Release once the arguments are consumed.
func DecodeRequest(order cdr.ByteOrder, body []byte) (RequestHeader, *cdr.Decoder, error) {
	d := cdr.GetDecoder(body, order)
	var hdr RequestHeader
	var err error
	if hdr.ServiceContexts, err = decodeServiceContexts(d); err != nil {
		d.Release()
		return hdr, nil, err
	}
	if hdr.RequestID, err = d.ReadULong(); err != nil {
		d.Release()
		return hdr, nil, fmt.Errorf("giop: request id: %w", err)
	}
	if hdr.ResponseExpected, err = d.ReadBool(); err != nil {
		d.Release()
		return hdr, nil, fmt.Errorf("giop: response_expected: %w", err)
	}
	if hdr.ObjectKey, err = d.ReadOctetsBorrow(); err != nil {
		d.Release()
		return hdr, nil, fmt.Errorf("giop: object key: %w", err)
	}
	if hdr.Operation, err = d.ReadStringIntern(interned); err != nil {
		d.Release()
		return hdr, nil, fmt.Errorf("giop: operation: %w", err)
	}
	if hdr.Principal, err = d.ReadOctetsBorrow(); err != nil {
		d.Release()
		return hdr, nil, fmt.Errorf("giop: principal: %w", err)
	}
	d.Rebase() // the arguments form their own alignment origin
	return hdr, d, nil
}

// RequestIDOf extracts just the request_id from a Request body — the
// minimal parse the NEEDS_ADDRESSING client interceptor performs on
// outbound requests (it does not need object keys, hence its much lower
// overhead than the LOCATION_FORWARD scheme's full parse).
func RequestIDOf(order cdr.ByteOrder, body []byte) (uint32, error) {
	d := cdr.GetDecoder(body, order)
	defer d.Release()
	if err := skipServiceContexts(d); err != nil {
		return 0, err
	}
	id, err := d.ReadULong()
	if err != nil {
		return 0, fmt.Errorf("giop: request id: %w", err)
	}
	return id, nil
}

// ReplyIDOf extracts just the request_id from a Reply body — the minimal
// parse the multiplexed client transport performs to demultiplex
// interleaved replies to their waiting callers.
func ReplyIDOf(order cdr.ByteOrder, body []byte) (uint32, error) {
	d := cdr.GetDecoder(body, order)
	defer d.Release()
	if err := skipServiceContexts(d); err != nil {
		return 0, err
	}
	id, err := d.ReadULong()
	if err != nil {
		return 0, fmt.Errorf("giop: reply request id: %w", err)
	}
	return id, nil
}

// ReplyHeader is the GIOP Reply message header.
type ReplyHeader struct {
	ServiceContexts []ServiceContext
	RequestID       uint32
	Status          ReplyStatus
}

// EncodeReply renders a complete GIOP Reply message. writeBody, if non-nil,
// encodes the status-specific body (result values, exception, or forwarded
// IOR); it forms its own CDR alignment origin, mirroring EncodeRequest.
func EncodeReply(order cdr.ByteOrder, hdr ReplyHeader, writeBody func(*cdr.Encoder)) []byte {
	e := beginMessage(order)
	encodeServiceContexts(e, hdr.ServiceContexts)
	e.WriteULong(hdr.RequestID)
	e.WriteULong(uint32(hdr.Status))
	if writeBody != nil {
		e.Rebase() // the status-specific body forms its own alignment origin
		writeBody(e)
	}
	return finishMessage(e, order, MsgReply)
}

// EncodeReplyPooled is EncodeReply without the final copy, returning the
// pooled encoder whose Bytes are the complete wire frame. Ownership follows
// finishMessagePooled: the connection writer Releases the encoder after the
// vectored write returns.
func EncodeReplyPooled(order cdr.ByteOrder, hdr ReplyHeader, writeBody func(*cdr.Encoder)) *cdr.Encoder {
	e := beginMessage(order)
	encodeServiceContexts(e, hdr.ServiceContexts)
	e.WriteULong(hdr.RequestID)
	e.WriteULong(uint32(hdr.Status))
	if writeBody != nil {
		e.Rebase() // the status-specific body forms its own alignment origin
		writeBody(e)
	}
	return finishMessagePooled(e, order, MsgReply)
}

// DecodeReply parses a Reply body, yielding the header and a decoder
// positioned at the status-specific body. Like DecodeRequest it is
// zero-copy: service-context Data borrows body, and the returned decoder is
// pooled (Release it on hot paths once the body is consumed).
func DecodeReply(order cdr.ByteOrder, body []byte) (ReplyHeader, *cdr.Decoder, error) {
	d := cdr.GetDecoder(body, order)
	var hdr ReplyHeader
	var err error
	if hdr.ServiceContexts, err = decodeServiceContexts(d); err != nil {
		d.Release()
		return hdr, nil, err
	}
	if hdr.RequestID, err = d.ReadULong(); err != nil {
		d.Release()
		return hdr, nil, fmt.Errorf("giop: reply request id: %w", err)
	}
	status, err := d.ReadULong()
	if err != nil {
		d.Release()
		return hdr, nil, fmt.Errorf("giop: reply status: %w", err)
	}
	if status > uint32(ReplyNeedsAddressingMode) {
		d.Release()
		return hdr, nil, fmt.Errorf("giop: unknown reply status %d", status)
	}
	hdr.Status = ReplyStatus(status)
	d.Rebase() // the status-specific body forms its own alignment origin
	return hdr, d, nil
}

// CompletionStatus mirrors CORBA::CompletionStatus.
type CompletionStatus uint32

// Completion statuses.
const (
	CompletedYes   CompletionStatus = 0
	CompletedNo    CompletionStatus = 1
	CompletedMaybe CompletionStatus = 2
)

func (c CompletionStatus) String() string {
	switch c {
	case CompletedYes:
		return "COMPLETED_YES"
	case CompletedNo:
		return "COMPLETED_NO"
	case CompletedMaybe:
		return "COMPLETED_MAYBE"
	default:
		return fmt.Sprintf("CompletionStatus(%d)", uint32(c))
	}
}

// Well-known CORBA system exception repository ids. COMM_FAILURE and
// TRANSIENT are the two exception kinds the paper's clients observe.
const (
	RepoCommFailure    = "IDL:omg.org/CORBA/COMM_FAILURE:1.0"
	RepoTransient      = "IDL:omg.org/CORBA/TRANSIENT:1.0"
	RepoObjectNotExist = "IDL:omg.org/CORBA/OBJECT_NOT_EXIST:1.0"
	RepoBadOperation   = "IDL:omg.org/CORBA/BAD_OPERATION:1.0"
	RepoInternal       = "IDL:omg.org/CORBA/INTERNAL:1.0"
	RepoNoResponse     = "IDL:omg.org/CORBA/NO_RESPONSE:1.0"
)

// SystemException is a CORBA system exception as carried in a
// SYSTEM_EXCEPTION reply body. It implements error so ORB callers can
// inspect it with errors.As.
type SystemException struct {
	RepoID    string
	Minor     uint32
	Completed CompletionStatus
}

func (e *SystemException) Error() string {
	return fmt.Sprintf("CORBA system exception %s (minor %d, %v)", e.RepoID, e.Minor, e.Completed)
}

// Is reports whether target is a *SystemException with the same RepoID,
// enabling errors.Is matching against sentinel exceptions.
func (e *SystemException) Is(target error) bool {
	var se *SystemException
	if !errors.As(target, &se) {
		return false
	}
	return se.RepoID == e.RepoID
}

// CommFailure constructs the COMM_FAILURE exception clients observe when an
// established connection breaks.
func CommFailure(minor uint32, completed CompletionStatus) *SystemException {
	return &SystemException{RepoID: RepoCommFailure, Minor: minor, Completed: completed}
}

// Transient constructs the TRANSIENT exception clients observe when a
// (possibly stale) object reference cannot be reached.
func Transient(minor uint32, completed CompletionStatus) *SystemException {
	return &SystemException{RepoID: RepoTransient, Minor: minor, Completed: completed}
}

// EncodeSystemException appends the standard exception body to e.
func EncodeSystemException(e *cdr.Encoder, se *SystemException) {
	e.WriteString(se.RepoID)
	e.WriteULong(se.Minor)
	e.WriteULong(uint32(se.Completed))
}

// DecodeSystemException reads a standard exception body. The repository id
// is interned, so repeated exceptions of one kind share a single string.
func DecodeSystemException(d *cdr.Decoder) (*SystemException, error) {
	repo, err := d.ReadStringIntern(interned)
	if err != nil {
		return nil, fmt.Errorf("giop: exception repo id: %w", err)
	}
	minor, err := d.ReadULong()
	if err != nil {
		return nil, fmt.Errorf("giop: exception minor: %w", err)
	}
	completed, err := d.ReadULong()
	if err != nil {
		return nil, fmt.Errorf("giop: exception completion: %w", err)
	}
	return &SystemException{RepoID: repo, Minor: minor, Completed: CompletionStatus(completed)}, nil
}
