package giop

import (
	"fmt"

	"mead/internal/cdr"
)

// LocateStatus is the GIOP LocateReply discriminator.
type LocateStatus uint32

// Locate statuses.
const (
	// LocateUnknownObject: the server does not know the object.
	LocateUnknownObject LocateStatus = 0
	// LocateObjectHere: the server serves the object itself.
	LocateObjectHere LocateStatus = 1
	// LocateObjectForward: the body carries an IOR to try instead — the
	// locate-level analogue of a LOCATION_FORWARD reply.
	LocateObjectForward LocateStatus = 2
)

func (s LocateStatus) String() string {
	switch s {
	case LocateUnknownObject:
		return "UNKNOWN_OBJECT"
	case LocateObjectHere:
		return "OBJECT_HERE"
	case LocateObjectForward:
		return "OBJECT_FORWARD"
	default:
		return fmt.Sprintf("LocateStatus(%d)", uint32(s))
	}
}

// LocateRequestHeader is the GIOP 1.0 LocateRequest header.
type LocateRequestHeader struct {
	RequestID uint32
	ObjectKey []byte
}

// EncodeLocateRequest renders a complete LocateRequest message.
func EncodeLocateRequest(order cdr.ByteOrder, hdr LocateRequestHeader) []byte {
	e := beginMessage(order)
	e.WriteULong(hdr.RequestID)
	e.WriteOctets(hdr.ObjectKey)
	return finishMessage(e, order, MsgLocateRequest)
}

// EncodeLocateRequestPooled is EncodeLocateRequest without the final copy;
// ownership of the returned encoder follows finishMessagePooled.
func EncodeLocateRequestPooled(order cdr.ByteOrder, hdr LocateRequestHeader) *cdr.Encoder {
	e := beginMessage(order)
	e.WriteULong(hdr.RequestID)
	e.WriteOctets(hdr.ObjectKey)
	return finishMessagePooled(e, order, MsgLocateRequest)
}

// DecodeLocateRequest parses a LocateRequest body.
func DecodeLocateRequest(order cdr.ByteOrder, body []byte) (LocateRequestHeader, error) {
	d := cdr.NewDecoder(body, order)
	var hdr LocateRequestHeader
	var err error
	if hdr.RequestID, err = d.ReadULong(); err != nil {
		return hdr, fmt.Errorf("giop: locate request id: %w", err)
	}
	if hdr.ObjectKey, err = d.ReadOctets(); err != nil {
		return hdr, fmt.Errorf("giop: locate object key: %w", err)
	}
	return hdr, nil
}

// LocateReplyHeader is the GIOP LocateReply header.
type LocateReplyHeader struct {
	RequestID uint32
	Status    LocateStatus
}

// EncodeLocateReply renders a complete LocateReply message; forward, if
// non-nil, is appended for OBJECT_FORWARD.
func EncodeLocateReply(order cdr.ByteOrder, hdr LocateReplyHeader, forward *IOR) []byte {
	e := beginMessage(order)
	e.WriteULong(hdr.RequestID)
	e.WriteULong(uint32(hdr.Status))
	if hdr.Status == LocateObjectForward && forward != nil {
		e.Rebase() // the forwarded IOR forms its own alignment origin
		EncodeIOR(e, *forward)
	}
	return finishMessage(e, order, MsgLocateReply)
}

// DecodeLocateReply parses a LocateReply body, returning the forwarded IOR
// for OBJECT_FORWARD.
func DecodeLocateReply(order cdr.ByteOrder, body []byte) (LocateReplyHeader, *IOR, error) {
	d := cdr.NewDecoder(body, order)
	var hdr LocateReplyHeader
	var err error
	if hdr.RequestID, err = d.ReadULong(); err != nil {
		return hdr, nil, fmt.Errorf("giop: locate reply id: %w", err)
	}
	status, err := d.ReadULong()
	if err != nil {
		return hdr, nil, fmt.Errorf("giop: locate reply status: %w", err)
	}
	if status > uint32(LocateObjectForward) {
		return hdr, nil, fmt.Errorf("giop: unknown locate status %d", status)
	}
	hdr.Status = LocateStatus(status)
	if hdr.Status != LocateObjectForward {
		return hdr, nil, nil
	}
	inner := cdr.NewDecoder(d.Rest(), order)
	ior, err := DecodeIOR(inner)
	if err != nil {
		return hdr, nil, fmt.Errorf("giop: locate forward body: %w", err)
	}
	return hdr, &ior, nil
}
