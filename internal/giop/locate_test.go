package giop

import (
	"bytes"
	"testing"

	"mead/internal/cdr"
)

func TestLocateRequestRoundTrip(t *testing.T) {
	key := MakeObjectKey("timeofday", "clock")
	for _, order := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
		msg := EncodeLocateRequest(order, LocateRequestHeader{RequestID: 77, ObjectKey: key})
		h, body, err := ReadMessage(bytes.NewReader(msg))
		if err != nil {
			t.Fatal(err)
		}
		if h.Type != MsgLocateRequest {
			t.Fatalf("type = %v", h.Type)
		}
		hdr, err := DecodeLocateRequest(h.Order, body)
		if err != nil {
			t.Fatal(err)
		}
		if hdr.RequestID != 77 || !bytes.Equal(hdr.ObjectKey, key) {
			t.Fatalf("header = %+v", hdr)
		}
	}
}

func TestLocateReplyHereRoundTrip(t *testing.T) {
	msg := EncodeLocateReply(cdr.BigEndian, LocateReplyHeader{RequestID: 5, Status: LocateObjectHere}, nil)
	h, body, err := ReadMessage(bytes.NewReader(msg))
	if err != nil {
		t.Fatal(err)
	}
	hdr, fwd, err := DecodeLocateReply(h.Order, body)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Status != LocateObjectHere || hdr.RequestID != 5 || fwd != nil {
		t.Fatalf("reply = %+v fwd = %v", hdr, fwd)
	}
}

func TestLocateReplyForwardRoundTrip(t *testing.T) {
	ior := NewIOR("IDL:t:1.0", "127.0.0.1", 9, MakeObjectKey("s", "o"))
	msg := EncodeLocateReply(cdr.LittleEndian, LocateReplyHeader{RequestID: 6, Status: LocateObjectForward}, &ior)
	h, body, err := ReadMessage(bytes.NewReader(msg))
	if err != nil {
		t.Fatal(err)
	}
	hdr, fwd, err := DecodeLocateReply(h.Order, body)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Status != LocateObjectForward || fwd == nil {
		t.Fatalf("reply = %+v", hdr)
	}
	prof, err := fwd.IIOP()
	if err != nil || prof.Port != 9 {
		t.Fatalf("forward profile = %+v, %v", prof, err)
	}
}

func TestDecodeLocateReplyErrors(t *testing.T) {
	if _, _, err := DecodeLocateReply(cdr.BigEndian, nil); err == nil {
		t.Fatal("empty body decoded")
	}
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteULong(1)
	e.WriteULong(99)
	if _, _, err := DecodeLocateReply(cdr.BigEndian, e.Bytes()); err == nil {
		t.Fatal("unknown status decoded")
	}
	// forward status with truncated body
	e = cdr.NewEncoder(cdr.BigEndian)
	e.WriteULong(1)
	e.WriteULong(uint32(LocateObjectForward))
	if _, _, err := DecodeLocateReply(cdr.BigEndian, e.Bytes()); err == nil {
		t.Fatal("forward without IOR decoded")
	}
}

func TestLocateStatusString(t *testing.T) {
	if LocateObjectHere.String() != "OBJECT_HERE" ||
		LocateUnknownObject.String() != "UNKNOWN_OBJECT" ||
		LocateObjectForward.String() != "OBJECT_FORWARD" ||
		LocateStatus(9).String() != "LocateStatus(9)" {
		t.Fatal("LocateStatus strings wrong")
	}
}

func TestDecodeLocateRequestTruncated(t *testing.T) {
	if _, err := DecodeLocateRequest(cdr.BigEndian, []byte{0, 0}); err == nil {
		t.Fatal("truncated locate request decoded")
	}
}
