package giop

import (
	"bytes"
	"fmt"
)

// Persistent object keys.
//
// The paper requires "CORBA's persistent object key policies to uniquely
// identify CORBA objects in the system. Persistent keys transcend the
// lifetime of a server-instance and allow us to forward requests easily
// between server replicas in a group" (Section 4). Keys here are a pure
// function of (service, object), so every replica of a service derives the
// identical key with no per-instance nondeterminism.
//
// Keys are padded to the paper's observed length ("typically 52 bytes in our
// test application") so that the cost trade-off it measures between
// byte-by-byte key comparison and the 16-bit hash lookup is realistic.

// ObjectKeyLen is the minimum (padded) object key length.
const ObjectKeyLen = 52

const keyPrefix = "MEAD:PKEY:"

// MakeObjectKey derives the persistent object key for object within service.
func MakeObjectKey(service, object string) []byte {
	key := []byte(keyPrefix + service + "/" + object)
	for len(key) < ObjectKeyLen {
		key = append(key, '#')
	}
	return key
}

// ParseObjectKey splits a persistent object key back into (service, object).
func ParseObjectKey(key []byte) (service, object string, err error) {
	if !bytes.HasPrefix(key, []byte(keyPrefix)) {
		return "", "", fmt.Errorf("giop: not a MEAD persistent key: %q", key)
	}
	rest := bytes.TrimRight(key[len(keyPrefix):], "#")
	i := bytes.IndexByte(rest, '/')
	if i < 0 {
		return "", "", fmt.Errorf("giop: persistent key missing object id: %q", key)
	}
	return string(rest[:i]), string(rest[i+1:]), nil
}

// Hash16 computes the 16-bit object-key hash the paper introduces as an
// optimization: "the use of a 16-bit hash of the object key that facilitates
// the easy look-up of the IORs, as opposed to a byte-by-byte comparison of
// the object key" (Section 4.1). It is FNV-1a folded to 16 bits.
func Hash16(key []byte) uint16 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, b := range key {
		h ^= uint32(b)
		h *= prime32
	}
	return uint16(h>>16) ^ uint16(h)
}
