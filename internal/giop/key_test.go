package giop

import (
	"testing"
	"testing/quick"
)

func TestMakeObjectKeyLength(t *testing.T) {
	key := MakeObjectKey("timeofday", "clock")
	if len(key) < ObjectKeyLen {
		t.Fatalf("key length %d < %d", len(key), ObjectKeyLen)
	}
}

func TestMakeObjectKeyDeterministic(t *testing.T) {
	a := MakeObjectKey("svc", "obj")
	b := MakeObjectKey("svc", "obj")
	if string(a) != string(b) {
		t.Fatal("persistent keys differ across derivations")
	}
}

func TestMakeObjectKeyDistinct(t *testing.T) {
	if string(MakeObjectKey("a", "b")) == string(MakeObjectKey("a", "c")) {
		t.Fatal("distinct objects share a key")
	}
	if string(MakeObjectKey("a", "b")) == string(MakeObjectKey("c", "b")) {
		t.Fatal("distinct services share a key")
	}
}

func TestParseObjectKey(t *testing.T) {
	svc, obj, err := ParseObjectKey(MakeObjectKey("timeofday", "clock"))
	if err != nil {
		t.Fatal(err)
	}
	if svc != "timeofday" || obj != "clock" {
		t.Fatalf("parsed = %q/%q", svc, obj)
	}
}

func TestParseObjectKeyErrors(t *testing.T) {
	if _, _, err := ParseObjectKey([]byte("garbage")); err == nil {
		t.Fatal("garbage key accepted")
	}
	if _, _, err := ParseObjectKey([]byte("MEAD:PKEY:no-slash####")); err == nil {
		t.Fatal("key without object id accepted")
	}
}

func TestHash16Stable(t *testing.T) {
	key := MakeObjectKey("timeofday", "clock")
	if Hash16(key) != Hash16(key) {
		t.Fatal("hash not stable")
	}
}

func TestHash16SpreadsKeys(t *testing.T) {
	// Not a cryptographic requirement; just confirm distinct replicas'
	// object keys rarely collide at 16 bits for a realistic population.
	seen := make(map[uint16]int)
	collisions := 0
	for i := 0; i < 500; i++ {
		h := Hash16(MakeObjectKey("svc", string(rune('a'+i%26))+string(rune('0'+i/26))))
		if seen[h] > 0 {
			collisions++
		}
		seen[h]++
	}
	if collisions > 5 {
		t.Fatalf("too many 16-bit collisions: %d/500", collisions)
	}
}

func TestQuickKeyRoundTrip(t *testing.T) {
	f := func(svcRaw, objRaw uint16) bool {
		svc := "svc" + string(rune('a'+svcRaw%26))
		obj := "obj" + string(rune('a'+objRaw%26))
		gotSvc, gotObj, err := ParseObjectKey(MakeObjectKey(svc, obj))
		return err == nil && gotSvc == svc && gotObj == obj
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
