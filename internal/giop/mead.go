package giop

import (
	"errors"
	"fmt"
	"io"

	"mead/internal/cdr"
)

// MEAD proactive fail-over messages.
//
// The paper's third (and best-performing) scheme piggybacks a custom MEAD
// message onto regular GIOP replies: "we accomplish this by piggybacking
// regular GIOP Reply messages onto the MEAD proactive failover messages.
// When the client-side Interceptor receives this combined message, it
// extracts (the address in) the MEAD message to redirect the client
// connection to the new replica" (Section 4.3). A MEAD frame therefore
// travels on the same TCP stream as GIOP frames, distinguished by its magic;
// client-side interceptors filter it out before the ORB sees the stream.

// MeadMagic is the four-byte MEAD frame prefix.
const MeadMagic = "MEAD"

// MeadHeaderLen is the fixed MEAD frame header length (magic, version, type,
// two reserved bytes, big-endian payload length).
const MeadHeaderLen = 12

// MeadType identifies a MEAD frame kind.
type MeadType uint8

// MEAD frame types.
const (
	// MeadFailover carries the address of the next available replica; the
	// client interceptor redirects its connection there.
	MeadFailover MeadType = 1
	// MeadNotice carries an advisory proactive fault notification (used
	// for diagnostics; the GCS carries the authoritative notifications).
	MeadNotice MeadType = 2
)

// MeadVersion is the MEAD frame format version.
const MeadVersion = 1

// ErrBadMeadFrame reports a malformed MEAD frame.
var ErrBadMeadFrame = errors.New("giop: malformed MEAD frame")

// MeadMessage is a decoded MEAD frame.
type MeadMessage struct {
	Type    MeadType
	Payload []byte
}

// EncodeMead renders a complete MEAD frame.
func EncodeMead(t MeadType, payload []byte) []byte {
	out := make([]byte, 0, MeadHeaderLen+len(payload))
	out = append(out, MeadMagic...)
	out = append(out, MeadVersion, byte(t), 0, 0)
	n := uint32(len(payload))
	out = append(out, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	out = append(out, payload...)
	return out
}

// ParseMeadHeader decodes a 12-byte MEAD frame header, returning the type
// and payload length.
func ParseMeadHeader(b []byte) (MeadType, uint32, error) {
	if len(b) < MeadHeaderLen {
		return 0, 0, fmt.Errorf("%w: short header", ErrBadMeadFrame)
	}
	if string(b[:4]) != MeadMagic {
		return 0, 0, fmt.Errorf("%w: bad magic % x", ErrBadMeadFrame, b[:4])
	}
	if b[4] != MeadVersion {
		return 0, 0, fmt.Errorf("%w: unsupported version %d", ErrBadMeadFrame, b[4])
	}
	n := uint32(b[8])<<24 | uint32(b[9])<<16 | uint32(b[10])<<8 | uint32(b[11])
	if int64(n) > int64(MaxMessageSize()) {
		return 0, 0, fmt.Errorf("%w: %d-byte payload", ErrTooLarge, n)
	}
	return MeadType(b[5]), n, nil
}

// EncodeMeadFailover builds the MEAD fail-over frame directing clients to
// the replica serving ior at addr ("host:port").
func EncodeMeadFailover(addr string, ior IOR) []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteString(addr)
	EncodeIOR(e, ior)
	return EncodeMead(MeadFailover, e.Bytes())
}

// DecodeMeadFailover extracts the target address and IOR from a MeadFailover
// payload.
func DecodeMeadFailover(payload []byte) (addr string, ior IOR, err error) {
	d := cdr.NewDecoder(payload, cdr.BigEndian)
	if addr, err = d.ReadString(); err != nil {
		return "", IOR{}, fmt.Errorf("%w: address: %v", ErrBadMeadFrame, err)
	}
	if ior, err = DecodeIOR(d); err != nil {
		return "", IOR{}, fmt.Errorf("%w: ior: %v", ErrBadMeadFrame, err)
	}
	return addr, ior, nil
}

// FrameKind distinguishes the two frame families that can appear on a MEAD
// connection's byte stream.
type FrameKind int

// Frame kinds.
const (
	FrameGIOP FrameKind = iota + 1
	FrameMEAD
)

// Frame is one whole frame read off a connection: either a GIOP message or
// a MEAD message, together with its raw wire bytes so interceptors can
// forward it verbatim.
type Frame struct {
	Kind FrameKind
	// GIOP fields (Kind == FrameGIOP). For a fragmented message, Header
	// describes the assembled logical message.
	Header Header
	// MEAD fields (Kind == FrameMEAD).
	Mead MeadMessage
	// Raw is the complete wire representation: for fragmented GIOP
	// messages, all constituent wire frames concatenated.
	Raw []byte
	// assembled holds the reassembled body when Raw spans fragments.
	assembled []byte
}

// Body returns the frame's logical payload (assembled GIOP body or MEAD
// payload).
func (f Frame) Body() []byte {
	if f.assembled != nil {
		return f.assembled
	}
	if len(f.Raw) < MeadHeaderLen { // both header formats are 12 bytes
		return nil
	}
	return f.Raw[MeadHeaderLen:]
}

// ReadFrame reads one GIOP or MEAD frame from r. This is the read primitive
// of the interceptors, which must see frame boundaries to filter MEAD
// messages and fabricate replies. The frame's Raw is freshly allocated;
// per-connection readers use ReadFrameInto to recycle a scratch buffer.
func ReadFrame(r io.Reader) (Frame, error) {
	f, _, err := ReadFrameInto(r, nil)
	return f, err
}

// ReadFrameInto reads one frame like ReadFrame, reusing scratch as the
// frame's backing storage when it is large enough (growing it otherwise).
// It returns the frame and the buffer to pass to the next call. The frame
// — including Raw, Body, and the MEAD payload — aliases that buffer and is
// valid only until the next ReadFrameInto call with it; retain a copy, not
// the frame. Fragmented GIOP messages take an allocating slow path so Raw
// can hold every original wire byte.
func ReadFrameInto(r io.Reader, scratch []byte) (Frame, []byte, error) {
	hbp := hdrScratchPool.Get().(*[HeaderLen]byte)
	defer hdrScratchPool.Put(hbp)
	if _, err := io.ReadFull(r, hbp[:]); err != nil {
		return Frame{}, scratch, err
	}
	hb := *hbp
	switch string(hb[:4]) {
	case Magic:
		h, err := ParseHeader(hb[:])
		if err != nil {
			return Frame{}, scratch, err
		}
		if !h.Fragmented {
			scratch = growBytes(scratch[:0], HeaderLen+int(h.Size))
			copy(scratch, hb[:])
			if _, err := io.ReadFull(r, scratch[HeaderLen:]); err != nil {
				return Frame{}, scratch, fmt.Errorf("giop: short GIOP frame body: %w", err)
			}
			return Frame{Kind: FrameGIOP, Header: h, Raw: scratch}, scratch, nil
		}
		f, err := readFragmentedFrame(r, h, hb)
		return f, scratch, err
	case MeadMagic:
		t, n, err := ParseMeadHeader(hb[:])
		if err != nil {
			return Frame{}, scratch, err
		}
		scratch = growBytes(scratch[:0], MeadHeaderLen+int(n))
		copy(scratch, hb[:])
		if _, err := io.ReadFull(r, scratch[MeadHeaderLen:]); err != nil {
			return Frame{}, scratch, fmt.Errorf("giop: short MEAD frame body: %w", err)
		}
		f := Frame{Kind: FrameMEAD, Mead: MeadMessage{Type: t, Payload: scratch[MeadHeaderLen:]}, Raw: scratch}
		return f, scratch, nil
	default:
		return Frame{}, scratch, fmt.Errorf("%w: % x", ErrBadMagic, hb[:4])
	}
}

// readFragmentedFrame reassembles the continuation fragments of a message
// whose first wire frame (header hb, already parsed as h) carried the
// more-fragments flag. Raw keeps every original wire byte so pass-through
// interceptors forward the stream unchanged; Header and Body describe the
// assembled logical message.
func readFragmentedFrame(r io.Reader, h Header, hb [HeaderLen]byte) (Frame, error) {
	raw := make([]byte, HeaderLen+int(h.Size))
	copy(raw, hb[:])
	if _, err := io.ReadFull(r, raw[HeaderLen:]); err != nil {
		return Frame{}, fmt.Errorf("giop: short GIOP frame body: %w", err)
	}
	body := append([]byte(nil), raw[HeaderLen:]...)
	all := raw
	fragmented := true
	for fragmented {
		fh, fbody, err := readMessageRaw(r)
		if err != nil {
			return Frame{}, fmt.Errorf("giop: reading continuation fragment: %w", err)
		}
		if fh.Type != MsgFragment {
			return Frame{}, fmt.Errorf("giop: expected Fragment, got %v", fh.Type)
		}
		if len(body)+len(fbody) > MaxMessageSize() {
			return Frame{}, fmt.Errorf("%w: reassembled frame", ErrTooLarge)
		}
		all = append(all, rawFrame(fh, fbody)...)
		body = append(body, fbody...)
		fragmented = fh.Fragmented
	}
	h.Fragmented = false
	h.Size = uint32(len(body))
	return Frame{Kind: FrameGIOP, Header: h, Raw: all, assembled: body}, nil
}
