package giop

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"mead/internal/cdr"
)

func TestMeadFrameRoundTrip(t *testing.T) {
	payload := []byte("next-replica-info")
	frame := EncodeMead(MeadNotice, payload)
	tp, n, err := ParseMeadHeader(frame[:MeadHeaderLen])
	if err != nil {
		t.Fatal(err)
	}
	if tp != MeadNotice || int(n) != len(payload) {
		t.Fatalf("type=%v len=%d", tp, n)
	}
	if !bytes.Equal(frame[MeadHeaderLen:], payload) {
		t.Fatal("payload mismatch")
	}
}

func TestParseMeadHeaderErrors(t *testing.T) {
	if _, _, err := ParseMeadHeader([]byte("MEAD")); !errors.Is(err, ErrBadMeadFrame) {
		t.Fatalf("short header err = %v", err)
	}
	bad := EncodeMead(MeadFailover, nil)
	bad[0] = 'X'
	if _, _, err := ParseMeadHeader(bad); !errors.Is(err, ErrBadMeadFrame) {
		t.Fatalf("bad magic err = %v", err)
	}
	ver := EncodeMead(MeadFailover, nil)
	ver[4] = 9
	if _, _, err := ParseMeadHeader(ver); !errors.Is(err, ErrBadMeadFrame) {
		t.Fatalf("bad version err = %v", err)
	}
}

func TestMeadFailoverRoundTrip(t *testing.T) {
	ior := NewIOR("IDL:mead/TimeOfDay:1.0", "127.0.0.1", 7001, MakeObjectKey("timeofday", "clock"))
	frame := EncodeMeadFailover("127.0.0.1:7001", ior)
	f, err := ReadFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != FrameMEAD || f.Mead.Type != MeadFailover {
		t.Fatalf("frame = %+v", f)
	}
	addr, gotIOR, err := DecodeMeadFailover(f.Mead.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if addr != "127.0.0.1:7001" {
		t.Fatalf("addr = %q", addr)
	}
	if gotIOR.TypeID != ior.TypeID {
		t.Fatalf("ior type = %q", gotIOR.TypeID)
	}
}

func TestDecodeMeadFailoverErrors(t *testing.T) {
	if _, _, err := DecodeMeadFailover(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteString("addr-only")
	if _, _, err := DecodeMeadFailover(e.Bytes()); err == nil {
		t.Fatal("payload without IOR accepted")
	}
}

func TestReadFrameGIOPThenMead(t *testing.T) {
	var stream bytes.Buffer
	giopMsg := EncodeRequest(cdr.BigEndian, RequestHeader{RequestID: 1, Operation: "op"}, nil)
	meadMsg := EncodeMead(MeadFailover, []byte{1, 2, 3})
	stream.Write(meadMsg)
	stream.Write(giopMsg)

	f1, err := ReadFrame(&stream)
	if err != nil {
		t.Fatal(err)
	}
	if f1.Kind != FrameMEAD || !bytes.Equal(f1.Raw, meadMsg) {
		t.Fatalf("first frame = %+v", f1)
	}
	f2, err := ReadFrame(&stream)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Kind != FrameGIOP || f2.Header.Type != MsgRequest || !bytes.Equal(f2.Raw, giopMsg) {
		t.Fatalf("second frame = %+v", f2)
	}
	if _, err := ReadFrame(&stream); !errors.Is(err, io.EOF) {
		t.Fatalf("end of stream err = %v", err)
	}
}

func TestReadFrameBadMagic(t *testing.T) {
	junk := bytes.Repeat([]byte{0x55}, 20)
	if _, err := ReadFrame(bytes.NewReader(junk)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestReadFrameTruncatedBodies(t *testing.T) {
	giopMsg := EncodeRequest(cdr.BigEndian, RequestHeader{RequestID: 1, Operation: "op"}, nil)
	if _, err := ReadFrame(bytes.NewReader(giopMsg[:len(giopMsg)-1])); err == nil {
		t.Fatal("truncated GIOP frame accepted")
	}
	meadMsg := EncodeMead(MeadNotice, []byte{1, 2, 3, 4})
	if _, err := ReadFrame(bytes.NewReader(meadMsg[:len(meadMsg)-2])); err == nil {
		t.Fatal("truncated MEAD frame accepted")
	}
}

func TestFrameBody(t *testing.T) {
	meadMsg := EncodeMead(MeadNotice, []byte{9, 9})
	f, err := ReadFrame(bytes.NewReader(meadMsg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Body(), []byte{9, 9}) {
		t.Fatalf("Body() = % x", f.Body())
	}
	var empty Frame
	if empty.Body() != nil {
		t.Fatal("empty frame Body() != nil")
	}
}
