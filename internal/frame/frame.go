// Package frame provides the length-prefixed framing shared by the
// group-communication system and the naming service: a 4-byte big-endian
// payload length followed by the payload.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxLen bounds frame payloads to guard against corrupt streams.
const MaxLen = 4 << 20

// ErrTooLarge reports an oversized frame.
var ErrTooLarge = errors.New("frame: frame too large")

// Write writes one length-prefixed frame.
func Write(w io.Writer, payload []byte) error {
	if len(payload) > MaxLen {
		return ErrTooLarge
	}
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(len(payload)))
	if _, err := w.Write(lenb[:]); err != nil {
		return fmt.Errorf("frame: write length: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("frame: write payload: %w", err)
	}
	return nil
}

// Read reads one length-prefixed frame.
func Read(r io.Reader) ([]byte, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenb[:])
	if n > MaxLen {
		return nil, ErrTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("frame: short payload: %w", err)
	}
	return payload, nil
}

// WireLen returns the on-wire size of a frame with the given payload length.
func WireLen(payloadLen int) uint64 { return uint64(4 + payloadLen) }
