// Package frame provides the length-prefixed framing shared by the
// group-communication system and the naming service: a 4-byte big-endian
// payload length followed by the payload.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxLen bounds frame payloads to guard against corrupt streams.
const MaxLen = 4 << 20

// ErrTooLarge reports an oversized frame.
var ErrTooLarge = errors.New("frame: frame too large")

// Write writes one length-prefixed frame.
func Write(w io.Writer, payload []byte) error {
	if len(payload) > MaxLen {
		return ErrTooLarge
	}
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(len(payload)))
	if _, err := w.Write(lenb[:]); err != nil {
		return fmt.Errorf("frame: write length: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("frame: write payload: %w", err)
	}
	return nil
}

// Read reads one length-prefixed frame into a freshly allocated buffer the
// caller owns. Steady-state receive loops use ReadInto to recycle one.
func Read(r io.Reader) ([]byte, error) {
	payload, _, err := ReadInto(r, nil)
	return payload, err
}

// ReadInto reads one length-prefixed frame, reusing buf as backing storage
// when its capacity suffices (growing it otherwise). It returns the payload
// and the buffer to pass to the next call; the payload aliases that buffer
// and is valid only until the next ReadInto call with it — retain a copy,
// not the slice.
func ReadInto(r io.Reader, buf []byte) (payload, next []byte, err error) {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return nil, buf, err
	}
	n := binary.BigEndian.Uint32(lenb[:])
	if n > MaxLen {
		return nil, buf, ErrTooLarge
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, buf, fmt.Errorf("frame: short payload: %w", err)
	}
	return buf[:n:n], buf, nil
}

// WireLen returns the on-wire size of a frame with the given payload length.
func WireLen(payloadLen int) uint64 { return uint64(4 + payloadLen) }
