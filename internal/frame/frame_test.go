package frame

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{7}, 1000)}
	for _, p := range payloads {
		buf.Reset()
		if err := Write(&buf, p); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("round trip % x -> % x", p, got)
		}
	}
}

func TestTooLarge(t *testing.T) {
	if err := Write(io.Discard, make([]byte, MaxLen+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Write err = %v", err)
	}
	var hdr [4]byte
	hdr[0] = 0xFF
	if _, err := Read(bytes.NewReader(hdr[:])); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Read err = %v", err)
	}
}

func TestShortPayload(t *testing.T) {
	var buf bytes.Buffer
	_ = Write(&buf, []byte("abcdef"))
	short := buf.Bytes()[:buf.Len()-2]
	if _, err := Read(bytes.NewReader(short)); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestEOF(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestWireLen(t *testing.T) {
	if WireLen(0) != 4 || WireLen(100) != 104 {
		t.Fatal("WireLen wrong")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(p []byte) bool {
		var buf bytes.Buffer
		if err := Write(&buf, p); err != nil {
			return false
		}
		got, err := Read(&buf)
		return err == nil && bytes.Equal(got, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
