// Package resource models the consumable resources whose exhaustion the
// MEAD Proactive Fault-Tolerance Manager watches. "'Resource' refers loosely
// to any resource of interest (e.g., memory, file descriptors, threads) to
// us that could lead to a process-crash fault if it was exhausted"
// (Section 3.2).
package resource

import (
	"errors"
	"sync/atomic"
)

// Monitor reports the fractional usage of one resource.
type Monitor interface {
	// Name identifies the resource (e.g. "memory").
	Name() string
	// Fraction returns consumed/capacity; values >= 1 mean exhausted.
	Fraction() float64
}

// ErrBadCapacity reports a non-positive capacity.
var ErrBadCapacity = errors.New("resource: capacity must be positive")

// Budget is a simulated consumable resource with a fixed capacity — the
// stand-in for the paper's 32 KB leak buffer. It is safe for concurrent use.
type Budget struct {
	name     string
	capacity int64
	used     atomic.Int64
}

var _ Monitor = (*Budget)(nil)

// NewBudget returns a Budget with the given capacity in abstract units
// (bytes, descriptors, ...).
func NewBudget(name string, capacity int64) (*Budget, error) {
	if capacity <= 0 {
		return nil, ErrBadCapacity
	}
	return &Budget{name: name, capacity: capacity}, nil
}

// Name implements Monitor.
func (b *Budget) Name() string { return b.name }

// Capacity returns the budget's capacity.
func (b *Budget) Capacity() int64 { return b.capacity }

// Used returns the units consumed so far (capped at capacity).
func (b *Budget) Used() int64 {
	used := b.used.Load()
	if used > b.capacity {
		return b.capacity
	}
	return used
}

// Fraction implements Monitor.
func (b *Budget) Fraction() float64 {
	return float64(b.used.Load()) / float64(b.capacity)
}

// Consume uses n units and reports whether the budget is now exhausted.
func (b *Budget) Consume(n int64) (exhausted bool) {
	if n < 0 {
		n = 0
	}
	return b.used.Add(n) >= b.capacity
}

// Exhausted reports whether the budget is fully consumed.
func (b *Budget) Exhausted() bool {
	return b.used.Load() >= b.capacity
}

// Reset returns the budget to zero usage — what rejuvenation ("restarting
// the application in a clean internal state") achieves for the resource.
func (b *Budget) Reset() {
	b.used.Store(0)
}

// Counter is a countable resource (file descriptors, threads) with a cap.
// It demonstrates that the FT manager's thresholds generalize beyond the
// memory budget used in the paper's experiments.
type Counter struct {
	name string
	max  int64
	n    atomic.Int64
}

var _ Monitor = (*Counter)(nil)

// NewCounter returns a Counter with the given maximum.
func NewCounter(name string, max int64) (*Counter, error) {
	if max <= 0 {
		return nil, ErrBadCapacity
	}
	return &Counter{name: name, max: max}, nil
}

// Name implements Monitor.
func (c *Counter) Name() string { return c.name }

// Fraction implements Monitor.
func (c *Counter) Fraction() float64 { return float64(c.n.Load()) / float64(c.max) }

// Acquire takes one unit and reports whether the cap is now reached.
func (c *Counter) Acquire() (exhausted bool) { return c.n.Add(1) >= c.max }

// Release returns one unit.
func (c *Counter) Release() { c.n.Add(-1) }

// MaxOf combines monitors, reporting the highest fraction — a conservative
// composite trigger across several resources.
type MaxOf []Monitor

var _ Monitor = MaxOf(nil)

// Name implements Monitor.
func (m MaxOf) Name() string { return "max" }

// Fraction implements Monitor.
func (m MaxOf) Fraction() float64 {
	var worst float64
	for _, mon := range m {
		if f := mon.Fraction(); f > worst {
			worst = f
		}
	}
	return worst
}
