package resource

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewBudgetRejectsBadCapacity(t *testing.T) {
	for _, c := range []int64{0, -1} {
		if _, err := NewBudget("m", c); !errors.Is(err, ErrBadCapacity) {
			t.Fatalf("capacity %d: err = %v", c, err)
		}
	}
}

func TestBudgetConsumeAndFraction(t *testing.T) {
	b, err := NewBudget("memory", 100)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "memory" || b.Capacity() != 100 {
		t.Fatalf("budget = %s/%d", b.Name(), b.Capacity())
	}
	if b.Consume(50) {
		t.Fatal("exhausted at 50%")
	}
	if b.Fraction() != 0.5 || b.Used() != 50 {
		t.Fatalf("fraction = %v used = %d", b.Fraction(), b.Used())
	}
	if !b.Consume(50) {
		t.Fatal("not exhausted at 100%")
	}
	if !b.Exhausted() {
		t.Fatal("Exhausted() = false at capacity")
	}
}

func TestBudgetUsedCapsAtCapacity(t *testing.T) {
	b, _ := NewBudget("m", 10)
	b.Consume(1000)
	if b.Used() != 10 {
		t.Fatalf("Used() = %d, want capped 10", b.Used())
	}
	if b.Fraction() < 1 {
		t.Fatalf("Fraction() = %v, want >= 1", b.Fraction())
	}
}

func TestBudgetNegativeConsumeIgnored(t *testing.T) {
	b, _ := NewBudget("m", 10)
	b.Consume(5)
	b.Consume(-100)
	if b.Used() != 5 {
		t.Fatalf("Used() = %d after negative consume", b.Used())
	}
}

func TestBudgetReset(t *testing.T) {
	b, _ := NewBudget("m", 10)
	b.Consume(10)
	b.Reset()
	if b.Used() != 0 || b.Exhausted() {
		t.Fatal("reset did not clear usage")
	}
}

func TestBudgetConcurrentConsume(t *testing.T) {
	b, _ := NewBudget("m", 1_000_000)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				b.Consume(1)
			}
		}()
	}
	wg.Wait()
	if b.Used() != 8000 {
		t.Fatalf("Used() = %d, want 8000", b.Used())
	}
}

func TestCounter(t *testing.T) {
	c, err := NewCounter("fds", 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Acquire() || c.Acquire() {
		t.Fatal("exhausted early")
	}
	if !c.Acquire() {
		t.Fatal("not exhausted at max")
	}
	c.Release()
	if c.Fraction() != 2.0/3.0 {
		t.Fatalf("fraction = %v", c.Fraction())
	}
	if c.Name() != "fds" {
		t.Fatalf("name = %q", c.Name())
	}
	if _, err := NewCounter("x", 0); !errors.Is(err, ErrBadCapacity) {
		t.Fatal("zero max accepted")
	}
}

func TestMaxOf(t *testing.T) {
	a, _ := NewBudget("a", 100)
	b, _ := NewBudget("b", 100)
	a.Consume(20)
	b.Consume(90)
	m := MaxOf{a, b}
	if m.Fraction() != 0.9 {
		t.Fatalf("MaxOf fraction = %v", m.Fraction())
	}
	if m.Name() != "max" {
		t.Fatalf("name = %q", m.Name())
	}
	if (MaxOf{}).Fraction() != 0 {
		t.Fatal("empty MaxOf fraction != 0")
	}
}

func TestQuickBudgetMonotonic(t *testing.T) {
	f := func(chunks []uint8) bool {
		b, _ := NewBudget("m", 1<<20)
		var prev float64
		for _, c := range chunks {
			b.Consume(int64(c))
			f := b.Fraction()
			if f < prev {
				return false
			}
			prev = f
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
