package experiment

import (
	"fmt"
	"math"
	"strings"
	"time"

	"mead/internal/ftmgr"
	"mead/internal/stats"
)

// SteadyRTTs returns the round-trip times of the undisturbed invocations:
// fail-over spikes and the initial naming-resolution spike are excluded, as
// in the paper's overhead computation (the baseline RTT is the fault-free
// request cost).
func (r *Result) SteadyRTTs() []time.Duration {
	spikes := make(map[int]bool, len(r.Failovers)+1)
	for _, f := range r.Failovers {
		spikes[f.Index] = true
	}
	spikes[0] = true // first call resolves through the Naming Service
	out := make([]time.Duration, 0, len(r.RTTs))
	for i, rtt := range r.RTTs {
		if !spikes[i] {
			out = append(out, rtt)
		}
	}
	return out
}

// MeanSteadyRTT is the mean undisturbed round-trip time. It reads the
// telemetry steady-state histogram when the run recorded one (covering
// every client), falling back to the client-0 RTT series for results built
// without telemetry.
func (r *Result) MeanSteadyRTT() time.Duration {
	if r.SteadyHist.Count > 0 {
		return r.SteadyHist.Mean()
	}
	return stats.Summarize(r.SteadyRTTs()).Mean
}

// MeanFailoverTime is the mean RTT of the invocations that performed a
// fail-over — detection plus recovery, the paper's fail-over time. Like
// MeanSteadyRTT it prefers the telemetry histogram, falling back to the
// client-0 fail-over samples.
func (r *Result) MeanFailoverTime() time.Duration {
	if r.FailoverHist.Count > 0 {
		return r.FailoverHist.Mean()
	}
	if len(r.Failovers) == 0 {
		return 0
	}
	var sum time.Duration
	for _, f := range r.Failovers {
		sum += f.RTT
	}
	return sum / time.Duration(len(r.Failovers))
}

// Series renders the run as a labelled RTT series (Figures 3 and 4).
func (r *Result) Series() stats.Series {
	return stats.Series{Label: r.Scheme.String(), Values: r.RTTs}
}

// Jitter computes the 3-sigma outlier report of Section 5.2.5.
func (r *Result) Jitter() stats.OutlierReport {
	return stats.Outliers(r.RTTs)
}

// Table1Row is one row of the paper's Table 1 ("Overhead and fail-over
// times").
type Table1Row struct {
	Scheme ftmgr.Scheme
	// MeanRTTMicros is the mean undisturbed RTT.
	MeanRTTMicros float64
	// P50Micros, P99Micros and MaxMicros summarize the steady-state RTT
	// distribution from the telemetry histogram (zero when the run was
	// built without telemetry).
	P50Micros float64
	P99Micros float64
	MaxMicros float64
	// IncreaseRTTPct is the RTT overhead over the reactive-without-cache
	// baseline.
	IncreaseRTTPct float64
	// ClientFailurePct is client-visible failures per server failure.
	ClientFailurePct float64
	// FailoverMillis is the mean fail-over time.
	FailoverMillis float64
	// FailoverChangePct is the change versus the baseline fail-over time.
	FailoverChangePct float64
	// Raw counters for the Section 5.2.1 breakdown.
	ServerFailures int
	ClientFailures int
	Exceptions     map[string]int
}

// Table1 is the full reproduction of the paper's Table 1.
type Table1 struct {
	Rows []Table1Row
}

// RunTable1 executes the template scenario once per scheme and derives the
// Table 1 rows. The returned map holds the raw per-scheme results (the
// Figure 3/4 series come from the same runs).
func RunTable1(template Scenario) (*Table1, map[ftmgr.Scheme]*Result, error) {
	results := make(map[ftmgr.Scheme]*Result, 5)
	for _, scheme := range ftmgr.Schemes() {
		sc := template
		sc.Scheme = scheme
		if sc.Logf != nil {
			sc.Logf("experiment: running %v", scheme)
		}
		res, err := Run(sc)
		if err != nil {
			return nil, nil, fmt.Errorf("experiment: scheme %v: %w", scheme, err)
		}
		results[scheme] = res
	}
	return BuildTable1(results), results, nil
}

// BuildTable1 derives Table 1 from per-scheme results (exported so benches
// can reuse results they already hold).
func BuildTable1(results map[ftmgr.Scheme]*Result) *Table1 {
	baseline := results[ftmgr.ReactiveNoCache]
	var baseRTT, baseFailover float64
	if baseline != nil {
		baseRTT = float64(baseline.MeanSteadyRTT())
		baseFailover = float64(baseline.MeanFailoverTime())
	}
	t := &Table1{}
	for _, scheme := range ftmgr.Schemes() {
		res := results[scheme]
		if res == nil {
			continue
		}
		row := Table1Row{
			Scheme:         scheme,
			MeanRTTMicros:  float64(res.MeanSteadyRTT()) / float64(time.Microsecond),
			FailoverMillis: float64(res.MeanFailoverTime()) / float64(time.Millisecond),
			ServerFailures: res.ServerFailures,
			ClientFailures: res.ClientFailures(),
			Exceptions:     res.Exceptions,
		}
		if res.SteadyHist.Count > 0 {
			row.P50Micros = float64(res.SteadyHist.P50()) / float64(time.Microsecond)
			row.P99Micros = float64(res.SteadyHist.P99()) / float64(time.Microsecond)
			row.MaxMicros = float64(res.SteadyHist.Max) / float64(time.Microsecond)
		}
		row.ClientFailurePct = res.ClientFailurePct()
		if baseRTT > 0 {
			row.IncreaseRTTPct = 100 * (float64(res.MeanSteadyRTT()) - baseRTT) / baseRTT
		}
		if baseFailover > 0 && res.MeanFailoverTime() > 0 {
			row.FailoverChangePct = 100 * (float64(res.MeanFailoverTime()) - baseFailover) / baseFailover
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Format renders the table in the paper's layout, extended with the
// steady-state distribution columns (p50/p99/max) read from the telemetry
// histograms.
func (t *Table1) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %12s %10s %10s %10s %12s %14s %14s %12s\n",
		"Recovery Strategy", "RTT (us)", "p50 (us)", "p99 (us)", "max (us)",
		"Incr RTT(%)", "ClientFail(%)", "Failover(ms)", "Change(%)")
	sb.WriteString(strings.Repeat("-", 124))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		change := fmt.Sprintf("%+.1f", row.FailoverChangePct)
		incr := fmt.Sprintf("%+.1f", row.IncreaseRTTPct)
		if row.Scheme == ftmgr.ReactiveNoCache {
			change = "baseline"
			incr = "baseline"
		}
		fmt.Fprintf(&sb, "%-22s %12.1f %10.1f %10.1f %10.1f %12s %14.0f %14.3f %12s\n",
			row.Scheme.String(), row.MeanRTTMicros,
			row.P50Micros, row.P99Micros, row.MaxMicros, incr,
			row.ClientFailurePct, row.FailoverMillis, change)
	}
	return sb.String()
}

// FailureBreakdown renders the Section 5.2.1 per-exception accounting.
func (t *Table1) FailureBreakdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %14s %14s %14s %12s\n",
		"Recovery Strategy", "ServerFail", "COMM_FAILURE", "TRANSIENT", "Client/Server")
	sb.WriteString(strings.Repeat("-", 82))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		fmt.Fprintf(&sb, "%-22s %14d %14d %14d %11.0f%%\n",
			row.Scheme.String(), row.ServerFailures,
			row.Exceptions["COMM_FAILURE"], row.Exceptions["TRANSIENT"],
			row.ClientFailurePct)
	}
	return sb.String()
}

// SweepPoint is one measurement of Figure 5 (bandwidth versus rejuvenation
// threshold).
type SweepPoint struct {
	Scheme         ftmgr.Scheme
	Threshold      float64
	BandwidthBps   float64
	ServerFailures int
}

// RunThresholdSweep reproduces Figure 5: it varies the rejuvenation
// threshold for the two proactive schemes and measures the server group's
// GCS bandwidth.
func RunThresholdSweep(template Scenario, thresholds []float64, schemes []ftmgr.Scheme) ([]SweepPoint, error) {
	if len(schemes) == 0 {
		schemes = []ftmgr.Scheme{ftmgr.LocationForward, ftmgr.MeadMessage}
	}
	var points []SweepPoint
	for _, scheme := range schemes {
		for _, th := range thresholds {
			sc := template
			sc.Scheme = scheme
			sc.Threshold = th
			sc.LaunchThreshold = 0.75 * th
			if sc.Logf != nil {
				sc.Logf("experiment: sweep %v at threshold %.0f%%", scheme, th*100)
			}
			res, err := Run(sc)
			if err != nil {
				return nil, fmt.Errorf("experiment: sweep %v@%.2f: %w", scheme, th, err)
			}
			points = append(points, SweepPoint{
				Scheme:         scheme,
				Threshold:      th,
				BandwidthBps:   res.BandwidthBytesPerSec(),
				ServerFailures: res.ServerFailures,
			})
		}
	}
	return points, nil
}

// FormatSweep renders Figure 5's data as a table.
func FormatSweep(points []SweepPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %12s %18s %12s\n", "Scheme", "Threshold", "Bandwidth (B/s)", "Restarts")
	sb.WriteString(strings.Repeat("-", 64))
	sb.WriteByte('\n')
	for _, p := range points {
		fmt.Fprintf(&sb, "%-18s %11.0f%% %18.0f %12d\n",
			p.Scheme.String(), p.Threshold*100, p.BandwidthBps, p.ServerFailures)
	}
	return sb.String()
}

// RunFaultFree runs the template without fault injection — the jitter
// baseline of Section 5.2.5.
func RunFaultFree(template Scenario) (*Result, error) {
	sc := template
	sc.Scheme = ftmgr.ReactiveNoCache
	sc.InjectFault = false
	return Run(sc)
}

// Aggregate summarizes one metric across repeated runs.
type Aggregate struct {
	Mean   float64
	Stddev float64
	N      int
}

func aggregate(values []float64) Aggregate {
	if len(values) == 0 {
		return Aggregate{}
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	mean := sum / float64(len(values))
	var sq float64
	for _, v := range values {
		d := v - mean
		sq += d * d
	}
	return Aggregate{Mean: mean, Stddev: math.Sqrt(sq / float64(len(values))), N: len(values)}
}

// RepeatedResult aggregates the Table 1 metrics over several independent
// runs (different fault-injection seeds), giving run-to-run variability for
// EXPERIMENTS.md-style reporting.
type RepeatedResult struct {
	Scheme ftmgr.Scheme
	Runs   int

	SteadyRTTMicros  Aggregate
	FailoverMillis   Aggregate
	ClientFailurePct Aggregate
	BandwidthBps     Aggregate
	ServerFailures   Aggregate
}

// RunRepeated executes the scenario `runs` times with distinct seeds and
// aggregates the headline metrics.
func RunRepeated(sc Scenario, runs int) (*RepeatedResult, error) {
	if runs <= 0 {
		runs = 3
	}
	var (
		rtt, failover, clientPct, bw, fails []float64
	)
	for i := 0; i < runs; i++ {
		run := sc
		run.Seed = sc.Seed + int64(i)*1000
		res, err := Run(run)
		if err != nil {
			return nil, fmt.Errorf("experiment: repeat %d: %w", i, err)
		}
		rtt = append(rtt, float64(res.MeanSteadyRTT())/float64(time.Microsecond))
		failover = append(failover, float64(res.MeanFailoverTime())/float64(time.Millisecond))
		clientPct = append(clientPct, res.ClientFailurePct())
		bw = append(bw, res.BandwidthBytesPerSec())
		fails = append(fails, float64(res.ServerFailures))
	}
	return &RepeatedResult{
		Scheme:           sc.Scheme,
		Runs:             runs,
		SteadyRTTMicros:  aggregate(rtt),
		FailoverMillis:   aggregate(failover),
		ClientFailurePct: aggregate(clientPct),
		BandwidthBps:     aggregate(bw),
		ServerFailures:   aggregate(fails),
	}, nil
}
