package experiment

import (
	"testing"
	"time"

	"mead/internal/client"
	"mead/internal/durable"
	"mead/internal/ftmgr"
	"mead/internal/replica"
	"mead/internal/telemetry"
)

// disasterScenario is the durable-state deployment the disaster suite runs
// under: a clean wire and no leak fault (the disk and the crash are the only
// adversaries), MEAD recovery, and every replica persisting its op log and
// checkpoints under dir. Booting a second deployment over the same dir is a
// cold restart of the whole group from disk.
func disasterScenario(dir string) Scenario {
	return Scenario{
		Scheme:          ftmgr.MeadMessage,
		Invocations:     100,
		Period:          200 * time.Microsecond,
		InjectFault:     false,
		RestartDelay:    20 * time.Millisecond,
		ProactiveDelay:  5 * time.Millisecond,
		CheckpointEvery: 5 * time.Millisecond,
		QueryTimeout:    50 * time.Millisecond,
		Seed:            42,
		StateDir:        dir,
	}
}

// bootDisaster boots a deployment and registers its teardown.
func bootDisaster(t *testing.T, sc Scenario) *Deployment {
	t.Helper()
	d, err := NewDeployment(sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// invokeN drives n invocations through a fresh client and asserts each one
// succeeds, returning the client for reuse (nil id derives a unique one).
func invokeN(t *testing.T, d *Deployment, n int) {
	t.Helper()
	strat, err := d.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer strat.Close()
	for i := 0; i < n; i++ {
		if out := strat.Invoke(); out.Err != nil {
			t.Fatalf("invocation %d failed: %v", i, out.Err)
		}
	}
}

// liveReplicas filters the deployment's instances down to the running ones.
func liveReplicas(d *Deployment) []*replica.Replica {
	var out []*replica.Replica
	for _, r := range d.Replicas() {
		select {
		case <-r.Done():
		default:
			out = append(out, r)
		}
	}
	return out
}

// waitCounters polls until every live replica's application counter passes
// check, returning the converged value.
func waitCounters(t *testing.T, d *Deployment, within time.Duration, check func(map[string]uint64) bool) uint64 {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		counts := make(map[string]uint64)
		for _, r := range liveReplicas(d) {
			counts[r.Name()] = r.StateCounter()
		}
		if len(counts) > 0 && check(counts) {
			for _, v := range counts {
				return v
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas never converged: %v", counts)
		}
		time.Sleep(time.Millisecond)
	}
}

// converged asserts every live replica holds exactly want.
func converged(want uint64) func(map[string]uint64) bool {
	return func(counts map[string]uint64) bool {
		for _, v := range counts {
			if v != want {
				return false
			}
		}
		return true
	}
}

// agreed asserts every live replica holds the same value, whatever it is.
func agreed(counts map[string]uint64) bool {
	var first uint64
	i := 0
	for _, v := range counts {
		if i == 0 {
			first = v
		} else if v != first {
			return false
		}
		i++
	}
	return true
}

// recoveryTrace extracts the named replica's durable-recovery events, in
// order: the golden sequence for a replay-path conformance check.
func durableRecoveryTrace(events []telemetry.Event, name string) []telemetry.Event {
	var out []telemetry.Event
	for _, e := range events {
		if e.Replica != name {
			continue
		}
		switch e.Kind {
		case telemetry.EvRecoveryStarted, telemetry.EvLogReplayed, telemetry.EvStateFetched:
			out = append(out, e)
		}
	}
	return out
}

// assertGoldenRecovery checks the replay path's event order for one replica.
// The trace must parse as one or more recovery episodes (one per process
// start), each in the canonical order: recovery-started, then log-replayed,
// then zero or more state-fetched — local replay strictly precedes any
// handshake merge. It returns the last episode.
func assertGoldenRecovery(t *testing.T, events []telemetry.Event, name string) []telemetry.Event {
	t.Helper()
	seq := durableRecoveryTrace(events, name)
	if len(seq) < 2 {
		t.Fatalf("%s: recovery trace too short: %v", name, seq)
	}
	var episodes [][]telemetry.Event
	for _, e := range seq {
		if e.Kind == telemetry.EvRecoveryStarted {
			episodes = append(episodes, nil)
		}
		if len(episodes) == 0 {
			t.Fatalf("%s: trace starts with %v, want recovery-started", name, e.Kind)
		}
		episodes[len(episodes)-1] = append(episodes[len(episodes)-1], e)
	}
	for i, ep := range episodes {
		if len(ep) < 2 || ep[1].Kind != telemetry.EvLogReplayed {
			t.Errorf("%s: episode %d: second event after recovery-started must be log-replayed: %v", name, i, ep)
			continue
		}
		for _, e := range ep[2:] {
			if e.Kind != telemetry.EvStateFetched {
				t.Errorf("%s: episode %d: post-replay event %v, want only state-fetched", name, i, e.Kind)
			}
		}
	}
	return episodes[len(episodes)-1]
}

// TestDisasterKillAllColdRestart is the headline disaster drill: every
// replica in the group is destroyed at once (the whole deployment is torn
// down), then the group cold-restarts from its checkpoints and op logs and
// must converge on the exact pre-crash application counter — no ops lost, no
// ops doubled — before serving new traffic.
func TestDisasterKillAllColdRestart(t *testing.T) {
	dir := t.TempDir()
	const n = 60

	d1 := bootDisaster(t, disasterScenario(dir))
	invokeN(t, d1, n)
	pre := waitCounters(t, d1, 5*time.Second, converged(n))
	d1.Close() // kill-all: flushes every op log

	d2 := bootDisaster(t, disasterScenario(dir))
	got := waitCounters(t, d2, 5*time.Second, converged(pre))
	if got != pre {
		t.Fatalf("cold restart recovered counter %d, want pre-crash %d", got, pre)
	}

	// Golden replay-path trace: every replica recovers in the canonical
	// order, and the primary replays its entire uncheckpointed log.
	events := d2.Telemetry().Events()
	for _, name := range []string{"r1", "r2", "r3"} {
		assertGoldenRecovery(t, events, name)
	}
	r1seq := durableRecoveryTrace(events, "r1")
	if replayed := r1seq[1].Value; replayed != n {
		t.Errorf("r1 replayed %d ops, want the full log of %d", replayed, n)
	}
	if d2.Telemetry().OpsReplayed.Value() < n {
		t.Errorf("OpsReplayed = %d, want >= %d", d2.Telemetry().OpsReplayed.Value(), n)
	}

	// The restarted group serves new traffic on top of the recovered state.
	invokeN(t, d2, 5)
	waitCounters(t, d2, 5*time.Second, converged(pre+5))
}

// TestDisasterSingleReplicaRestartFetchesDelta restarts one backup while the
// rest of the group keeps executing. Warm-passive checkpointing is disabled
// (CheckpointEvery is huge), so the only way the relaunched replica can reach
// the group's state is the recovery handshake: replay its local log, then
// fetch the delta from a live member.
func TestDisasterSingleReplicaRestartFetchesDelta(t *testing.T) {
	sc := disasterScenario(t.TempDir())
	sc.CheckpointEvery = time.Hour
	d := bootDisaster(t, sc)

	invokeN(t, d, 20)
	for _, r := range liveReplicas(d) {
		if r.Name() == "r2" {
			r.Crash()
		}
	}
	invokeN(t, d, 30) // the group moves on without r2

	// The Recovery Manager relaunches r2, which must catch up to 50 via the
	// handshake alone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var r2 *replica.Replica
		for _, r := range liveReplicas(d) {
			if r.Name() == "r2" {
				r2 = r
			}
		}
		if r2 != nil && r2.StateCounter() == 50 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("relaunched r2 never caught up to the group state")
		}
		time.Sleep(time.Millisecond)
	}

	seq := assertGoldenRecovery(t, d.Telemetry().Events(), "r2")
	fetched := false
	for _, e := range seq {
		if e.Kind == telemetry.EvStateFetched && e.Value >= 20 {
			fetched = true
		}
	}
	if !fetched {
		t.Errorf("r2 never fetched the delta via the recovery handshake: %v", seq)
	}
}

// TestDisasterTornTail tears the primary's log mid-record (the classic
// power-cut artifact) and wedges its store, then cold-restarts the group.
// Recovery must detect the incomplete frame, truncate past it — never
// silently replay it — and converge the group on one consistent counter via
// the handshake.
func TestDisasterTornTail(t *testing.T) {
	dir := t.TempDir()
	sc := disasterScenario(dir)
	sc.DurableChaos = durable.FaultPlan{
		{Name: "torn", Kind: durable.TornWrite, Replica: "r1", At: 9},
	}

	d1 := bootDisaster(t, sc)
	invokeN(t, d1, 30)
	if fired := d1.DurableChaos().Fired("torn"); fired != 1 {
		t.Fatalf("torn-write fired %d times, want 1", fired)
	}
	d1.Close()

	d2 := bootDisaster(t, disasterScenario(dir))
	got := waitCounters(t, d2, 5*time.Second, agreed)
	if got < 9 || got > 30 {
		t.Errorf("converged counter %d outside [9, 30]", got)
	}
	if tr := d2.Telemetry().LogTruncations.Value(); tr < 1 {
		t.Errorf("LogTruncations = %d, want >= 1 (torn tail must be detected)", tr)
	}
	assertGoldenRecovery(t, d2.Telemetry().Events(), "r1")

	invokeN(t, d2, 5)
	waitCounters(t, d2, 5*time.Second, converged(got+5))
}

// TestDisasterCorruptRecord flips one byte inside a committed record (bit
// rot) and cold-restarts. The CRC must catch the damage; replay stops at the
// corrupt record and truncates from there — the intact-looking suffix behind
// it is untrusted and discarded, then recovered via the handshake.
func TestDisasterCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	sc := disasterScenario(dir)
	sc.DurableChaos = durable.FaultPlan{
		{Name: "rot", Kind: durable.CorruptWrite, Replica: "r1", At: 11},
	}

	d1 := bootDisaster(t, sc)
	invokeN(t, d1, 30)
	if fired := d1.DurableChaos().Fired("rot"); fired != 1 {
		t.Fatalf("corrupt-write fired %d times, want 1", fired)
	}
	d1.Close()

	d2 := bootDisaster(t, disasterScenario(dir))
	got := waitCounters(t, d2, 5*time.Second, agreed)
	if got < 11 || got > 30 {
		t.Errorf("converged counter %d outside [11, 30]", got)
	}
	if tr := d2.Telemetry().LogTruncations.Value(); tr < 1 {
		t.Errorf("LogTruncations = %d, want >= 1 (corrupt record must be detected)", tr)
	}
	r1seq := assertGoldenRecovery(t, d2.Telemetry().Events(), "r1")
	if replayed := r1seq[1].Value; replayed != 11 {
		t.Errorf("r1 replayed %d ops, want exactly the 11 before the corruption", replayed)
	}

	invokeN(t, d2, 5)
	waitCounters(t, d2, 5*time.Second, converged(got+5))
}

// TestDisasterRestartAtMostOnce is the restart-time at-most-once drill: a
// client executes requests, the whole group cold-restarts from disk, and the
// same client identity retransmits the same sequence numbers. The replayed
// dedup table must answer them from cache — the counter must not move — and
// then execute the next fresh sequence number exactly once.
func TestDisasterRestartAtMostOnce(t *testing.T) {
	dir := t.TempDir()
	sc := disasterScenario(dir)
	sc.Scheme = ftmgr.ReactiveNoCache

	newClient := func(d *Deployment) client.Strategy {
		strat, err := client.New(client.Config{
			Scheme:    sc.Scheme,
			Service:   d.Service(),
			NamesAddr: d.NamesAddr(),
			HubAddr:   d.HubAddr(),
			ClientID:  "dup-client",
			Telemetry: d.Telemetry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return strat
	}

	d1 := bootDisaster(t, sc)
	a := newClient(d1)
	for i := 0; i < 3; i++ {
		if out := a.Invoke(); out.Err != nil {
			t.Fatalf("pre-crash invocation %d failed: %v", i, out.Err)
		}
	}
	_ = a.Close()
	waitCounters(t, d1, 5*time.Second, converged(3))
	d1.Close()

	d2 := bootDisaster(t, sc)
	waitCounters(t, d2, 5*time.Second, converged(3))

	// Same identity, fresh sequence space: sequences 1..3 are exact
	// retransmissions of already-executed requests across the restart.
	b := newClient(d2)
	defer b.Close()
	for i := 0; i < 3; i++ {
		if out := b.Invoke(); out.Err != nil {
			t.Fatalf("retransmission %d failed: %v", i, out.Err)
		}
	}
	if got := d2.Telemetry().DupsSuppressed.Value(); got != 3 {
		t.Errorf("DupsSuppressed = %d, want 3 (replayed dedup table must answer)", got)
	}
	waitCounters(t, d2, 5*time.Second, converged(3)) // no re-execution

	// Sequence 4 is fresh: executed exactly once.
	if out := b.Invoke(); out.Err != nil {
		t.Fatalf("fresh invocation failed: %v", out.Err)
	}
	waitCounters(t, d2, 5*time.Second, converged(4))
	if got := d2.Telemetry().DupsSuppressed.Value(); got != 3 {
		t.Errorf("fresh sequence was suppressed: DupsSuppressed = %d", got)
	}
}
