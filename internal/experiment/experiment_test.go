package experiment

import (
	"strings"
	"testing"
	"time"

	"mead/internal/faultinject"
	"mead/internal/ftmgr"
)

// compressed returns a scenario scaled down for CI: ~100 ms of client
// time, fast fault ticks, quick restarts. Thresholds are crossed gradually
// (~7 ticks between the 80% threshold and exhaustion), as in the paper.
func compressed(scheme ftmgr.Scheme) Scenario {
	return Scenario{
		Scheme:      scheme,
		Invocations: 500,
		Period:      200 * time.Microsecond,
		InjectFault: true,
		Fault: faultinject.Config{
			BufferBytes: 32 * 1024,
			Tick:        time.Millisecond,
			ChunkUnit:   16, // ~0.9 KB/tick: exhausts 32 KB in ~36 ticks
		},
		RestartDelay:    20 * time.Millisecond,
		ProactiveDelay:  5 * time.Millisecond,
		CheckpointEvery: 5 * time.Millisecond,
		QueryTimeout:    50 * time.Millisecond,
		Seed:            42,
	}
}

func run(t *testing.T, sc Scenario) *Result {
	t.Helper()
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFaultFreeRunIsClean(t *testing.T) {
	sc := compressed(ftmgr.ReactiveNoCache)
	sc.InjectFault = false
	res := run(t, sc)
	if res.ServerFailures != 0 {
		t.Fatalf("fault-free run had %d server failures", res.ServerFailures)
	}
	if res.ClientFailures() != 0 || res.FailedInvocations != 0 {
		t.Fatalf("fault-free run had client failures: %+v", res.Exceptions)
	}
	if len(res.RTTs) != sc.Invocations {
		t.Fatalf("recorded %d RTTs", len(res.RTTs))
	}
	if res.MeanSteadyRTT() <= 0 {
		t.Fatal("non-positive steady RTT")
	}
}

func TestReactiveNoCacheExperiment(t *testing.T) {
	res := run(t, compressed(ftmgr.ReactiveNoCache))
	if res.ServerFailures == 0 {
		t.Fatal("fault injection produced no server failures")
	}
	if res.Exceptions["COMM_FAILURE"] == 0 {
		t.Fatalf("reactive run saw no COMM_FAILURE: %+v", res.Exceptions)
	}
	if len(res.Failovers) == 0 {
		t.Fatal("no failover samples recorded")
	}
	if res.FailedInvocations > res.Invocations/10 {
		t.Fatalf("too many dead invocations: %d", res.FailedInvocations)
	}
	// 1:1 correspondence (approximately — trailing failures may be
	// detected after the run window closes).
	cf, sf := res.ClientFailures(), res.ServerFailures
	if cf < sf/2 || cf > 2*sf+2 {
		t.Fatalf("client/server failures = %d/%d, want roughly 1:1", cf, sf)
	}
	// The telemetry histograms and trace mirror the run: steady samples
	// (invocations minus spikes), fail-over samples, and recovery events.
	if res.SteadyHist.Count == 0 || res.FailoverHist.Count == 0 {
		t.Fatalf("telemetry histograms empty: steady %d, failover %d",
			res.SteadyHist.Count, res.FailoverHist.Count)
	}
	// Every client-0 fail-over sample landed in the histogram (which also
	// absorbs failed invocations and other clients' hand-offs).
	if int(res.FailoverHist.Count) < len(res.Failovers) {
		t.Fatalf("failover histogram count %d below %d fail-over samples",
			res.FailoverHist.Count, len(res.Failovers))
	}
	if len(res.Trace) == 0 {
		t.Fatal("recovery trace empty despite failures")
	}
}

func TestProactiveSchemesMaskFailures(t *testing.T) {
	for _, scheme := range []ftmgr.Scheme{ftmgr.LocationForward, ftmgr.MeadMessage} {
		t.Run(scheme.String(), func(t *testing.T) {
			res := run(t, compressed(scheme))
			if res.ServerFailures == 0 {
				t.Fatal("no rejuvenations happened")
			}
			// The headline result: zero exceptions reach the client
			// when there is enough advance warning.
			if res.ClientFailures() != 0 {
				t.Fatalf("proactive run leaked exceptions to the app: %+v", res.Exceptions)
			}
			if len(res.Failovers) == 0 {
				t.Fatal("no transparent hand-offs recorded")
			}
		})
	}
}

func TestMeadFailoverFasterThanReactive(t *testing.T) {
	// The fixed-seed runs feed every fail-over (across all clients) into
	// the telemetry histogram; its median is robust to the scheduler-noise
	// spikes that could invert sub-millisecond wall-clock means under a
	// loaded (race-enabled, -count=N) run, so a single measurement per
	// scheme suffices.
	reactive := run(t, compressed(ftmgr.ReactiveNoCache))
	mead := run(t, compressed(ftmgr.MeadMessage))
	if reactive.FailoverHist.Count == 0 || mead.FailoverHist.Count == 0 {
		t.Fatalf("missing failover samples: reactive %d, mead %d",
			reactive.FailoverHist.Count, mead.FailoverHist.Count)
	}
	rf, mf := reactive.FailoverHist.P50(), mead.FailoverHist.P50()
	if mf >= rf {
		t.Fatalf("MEAD median failover %v not below reactive %v", mf, rf)
	}
}

func TestTable1ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("five full scenario runs")
	}
	table, results, err := RunTable1(compressed(ftmgr.ReactiveNoCache))
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 5 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	byScheme := make(map[ftmgr.Scheme]Table1Row)
	for _, row := range table.Rows {
		byScheme[row.Scheme] = row
	}
	// Qualitative checks against the paper's Table 1:
	// proactive schemes mask all client failures...
	if byScheme[ftmgr.LocationForward].ClientFailures != 0 {
		t.Errorf("LOCATION_FORWARD leaked %d failures", byScheme[ftmgr.LocationForward].ClientFailures)
	}
	if byScheme[ftmgr.MeadMessage].ClientFailures != 0 {
		t.Errorf("MEAD leaked %d failures", byScheme[ftmgr.MeadMessage].ClientFailures)
	}
	// ...the reactive baseline sees failures...
	if byScheme[ftmgr.ReactiveNoCache].ClientFailures == 0 {
		t.Error("reactive baseline saw no failures")
	}
	// ...and MEAD's fail-over beats the reactive baseline's. The fail-over
	// histograms already cover every hand-off of the fixed-seed runs, and
	// their medians are robust to the scheduler spikes that invert
	// sub-millisecond means, so the claim is checked once, without
	// re-measurement.
	rh := results[ftmgr.ReactiveNoCache].FailoverHist
	mh := results[ftmgr.MeadMessage].FailoverHist
	if rh.Count == 0 || mh.Count == 0 {
		t.Fatalf("missing failover histograms: reactive %d, mead %d", rh.Count, mh.Count)
	}
	if mh.P50() >= rh.P50() {
		t.Errorf("MEAD median failover %v not below reactive %v", mh.P50(), rh.P50())
	}
	// Formatting round-trips.
	text := table.Format()
	for _, scheme := range ftmgr.Schemes() {
		if !strings.Contains(text, scheme.String()) {
			t.Errorf("formatted table missing %v:\n%s", scheme, text)
		}
	}
	if !strings.Contains(text, "baseline") {
		t.Error("formatted table missing baseline marker")
	}
	breakdown := table.FailureBreakdown()
	if !strings.Contains(breakdown, "COMM_FAILURE") {
		t.Error("breakdown missing COMM_FAILURE column")
	}
	// The per-scheme results also serve Figures 3/4.
	for scheme, res := range results {
		s := res.Series()
		if s.Label != scheme.String() || len(s.Values) != res.Invocations {
			t.Errorf("series for %v malformed", scheme)
		}
	}
}

func TestThresholdSweepBandwidthMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple scenario runs")
	}
	template := compressed(ftmgr.MeadMessage)
	points, err := RunThresholdSweep(template, []float64{0.2, 0.8}, []ftmgr.Scheme{ftmgr.MeadMessage})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	low, high := points[0], points[1]
	if low.Threshold != 0.2 || high.Threshold != 0.8 {
		t.Fatalf("unexpected order: %+v", points)
	}
	// Lower threshold => more rejuvenation cycles => more group traffic.
	if low.ServerFailures <= high.ServerFailures {
		t.Errorf("restarts at 20%% (%d) not above 80%% (%d)",
			low.ServerFailures, high.ServerFailures)
	}
	if low.BandwidthBps <= high.BandwidthBps {
		t.Errorf("bandwidth at 20%% (%.0f B/s) not above 80%% (%.0f B/s)",
			low.BandwidthBps, high.BandwidthBps)
	}
	if !strings.Contains(FormatSweep(points), "mead-message") {
		t.Error("sweep formatting broken")
	}
}

func TestJitterReport(t *testing.T) {
	sc := compressed(ftmgr.ReactiveNoCache)
	res, err := RunFaultFree(sc)
	if err != nil {
		t.Fatal(err)
	}
	report := res.Jitter()
	if report.MaxSpike <= 0 {
		t.Fatal("no max spike measured")
	}
	// 3-sigma outliers are by construction a small fraction.
	if report.Fraction > 0.2 {
		t.Fatalf("outlier fraction %.2f implausibly high", report.Fraction)
	}
}

func TestScenarioDefaults(t *testing.T) {
	sc := Scenario{}.withDefaults()
	if sc.Invocations != DefaultInvocations || sc.Period != DefaultPeriod ||
		sc.Replicas != DefaultReplicas || sc.Threshold != 0.8 {
		t.Fatalf("defaults = %+v", sc)
	}
	if sc.LaunchThreshold >= sc.Threshold {
		t.Fatalf("launch threshold %v not below migrate %v", sc.LaunchThreshold, sc.Threshold)
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	res := &Result{
		Scheme:      ftmgr.MeadMessage,
		Invocations: 4,
		RTTs: []time.Duration{
			10 * time.Millisecond, // initial spike (excluded)
			time.Millisecond,
			5 * time.Millisecond, // failover spike
			time.Millisecond,
		},
		Failovers:      []FailoverSample{{Index: 2, RTT: 5 * time.Millisecond}},
		Exceptions:     map[string]int{"COMM_FAILURE": 2, "TRANSIENT": 1},
		ServerFailures: 2,
		GroupBytes:     10000,
		Duration:       2 * time.Second,
	}
	if got := res.MeanSteadyRTT(); got != time.Millisecond {
		t.Fatalf("steady RTT = %v", got)
	}
	if got := res.MeanFailoverTime(); got != 5*time.Millisecond {
		t.Fatalf("failover time = %v", got)
	}
	if got := res.ClientFailures(); got != 3 {
		t.Fatalf("client failures = %d", got)
	}
	if got := res.ClientFailurePct(); got != 150 {
		t.Fatalf("client failure pct = %v", got)
	}
	if got := res.BandwidthBytesPerSec(); got != 5000 {
		t.Fatalf("bandwidth = %v", got)
	}
	empty := &Result{}
	if empty.MeanFailoverTime() != 0 || empty.ClientFailurePct() != 0 || empty.BandwidthBytesPerSec() != 0 {
		t.Fatal("zero-value result metrics wrong")
	}
}

func TestAdaptiveThresholdScenario(t *testing.T) {
	sc := compressed(ftmgr.MeadMessage)
	sc.AdaptiveLeadTime = 5 * time.Millisecond
	res := run(t, sc)
	if res.ServerFailures == 0 {
		t.Fatal("no rejuvenations under adaptive thresholds")
	}
	if res.ClientFailures() != 0 {
		t.Fatalf("adaptive run leaked exceptions: %+v", res.Exceptions)
	}
}

func TestTimerDrivenScenario(t *testing.T) {
	sc := compressed(ftmgr.LocationForward)
	sc.MonitorInterval = time.Millisecond
	res := run(t, sc)
	if res.ServerFailures == 0 {
		t.Fatal("no rejuvenations under timer-driven monitoring")
	}
	if res.ClientFailures() != 0 {
		t.Fatalf("timer-driven run leaked exceptions: %+v", res.Exceptions)
	}
	if len(res.Failovers) == 0 {
		t.Fatal("no hand-offs recorded")
	}
}

func TestMultiClientProactiveMigration(t *testing.T) {
	// "...can initiate the migration of ALL its current clients": several
	// concurrent clients, each on its own connection, must all be handed
	// off without a single application-visible exception.
	sc := compressed(ftmgr.MeadMessage)
	sc.Clients = 4
	sc.Invocations = 300
	res := run(t, sc)
	if res.Clients != 4 {
		t.Fatalf("clients = %d", res.Clients)
	}
	if res.ServerFailures == 0 {
		t.Fatal("no rejuvenations")
	}
	if res.ClientFailures() != 0 {
		t.Fatalf("multi-client run leaked exceptions: %+v", res.Exceptions)
	}
	if res.TotalFailovers < res.ServerFailures {
		t.Fatalf("total failovers %d below server failures %d: some client was not migrated",
			res.TotalFailovers, res.ServerFailures)
	}
	if len(res.RTTs) != sc.Invocations {
		t.Fatalf("client-0 series length = %d", len(res.RTTs))
	}
}

func TestMultiClientReactiveAllSeeFailures(t *testing.T) {
	sc := compressed(ftmgr.ReactiveNoCache)
	sc.Clients = 3
	sc.Invocations = 300
	res := run(t, sc)
	if res.ServerFailures == 0 {
		t.Fatal("no failures")
	}
	// Every connected client observes the crash: roughly one exception
	// per client per failure.
	if res.ClientFailures() < res.ServerFailures {
		t.Fatalf("client failures %d below server failures %d",
			res.ClientFailures(), res.ServerFailures)
	}
}

func TestCrashNodeKillsItsReplicasAndRecovers(t *testing.T) {
	sc := compressed(ftmgr.ReactiveNoCache)
	sc.InjectFault = false
	d, err := NewDeployment(sc)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if node := d.NodeOf("r2"); node != "node-2" {
		t.Fatalf("NodeOf(r2) = %q", node)
	}
	killed := d.CrashNode("node-1")
	if len(killed) != 1 || killed[0] != "r1" {
		t.Fatalf("killed = %v", killed)
	}
	// The Recovery Manager must bring r1 back.
	deadline := time.Now().Add(10 * time.Second)
	for d.rm.Launches() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("node-crash victim never relaunched")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Crashing an empty node is a no-op.
	if killed := d.CrashNode("node-99"); len(killed) != 0 {
		t.Fatalf("phantom node killed %v", killed)
	}
}

func TestClientSurvivesNodeCrash(t *testing.T) {
	sc := compressed(ftmgr.ReactiveNoCache)
	sc.InjectFault = false
	d, err := NewDeployment(sc)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	strat, err := d.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer strat.Close()

	if out := strat.Invoke(); out.Err != nil {
		t.Fatal(out.Err)
	}
	d.CrashNode("node-1") // kills the replica serving the client
	out := strat.Invoke()
	if out.Err != nil {
		t.Fatalf("post-node-crash invoke: %v", out.Err)
	}
	if !out.Failover || out.Replica == "r1" {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestSoakMeadSchemeManyCycles(t *testing.T) {
	// Soak: many rejuvenation cycles under MEAD with the replicated
	// counter checked for monotonic progress at the client (warm-passive
	// state continuity across every hand-off).
	if testing.Short() {
		t.Skip("soak test")
	}
	sc := compressed(ftmgr.MeadMessage)
	sc.Invocations = 2000
	sc.CheckpointEvery = 2 * time.Millisecond
	d, err := NewDeployment(sc)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	strat, err := d.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer strat.Close()

	// Warm passive replication loses at most the un-checkpointed tail on
	// each hand-off (one checkpoint period of updates plus scheduling
	// slack); anything larger means state transfer is broken. The bounded
	// regression surfaces on the first invocations served by the new
	// primary, which are not themselves flagged as fail-overs.
	const regressionWindow = 200
	var maxSeen uint64
	var badRegressions, failovers int
	for i := 0; i < sc.Invocations; i++ {
		out := strat.Invoke()
		if out.Err != nil {
			t.Fatalf("invocation %d: %v", i, out.Err)
		}
		if len(out.Exceptions) != 0 {
			t.Fatalf("soak leaked exceptions at %d: %v", i, out.Exceptions)
		}
		if out.Failover {
			failovers++
		}
		if out.Counter+regressionWindow < maxSeen {
			badRegressions++
		}
		if out.Counter > maxSeen {
			maxSeen = out.Counter
		}
		time.Sleep(100 * time.Microsecond)
	}
	if failovers < 3 {
		t.Fatalf("soak exercised only %d hand-offs", failovers)
	}
	if badRegressions != 0 {
		t.Fatalf("replicated counter regressed beyond the checkpoint window %d times", badRegressions)
	}
	if maxSeen < uint64(sc.Invocations)/2 {
		t.Fatalf("counter made little progress: %d after %d invocations", maxSeen, sc.Invocations)
	}
}

func TestRunRepeatedAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple runs")
	}
	sc := compressed(ftmgr.MeadMessage)
	sc.Invocations = 200
	rep, err := RunRepeated(sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 2 || rep.SteadyRTTMicros.N != 2 {
		t.Fatalf("aggregate = %+v", rep)
	}
	if rep.SteadyRTTMicros.Mean <= 0 {
		t.Fatal("zero mean RTT")
	}
	if rep.ClientFailurePct.Mean != 0 {
		t.Fatalf("proactive repeated runs leaked failures: %+v", rep.ClientFailurePct)
	}
	if rep.SteadyRTTMicros.Stddev < 0 {
		t.Fatal("negative stddev")
	}
}

func TestAggregateMath(t *testing.T) {
	a := aggregate([]float64{2, 4, 6})
	if a.Mean != 4 || a.N != 3 {
		t.Fatalf("aggregate = %+v", a)
	}
	if a.Stddev < 1.6 || a.Stddev > 1.7 { // population stddev of {2,4,6} = 1.633
		t.Fatalf("stddev = %v", a.Stddev)
	}
	if z := aggregate(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty aggregate = %+v", z)
	}
}

func TestNeedsAddressingFailureWindowUnderLatency(t *testing.T) {
	// With delivery latency far above the paper's 10 ms query window, the
	// NEEDS_ADDRESSING recovery query cannot complete in time, so every
	// abrupt failure is exposed to the client (the mechanism behind the
	// paper's 25% — theirs raced, ours is forced for determinism).
	sc := compressed(ftmgr.NeedsAddressing)
	sc.Invocations = 400
	sc.GCSDelay = 30 * time.Millisecond
	sc.QueryTimeout = 10 * time.Millisecond // the paper's window
	res := run(t, sc)
	if res.ServerFailures == 0 {
		t.Fatal("no failures")
	}
	if res.ClientFailures() == 0 {
		t.Fatal("latency did not open the NEEDS_ADDRESSING failure window")
	}
	if res.Exceptions["COMM_FAILURE"] == 0 {
		t.Fatalf("exceptions = %+v", res.Exceptions)
	}
}

func TestNeedsAddressingPartialFailuresUnderLANEmulation(t *testing.T) {
	// With paper-like network latency (fixed delay + jitter), the
	// NEEDS_ADDRESSING failure window opens *partially*: some recoveries
	// beat the 10 ms query window and stay masked, others do not — the
	// paper's 25% regime (we measure ~40% at these constants; the exact
	// rate depends on network constants, the mechanism is the point).
	//
	// Whether one recovery beats the window is a wall-clock race, so a
	// loaded machine (the parallel suite runs in-process benchmarks in
	// sibling packages) can push every recovery past 10 ms in a single
	// run. Like the fail-over comparisons above, re-measure with fresh
	// seeds before declaring the window degenerate.
	if testing.Short() {
		t.Skip("longer stochastic run")
	}
	var pct float64
	for attempt, seed := range []int64{2004, 2005, 2006} {
		sc := compressed(ftmgr.NeedsAddressing)
		sc.Invocations = 3000
		sc.Period = 300 * time.Microsecond
		sc.Fault.Tick = 4 * time.Millisecond
		sc.GCSDelay = 1500 * time.Microsecond
		sc.GCSJitter = 4 * time.Millisecond
		sc.QueryTimeout = 10 * time.Millisecond // the paper's window
		sc.Seed = seed
		res := run(t, sc)
		if res.ServerFailures < 3 {
			t.Fatalf("too few failures to judge: %d", res.ServerFailures)
		}
		pct = res.ClientFailurePct()
		if pct > 0 && pct < 100 {
			return
		}
		t.Logf("attempt %d (seed %d): failure pct %.0f%%, re-measuring", attempt+1, seed, pct)
	}
	if pct <= 0 {
		t.Fatal("failure window never opened under LAN emulation")
	}
	t.Fatalf("every recovery failed (%.0f%%); window should be partial", pct)
}
