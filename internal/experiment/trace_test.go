package experiment

import (
	"fmt"
	"testing"

	"mead/internal/ftmgr"
	"mead/internal/netfault"
	"mead/internal/telemetry"
)

// traceStep is one golden recovery-trace entry: the event kind plus the
// replica it concerns. For client-side events that carry only an address
// (retransmit, conn-swapped), the replica is recovered through the
// deployment's address table, so the golden reads the same either way.
type traceStep struct {
	kind    telemetry.EventKind
	replica string
}

func (s traceStep) String() string { return fmt.Sprintf("%v(%s)", s.kind, s.replica) }

// recoveryTrace drives one scheme×plan scenario and returns the recovery
// trace as (kind, replica) steps. Request bookkeeping (EvRequestSent) is
// filtered out: the conformance goldens describe recovery actions only.
// Every retained event is also checked for the run's scheme label.
func recoveryTrace(t *testing.T, scheme ftmgr.Scheme, plan netfault.Plan) []traceStep {
	t.Helper()
	d, err := NewDeployment(chaosScenario(scheme, plan))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Drive(); err != nil {
		t.Fatal(err)
	}
	addrToName := make(map[string]string)
	for _, r := range d.Replicas() {
		addrToName[r.Addr()] = r.Name()
	}
	var steps []traceStep
	for _, ev := range d.Telemetry().Events() {
		if ev.Kind == telemetry.EvRequestSent {
			continue
		}
		if ev.Scheme != scheme.String() {
			t.Errorf("event %v labelled scheme %q, want %q", ev.Kind, ev.Scheme, scheme)
		}
		name := ev.Replica
		if name == "" {
			name = addrToName[ev.Addr]
		}
		if name == "" {
			t.Errorf("event %v (addr %q) maps to no known replica", ev.Kind, ev.Addr)
		}
		steps = append(steps, traceStep{kind: ev.Kind, replica: name})
	}
	return steps
}

func assertTrace(t *testing.T, got, want []traceStep) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("trace = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace step %d = %v, want %v\nfull trace: %v", i, got[i], want[i], got)
		}
	}
}

// TestTraceConformance replays deterministic wire-chaos plans under every
// recovery scheme and golden-asserts the exact recovery-event sequence the
// telemetry trace records. The goldens encode the schemes' recovery
// mechanics:
//
//   - a clean wire (latency/jitter only) produces an empty recovery trace
//     under every scheme — the zero-noise baseline;
//   - schemes without a client interceptor (both reactive baselines and
//     LOCATION_FORWARD) surface each cut as one application-visible
//     COMM_FAILURE against the replica they were bound to, then rebind to
//     the next replica — so the second cut names r2;
//   - the interceptor schemes (NEEDS_ADDRESSING, MEAD) mask each cut by
//     swapping the transport back to the primary and retransmitting the
//     in-flight request — the application never sees an exception and the
//     binding never leaves r1.
func TestTraceConformance(t *testing.T) {
	latencyJitter := chaosPlans()[0].plan
	cutMidFrame := chaosPlans()[3].plan
	cutAfterRequest := chaosPlans()[4].plan
	if chaosPlans()[0].name != "latency-jitter" ||
		chaosPlans()[3].name != "cut-request-mid-frame" ||
		chaosPlans()[4].name != "cut-after-request" {
		t.Fatal("chaosPlans ordering changed; update the golden plan picks")
	}

	reactiveGolden := []traceStep{
		{telemetry.EvCommFailure, "r1"},
		{telemetry.EvCommFailure, "r2"},
	}
	maskedGolden := []traceStep{
		{telemetry.EvConnSwapped, "r1"},
		{telemetry.EvRetransmit, "r1"},
		{telemetry.EvConnSwapped, "r1"},
		{telemetry.EvRetransmit, "r1"},
	}

	cases := []struct {
		scheme ftmgr.Scheme
		// golden is the expected trace for both destructive cut plans.
		golden []traceStep
	}{
		{ftmgr.ReactiveNoCache, reactiveGolden},
		{ftmgr.ReactiveCache, reactiveGolden},
		{ftmgr.NeedsAddressing, maskedGolden},
		{ftmgr.LocationForward, reactiveGolden},
		{ftmgr.MeadMessage, maskedGolden},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.scheme.String(), func(t *testing.T) {
			t.Run("latency-jitter", func(t *testing.T) {
				assertTrace(t, recoveryTrace(t, tc.scheme, latencyJitter), nil)
			})
			t.Run("cut-request-mid-frame", func(t *testing.T) {
				assertTrace(t, recoveryTrace(t, tc.scheme, cutMidFrame), tc.golden)
			})
			t.Run("cut-after-request", func(t *testing.T) {
				assertTrace(t, recoveryTrace(t, tc.scheme, cutAfterRequest), tc.golden)
			})
		})
	}
}

// TestTraceRejuvenationEvents runs the compressed fault-injection scenario
// under MEAD and checks that the server-side recovery machinery reports
// into the same trace: threshold crossings from the FT manager, proactive
// MEAD fail-over frames at migration, the interceptor's connection swaps,
// and the Recovery Manager's replica-departure observations. (Exact
// sequences here depend on leak/scheduler timing, so this asserts presence
// and labelling, not order.)
func TestTraceRejuvenationEvents(t *testing.T) {
	res := run(t, compressed(ftmgr.MeadMessage))
	if res.ServerFailures == 0 {
		t.Fatal("no rejuvenations happened")
	}
	counts := make(map[telemetry.EventKind]int)
	for _, ev := range res.Trace {
		counts[ev.Kind]++
		switch ev.Kind {
		case telemetry.EvThresholdCrossed:
			if ev.Replica == "" || ev.Value < 50 || ev.Value > 100 {
				t.Errorf("threshold event malformed: %+v", ev)
			}
		case telemetry.EvReplicaKilled:
			if ev.Replica == "" {
				t.Errorf("replica-killed event without a replica: %+v", ev)
			}
		}
	}
	for _, kind := range []telemetry.EventKind{
		telemetry.EvThresholdCrossed,
		telemetry.EvMeadFailover,
		telemetry.EvConnSwapped,
		telemetry.EvReplicaKilled,
	} {
		if counts[kind] == 0 {
			t.Errorf("no %v events in the rejuvenation trace (counts: %v)", kind, counts)
		}
	}
	if counts[telemetry.EvCommFailure] != 0 || counts[telemetry.EvTransient] != 0 {
		t.Errorf("MEAD run leaked exceptions into the trace: %v", counts)
	}
}
