// Package experiment reproduces the paper's empirical evaluation
// (Section 5): it boots a full MEAD deployment in-process — GCS hub, Naming
// Service, Recovery Manager, and three warm-passively replicated
// time-of-day servers with memory-leak fault injection — drives 10,000
// paced client invocations under a chosen recovery scheme, and collects the
// measurements behind Table 1 and Figures 3, 4 and 5.
package experiment

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"mead/internal/client"
	"mead/internal/durable"
	"mead/internal/faultinject"
	"mead/internal/ftmgr"
	"mead/internal/gcs"
	"mead/internal/namesvc"
	"mead/internal/netfault"
	"mead/internal/orb"
	"mead/internal/recovery"
	"mead/internal/replica"
	"mead/internal/telemetry"
)

// Paper-scale defaults (Section 5: "a simple CORBA client ... requested the
// time-of-day at 1ms intervals ... Each experiment covered 10,000 client
// invocations", three replicas, thresholds at 80%).
const (
	DefaultInvocations = 10000
	DefaultPeriod      = time.Millisecond
	DefaultReplicas    = 3
)

// Scenario parameterizes one experiment run.
type Scenario struct {
	// Scheme selects the recovery strategy under test.
	Scheme ftmgr.Scheme
	// Invocations is the number of client requests (default 10,000).
	Invocations int
	// Period is the client pacing interval (default 1 ms).
	Period time.Duration
	// Replicas is the warm-passive group size (default 3).
	Replicas int
	// Clients is the number of concurrent clients (default 1, as in the
	// paper). With several clients, a migrating replica must hand off
	// "all its current clients", each over its own connection.
	Clients int
	// Threshold is the rejuvenation (migrate) threshold for proactive
	// schemes (default 0.8, the paper's 80%); the launch threshold is set
	// to 3/4 of it unless LaunchThreshold overrides.
	Threshold       float64
	LaunchThreshold float64
	// InjectFault enables the memory-leak fault (default on; Table 1 and
	// the figures all run with it, the jitter baseline without).
	InjectFault bool
	// Fault parameterizes the leak (zero fields take the paper defaults).
	Fault faultinject.Config
	// RestartDelay and ProactiveDelay configure the Recovery Manager.
	RestartDelay   time.Duration
	ProactiveDelay time.Duration
	// CheckpointEvery is the warm-passive state-transfer period.
	CheckpointEvery time.Duration
	// QueryTimeout is the NEEDS_ADDRESSING group-query window
	// (default 10 ms, as in the paper).
	QueryTimeout time.Duration
	// AdaptiveLeadTime, when non-zero, enables trend-derived migration
	// thresholds (the paper's future-work extension).
	AdaptiveLeadTime time.Duration
	// MonitorInterval, when non-zero, switches to timer-driven threshold
	// polling (the ablation configuration).
	MonitorInterval time.Duration
	// Objects is the number of application objects per replica (default
	// 1; the object-table scaling ablation raises it).
	Objects int
	// GCSDelay adds fixed latency to every group-communication delivery,
	// emulating the paper's LAN instead of loopback. With realistic
	// latency, the NEEDS_ADDRESSING scheme's failure window — the race
	// between the client's 10 ms query and membership agreement — opens
	// as in the paper (its 25% client-failure rate).
	GCSDelay time.Duration
	// GCSJitter adds a uniform random extra delivery latency in
	// [0, GCSJitter), making the failure window stochastic.
	GCSJitter time.Duration
	// Seed makes fault injection reproducible.
	Seed int64
	// Chaos schedules deterministic wire faults (netfault events keyed on
	// the global invocation count) under the client's transport. Empty
	// means a clean wire. The injector is seeded from Seed, so one seed
	// reproduces the whole run: leak faults, GCS jitter and wire chaos.
	Chaos netfault.Plan
	// StateDir, when non-empty, turns on the durable-state subsystem:
	// every replica keeps an op log and incremental checkpoints under
	// StateDir/<name>, and recovers from them (plus the recovery
	// handshake) on relaunch. Booting a second deployment over the same
	// StateDir is a cold restart from disk.
	StateDir string
	// DurableCheckpointBytes overrides the durable checkpoint threshold
	// (replica.DefaultDurableCheckpointBytes when zero).
	DurableCheckpointBytes int64
	// DurableChaos schedules deterministic durable-I/O faults (torn
	// writes, corrupted records, fsync failures) keyed per replica on its
	// append/sync ordinals. The injector is seeded from Seed^0x6472 so one
	// scenario seed reproduces disk damage alongside wire chaos.
	DurableChaos durable.FaultPlan
	// Logf, if set, receives progress lines.
	Logf func(format string, args ...interface{})
}

func (s Scenario) withDefaults() Scenario {
	if s.Invocations == 0 {
		s.Invocations = DefaultInvocations
	}
	if s.Period == 0 {
		s.Period = DefaultPeriod
	}
	if s.Replicas == 0 {
		s.Replicas = DefaultReplicas
	}
	if s.Clients == 0 {
		s.Clients = 1
	}
	if s.Threshold == 0 {
		s.Threshold = 0.80
	}
	if s.LaunchThreshold == 0 {
		s.LaunchThreshold = 0.75 * s.Threshold
	}
	return s
}

// FailoverSample marks an invocation during which a fail-over occurred.
type FailoverSample struct {
	// Index is the invocation number (0-based).
	Index int
	// RTT is that invocation's round-trip time — the fail-over spike,
	// covering detection plus recovery, as the paper defines it.
	RTT time.Duration
}

// Result collects one run's measurements.
type Result struct {
	Scheme      ftmgr.Scheme
	Invocations int
	// Clients is the number of concurrent clients that ran. With more
	// than one, RTTs and Failovers describe client 0 (the plotted
	// series), while the exception and failure counters aggregate all
	// clients.
	Clients int
	// TotalFailovers aggregates hand-offs across all clients.
	TotalFailovers int

	// RTTs holds the per-invocation round-trip times (the Figure 3/4
	// series).
	RTTs []time.Duration
	// Failovers marks the invocations that performed a hand-off.
	Failovers []FailoverSample
	// Exceptions counts CORBA exceptions raised to the application, by
	// name (COMM_FAILURE, TRANSIENT) — the Section 5.2.1 breakdown.
	Exceptions map[string]int
	// FailedInvocations counts invocations that never succeeded.
	FailedInvocations int
	// ServerFailures counts server-side failure events (crashes and
	// rejuvenations observed by the Recovery Manager).
	ServerFailures int
	// Relaunches counts Recovery Manager replacements.
	Relaunches int
	// GroupBytes and Duration yield the server-group GCS bandwidth
	// (Figure 5).
	GroupBytes uint64
	Duration   time.Duration

	// SteadyHist, FailoverHist and InvokeHist are the deployment-wide
	// telemetry histograms, snapshotted at the end of the run. SteadyHist
	// aggregates every client's undisturbed invocations (excluding each
	// client's first), FailoverHist the invocations that performed a
	// hand-off, and InvokeHist the raw transport round trips underneath
	// them. Unlike RTTs/Failovers, these cover all clients, not just
	// client 0.
	SteadyHist   telemetry.Snapshot
	FailoverHist telemetry.Snapshot
	InvokeHist   telemetry.Snapshot
	// Trace is the recovery-event trace accumulated during the run,
	// oldest first.
	Trace []telemetry.Event
}

// BandwidthBytesPerSec returns the server-group GCS bandwidth.
func (r *Result) BandwidthBytesPerSec() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.GroupBytes) / r.Duration.Seconds()
}

// ClientFailures returns the total exceptions the application observed.
func (r *Result) ClientFailures() int {
	total := 0
	for _, n := range r.Exceptions {
		total += n
	}
	return total
}

// ClientFailurePct returns client-visible failures per server-side failure,
// as a percentage (the Table 1 "Client Failures" column).
func (r *Result) ClientFailurePct() float64 {
	if r.ServerFailures == 0 {
		return 0
	}
	return 100 * float64(r.ClientFailures()) / float64(r.ServerFailures)
}

// Run executes one scenario and returns its measurements.
func Run(sc Scenario) (*Result, error) {
	d, err := NewDeployment(sc)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	return d.Drive()
}

// Deployment is one booted MEAD system: hub, naming service, recovery
// manager and replicas. Examples and tools can boot one directly and attach
// their own clients; Run wraps the common boot-drive-teardown cycle.
type Deployment struct {
	sc    Scenario
	hub   *gcs.Hub
	names *namesvc.Server
	rm    *recovery.Manager

	svcCfg replica.ServiceConfig
	chaos  *netfault.Injector     // nil on a clean wire
	disk   *durable.FaultInjector // nil on clean disks
	tel    *telemetry.Telemetry

	mu       sync.Mutex
	replicas []*replica.Replica
	seq      int64
}

// NewDeployment boots the scenario's system without driving a workload.
func NewDeployment(sc Scenario) (*Deployment, error) {
	sc = sc.withDefaults()
	d := &Deployment{
		sc:  sc,
		tel: telemetry.New(telemetry.WithScheme(sc.Scheme.String())),
	}
	if len(sc.Chaos) > 0 {
		// The xor decorrelates the wire-jitter stream from the leak-fault
		// and GCS-jitter streams while keeping one scenario seed.
		inj, err := netfault.NewInjector(sc.Seed^0x6e66, sc.Chaos)
		if err != nil {
			return nil, err
		}
		d.chaos = inj
	}
	if len(sc.DurableChaos) > 0 {
		// A third xor constant decorrelates disk damage from the wire and
		// leak streams while keeping one scenario seed.
		inj, err := durable.NewFaultInjector(sc.Seed^0x6472, sc.DurableChaos)
		if err != nil {
			return nil, err
		}
		d.disk = inj
	}
	hubOpts := []gcs.HubOption{gcs.WithHubTelemetry(d.tel)}
	if sc.GCSDelay > 0 {
		hubOpts = append(hubOpts, gcs.WithDeliveryDelay(sc.GCSDelay))
	}
	if sc.GCSJitter > 0 {
		hubOpts = append(hubOpts, gcs.WithDeliveryJitter(sc.GCSJitter, sc.Seed))
	}
	d.hub = gcs.NewHub(hubOpts...)
	if err := d.hub.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	d.names = namesvc.NewServer()
	d.names.SetTelemetry(d.tel)
	if err := d.names.Start("127.0.0.1:0"); err != nil {
		d.Close()
		return nil, err
	}

	d.svcCfg = replica.ServiceConfig{
		Service:                "timeofday",
		HubAddr:                d.hub.Addr(),
		NamesAddr:              d.names.Addr(),
		Scheme:                 sc.Scheme,
		LaunchThreshold:        sc.LaunchThreshold,
		MigrateThreshold:       sc.Threshold,
		Fault:                  sc.Fault,
		InjectFault:            sc.InjectFault,
		CheckpointEvery:        sc.CheckpointEvery,
		AdaptiveLeadTime:       sc.AdaptiveLeadTime,
		MonitorInterval:        sc.MonitorInterval,
		Objects:                sc.Objects,
		Logf:                   sc.Logf,
		Telemetry:              d.tel,
		StateDir:               sc.StateDir,
		DurableCheckpointBytes: sc.DurableCheckpointBytes,
		DurableFaults:          d.disk,
	}

	names := make([]string, 0, sc.Replicas)
	for i := 1; i <= sc.Replicas; i++ {
		name := fmt.Sprintf("r%d", i)
		names = append(names, name)
		if err := d.launch(name); err != nil {
			d.Close()
			return nil, err
		}
	}
	if err := d.waitMembership(sc.Replicas); err != nil {
		d.Close()
		return nil, err
	}

	rmMember, err := gcs.Dial(d.hub.Addr(), "recovery-manager")
	if err != nil {
		d.Close()
		return nil, err
	}
	d.rm, err = recovery.New(recovery.Config{
		Member:         rmMember,
		Group:          d.svcCfg.Group(),
		ReplicaNames:   names,
		RestartDelay:   sc.RestartDelay,
		ProactiveDelay: sc.ProactiveDelay,
		Factory:        recovery.FactoryFunc(d.launch),
		Logf:           sc.Logf,
		Telemetry:      d.tel,
	})
	if err != nil {
		_ = rmMember.Close()
		d.Close()
		return nil, err
	}
	if err := d.rm.Start(); err != nil {
		d.Close()
		return nil, err
	}
	return d, nil
}

// NodeOf returns the simulated node hosting a replica. Replicas are placed
// round-robin over `Replicas` nodes (replica rI lives on node I), so the
// paper's node crash-faults can be injected with CrashNode.
func (d *Deployment) NodeOf(replicaName string) string {
	return "node-" + strings.TrimPrefix(replicaName, "r")
}

// CrashNode abruptly kills every live replica hosted on the given node —
// the paper's node crash-fault. It returns the names of the replicas it
// killed. The Recovery Manager observes their departure and relaunches
// them after its restart delay.
func (d *Deployment) CrashNode(node string) []string {
	d.mu.Lock()
	victims := make([]*replica.Replica, 0, 2)
	for _, r := range d.replicas {
		select {
		case <-r.Done():
			continue
		default:
		}
		if d.NodeOf(r.Name()) == node {
			victims = append(victims, r)
		}
	}
	d.mu.Unlock()
	names := make([]string, 0, len(victims))
	for _, r := range victims {
		r.Crash()
		names = append(names, r.Name())
	}
	return names
}

// launch starts a (possibly replacement) replica instance; it is also the
// Recovery Manager's factory.
func (d *Deployment) launch(name string) error {
	cfg := d.svcCfg
	d.mu.Lock()
	d.seq++
	cfg.Fault.Seed = d.sc.Seed + d.seq
	d.mu.Unlock()
	r, err := replica.New(name, cfg)
	if err != nil {
		return err
	}
	if err := r.Start(); err != nil {
		return err
	}
	d.mu.Lock()
	d.replicas = append(d.replicas, r)
	d.mu.Unlock()
	return nil
}

func (d *Deployment) waitMembership(n int) error {
	deadline := time.Now().Add(10 * time.Second)
	for len(d.hub.Members(d.svcCfg.Group())) < n {
		if time.Now().After(deadline) {
			return errors.New("experiment: replicas never formed the group")
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// Close tears the deployment down.
func (d *Deployment) Close() {
	if d.rm != nil {
		d.rm.Stop()
	}
	d.mu.Lock()
	reps := d.replicas
	d.replicas = nil
	d.mu.Unlock()
	for _, r := range reps {
		r.Stop()
	}
	if d.names != nil {
		_ = d.names.Close()
	}
	if d.hub != nil {
		_ = d.hub.Close()
	}
}

// HubAddr returns the GCS hub endpoint.
func (d *Deployment) HubAddr() string { return d.hub.Addr() }

// NamesAddr returns the Naming Service endpoint.
func (d *Deployment) NamesAddr() string { return d.names.Addr() }

// Service returns the replicated service name.
func (d *Deployment) Service() string { return d.svcCfg.Service }

// Group returns the service's GCS group.
func (d *Deployment) Group() string { return d.svcCfg.Group() }

// Hub exposes the group-communication hub (bandwidth counters).
func (d *Deployment) Hub() *gcs.Hub { return d.hub }

// Recovery exposes the recovery manager (failure/launch counters).
func (d *Deployment) Recovery() *recovery.Manager { return d.rm }

// Replicas snapshots all replica instances launched so far, including
// replaced ones.
func (d *Deployment) Replicas() []*replica.Replica {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*replica.Replica, len(d.replicas))
	copy(out, d.replicas)
	return out
}

// NewClient builds a client strategy for the deployment's scheme.
func (d *Deployment) NewClient() (client.Strategy, error) {
	return client.New(client.Config{
		Scheme:       d.sc.Scheme,
		Service:      d.svcCfg.Service,
		NamesAddr:    d.names.Addr(),
		HubAddr:      d.hub.Addr(),
		QueryTimeout: d.sc.QueryTimeout,
		Dial:         d.clientDial(),
		Telemetry:    d.tel,
	})
}

// clientDial is the transport dialer client strategies use: the chaos
// injector's when a plan is active, the default otherwise.
func (d *Deployment) clientDial() orb.DialFunc {
	if d.chaos == nil {
		return nil
	}
	return d.chaos.DialTimeout
}

// Chaos exposes the wire-fault injector (nil when the scenario has no
// chaos plan); tests read its fired-event accounting.
func (d *Deployment) Chaos() *netfault.Injector { return d.chaos }

// DurableChaos exposes the durable-I/O fault injector (nil when the
// scenario has no durable fault plan).
func (d *Deployment) DurableChaos() *durable.FaultInjector { return d.disk }

// Telemetry exposes the deployment-wide telemetry instance shared by the
// hub, naming service, replicas, recovery manager and every client built
// via NewClient or Drive.
func (d *Deployment) Telemetry() *telemetry.Telemetry { return d.tel }

// ServedRequests sums the application requests executed across every
// replica instance launched so far. Compared with the clients' success
// counts it gives the at-most-once check: equality is exactly-once, any
// surplus bounds the COMPLETED_MAYBE re-executions caused by lost replies.
func (d *Deployment) ServedRequests() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var total uint64
	for _, r := range d.replicas {
		total += uint64(r.Requests())
	}
	return total
}

// clientRun is one client's collected outcomes.
type clientRun struct {
	rtts      []time.Duration
	failovers []FailoverSample
	excepts   map[string]int
	failed    int
	err       error
}

// Drive runs the paced client workload (one goroutine per client) and
// collects the result.
func (d *Deployment) Drive() (*Result, error) {
	strats := make([]client.Strategy, d.sc.Clients)
	for i := range strats {
		strat, err := client.New(client.Config{
			Scheme:       d.sc.Scheme,
			Service:      d.svcCfg.Service,
			NamesAddr:    d.names.Addr(),
			HubAddr:      d.hub.Addr(),
			MemberName:   fmt.Sprintf("client-%d", i+1),
			QueryTimeout: d.sc.QueryTimeout,
			Dial:         d.clientDial(),
			Telemetry:    d.tel,
		})
		if err != nil {
			for _, s := range strats[:i] {
				_ = s.Close()
			}
			return nil, err
		}
		strats[i] = strat
	}
	defer func() {
		for _, s := range strats {
			_ = s.Close()
		}
	}()

	res := &Result{
		Scheme:      d.sc.Scheme,
		Invocations: d.sc.Invocations,
		Clients:     d.sc.Clients,
		Exceptions:  make(map[string]int),
	}

	d.hub.ResetTraffic()
	start := time.Now()
	runs := make([]clientRun, d.sc.Clients)
	var wg sync.WaitGroup
	for ci := range strats {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			runs[ci] = d.driveOne(strats[ci], start)
		}(ci)
	}
	wg.Wait()
	res.Duration = time.Since(start)

	// Client 0 provides the plotted series; counters aggregate everyone.
	res.RTTs = runs[0].rtts
	res.Failovers = runs[0].failovers
	for _, run := range runs {
		if run.err != nil {
			return nil, run.err
		}
		for e, n := range run.excepts {
			res.Exceptions[e] += n
		}
		res.FailedInvocations += run.failed
		res.TotalFailovers += len(run.failovers)
	}
	res.GroupBytes, _ = d.hub.GroupTraffic(d.svcCfg.Group())
	res.ServerFailures = d.rm.Failures()
	res.Relaunches = d.rm.Launches()

	return d.finishResult(res), nil
}

// driveOne runs one client's fixed-rate invocation loop.
func (d *Deployment) driveOne(strat client.Strategy, start time.Time) clientRun {
	run := clientRun{
		rtts:    make([]time.Duration, 0, d.sc.Invocations),
		excepts: make(map[string]int),
	}
	for i := 0; i < d.sc.Invocations; i++ {
		// Fixed-rate pacing: invocation i fires at start + i*Period.
		next := start.Add(time.Duration(i) * d.sc.Period)
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		out := strat.Invoke()
		run.rtts = append(run.rtts, out.RTT)
		if out.Failover {
			run.failovers = append(run.failovers, FailoverSample{Index: i, RTT: out.RTT})
		}
		for _, e := range out.Exceptions {
			run.excepts[e]++
		}
		if out.Err != nil {
			run.failed++
		}
	}
	return run
}

// finishResult folds in the server-side failure accounting.
func (d *Deployment) finishResult(res *Result) *Result {
	// Proactive rejuvenations that the Recovery Manager has not yet seen
	// as view changes are counted via replica exit reasons.
	d.mu.Lock()
	exited := 0
	for _, r := range d.replicas {
		select {
		case <-r.Done():
			exited++
		default:
		}
	}
	d.mu.Unlock()
	if exited > res.ServerFailures {
		res.ServerFailures = exited
	}
	res.SteadyHist = d.tel.SteadyRTT.Snapshot()
	res.FailoverHist = d.tel.FailoverRTT.Snapshot()
	res.InvokeHist = d.tel.InvokeRTT.Snapshot()
	res.Trace = d.tel.Events()
	return res
}
