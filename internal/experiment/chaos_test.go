package experiment

import (
	"reflect"
	"testing"
	"time"

	"mead/internal/ftmgr"
	"mead/internal/netfault"
)

// chaosScenario is the compressed deployment the chaos matrix runs under:
// no memory-leak fault (the wire is the only adversary), one serialized
// client so the netfault request clock maps 1:1 onto invocation ordinals,
// and a generous NEEDS_ADDRESSING query window (loopback GCS answers in
// microseconds; the window under test is the wire, not the query race).
func chaosScenario(scheme ftmgr.Scheme, plan netfault.Plan) Scenario {
	return Scenario{
		Scheme:          scheme,
		Invocations:     100,
		Period:          200 * time.Microsecond,
		InjectFault:     false,
		RestartDelay:    20 * time.Millisecond,
		ProactiveDelay:  5 * time.Millisecond,
		CheckpointEvery: 5 * time.Millisecond,
		QueryTimeout:    50 * time.Millisecond,
		Seed:            42,
		Chaos:           plan,
	}
}

// chaosOutcome is what one scheme×plan run is judged on.
type chaosOutcome struct {
	res    *Result
	served uint64
	inj    *netfault.Injector
}

func runChaos(t *testing.T, sc Scenario) chaosOutcome {
	t.Helper()
	d, err := NewDeployment(sc)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	res, err := d.Drive()
	if err != nil {
		t.Fatal(err)
	}
	return chaosOutcome{res: res, served: d.ServedRequests(), inj: d.Chaos()}
}

// chaosPlan is one row of the conformance matrix.
type chaosPlan struct {
	name string
	plan netfault.Plan
	// destructive plans kill connections or swallow requests: the
	// interceptor schemes must mask them; schemes without a client
	// interceptor surface COMM_FAILURE/TRANSIENT and recover reactively.
	destructive bool
	// replyLoss names the events that lose an already-executed request's
	// reply; each may cause one COMPLETED_MAYBE re-execution.
	replyLoss []string
	// unreachable marks plans that cut the client off from the recovery
	// target itself (the hard partition): no client-side scheme can mask
	// those, so only convergence is asserted.
	unreachable bool
}

func chaosPlans() []chaosPlan {
	return []chaosPlan{
		{
			name: "latency-jitter",
			plan: netfault.Plan{
				{Name: "lat", Kind: netfault.Latency, At: 20, For: 20,
					Latency: time.Millisecond, Jitter: time.Millisecond},
			},
		},
		{
			name: "short-writes",
			plan: netfault.Plan{
				{Name: "seg", Kind: netfault.ShortWrites, At: 0, For: -1, SegmentBytes: 7},
			},
		},
		{
			name: "duplicate-reply",
			plan: netfault.Plan{
				{Name: "dup", Kind: netfault.DuplicateReply, At: 25},
				{Name: "dup", Kind: netfault.DuplicateReply, At: 60},
			},
		},
		{
			name: "cut-request-mid-frame",
			plan: netfault.Plan{
				{Name: "cut", Kind: netfault.CutRequestMidFrame, At: 30},
				{Name: "cut", Kind: netfault.CutRequestMidFrame, At: 70},
			},
			destructive: true,
		},
		{
			name: "cut-after-request",
			plan: netfault.Plan{
				{Name: "cut", Kind: netfault.CutAfterRequest, At: 30},
				{Name: "cut", Kind: netfault.CutAfterRequest, At: 70},
			},
			destructive: true,
			replyLoss:   []string{"cut"},
		},
		{
			name: "cut-reply-mid-frame",
			plan: netfault.Plan{
				{Name: "tear", Kind: netfault.CutReplyMidFrame, At: 40},
			},
			destructive: true,
			replyLoss:   []string{"tear"},
		},
		{
			name: "blackhole",
			plan: netfault.Plan{
				{Name: "hole", Kind: netfault.Blackhole, At: 40, Hold: 25 * time.Millisecond},
			},
			destructive: true,
		},
		{
			name: "partition-transient",
			// Heal < Hold: by the time the stalled connection dies, the
			// address accepts dials again, so interceptor recovery works.
			plan: netfault.Plan{
				{Name: "part", Kind: netfault.Partition, At: 40,
					Hold: 25 * time.Millisecond, Heal: 15 * time.Millisecond},
			},
			destructive: true,
		},
		{
			name: "partition-hard",
			// Heal far beyond Hold: the primary stays unreachable through
			// every recovery attempt; the only way out is another replica.
			plan: netfault.Plan{
				{Name: "part", Kind: netfault.Partition, At: 40,
					Hold: 15 * time.Millisecond, Heal: 2 * time.Second},
			},
			destructive: true,
			unreachable: true,
		},
	}
}

// maskingSchemes have a client-side interceptor that can repair the
// transport underneath the unmodified ORB (Sections 4.2 and 4.3). The
// LOCATION_FORWARD scheme deliberately has no client interceptor, so wire
// faults reach it like a reactive scheme and its reactive fallback recovers.
func masksWireFaults(s ftmgr.Scheme) bool {
	return s == ftmgr.NeedsAddressing || s == ftmgr.MeadMessage
}

// TestChaosMatrix is the chaos conformance suite: every recovery scheme
// crossed with every fault plan, asserting the paper's Table 1 invariants
// under adversarial wire conditions.
func TestChaosMatrix(t *testing.T) {
	for _, scheme := range ftmgr.Schemes() {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			for _, pc := range chaosPlans() {
				pc := pc
				t.Run(pc.name, func(t *testing.T) {
					out := runChaos(t, chaosScenario(scheme, pc.plan))
					res, inv := out.res, out.res.Invocations

					// Convergence: every scheme finishes the workload.
					if res.FailedInvocations != 0 {
						t.Errorf("%d invocations never succeeded", res.FailedInvocations)
					}

					// Only the paper's exception kinds may surface.
					for name := range res.Exceptions {
						if name != "COMM_FAILURE" && name != "TRANSIENT" {
							t.Errorf("unexpected exception kind %s (%v)", name, res.Exceptions)
						}
					}

					fired := out.inj.FiredTotal("cut", "tear", "hole", "part")
					switch {
					case !pc.destructive:
						// Non-destructive wire conditions are invisible to
						// every scheme, proactive or reactive.
						if got := res.ClientFailures(); got != 0 {
							t.Errorf("non-destructive plan leaked %d exceptions: %v", got, res.Exceptions)
						}
					case pc.unreachable:
						// Nothing to assert on exception counts: the
						// recovery target itself is gone; convergence and
						// at-most-once (below) are the invariants.
						if fired == 0 {
							t.Error("hard partition never fired")
						}
					case masksWireFaults(scheme):
						// The headline invariant: interceptor schemes mask
						// every destructive fault whose recovery target
						// stays reachable — zero app-visible exceptions.
						if got := res.ClientFailures(); got != 0 {
							t.Errorf("interceptor scheme leaked %d exceptions: %v", got, res.Exceptions)
						}
						if fired == 0 {
							t.Error("destructive plan never fired")
						}
					default:
						// Reactive baselines and LOCATION_FORWARD (no client
						// interceptor) surface each destructive event as one
						// application-visible exception, then recover.
						got := res.ClientFailures()
						if got < 1 || got > 3*fired {
							t.Errorf("exceptions = %d for %d fired events: %v", got, fired, res.Exceptions)
						}
					}

					// At-most-once: requests executed server-side may exceed
					// client successes only by the reply-loss events (CORBA
					// COMPLETED_MAYBE); everything else is exactly-once.
					successes := uint64(inv - res.FailedInvocations)
					replyLoss := uint64(out.inj.FiredTotal(pc.replyLoss...))
					if len(pc.replyLoss) == 0 && out.served != successes {
						t.Errorf("served = %d, want exactly-once = %d", out.served, successes)
					}
					if out.served < successes || out.served > successes+replyLoss {
						t.Errorf("served = %d outside at-most-once bound [%d, %d]",
							out.served, successes, successes+replyLoss)
					}
				})
			}
		})
	}
}

// TestChaosDeterminismSameSeed runs the same chaotic scenario twice from
// one seed and asserts the observable outcome series are identical: which
// invocations failed over, every exception count, the fired-event log and
// the server-side execution count. (RTTs are wall-clock and excluded.)
func TestChaosDeterminismSameSeed(t *testing.T) {
	plan := netfault.Plan{
		{Name: "lat", Kind: netfault.Latency, At: 10, For: 15,
			Latency: 500 * time.Microsecond, Jitter: time.Millisecond},
		{Name: "dup", Kind: netfault.DuplicateReply, At: 25},
		{Name: "cut", Kind: netfault.CutRequestMidFrame, At: 30},
		{Name: "cut", Kind: netfault.CutAfterRequest, At: 70},
	}
	for _, scheme := range []ftmgr.Scheme{ftmgr.ReactiveNoCache, ftmgr.MeadMessage} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			type fingerprint struct {
				Exceptions map[string]int
				Failed     int
				Failovers  []int
				Served     uint64
				Fired      map[string]int
			}
			take := func() fingerprint {
				out := runChaos(t, chaosScenario(scheme, plan))
				fps := fingerprint{
					Exceptions: out.res.Exceptions,
					Failed:     out.res.FailedInvocations,
					Served:     out.served,
					Fired:      out.inj.FiredAll(),
				}
				for _, f := range out.res.Failovers {
					fps.Failovers = append(fps.Failovers, f.Index)
				}
				return fps
			}
			a, b := take(), take()
			if !reflect.DeepEqual(a, b) {
				t.Errorf("same seed diverged:\n run 1: %+v\n run 2: %+v", a, b)
			}
		})
	}
}

// TestTable1Conformance locks in the clean (no chaos) baseline per scheme:
// the paper's Table 1 invariants as one table-driven test, run before the
// chaos matrix is allowed to mean anything.
func TestTable1Conformance(t *testing.T) {
	cases := []struct {
		scheme ftmgr.Scheme
		// masked: the scheme's recovery is invisible to the application.
		masked bool
	}{
		{ftmgr.ReactiveNoCache, false},
		{ftmgr.ReactiveCache, false},
		{ftmgr.NeedsAddressing, true}, // loopback GCS: the query always wins its window
		{ftmgr.LocationForward, true},
		{ftmgr.MeadMessage, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.scheme.String(), func(t *testing.T) {
			res := run(t, compressed(tc.scheme))
			if res.ServerFailures == 0 {
				t.Fatal("fault injection produced no server failures")
			}
			if len(res.Failovers) == 0 {
				t.Error("no fail-overs recorded")
			}
			if res.FailedInvocations > res.Invocations/10 {
				t.Errorf("%d invocations never succeeded", res.FailedInvocations)
			}
			for name := range res.Exceptions {
				if name != "COMM_FAILURE" && name != "TRANSIENT" {
					t.Errorf("unexpected exception kind %s", name)
				}
			}
			cf, sf := res.ClientFailures(), res.ServerFailures
			if tc.masked && cf != 0 {
				t.Errorf("proactive scheme leaked %d exceptions: %v", cf, res.Exceptions)
			}
			if !tc.masked {
				if cf == 0 {
					t.Error("reactive baseline surfaced no exceptions")
				}
				// Roughly one client-visible failure per server failure.
				if cf < sf/2 || cf > 2*sf+2 {
					t.Errorf("client/server failures = %d/%d, want roughly 1:1", cf, sf)
				}
			}
		})
	}
}
