// Package interceptor provides MEAD's transparent interception layer.
//
// The paper interposes on the eight UNIX socket calls (socket, accept,
// connect, listen, close, read, writev, select) via LD_PRELOAD library
// interpositioning, so that an *unmodified* ORB's GIOP byte stream can be
// observed, rewritten, and redirected underneath the application. Go has no
// symbol preloading, but the paper's interceptor uses those syscalls for
// exactly two capabilities, both of which this package reproduces at the
// same boundary (the transport under the ORB):
//
//   - read()/writev() interception -> frame-granular read/write hooks that
//     can consume, replace, or prepend whole GIOP/MEAD frames; and
//   - dup2()-based connection redirection -> SwapUnder, which atomically
//     repoints the byte stream at a different TCP connection while the ORB
//     keeps using the same net.Conn value ("the Interceptor opening a new
//     TCP socket ... and then using the UNIX dup2() call to close the
//     connection to the failing replica, and point the connection to the
//     new address").
//
// A Conn is used by a single request/reply goroutine, like a socket in a
// single-threaded CORBA client; only Close and SwapUnder may be called
// concurrently with Read/Write.
package interceptor

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"mead/internal/giop"
)

// Hooks are the interception points. All hooks run on the goroutine calling
// Read/Write; they may call SwapUnder.
type Hooks struct {
	// OnReadFrame observes each whole inbound frame (GIOP or MEAD) and
	// returns the bytes to surface to the ORB: f.Raw to pass it through,
	// nil to consume it silently, or substitute bytes (which must
	// themselves be whole frames). The frame aliases a per-connection
	// buffer that is recycled after the hook returns; retain copies, not
	// f.Raw/f.Body slices.
	OnReadFrame func(c *Conn, f giop.Frame) ([]byte, error)
	// OnWriteFrame observes each whole outbound frame and returns the
	// bytes to put on the wire: f.Raw to pass through, a replacement, or a
	// replacement with additional piggybacked frames.
	OnWriteFrame func(c *Conn, f giop.Frame) ([]byte, error)
	// OnReadEOF is consulted when the underlying transport fails mid-read
	// (EOF or reset — the paper's signature of an abrupt server failure).
	// It may repair the connection (SwapUnder) and return fabricated bytes
	// to surface plus resume=true; resume=false propagates the error. The
	// substitute bytes are surfaced to the ORB verbatim (they are not
	// re-parsed), so a hook that fabricates a truncated frame simply leaves
	// the ORB to detect the short stream itself.
	OnReadEOF func(c *Conn, err error) (substitute []byte, resume bool)
	// OnWriteError is consulted when writing a whole frame to the
	// underlying transport fails with a stream-end error (reset or closed
	// pipe — the write-side signature of an abrupt peer failure). The hook
	// may repair the connection (SwapUnder) and return true, in which case
	// the frame is rewritten once, in full, on the new transport; false
	// propagates the error to the ORB.
	OnWriteError func(c *Conn, err error) (resume bool)
}

// ErrIntercepted reports a hook-initiated failure.
var ErrIntercepted = errors.New("interceptor: hook failed the operation")

// srcBufSize sizes the buffered reader over the transport; one buffer fill
// typically captures several small GIOP frames, collapsing the
// header-then-body read pairs into a single syscall.
const srcBufSize = 4096

// Conn is the frame-aware interposing connection. It implements net.Conn.
type Conn struct {
	hooks Hooks

	underMu sync.Mutex
	under   net.Conn
	closed  bool

	readBuf  []byte // filtered bytes awaiting delivery to the ORB
	writeBuf []byte // partial outbound frame accumulation

	// src buffers reads from the transport. It is owned exclusively by the
	// Read goroutine (SwapUnder only swaps `under`); when that goroutine
	// notices the transport changed it moves any read-ahead into carry —
	// those bytes were already delivered by the old replica — and rebuilds
	// src over the new transport.
	src     *bufio.Reader
	srcConn net.Conn // transport src currently wraps
	carry   []byte   // read-ahead preserved across SwapUnder

	// frameBuf is the reusable backing array for inbound frames
	// (giop.ReadFrameInto); each frame is copied into readBuf before the
	// next read, so recycling it is safe as long as hooks do not retain
	// f.Raw past their return (documented on Hooks).
	frameBuf []byte
}

var _ net.Conn = (*Conn)(nil)

// New wraps under with the given hooks.
func New(under net.Conn, hooks Hooks) *Conn {
	return &Conn{under: under, hooks: hooks}
}

// Under returns the current underlying connection.
func (c *Conn) Under() net.Conn {
	c.underMu.Lock()
	defer c.underMu.Unlock()
	return c.under
}

// SwapUnder atomically redirects the stream to newConn, closing the old
// transport — the dup2() equivalent. Any buffered inbound bytes are
// preserved (they were already delivered by the old replica). Swapping a
// connection that has already been Closed closes newConn instead of
// resurrecting the stream, so a hook-driven repair racing Close cannot leak
// the replacement transport.
func (c *Conn) SwapUnder(newConn net.Conn) {
	c.underMu.Lock()
	if c.closed {
		c.underMu.Unlock()
		if newConn != nil {
			_ = newConn.Close()
		}
		return
	}
	old := c.under
	c.under = newConn
	c.underMu.Unlock()
	if old != nil && old != newConn {
		_ = old.Close()
	}
}

// Close closes the current underlying transport.
func (c *Conn) Close() error {
	c.underMu.Lock()
	c.closed = true
	under := c.under
	c.underMu.Unlock()
	if under == nil {
		return nil
	}
	return under.Close()
}

func (c *Conn) isClosed() bool {
	c.underMu.Lock()
	defer c.underMu.Unlock()
	return c.closed
}

// srcReader adapts the Conn's buffered, swap-aware inbound byte source to
// io.Reader for the frame reader. Only the Read goroutine uses it.
type srcReader struct{ c *Conn }

func (r srcReader) Read(p []byte) (int, error) {
	c := r.c
	if len(c.carry) > 0 {
		n := copy(p, c.carry)
		c.carry = c.carry[n:]
		return n, nil
	}
	under := c.Under()
	if c.src == nil || c.srcConn != under {
		// Transport swapped underneath us (or first read). Preserve any
		// read-ahead from the old replica before rebuilding the buffer.
		if c.src != nil {
			if n := c.src.Buffered(); n > 0 {
				peeked, _ := c.src.Peek(n)
				c.carry = append(c.carry, peeked...)
			}
		}
		c.src = bufio.NewReaderSize(under, srcBufSize)
		c.srcConn = under
		if len(c.carry) > 0 {
			n := copy(p, c.carry)
			c.carry = c.carry[n:]
			return n, nil
		}
	}
	return c.src.Read(p)
}

// Read returns filtered stream bytes. It reads whole frames from the
// underlying transport, passes each through OnReadFrame, and serves the
// results; the ORB on top performs its usual header-then-body reads and
// never observes MEAD frames or suppressed messages.
func (c *Conn) Read(p []byte) (int, error) {
	for len(c.readBuf) == 0 {
		if c.isClosed() {
			return 0, net.ErrClosed
		}
		f, fb, err := giop.ReadFrameInto(srcReader{c}, c.frameBuf)
		c.frameBuf = fb
		if err != nil {
			if c.isClosed() {
				return 0, err
			}
			if isStreamEnd(err) && c.hooks.OnReadEOF != nil {
				if sub, resume := c.hooks.OnReadEOF(c, err); resume {
					c.readBuf = append(c.readBuf, sub...)
					continue
				}
			}
			return 0, err
		}
		out := f.Raw
		if c.hooks.OnReadFrame != nil {
			out, err = c.hooks.OnReadFrame(c, f)
			if err != nil {
				return 0, err
			}
		}
		c.readBuf = append(c.readBuf, out...)
	}
	n := copy(p, c.readBuf)
	c.readBuf = c.readBuf[n:]
	return n, nil
}

// Write accumulates outbound bytes until whole frames are available, passes
// each frame through OnWriteFrame, and writes the (possibly rewritten)
// result to the wire.
//
// A corrupt or oversized frame header fails the Write with the underlying
// typed error (ErrBadMagic, ErrBadVersion, giop.ErrTooLarge) instead of
// accumulating bytes forever waiting for a frame that can never complete:
// with valid headers the buffer is bounded by one maximum-size frame.
func (c *Conn) Write(p []byte) (int, error) {
	c.writeBuf = append(c.writeBuf, p...)
	for {
		frameLen, err := peekFrameLen(c.writeBuf)
		if err != nil {
			c.writeBuf = c.writeBuf[:0]
			return 0, fmt.Errorf("interceptor: outbound stream corrupt: %w", err)
		}
		if frameLen == 0 {
			return len(p), nil // wait for the rest of the frame
		}
		// The frame is parsed in place (capacity-capped so hook-side appends
		// cannot scribble on the remainder); hooks must not retain f.Raw
		// past their return — the buffer is reclaimed below.
		raw := c.writeBuf[:frameLen:frameLen]

		f, err := parseFrame(raw)
		if err != nil {
			c.writeBuf = c.writeBuf[:0]
			return 0, err
		}
		out := raw
		if c.hooks.OnWriteFrame != nil {
			out, err = c.hooks.OnWriteFrame(c, f)
			if err != nil {
				return 0, err
			}
		}
		if len(out) != 0 {
			if err := c.writeFrame(out); err != nil {
				return 0, err
			}
		}
		// Reclaim the processed frame: slide the remainder to the front so
		// the buffer never drifts through (and pins) its backing array.
		n := copy(c.writeBuf, c.writeBuf[frameLen:])
		c.writeBuf = c.writeBuf[:n]
	}
}

// writeFrame puts one whole (possibly rewritten) frame on the wire. A
// stream-end failure is offered to OnWriteError, which may repair the
// transport (SwapUnder) and resume; the frame is then retransmitted once,
// in full, on the new transport. A truncated first attempt is safe to
// repeat: the peer discards the partial frame when its end of the broken
// connection dies.
func (c *Conn) writeFrame(out []byte) error {
	_, err := c.Under().Write(out)
	if err == nil {
		return nil
	}
	if c.isClosed() || !isStreamEnd(err) || c.hooks.OnWriteError == nil {
		return err
	}
	if !c.hooks.OnWriteError(c, err) {
		return err
	}
	_, err = c.Under().Write(out)
	return err
}

// LocalAddr returns the current transport's local address.
func (c *Conn) LocalAddr() net.Addr { return c.Under().LocalAddr() }

// RemoteAddr returns the current transport's remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.Under().RemoteAddr() }

// SetDeadline sets deadlines on the current transport.
func (c *Conn) SetDeadline(t time.Time) error { return c.Under().SetDeadline(t) }

// SetReadDeadline sets the read deadline on the current transport.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.Under().SetReadDeadline(t) }

// SetWriteDeadline sets the write deadline on the current transport.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.Under().SetWriteDeadline(t) }

// isStreamEnd reports whether err looks like the peer vanishing (EOF,
// reset, or closed pipe) as opposed to a protocol error.
func isStreamEnd(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return !ne.Timeout()
	}
	// syscall-level resets arrive as *net.OpError wrapping ECONNRESET.
	var oe *net.OpError
	return errors.As(err, &oe)
}

// peekFrameLen reports the total length of the frame at the head of buf.
// (0, nil) means the frame is incomplete — wait for more bytes. A non-nil
// error means the head of the stream can never become a valid frame
// (bad magic/version, or a length prefix over giop.MaxMessageSize).
func peekFrameLen(buf []byte) (int, error) {
	return giop.WireFrameLen(buf)
}

// parseFrame decodes a complete raw frame.
func parseFrame(raw []byte) (giop.Frame, error) {
	switch string(raw[:4]) {
	case giop.Magic:
		h, err := giop.ParseHeader(raw[:giop.HeaderLen])
		if err != nil {
			return giop.Frame{}, err
		}
		return giop.Frame{Kind: giop.FrameGIOP, Header: h, Raw: raw}, nil
	case giop.MeadMagic:
		t, _, err := giop.ParseMeadHeader(raw[:giop.MeadHeaderLen])
		if err != nil {
			return giop.Frame{}, err
		}
		return giop.Frame{
			Kind: giop.FrameMEAD,
			Mead: giop.MeadMessage{Type: t, Payload: raw[giop.MeadHeaderLen:]},
			Raw:  raw,
		}, nil
	default:
		return giop.Frame{}, giop.ErrBadMagic
	}
}
