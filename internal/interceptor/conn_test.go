package interceptor

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"testing/quick"
	"time"

	"mead/internal/cdr"
	"mead/internal/giop"
)

func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, err = ln.Accept()
	}()
	client, cerr := net.Dial("tcp", ln.Addr().String())
	<-done
	if cerr != nil || err != nil {
		t.Fatalf("pair: %v %v", cerr, err)
	}
	t.Cleanup(func() {
		_ = client.Close()
		_ = server.Close()
	})
	return client, server
}

func requestFrame(id uint32, op string) []byte {
	return giop.EncodeRequest(cdr.BigEndian, giop.RequestHeader{
		RequestID:        id,
		ResponseExpected: true,
		ObjectKey:        giop.MakeObjectKey("s", "o"),
		Operation:        op,
	}, nil)
}

func replyFrame(id uint32) []byte {
	return giop.EncodeReply(cdr.BigEndian,
		giop.ReplyHeader{RequestID: id, Status: giop.ReplyNoException}, nil)
}

func TestPassThrough(t *testing.T) {
	cEnd, sEnd := tcpPair(t)
	ic := New(cEnd, Hooks{})
	msg := requestFrame(1, "ping")

	go func() {
		_, _ = ic.Write(msg)
	}()
	h, body, err := giop.ReadMessage(sEnd)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != giop.MsgRequest {
		t.Fatalf("type = %v", h.Type)
	}
	hdr, _, err := giop.DecodeRequest(h.Order, body)
	if err != nil || hdr.Operation != "ping" {
		t.Fatalf("request = %+v, %v", hdr, err)
	}

	// And the reverse direction through Read.
	reply := replyFrame(1)
	go func() { _, _ = sEnd.Write(reply) }()
	got := make([]byte, len(reply))
	if _, err := io.ReadFull(ic, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, reply) {
		t.Fatal("reply bytes differ through interceptor")
	}
}

func TestPartialWritesReassembled(t *testing.T) {
	cEnd, sEnd := tcpPair(t)
	ic := New(cEnd, Hooks{})
	msg := requestFrame(7, "chunked")

	go func() {
		for i := 0; i < len(msg); i += 5 {
			end := i + 5
			if end > len(msg) {
				end = len(msg)
			}
			if _, err := ic.Write(msg[i:end]); err != nil {
				return
			}
		}
	}()
	h, body, err := giop.ReadMessage(sEnd)
	if err != nil {
		t.Fatal(err)
	}
	hdr, _, err := giop.DecodeRequest(h.Order, body)
	if err != nil || hdr.RequestID != 7 {
		t.Fatalf("request = %+v, %v", hdr, err)
	}
}

func TestWriteHookReplacesFrame(t *testing.T) {
	cEnd, sEnd := tcpPair(t)
	replacement := replyFrame(99)
	ic := New(cEnd, Hooks{
		OnWriteFrame: func(c *Conn, f giop.Frame) ([]byte, error) {
			if f.Kind == giop.FrameGIOP && f.Header.Type == giop.MsgRequest {
				return replacement, nil
			}
			return f.Raw, nil
		},
	})
	go func() { _, _ = ic.Write(requestFrame(1, "x")) }()
	h, body, err := giop.ReadMessage(sEnd)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != giop.MsgReply {
		t.Fatalf("wire frame type = %v, want substituted Reply", h.Type)
	}
	rh, _, err := giop.DecodeReply(h.Order, body)
	if err != nil || rh.RequestID != 99 {
		t.Fatalf("substituted reply = %+v, %v", rh, err)
	}
}

func TestWriteHookPiggybacksFrames(t *testing.T) {
	cEnd, sEnd := tcpPair(t)
	mead := giop.EncodeMead(giop.MeadFailover, []byte("to"))
	ic := New(cEnd, Hooks{
		OnWriteFrame: func(c *Conn, f giop.Frame) ([]byte, error) {
			out := make([]byte, 0, len(mead)+len(f.Raw))
			out = append(out, mead...)
			out = append(out, f.Raw...)
			return out, nil
		},
	})
	reply := replyFrame(4)
	go func() { _, _ = ic.Write(reply) }()

	f1, err := giop.ReadFrame(sEnd)
	if err != nil || f1.Kind != giop.FrameMEAD {
		t.Fatalf("first wire frame = %+v, %v", f1, err)
	}
	f2, err := giop.ReadFrame(sEnd)
	if err != nil || f2.Kind != giop.FrameGIOP {
		t.Fatalf("second wire frame = %+v, %v", f2, err)
	}
	if !bytes.Equal(f2.Raw, reply) {
		t.Fatal("piggybacked reply corrupted")
	}
}

func TestReadHookConsumesMeadFrames(t *testing.T) {
	cEnd, sEnd := tcpPair(t)
	var meadSeen int
	ic := New(cEnd, Hooks{
		OnReadFrame: func(c *Conn, f giop.Frame) ([]byte, error) {
			if f.Kind == giop.FrameMEAD {
				meadSeen++
				return nil, nil // consume: the ORB never sees it
			}
			return f.Raw, nil
		},
	})
	reply := replyFrame(2)
	go func() {
		_, _ = sEnd.Write(giop.EncodeMead(giop.MeadFailover, []byte("addr")))
		_, _ = sEnd.Write(reply)
	}()
	h, body, err := giop.ReadMessage(ic)
	if err != nil {
		t.Fatal(err)
	}
	rh, _, err := giop.DecodeReply(h.Order, body)
	if err != nil || rh.RequestID != 2 {
		t.Fatalf("reply = %+v, %v", rh, err)
	}
	if meadSeen != 1 {
		t.Fatalf("mead frames seen = %d", meadSeen)
	}
}

func TestOnReadEOFFabricatesReply(t *testing.T) {
	cEnd, sEnd := tcpPair(t)
	fabricated := giop.EncodeReply(cdr.BigEndian,
		giop.ReplyHeader{RequestID: 5, Status: giop.ReplyNeedsAddressingMode}, nil)
	ic := New(cEnd, Hooks{
		OnReadEOF: func(c *Conn, err error) ([]byte, bool) {
			return fabricated, true
		},
	})
	_ = sEnd.Close() // abrupt server failure
	h, body, err := giop.ReadMessage(ic)
	if err != nil {
		t.Fatal(err)
	}
	rh, _, err := giop.DecodeReply(h.Order, body)
	if err != nil || rh.Status != giop.ReplyNeedsAddressingMode || rh.RequestID != 5 {
		t.Fatalf("fabricated reply = %+v, %v", rh, err)
	}
}

func TestOnReadEOFDecline(t *testing.T) {
	cEnd, sEnd := tcpPair(t)
	ic := New(cEnd, Hooks{
		OnReadEOF: func(c *Conn, err error) ([]byte, bool) { return nil, false },
	})
	_ = sEnd.Close()
	buf := make([]byte, 16)
	if _, err := ic.Read(buf); err == nil {
		t.Fatal("read succeeded after declined EOF hook")
	}
}

func TestSwapUnderRedirectsSubsequentTraffic(t *testing.T) {
	cEnd1, sEnd1 := tcpPair(t)
	cEnd2, sEnd2 := tcpPair(t)
	ic := New(cEnd1, Hooks{})

	// Small frames fit in the TCP buffer, so synchronous writes are safe.
	if _, err := ic.Write(requestFrame(1, "first")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := giop.ReadMessage(sEnd1); err != nil {
		t.Fatal(err)
	}

	ic.SwapUnder(cEnd2)

	if _, err := ic.Write(requestFrame(2, "second")); err != nil {
		t.Fatal(err)
	}
	h, body, err := giop.ReadMessage(sEnd2)
	if err != nil {
		t.Fatal(err)
	}
	hdr, _, err := giop.DecodeRequest(h.Order, body)
	if err != nil || hdr.Operation != "second" {
		t.Fatalf("redirected request = %+v, %v", hdr, err)
	}

	// The old transport was closed by the swap (dup2 semantics).
	one := make([]byte, 1)
	_ = sEnd1.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := sEnd1.Read(one); err == nil {
		t.Fatal("old transport still alive after swap")
	}
}

func TestSwapInsideReadHook(t *testing.T) {
	// The MEAD client scheme swaps the transport from within the read hook
	// that delivers the final reply of the failing replica.
	cEnd1, sEnd1 := tcpPair(t)
	cEnd2, sEnd2 := tcpPair(t)
	ic := New(cEnd1, Hooks{
		OnReadFrame: func(c *Conn, f giop.Frame) ([]byte, error) {
			c.SwapUnder(cEnd2)
			return f.Raw, nil
		},
	})
	go func() { _, _ = sEnd1.Write(replyFrame(1)) }()
	if _, _, err := giop.ReadMessage(ic); err != nil {
		t.Fatal(err)
	}
	if _, err := ic.Write(requestFrame(2, "after-swap")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := giop.ReadMessage(sEnd2); err != nil {
		t.Fatal(err)
	}
}

func TestCloseUnblocksRead(t *testing.T) {
	cEnd, _ := tcpPair(t)
	ic := New(cEnd, Hooks{})
	errCh := make(chan error, 1)
	go func() {
		buf := make([]byte, 8)
		_, err := ic.Read(buf)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	_ = ic.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("read returned nil after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read did not unblock on close")
	}
}

func TestReadHookErrorPropagates(t *testing.T) {
	cEnd, sEnd := tcpPair(t)
	hookErr := errors.New("reject")
	ic := New(cEnd, Hooks{
		OnReadFrame: func(c *Conn, f giop.Frame) ([]byte, error) { return nil, hookErr },
	})
	go func() { _, _ = sEnd.Write(replyFrame(1)) }()
	buf := make([]byte, 4)
	if _, err := ic.Read(buf); !errors.Is(err, hookErr) {
		t.Fatalf("err = %v, want hook error", err)
	}
}

func TestAddrsAndDeadlines(t *testing.T) {
	cEnd, _ := tcpPair(t)
	ic := New(cEnd, Hooks{})
	if ic.LocalAddr() == nil || ic.RemoteAddr() == nil {
		t.Fatal("nil addrs")
	}
	if err := ic.SetDeadline(time.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := ic.SetReadDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := ic.SetWriteDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
}

func TestPeekFrameLen(t *testing.T) {
	req := requestFrame(1, "x")
	if n, err := peekFrameLen(req); err != nil || n != len(req) {
		t.Fatalf("peek GIOP = %d,%v", n, err)
	}
	if n, err := peekFrameLen(req[:8]); err != nil || n != 0 {
		t.Fatalf("short header: got %d,%v, want incomplete", n, err)
	}
	if n, err := peekFrameLen(req[:len(req)-1]); err != nil || n != 0 {
		t.Fatalf("incomplete frame: got %d,%v, want incomplete", n, err)
	}
	mead := giop.EncodeMead(giop.MeadNotice, []byte{1})
	if n, err := peekFrameLen(mead); err != nil || n != len(mead) {
		t.Fatalf("peek MEAD = %d,%v", n, err)
	}
	if _, err := peekFrameLen([]byte("XXXXXXXXXXXXXXXX")); !errors.Is(err, giop.ErrBadMagic) {
		t.Fatalf("junk: err = %v, want ErrBadMagic", err)
	}
}

// TestPropertyPassThroughPreservesStream: with no hooks, any sequence of
// GIOP and MEAD frames crosses the interceptor byte-identically in both
// directions.
func TestPropertyPassThroughPreservesStream(t *testing.T) {
	f := func(seed int64, frameSpec []byte) bool {
		if len(frameSpec) == 0 || len(frameSpec) > 24 {
			return true
		}
		cEnd, sEnd := tcpPair(t)
		ic := New(cEnd, Hooks{})

		var want bytes.Buffer
		for i, b := range frameSpec {
			var frame []byte
			switch b % 3 {
			case 0:
				frame = requestFrame(uint32(i), "op")
			case 1:
				frame = replyFrame(uint32(i))
			default:
				frame = giop.EncodeMead(giop.MeadNotice, []byte{b})
			}
			want.Write(frame)
		}
		go func() {
			data := want.Bytes()
			// Write in odd-sized chunks to exercise reassembly.
			for i := 0; i < len(data); i += 7 {
				end := i + 7
				if end > len(data) {
					end = len(data)
				}
				if _, err := ic.Write(data[i:end]); err != nil {
					return
				}
			}
		}()
		got := make([]byte, want.Len())
		_ = sEnd.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := io.ReadFull(sEnd, got); err != nil {
			return false
		}
		return bytes.Equal(got, want.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestWriteRejectsCorruptMagic: bytes that can never frame must fail the
// Write with a typed error instead of accumulating forever.
func TestWriteRejectsCorruptMagic(t *testing.T) {
	cEnd, _ := tcpPair(t)
	ic := New(cEnd, Hooks{})
	junk := make([]byte, 64)
	for i := range junk {
		junk[i] = 'X'
	}
	if _, err := ic.Write(junk); !errors.Is(err, giop.ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	if len(ic.writeBuf) != 0 {
		t.Fatalf("writeBuf retained %d bytes after corrupt stream", len(ic.writeBuf))
	}
}

// TestWriteRejectsOversizedFrame: a hostile length prefix beyond
// giop.MaxMessageSize errors out instead of waiting for (and buffering
// toward) a frame that would exhaust memory.
func TestWriteRejectsOversizedFrame(t *testing.T) {
	old := giop.SetMaxMessageSize(1 << 10)
	defer giop.SetMaxMessageSize(old)

	cEnd, _ := tcpPair(t)
	ic := New(cEnd, Hooks{})
	hdr := giop.EncodeHeader(giop.Header{
		Major: giop.VersionMajor, Minor: giop.VersionMinor,
		Type: giop.MsgRequest, Size: 1 << 20,
	})
	if _, err := ic.Write(hdr); !errors.Is(err, giop.ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if len(ic.writeBuf) != 0 {
		t.Fatalf("writeBuf retained %d bytes after oversized frame", len(ic.writeBuf))
	}
}

// TestOnReadEOFTruncatedSubstitute: a hook that fabricates a truncated
// frame leaves the ORB to detect the short stream itself (documented on
// Hooks.OnReadEOF) — the interceptor surfaces the bytes verbatim, and the
// next read hits the hook again rather than desyncing the stream.
func TestOnReadEOFTruncatedSubstitute(t *testing.T) {
	cEnd, sEnd := tcpPair(t)
	whole := replyFrame(9)
	var calls int
	ic := New(cEnd, Hooks{
		OnReadEOF: func(c *Conn, err error) ([]byte, bool) {
			calls++
			if calls == 1 {
				return whole[:len(whole)/2], true // torn substitute
			}
			return nil, false
		},
	})
	_ = sEnd.Close()
	_, _, err := giop.ReadMessage(ic)
	if err == nil {
		t.Fatal("truncated substitute produced a whole message")
	}
	if calls != 2 {
		t.Fatalf("OnReadEOF calls = %d, want 2 (torn bytes, then decline)", calls)
	}
}

// TestSwapUnderRacesClose: however Close and a hook-driven SwapUnder
// interleave, the replacement transport must end up closed — a repair racing
// a shutdown cannot resurrect the stream or leak its socket.
func TestSwapUnderRacesClose(t *testing.T) {
	for i := 0; i < 50; i++ {
		cEnd1, _ := tcpPair(t)
		cEnd2, _ := tcpPair(t)
		ic := New(cEnd1, Hooks{})
		start := make(chan struct{})
		done := make(chan struct{}, 2)
		go func() { <-start; _ = ic.Close(); done <- struct{}{} }()
		go func() { <-start; ic.SwapUnder(cEnd2); done <- struct{}{} }()
		close(start)
		<-done
		<-done
		// Whichever won, the swapped-in conn is closed: either the swap
		// landed first and Close took it down, or Close landed first and
		// SwapUnder refused the resurrection.
		if _, err := cEnd2.Read(make([]byte, 1)); !errors.Is(err, net.ErrClosed) {
			t.Fatalf("iteration %d: replacement conn alive after close/swap race (err = %v)", i, err)
		}
	}
}

// TestWriteErrorRecoveryPreservesPiggyback: when the transport dies under a
// piggybacked MEAD+GIOP write, the OnWriteError repair must retransmit the
// whole rewritten output — both frames, in order — on the new transport.
func TestWriteErrorRecoveryPreservesPiggyback(t *testing.T) {
	cEnd1, _ := tcpPair(t)
	cEnd2, sEnd2 := tcpPair(t)
	mead := giop.EncodeMead(giop.MeadFailover, []byte("to"))
	var repairs int
	ic := New(cEnd1, Hooks{
		OnWriteFrame: func(c *Conn, f giop.Frame) ([]byte, error) {
			out := make([]byte, 0, len(mead)+len(f.Raw))
			out = append(out, mead...)
			return append(out, f.Raw...), nil
		},
		OnWriteError: func(c *Conn, err error) bool {
			repairs++
			c.SwapUnder(cEnd2)
			return true
		},
	})
	_ = cEnd1.Close() // transport dies before the write reaches the wire
	if _, err := ic.Write(requestFrame(3, "retry")); err != nil {
		t.Fatalf("recovered write: %v", err)
	}
	if repairs != 1 {
		t.Fatalf("repairs = %d, want 1", repairs)
	}
	f1, err := giop.ReadFrame(sEnd2)
	if err != nil || f1.Kind != giop.FrameMEAD {
		t.Fatalf("first retransmitted frame = %+v, %v; want MEAD piggyback", f1, err)
	}
	h, body, err := giop.ReadMessage(sEnd2)
	if err != nil || h.Type != giop.MsgRequest {
		t.Fatalf("second retransmitted frame: %+v, %v", h, err)
	}
	hdr, _, err := giop.DecodeRequest(h.Order, body)
	if err != nil || hdr.Operation != "retry" {
		t.Fatalf("retransmitted request = %+v, %v", hdr, err)
	}
}

// TestWriteBufReclaimedAfterFrames: the accumulation buffer must not grow
// without bound across many complete frames.
func TestWriteBufReclaimedAfterFrames(t *testing.T) {
	cEnd, sEnd := tcpPair(t)
	ic := New(cEnd, Hooks{})
	go io.Copy(io.Discard, sEnd)
	frame := requestFrame(1, "op")
	for i := 0; i < 200; i++ {
		if _, err := ic.Write(frame); err != nil {
			t.Fatal(err)
		}
	}
	if len(ic.writeBuf) != 0 {
		t.Fatalf("writeBuf holds %d bytes after whole frames", len(ic.writeBuf))
	}
	if cap(ic.writeBuf) > 4*len(frame) {
		t.Fatalf("writeBuf capacity drifted to %d", cap(ic.writeBuf))
	}
}
