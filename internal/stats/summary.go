package stats

import (
	"math"
	"sort"
	"time"
)

// Summary holds descriptive statistics for a duration series.
type Summary struct {
	Count  int
	Mean   time.Duration
	Stddev time.Duration
	Min    time.Duration
	Max    time.Duration
	P50    time.Duration
	P95    time.Duration
	P99    time.Duration
}

// Summarize computes descriptive statistics over a series of durations.
// A nil or empty series yields a zero Summary.
func Summarize(series []time.Duration) Summary {
	if len(series) == 0 {
		return Summary{}
	}
	sorted := make([]time.Duration, len(series))
	copy(sorted, series)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var sum float64
	for _, d := range series {
		sum += float64(d)
	}
	mean := sum / float64(len(series))

	var sq float64
	for _, d := range series {
		diff := float64(d) - mean
		sq += diff * diff
	}
	std := math.Sqrt(sq / float64(len(series)))

	return Summary{
		Count:  len(series),
		Mean:   time.Duration(mean),
		Stddev: time.Duration(std),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P50:    Percentile(sorted, 0.50),
		P95:    Percentile(sorted, 0.95),
		P99:    Percentile(sorted, 0.99),
	}
}

// Percentile returns the p-th percentile (0 <= p <= 1) of an already-sorted
// series using nearest-rank interpolation. An empty series yields zero.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[hi]-sorted[lo]))
}

// OutlierReport describes the spikes in an RTT series relative to the
// 3-sigma band around the mean, mirroring the jitter analysis of
// Section 5.2.5 ("we observed spikes that exceeded our average round-trip
// times by 3-sigma. These outliers occurred between 1-2.5% of the time").
type OutlierReport struct {
	Count     int           // samples beyond mean + 3*sigma
	Fraction  float64       // Count / len(series)
	Threshold time.Duration // mean + 3*sigma
	MaxSpike  time.Duration // largest sample in the series
	Indices   []int         // positions of the outliers in the series
}

// Outliers computes the 3-sigma outlier report for a series.
func Outliers(series []time.Duration) OutlierReport {
	s := Summarize(series)
	if s.Count == 0 {
		return OutlierReport{}
	}
	threshold := s.Mean + 3*s.Stddev
	report := OutlierReport{Threshold: threshold, MaxSpike: s.Max}
	for i, d := range series {
		if d > threshold {
			report.Count++
			report.Indices = append(report.Indices, i)
		}
	}
	report.Fraction = float64(report.Count) / float64(s.Count)
	return report
}
