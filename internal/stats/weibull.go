// Package stats provides the statistical utilities used by the MEAD
// reproduction: the Weibull sampler that drives the paper's memory-leak
// fault injector, summary statistics over round-trip-time series, and the
// 3-sigma jitter analysis from Section 5.2.5 of the paper.
package stats

import (
	"errors"
	"math"
	"math/rand"
)

// Weibull draws samples from a two-parameter Weibull distribution using
// inverse-CDF sampling. The paper injects memory-leak chunks "according to a
// Weibull distribution with a scale parameter of 64, and a shape parameter
// of 2.0" (Section 5.1).
type Weibull struct {
	scale float64
	shape float64
	rng   *rand.Rand
}

// ErrBadWeibullParam reports a non-positive scale or shape parameter.
var ErrBadWeibullParam = errors.New("stats: weibull scale and shape must be positive")

// NewWeibull returns a Weibull sampler with the given scale (lambda) and
// shape (k) parameters, seeded deterministically so fault-injection runs are
// reproducible.
func NewWeibull(scale, shape float64, seed int64) (*Weibull, error) {
	if scale <= 0 || shape <= 0 || math.IsNaN(scale) || math.IsNaN(shape) {
		return nil, ErrBadWeibullParam
	}
	return &Weibull{
		scale: scale,
		shape: shape,
		rng:   rand.New(rand.NewSource(seed)),
	}, nil
}

// Sample draws one value. The inverse CDF of Weibull(lambda, k) is
// lambda * (-ln(1-u))^(1/k) for u uniform on [0, 1).
func (w *Weibull) Sample() float64 {
	u := w.rng.Float64()
	return w.scale * math.Pow(-math.Log1p(-u), 1/w.shape)
}

// Mean returns the analytical mean: scale * Gamma(1 + 1/shape).
func (w *Weibull) Mean() float64 {
	return w.scale * math.Gamma(1+1/w.shape)
}

// Scale returns the scale parameter.
func (w *Weibull) Scale() float64 { return w.scale }

// Shape returns the shape parameter.
func (w *Weibull) Shape() float64 { return w.shape }
