package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestNewWeibullRejectsBadParams(t *testing.T) {
	tests := []struct {
		name  string
		scale float64
		shape float64
	}{
		{name: "zero scale", scale: 0, shape: 2},
		{name: "zero shape", scale: 64, shape: 0},
		{name: "negative scale", scale: -1, shape: 2},
		{name: "negative shape", scale: 64, shape: -2},
		{name: "nan scale", scale: math.NaN(), shape: 2},
		{name: "nan shape", scale: 64, shape: math.NaN()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewWeibull(tt.scale, tt.shape, 1); err == nil {
				t.Fatalf("NewWeibull(%v, %v) succeeded, want error", tt.scale, tt.shape)
			}
		})
	}
}

func TestWeibullSampleMeanMatchesAnalytical(t *testing.T) {
	w, err := NewWeibull(64, 2.0, 42)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += w.Sample()
	}
	got := sum / n
	want := w.Mean() // 64 * Gamma(1.5) = 56.72...
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("empirical mean %.3f, analytical mean %.3f (>2%% apart)", got, want)
	}
}

func TestWeibullMeanFormula(t *testing.T) {
	w, err := NewWeibull(64, 2.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 64 * math.Gamma(1.5)
	if math.Abs(w.Mean()-want) > 1e-9 {
		t.Fatalf("Mean() = %v, want %v", w.Mean(), want)
	}
}

func TestWeibullSamplesNonNegative(t *testing.T) {
	w, err := NewWeibull(64, 2.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if s := w.Sample(); s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("sample %d = %v, want finite non-negative", i, s)
		}
	}
}

func TestWeibullDeterministicForSeed(t *testing.T) {
	a, _ := NewWeibull(64, 2.0, 99)
	b, _ := NewWeibull(64, 2.0, 99)
	for i := 0; i < 100; i++ {
		if x, y := a.Sample(), b.Sample(); x != y {
			t.Fatalf("sample %d differs across identically seeded samplers: %v vs %v", i, x, y)
		}
	}
}

func TestWeibullShapePropertyCDF(t *testing.T) {
	// Property: for any valid parameters, the empirical CDF at the scale
	// parameter should be close to 1 - 1/e (the Weibull CDF at x=scale is
	// 1 - exp(-1) regardless of shape).
	f := func(scaleRaw, shapeRaw uint8, seed int64) bool {
		scale := 1 + float64(scaleRaw)
		shape := 0.5 + float64(shapeRaw)/32
		w, err := NewWeibull(scale, shape, seed)
		if err != nil {
			return false
		}
		const n = 5000
		below := 0
		for i := 0; i < n; i++ {
			if w.Sample() <= scale {
				below++
			}
		}
		got := float64(below) / n
		want := 1 - math.Exp(-1)
		return math.Abs(got-want) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 || s.Max != 0 {
		t.Fatalf("Summarize(nil) = %+v, want zero value", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]time.Duration{5 * time.Millisecond})
	if s.Count != 1 || s.Mean != 5*time.Millisecond || s.Min != s.Max || s.Stddev != 0 {
		t.Fatalf("unexpected summary %+v", s)
	}
}

func TestSummarizeKnownSeries(t *testing.T) {
	series := []time.Duration{1, 2, 3, 4, 5}
	s := Summarize(series)
	if s.Mean != 3 {
		t.Fatalf("mean = %v, want 3", s.Mean)
	}
	if s.Min != 1 || s.Max != 5 {
		t.Fatalf("min/max = %v/%v, want 1/5", s.Min, s.Max)
	}
	if s.P50 != 3 {
		t.Fatalf("p50 = %v, want 3", s.P50)
	}
	// population stddev of 1..5 is sqrt(2)
	want := time.Duration(math.Sqrt(2))
	if s.Stddev != want {
		t.Fatalf("stddev = %v, want %v", s.Stddev, want)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	series := []time.Duration{5, 1, 4, 2, 3}
	Summarize(series)
	want := []time.Duration{5, 1, 4, 2, 3}
	for i := range series {
		if series[i] != want[i] {
			t.Fatalf("input mutated at %d: %v", i, series)
		}
	}
}

func TestPercentileBounds(t *testing.T) {
	sorted := []time.Duration{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want time.Duration
	}{
		{p: -1, want: 10},
		{p: 0, want: 10},
		{p: 1, want: 40},
		{p: 2, want: 40},
		{p: 0.5, want: 25},
	}
	for _, tt := range tests {
		if got := Percentile(sorted, tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
}

func TestOutliersFlagsSpikes(t *testing.T) {
	series := make([]time.Duration, 1000)
	for i := range series {
		series[i] = time.Millisecond
	}
	series[100] = 20 * time.Millisecond
	series[500] = 30 * time.Millisecond
	r := Outliers(series)
	if r.Count != 2 {
		t.Fatalf("outlier count = %d, want 2", r.Count)
	}
	if r.MaxSpike != 30*time.Millisecond {
		t.Fatalf("max spike = %v, want 30ms", r.MaxSpike)
	}
	if len(r.Indices) != 2 || r.Indices[0] != 100 || r.Indices[1] != 500 {
		t.Fatalf("indices = %v, want [100 500]", r.Indices)
	}
	if math.Abs(r.Fraction-0.002) > 1e-9 {
		t.Fatalf("fraction = %v, want 0.002", r.Fraction)
	}
}

func TestOutliersUniformSeriesHasNone(t *testing.T) {
	series := make([]time.Duration, 100)
	for i := range series {
		series[i] = time.Millisecond
	}
	if r := Outliers(series); r.Count != 0 {
		t.Fatalf("uniform series produced %d outliers", r.Count)
	}
}

func TestOutliersEmpty(t *testing.T) {
	if r := Outliers(nil); r.Count != 0 || r.Fraction != 0 {
		t.Fatalf("Outliers(nil) = %+v, want zero", r)
	}
}

func TestSeriesWriteCSV(t *testing.T) {
	s := Series{Label: "mead", Values: []time.Duration{time.Millisecond, 2500 * time.Microsecond}}
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "run,rtt_us,label=mead\n1,1000.0\n2,2500.0\n"
	if got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
}

func TestSeriesASCIIPlot(t *testing.T) {
	s := Series{Label: "x", Values: []time.Duration{1, 1, 1, 10, 1, 1}}
	plot := s.ASCIIPlot(6, 4)
	if plot == "" {
		t.Fatal("empty plot")
	}
	if !strings.Contains(plot, "|") {
		t.Fatalf("plot has no bars:\n%s", plot)
	}
	if !strings.Contains(plot, "x (max") {
		t.Fatalf("plot missing label line:\n%s", plot)
	}
}

func TestSeriesASCIIPlotEmpty(t *testing.T) {
	var s Series
	if got := s.ASCIIPlot(10, 5); got != "" {
		t.Fatalf("plot of empty series = %q, want empty", got)
	}
}
