package stats

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Series is a labelled RTT-per-invocation series, the unit of data behind
// Figures 3 and 4 of the paper.
type Series struct {
	Label  string
	Values []time.Duration
}

// WriteCSV emits the series as "index,rtt_us" rows with a header line.
func (s Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "run,rtt_us,label=%s\n", s.Label); err != nil {
		return fmt.Errorf("stats: write csv header: %w", err)
	}
	for i, v := range s.Values {
		if _, err := fmt.Fprintf(w, "%d,%.1f\n", i+1, float64(v)/float64(time.Microsecond)); err != nil {
			return fmt.Errorf("stats: write csv row %d: %w", i, err)
		}
	}
	return nil
}

// ASCIIPlot renders a coarse vertical-bar plot of the series, bucketed into
// the given number of columns, with the per-bucket max shown so that spikes
// (the interesting feature in Figures 3 and 4) remain visible.
func (s Series) ASCIIPlot(width, height int) string {
	if len(s.Values) == 0 || width <= 0 || height <= 0 {
		return ""
	}
	if width > len(s.Values) {
		width = len(s.Values)
	}
	buckets := make([]time.Duration, width)
	per := float64(len(s.Values)) / float64(width)
	for i := range buckets {
		lo := int(float64(i) * per)
		hi := int(float64(i+1) * per)
		if hi > len(s.Values) {
			hi = len(s.Values)
		}
		var max time.Duration
		for _, v := range s.Values[lo:hi] {
			if v > max {
				max = v
			}
		}
		buckets[i] = max
	}
	var top time.Duration
	for _, b := range buckets {
		if b > top {
			top = b
		}
	}
	if top == 0 {
		top = 1
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (max %.2fms)\n", s.Label, float64(top)/float64(time.Millisecond))
	for row := height; row >= 1; row-- {
		cut := time.Duration(float64(top) * float64(row) / float64(height+1))
		for _, b := range buckets {
			if b > cut {
				sb.WriteByte('|')
			} else {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Repeat("-", width))
	sb.WriteByte('\n')
	return sb.String()
}
