// Package recovery implements the MEAD Recovery Manager (Section 3.3): the
// component "responsible for launching new server replicas that restore the
// application's resilience after a server replica or a node crashes". It
// subscribes to the replicated server's group to receive membership-change
// notifications and relaunches missing replicas through a Factory; it also
// listens for the Proactive Fault-Tolerance Manager's fault notifications
// and pre-arms a faster relaunch for replicas that are expected to fail.
//
// As in the paper, the Recovery Manager is currently a single point of
// failure ("future implementations of our framework will allow us to extend
// our proactive mechanisms to the Recovery Manager as well").
package recovery

import (
	"errors"
	"sync"
	"time"

	"mead/internal/ftmgr"
	"mead/internal/gcs"
	"mead/internal/telemetry"
)

// Factory launches a fresh instance of the named replica. The experiment
// harness supplies one that builds a new replica node in-process; the
// standalone binaries supply one that forks a process.
type Factory interface {
	Launch(name string) error
}

// FactoryFunc adapts a function to the Factory interface.
type FactoryFunc func(name string) error

// Launch calls f.
func (f FactoryFunc) Launch(name string) error { return f(name) }

// Default restart delays. A crash-detected restart models process start-up
// cost; a forewarned restart is faster because the T1 notification let the
// Recovery Manager prepare ("these proactive fault-notification messages
// can also trigger the Recovery Manager to launch a new replica to replace
// the one that is expected to fail").
const (
	DefaultRestartDelay   = 150 * time.Millisecond
	DefaultProactiveDelay = 20 * time.Millisecond
)

// Config parameterizes a Recovery Manager.
type Config struct {
	// Member is the manager's GCS connection; the manager joins Group on
	// Start.
	Member *gcs.Member
	// Group is the replicated server's group.
	Group string
	// ReplicaNames is the expected replica set (the desired degree of
	// replication is its length).
	ReplicaNames []string
	// RestartDelay applies to crash-detected relaunches.
	RestartDelay time.Duration
	// ProactiveDelay applies when a fault notification forewarned us.
	ProactiveDelay time.Duration
	// Factory launches replacements.
	Factory Factory
	// Logf, if set, receives progress lines.
	Logf func(format string, args ...interface{})
	// Telemetry, when set, records replica departures as recovery-trace
	// events and counts relaunches.
	Telemetry *telemetry.Telemetry
}

// Manager is the MEAD Recovery Manager.
type Manager struct {
	cfg Config

	mu         sync.Mutex
	alive      map[string]bool
	pending    map[string]bool // relaunch scheduled
	forewarned map[string]bool // fault notification received
	launches   int
	failures   int
	started    bool
	stopped    bool

	stop chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

// New validates cfg and returns an unstarted Manager.
func New(cfg Config) (*Manager, error) {
	if cfg.Member == nil {
		return nil, errors.New("recovery: nil GCS member")
	}
	if cfg.Factory == nil {
		return nil, errors.New("recovery: nil factory")
	}
	if len(cfg.ReplicaNames) == 0 {
		return nil, errors.New("recovery: empty replica set")
	}
	if cfg.RestartDelay == 0 {
		cfg.RestartDelay = DefaultRestartDelay
	}
	if cfg.ProactiveDelay == 0 {
		cfg.ProactiveDelay = DefaultProactiveDelay
	}
	return &Manager{
		cfg:        cfg,
		alive:      make(map[string]bool),
		pending:    make(map[string]bool),
		forewarned: make(map[string]bool),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}, nil
}

// Start joins the group and begins supervising.
func (m *Manager) Start() error {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return errors.New("recovery: already started")
	}
	m.started = true
	m.mu.Unlock()
	if err := m.cfg.Member.Join(m.cfg.Group); err != nil {
		return err
	}
	go m.run()
	return nil
}

// Stop halts supervision (pending relaunch timers are cancelled).
func (m *Manager) Stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	m.mu.Unlock()
	close(m.stop)
	_ = m.cfg.Member.Close()
	<-m.done
	m.wg.Wait()
}

// Launches returns how many replacements the manager has launched.
func (m *Manager) Launches() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.launches
}

// Failures returns how many replica departures the manager has observed —
// the experiment's server-side failure count.
func (m *Manager) Failures() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failures
}

func (m *Manager) logf(format string, args ...interface{}) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

func (m *Manager) run() {
	defer close(m.done)
	for {
		select {
		case d, ok := <-m.cfg.Member.Deliveries():
			if !ok {
				return
			}
			m.handle(d)
		case <-m.stop:
			return
		}
	}
}

func (m *Manager) handle(d gcs.Delivery) {
	switch d.Kind {
	case gcs.DeliverView:
		if d.View.Group == m.cfg.Group {
			m.reconcile(d.View)
		}
	case gcs.DeliverData:
		msg, err := ftmgr.DecodeMessage(d.Payload)
		if err != nil {
			return
		}
		if n, ok := msg.(ftmgr.Notice); ok {
			m.onNotice(n)
		}
	}
}

// onNotice records the forewarning so the eventual relaunch is fast — the
// paper's T1 "launch a new replica" step, adapted to in-place restart (the
// GCS rejects duplicate member names, so the replacement is pre-armed
// rather than pre-started; the observable effect, a shorter recovery gap,
// is the same).
func (m *Manager) onNotice(n ftmgr.Notice) {
	if !m.isManaged(n.Replica) {
		return
	}
	m.mu.Lock()
	m.forewarned[n.Replica] = true
	m.mu.Unlock()
	m.logf("recovery: forewarned about %s (%s at %.0f%%)", n.Replica, n.Resource, 100*n.Usage)
}

func (m *Manager) isManaged(name string) bool {
	for _, n := range m.cfg.ReplicaNames {
		if n == name {
			return true
		}
	}
	return false
}

// reconcile compares the view against the expected replica set and
// schedules relaunches for the missing.
func (m *Manager) reconcile(v gcs.View) {
	inView := make(map[string]bool, len(v.Members))
	for _, name := range v.Members {
		inView[name] = true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, name := range m.cfg.ReplicaNames {
		switch {
		case inView[name]:
			if !m.alive[name] {
				m.alive[name] = true
				m.pending[name] = false
			}
		case m.alive[name]:
			// A previously-alive replica left: crash or rejuvenation.
			m.alive[name] = false
			m.failures++
			m.cfg.Telemetry.ReplicaKilled(name)
			m.scheduleLocked(name)
		case !m.pending[name] && m.anyAliveLocked(inView):
			// Replica missing from a view we participate in and not yet
			// scheduled (e.g. it died before we ever saw it).
			m.scheduleLocked(name)
		}
	}
}

// anyAliveLocked guards bootstrap: we only start relaunching once the group
// has ever had a live replica, so that a manager started before the initial
// replicas does not race their first launch.
func (m *Manager) anyAliveLocked(inView map[string]bool) bool {
	for _, name := range m.cfg.ReplicaNames {
		if m.alive[name] || inView[name] {
			return true
		}
	}
	return false
}

func (m *Manager) scheduleLocked(name string) {
	if m.pending[name] || m.stopped {
		return
	}
	m.pending[name] = true
	delay := m.cfg.RestartDelay
	if m.forewarned[name] {
		delay = m.cfg.ProactiveDelay
		m.forewarned[name] = false
	}
	m.logf("recovery: relaunching %s in %v", name, delay)
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		timer := time.NewTimer(delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-m.stop:
			return
		}
		if err := m.cfg.Factory.Launch(name); err != nil {
			m.logf("recovery: relaunch of %s failed: %v", name, err)
			m.mu.Lock()
			m.pending[name] = false
			m.mu.Unlock()
			return
		}
		m.mu.Lock()
		m.launches++
		m.mu.Unlock()
		m.cfg.Telemetry.Relaunched(name)
	}()
}
