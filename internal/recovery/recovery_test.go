package recovery

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mead/internal/ftmgr"
	"mead/internal/gcs"
)

func startHub(t *testing.T) *gcs.Hub {
	t.Helper()
	h := gcs.NewHub()
	if err := h.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	return h
}

func dialMember(t *testing.T, h *gcs.Hub, name string) *gcs.Member {
	t.Helper()
	m, err := gcs.Dial(h.Addr(), name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	return m
}

// launchRecorder is a Factory capturing launch calls.
type launchRecorder struct {
	mu       sync.Mutex
	launched []string
	onLaunch func(name string)
}

func (r *launchRecorder) Launch(name string) error {
	r.mu.Lock()
	r.launched = append(r.launched, name)
	cb := r.onLaunch
	r.mu.Unlock()
	if cb != nil {
		cb(name)
	}
	return nil
}

func (r *launchRecorder) names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.launched))
	copy(out, r.launched)
	return out
}

const group = "mead.timeofday"

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestNewValidation(t *testing.T) {
	h := startHub(t)
	member := dialMember(t, h, "rm")
	f := &launchRecorder{}
	if _, err := New(Config{Group: group, ReplicaNames: []string{"r1"}, Factory: f}); err == nil {
		t.Fatal("nil member accepted")
	}
	if _, err := New(Config{Member: member, Group: group, ReplicaNames: []string{"r1"}}); err == nil {
		t.Fatal("nil factory accepted")
	}
	if _, err := New(Config{Member: member, Group: group, Factory: f}); err == nil {
		t.Fatal("empty replica set accepted")
	}
}

func TestRelaunchOnCrash(t *testing.T) {
	h := startHub(t)
	r1 := dialMember(t, h, "r1")
	_ = r1.Join(group)
	r2 := dialMember(t, h, "r2")
	_ = r2.Join(group)
	go func() {
		for range r1.Deliveries() {
		}
	}()
	go func() {
		for range r2.Deliveries() {
		}
	}()

	f := &launchRecorder{}
	rm, err := New(Config{
		Member:       dialMember(t, h, "rm"),
		Group:        group,
		ReplicaNames: []string{"r1", "r2"},
		RestartDelay: 10 * time.Millisecond,
		Factory:      f,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rm.Stop)

	waitFor(t, "rm to see both replicas", func() bool {
		rm.mu.Lock()
		defer rm.mu.Unlock()
		return rm.alive["r1"] && rm.alive["r2"]
	})

	_ = r1.Close() // crash
	waitFor(t, "relaunch of r1", func() bool {
		names := f.names()
		return len(names) == 1 && names[0] == "r1"
	})
	if rm.Failures() != 1 || rm.Launches() != 1 {
		t.Fatalf("failures=%d launches=%d", rm.Failures(), rm.Launches())
	}
}

func TestProactiveNoticeSpeedsRelaunch(t *testing.T) {
	h := startHub(t)
	r1 := dialMember(t, h, "r1")
	_ = r1.Join(group)
	go func() {
		for range r1.Deliveries() {
		}
	}()

	f := &launchRecorder{}
	rm, err := New(Config{
		Member:         dialMember(t, h, "rm"),
		Group:          group,
		ReplicaNames:   []string{"r1"},
		RestartDelay:   2 * time.Second, // would dominate the test if used
		ProactiveDelay: 5 * time.Millisecond,
		Factory:        f,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rm.Stop)
	waitFor(t, "rm to see r1", func() bool {
		rm.mu.Lock()
		defer rm.mu.Unlock()
		return rm.alive["r1"]
	})

	// T1 notice, then crash: the relaunch must use the proactive delay.
	notifier := dialMember(t, h, "n")
	_ = notifier.Multicast(group, ftmgr.EncodeNotice(ftmgr.Notice{Replica: "r1", Resource: "memory", Usage: 0.85}))
	waitFor(t, "forewarning", func() bool {
		rm.mu.Lock()
		defer rm.mu.Unlock()
		return rm.forewarned["r1"]
	})
	start := time.Now()
	_ = r1.Close()
	waitFor(t, "fast relaunch", func() bool { return len(f.names()) == 1 })
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("relaunch took %v; proactive delay not applied", elapsed)
	}
}

func TestNoDuplicateRelaunch(t *testing.T) {
	h := startHub(t)
	r1 := dialMember(t, h, "r1")
	_ = r1.Join(group)
	go func() {
		for range r1.Deliveries() {
		}
	}()

	relaunched := make(chan string, 4)
	f := &launchRecorder{onLaunch: func(name string) { relaunched <- name }}
	rm, err := New(Config{
		Member:       dialMember(t, h, "rm"),
		Group:        group,
		ReplicaNames: []string{"r1"},
		RestartDelay: 5 * time.Millisecond,
		Factory:      f,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = rm.Start()
	t.Cleanup(rm.Stop)
	waitFor(t, "alive", func() bool {
		rm.mu.Lock()
		defer rm.mu.Unlock()
		return rm.alive["r1"]
	})
	_ = r1.Close()
	<-relaunched
	// Additional view changes (e.g. other members joining) must not
	// schedule a second relaunch while the first is pending/alive again.
	other := dialMember(t, h, "x")
	_ = other.Join(group)
	time.Sleep(50 * time.Millisecond)
	if n := len(f.names()); n != 1 {
		t.Fatalf("launches = %d (%v), want 1", n, f.names())
	}
}

func TestRelaunchedReplicaCanFailAgain(t *testing.T) {
	h := startHub(t)
	f := &launchRecorder{}
	var relaunchCount int
	f.onLaunch = func(name string) {
		// Simulate the factory bringing the replica back: rejoin.
		m, err := gcs.Dial(h.Addr(), fmt.Sprintf("%s", name))
		if err != nil {
			return
		}
		_ = m.Join(group)
		go func() {
			for range m.Deliveries() {
			}
		}()
		relaunchCount++
		if relaunchCount <= 1 {
			// Fail again shortly after the first relaunch.
			go func() {
				time.Sleep(20 * time.Millisecond)
				_ = m.Close()
			}()
		}
	}

	first := dialMember(t, h, "r1")
	_ = first.Join(group)
	go func() {
		for range first.Deliveries() {
		}
	}()

	rm, err := New(Config{
		Member:       dialMember(t, h, "rm"),
		Group:        group,
		ReplicaNames: []string{"r1"},
		RestartDelay: 5 * time.Millisecond,
		Factory:      f,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = rm.Start()
	t.Cleanup(rm.Stop)
	waitFor(t, "alive", func() bool {
		rm.mu.Lock()
		defer rm.mu.Unlock()
		return rm.alive["r1"]
	})
	_ = first.Close()
	waitFor(t, "two relaunches (crash, then crash of the relaunched)", func() bool {
		return len(f.names()) >= 2
	})
	if rm.Failures() < 2 {
		t.Fatalf("failures = %d, want >= 2", rm.Failures())
	}
}

func TestStopCancelsPendingRelaunch(t *testing.T) {
	h := startHub(t)
	r1 := dialMember(t, h, "r1")
	_ = r1.Join(group)
	go func() {
		for range r1.Deliveries() {
		}
	}()
	f := &launchRecorder{}
	rm, err := New(Config{
		Member:       dialMember(t, h, "rm"),
		Group:        group,
		ReplicaNames: []string{"r1"},
		RestartDelay: 500 * time.Millisecond,
		Factory:      f,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = rm.Start()
	waitFor(t, "alive", func() bool {
		rm.mu.Lock()
		defer rm.mu.Unlock()
		return rm.alive["r1"]
	})
	_ = r1.Close()
	waitFor(t, "failure observed", func() bool { return rm.Failures() == 1 })
	rm.Stop()
	time.Sleep(600 * time.Millisecond)
	if len(f.names()) != 0 {
		t.Fatalf("launches after Stop = %v", f.names())
	}
}

func TestDoubleStartRejected(t *testing.T) {
	h := startHub(t)
	f := &launchRecorder{}
	rm, err := New(Config{
		Member:       dialMember(t, h, "rm"),
		Group:        group,
		ReplicaNames: []string{"r1"},
		Factory:      f,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rm.Stop)
	if err := rm.Start(); err == nil {
		t.Fatal("second Start succeeded")
	}
}
