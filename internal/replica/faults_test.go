package replica_test

import (
	"testing"
	"time"

	"mead/internal/faultinject"
	"mead/internal/ftmgr"
	"mead/internal/replica"
)

func TestRequestLeakCrashesReactiveReplica(t *testing.T) {
	c := startCluster(t, ftmgr.ReactiveNoCache, 2, func(cfg *replica.ServiceConfig) {
		cfg.RequestFault = &faultinject.RequestLeakConfig{Capacity: 20, PerRequest: 1}
	})
	s := c.client(ftmgr.ReactiveNoCache)
	sawFailure := false
	for i := 0; i < 40; i++ {
		out := s.Invoke()
		if len(out.Exceptions) > 0 {
			sawFailure = true
			break
		}
		if out.Err != nil {
			t.Fatalf("invocation %d: %v", i, out.Err)
		}
	}
	if !sawFailure {
		t.Fatal("descriptor exhaustion never surfaced reactively")
	}
	select {
	case <-c.reps[0].Done():
		if c.reps[0].ExitReason() != replica.ExitCrashed {
			t.Fatalf("exit reason = %v", c.reps[0].ExitReason())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("replica never crashed from request leak")
	}
}

func TestRequestLeakMaskedByMeadScheme(t *testing.T) {
	c := startCluster(t, ftmgr.MeadMessage, 3, func(cfg *replica.ServiceConfig) {
		cfg.RequestFault = &faultinject.RequestLeakConfig{Capacity: 40, PerRequest: 1}
		cfg.LaunchThreshold = 0.5
		cfg.MigrateThreshold = 0.7
	})
	s := c.client(ftmgr.MeadMessage)
	failovers := 0
	for i := 0; i < 60; i++ {
		out := s.Invoke()
		if out.Err != nil {
			t.Fatalf("invocation %d: %v", i, out.Err)
		}
		if len(out.Exceptions) != 0 {
			t.Fatalf("request-leak exhaustion leaked to the app at %d: %v", i, out.Exceptions)
		}
		if out.Failover {
			failovers++
		}
	}
	if failovers == 0 {
		t.Fatal("no proactive hand-off before descriptor exhaustion")
	}
	// The first replica rejuvenated (load-proportional exhaustion at 70%
	// of 40 requests = after ~28 requests).
	select {
	case <-c.reps[0].Done():
		if c.reps[0].ExitReason() != replica.ExitRejuvenated {
			t.Fatalf("exit reason = %v, want rejuvenated", c.reps[0].ExitReason())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("first replica never rejuvenated")
	}
}

func TestTimerDrivenMonitoringAblation(t *testing.T) {
	// The timer-driven variant must reach the same outcome (masked
	// migration) through the poller goroutine instead of the write path.
	c := startCluster(t, ftmgr.LocationForward, 3, func(cfg *replica.ServiceConfig) {
		cfg.MonitorInterval = 2 * time.Millisecond
	})
	s := c.client(ftmgr.LocationForward)
	if out := s.Invoke(); out.Err != nil {
		t.Fatal(out.Err)
	}
	c.reps[0].Budget().Consume(c.reps[0].Budget().Capacity())
	// The poller (not the write hook) must flip the migration flag.
	waitFor(t, "timer-driven migration flag", func() bool {
		return c.reps[0].Manager().Migrating()
	})
	out := s.Invoke()
	if out.Err != nil || len(out.Exceptions) != 0 {
		t.Fatalf("outcome = %+v", out)
	}
	if out.Replica != "r2" {
		t.Fatalf("responder = %q, want r2", out.Replica)
	}
}

func TestAdaptiveThresholdMigratesBeforeCrash(t *testing.T) {
	// With adaptive thresholds and a steady leak, the first replica must
	// migrate its client and rejuvenate rather than crash. (Full
	// multi-cycle adaptive runs, which need the Recovery Manager, are
	// covered in internal/experiment.)
	c := startCluster(t, ftmgr.MeadMessage, 3, func(cfg *replica.ServiceConfig) {
		cfg.InjectFault = true
		cfg.Fault = faultinject.Config{
			BufferBytes: 32 * 1024,
			Tick:        time.Millisecond,
			ChunkUnit:   16,
			Seed:        21,
		}
		cfg.AdaptiveLeadTime = 5 * time.Millisecond
	})
	s := c.client(ftmgr.MeadMessage)
	for i := 0; i < 200; i++ {
		out := s.Invoke()
		if out.Err != nil {
			t.Fatalf("invocation %d: %v", i, out.Err)
		}
		if len(out.Exceptions) != 0 {
			t.Fatalf("adaptive run leaked exceptions at %d: %v", i, out.Exceptions)
		}
		if out.Replica != "r1" {
			break // handed off
		}
		time.Sleep(200 * time.Microsecond)
	}
	select {
	case <-c.reps[0].Done():
		if c.reps[0].ExitReason() != replica.ExitRejuvenated {
			t.Fatalf("exit reason = %v, want rejuvenated under adaptive threshold", c.reps[0].ExitReason())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("first replica never exited")
	}
}

func TestMultiObjectReplicaServesAllKeys(t *testing.T) {
	c := startCluster(t, ftmgr.LocationForward, 2, func(cfg *replica.ServiceConfig) {
		cfg.Objects = 8
	})
	// Every announced object forwards correctly during migration: the
	// manager's IOR table holds one entry per object per replica.
	for _, r := range c.reps {
		anns := r.Manager().Replicas()
		for _, a := range anns {
			if len(a.IORs) != 8 {
				t.Fatalf("replica %s announced %d IORs, want 8", a.Name, len(a.IORs))
			}
		}
	}
	s := c.client(ftmgr.LocationForward)
	if out := s.Invoke(); out.Err != nil {
		t.Fatal(out.Err)
	}
	// Migration with multiple objects still masks the hand-off.
	c.reps[0].Budget().Consume(c.reps[0].Budget().Capacity())
	out := s.Invoke()
	if out.Err != nil || len(out.Exceptions) != 0 || out.Replica != "r2" {
		t.Fatalf("outcome = %+v", out)
	}
}
