package replica_test

import (
	"testing"
	"time"

	"mead/internal/client"
	"mead/internal/faultinject"
	"mead/internal/ftmgr"
	"mead/internal/gcs"
	"mead/internal/namesvc"
	"mead/internal/replica"
)

// cluster is the in-process test deployment: hub, naming service, and N
// replicas of the time-of-day service.
type cluster struct {
	t     *testing.T
	hub   *gcs.Hub
	names *namesvc.Server
	cfg   replica.ServiceConfig
	reps  []*replica.Replica
}

func startCluster(t *testing.T, scheme ftmgr.Scheme, n int, mutate func(*replica.ServiceConfig)) *cluster {
	t.Helper()
	hub := gcs.NewHub()
	if err := hub.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Close() })
	names := namesvc.NewServer()
	if err := names.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = names.Close() })

	cfg := replica.ServiceConfig{
		Service:         "timeofday",
		HubAddr:         hub.Addr(),
		NamesAddr:       names.Addr(),
		Scheme:          scheme,
		CheckpointEvery: 5 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c := &cluster{t: t, hub: hub, names: names, cfg: cfg}
	for i := 1; i <= n; i++ {
		c.launch(i)
	}
	c.waitMembers(n)
	return c
}

func (c *cluster) launch(i int) *replica.Replica {
	c.t.Helper()
	name := replicaName(i)
	r, err := replica.New(name, c.cfg)
	if err != nil {
		c.t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		c.t.Fatal(err)
	}
	c.t.Cleanup(r.Stop)
	c.reps = append(c.reps, r)
	return r
}

func replicaName(i int) string {
	return string(rune('r')) + string(rune('0'+i))
}

func (c *cluster) waitMembers(n int) {
	c.t.Helper()
	waitFor(c.t, "group membership", func() bool {
		return len(c.hub.Members(c.cfg.Group())) >= n
	})
	// All replicas must know each other before experiments begin.
	for _, r := range c.reps {
		r := r
		waitFor(c.t, "replica tables", func() bool {
			return len(r.Manager().Replicas()) >= n
		})
	}
}

func (c *cluster) client(scheme ftmgr.Scheme) client.Strategy {
	c.t.Helper()
	s, err := client.New(client.Config{
		Scheme:       scheme,
		Service:      c.cfg.Service,
		NamesAddr:    c.names.Addr(),
		HubAddr:      c.hub.Addr(),
		QueryTimeout: 200 * time.Millisecond, // generous for CI machines
	})
	if err != nil {
		c.t.Fatal(err)
	}
	c.t.Cleanup(func() { _ = s.Close() })
	return s
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestBasicInvocationThroughCluster(t *testing.T) {
	c := startCluster(t, ftmgr.ReactiveNoCache, 3, nil)
	s := c.client(ftmgr.ReactiveNoCache)
	out := s.Invoke()
	if out.Err != nil {
		t.Fatalf("invoke: %v", out.Err)
	}
	if out.Replica != "r1" {
		t.Fatalf("responder = %q, want r1 (first registered)", out.Replica)
	}
	if out.Timestamp == 0 || out.Counter != 1 {
		t.Fatalf("outcome = %+v", out)
	}
	// Sequential invocations advance the replicated counter.
	out2 := s.Invoke()
	if out2.Err != nil || out2.Counter != 2 {
		t.Fatalf("second outcome = %+v", out2)
	}
}

func TestReactiveNoCacheFailover(t *testing.T) {
	c := startCluster(t, ftmgr.ReactiveNoCache, 3, nil)
	s := c.client(ftmgr.ReactiveNoCache)
	if out := s.Invoke(); out.Err != nil {
		t.Fatal(out.Err)
	}
	c.reps[0].Crash() // kill r1 under the client
	<-c.reps[0].Done()
	if c.reps[0].ExitReason() != replica.ExitCrashed {
		t.Fatalf("exit reason = %v", c.reps[0].ExitReason())
	}

	out := s.Invoke()
	if out.Err != nil {
		t.Fatalf("failover invoke: %v", out.Err)
	}
	if !out.Failover {
		t.Fatal("failover not flagged")
	}
	if len(out.Exceptions) != 1 || out.Exceptions[0] != "COMM_FAILURE" {
		t.Fatalf("exceptions = %v, want exactly one COMM_FAILURE", out.Exceptions)
	}
	if out.Replica != "r2" {
		t.Fatalf("responder after failover = %q, want r2", out.Replica)
	}
	// Subsequent invocations are clean.
	if out := s.Invoke(); out.Err != nil || out.Failover {
		t.Fatalf("post-failover outcome = %+v", out)
	}
}

func TestReactiveCacheFailoverAndStaleEntry(t *testing.T) {
	c := startCluster(t, ftmgr.ReactiveCache, 3, nil)
	s := c.client(ftmgr.ReactiveCache)
	if out := s.Invoke(); out.Err != nil {
		t.Fatal(out.Err)
	}
	// Kill r1: the cached client moves to its cache's next entry (r2).
	c.reps[0].Crash()
	<-c.reps[0].Done()
	out := s.Invoke()
	if out.Err != nil || out.Replica != "r2" {
		t.Fatalf("outcome = %+v", out)
	}
	// Kill r2 and r3: the cache is exhausted; the refresh re-reads the
	// naming service, which still lists r1's stale (dead) address, so the
	// client must observe at least one TRANSIENT before giving up or
	// finding a survivor.
	c.reps[1].Crash()
	c.reps[2].Crash()
	<-c.reps[1].Done()
	<-c.reps[2].Done()
	out = s.Invoke()
	if out.Err == nil {
		t.Fatalf("all replicas dead but invocation succeeded: %+v", out)
	}
	sawTransient := false
	for _, e := range out.Exceptions {
		if e == "TRANSIENT" {
			sawTransient = true
		}
	}
	if !sawTransient {
		t.Fatalf("exceptions = %v, want a TRANSIENT from the stale cache entry", out.Exceptions)
	}
}

func TestLocationForwardMasksMigration(t *testing.T) {
	c := startCluster(t, ftmgr.LocationForward, 3, nil)
	s := c.client(ftmgr.LocationForward)
	if out := s.Invoke(); out.Err != nil || out.Replica != "r1" {
		t.Fatalf("first outcome = %+v", out)
	}
	// Push r1 over the migrate threshold; its next reply must be a
	// LOCATION_FORWARD to r2, transparently retransmitted by the ORB.
	c.reps[0].Budget().Consume(c.reps[0].Budget().Capacity())

	out := s.Invoke()
	if out.Err != nil {
		t.Fatalf("migration invoke: %v", out.Err)
	}
	if len(out.Exceptions) != 0 {
		t.Fatalf("client saw exceptions during proactive migration: %v", out.Exceptions)
	}
	if !out.Failover {
		t.Fatal("transparent forward not flagged as failover")
	}
	if out.Replica != "r2" {
		t.Fatalf("responder = %q, want r2", out.Replica)
	}
	// The faulty replica reaches quiescence and rejuvenates.
	select {
	case <-c.reps[0].Done():
		if c.reps[0].ExitReason() != replica.ExitRejuvenated {
			t.Fatalf("exit reason = %v, want rejuvenated", c.reps[0].ExitReason())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("faulty replica never rejuvenated")
	}
	// The client keeps working against r2, no exceptions at all.
	for i := 0; i < 5; i++ {
		if out := s.Invoke(); out.Err != nil || len(out.Exceptions) != 0 {
			t.Fatalf("post-migration outcome = %+v", out)
		}
	}
}

func TestMeadMessageMasksMigration(t *testing.T) {
	c := startCluster(t, ftmgr.MeadMessage, 3, nil)
	s := c.client(ftmgr.MeadMessage)
	if out := s.Invoke(); out.Err != nil || out.Replica != "r1" {
		t.Fatalf("first outcome = %+v", out)
	}
	c.reps[0].Budget().Consume(c.reps[0].Budget().Capacity())

	// This invocation is served by r1 with a piggybacked MEAD fail-over
	// message; the interceptor redirects the connection afterwards.
	out := s.Invoke()
	if out.Err != nil || len(out.Exceptions) != 0 {
		t.Fatalf("piggyback outcome = %+v", out)
	}
	if out.Replica != "r1" {
		t.Fatalf("piggyback responder = %q, want r1 (no retransmission!)", out.Replica)
	}
	if !out.Failover {
		t.Fatal("redirect not flagged")
	}
	// Next invocation flows to r2 without any retransmission.
	out = s.Invoke()
	if out.Err != nil || out.Replica != "r2" || len(out.Exceptions) != 0 {
		t.Fatalf("post-redirect outcome = %+v", out)
	}
	select {
	case <-c.reps[0].Done():
		if c.reps[0].ExitReason() != replica.ExitRejuvenated {
			t.Fatalf("exit reason = %v", c.reps[0].ExitReason())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("faulty replica never rejuvenated")
	}
}

func TestNeedsAddressingRecoversAbruptCrash(t *testing.T) {
	c := startCluster(t, ftmgr.NeedsAddressing, 3, nil)
	s := c.client(ftmgr.NeedsAddressing)
	if out := s.Invoke(); out.Err != nil || out.Replica != "r1" {
		t.Fatalf("first outcome = %+v", out)
	}
	// Abrupt crash with NO advance warning.
	c.reps[0].Crash()
	<-c.reps[0].Done()
	// Give the group a moment to agree on the new primary, so the query
	// deterministically succeeds (the paper's 25% failures are exactly
	// the un-settled window; TestNeedsAddr race coverage lives in ftmgr).
	waitFor(t, "view without r1", func() bool {
		return len(c.hub.Members(c.cfg.Group())) == 2
	})

	out := s.Invoke()
	if out.Err != nil {
		t.Fatalf("recovery invoke: %v (exceptions %v)", out.Err, out.Exceptions)
	}
	if out.Replica != "r2" {
		t.Fatalf("responder = %q, want r2", out.Replica)
	}
	if !out.Failover {
		t.Fatal("EOF recovery not flagged")
	}
	if len(out.Exceptions) != 0 {
		t.Fatalf("exceptions = %v, want masked failure", out.Exceptions)
	}
}

func TestWarmPassiveStateContinuity(t *testing.T) {
	c := startCluster(t, ftmgr.MeadMessage, 3, nil)
	s := c.client(ftmgr.MeadMessage)
	var last uint64
	for i := 0; i < 30; i++ {
		out := s.Invoke()
		if out.Err != nil {
			t.Fatal(out.Err)
		}
		last = out.Counter
		time.Sleep(time.Millisecond)
	}
	// Hand off to r2 and verify the replicated counter did not regress
	// beyond one checkpoint period's worth of updates.
	c.reps[0].Budget().Consume(c.reps[0].Budget().Capacity())
	out := s.Invoke() // piggyback invocation
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	out = s.Invoke() // first invocation on r2
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if out.Replica != "r2" {
		t.Fatalf("responder = %q", out.Replica)
	}
	if out.Counter <= last/2 {
		t.Fatalf("state regressed badly across failover: %d -> %d", last, out.Counter)
	}
}

func TestInjectedFaultCrashesReplica(t *testing.T) {
	c := startCluster(t, ftmgr.ReactiveNoCache, 1, func(cfg *replica.ServiceConfig) {
		cfg.InjectFault = true
		cfg.Fault = faultinject.Config{
			BufferBytes: 2048,
			Tick:        2 * time.Millisecond,
			ChunkUnit:   8,
			Seed:        3,
		}
	})
	s := c.client(ftmgr.ReactiveNoCache)
	// The fault activates on the first request.
	if out := s.Invoke(); out.Err != nil {
		t.Fatal(out.Err)
	}
	select {
	case <-c.reps[0].Done():
		if c.reps[0].ExitReason() != replica.ExitCrashed {
			t.Fatalf("exit reason = %v", c.reps[0].ExitReason())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("injected fault never crashed the replica")
	}
}

func TestExitReasonStrings(t *testing.T) {
	if replica.ExitCrashed.String() != "crashed" ||
		replica.ExitRejuvenated.String() != "rejuvenated" ||
		replica.ExitStopped.String() != "stopped" ||
		replica.ExitReason(9).String() == "" {
		t.Fatal("ExitReason strings wrong")
	}
}

func TestReplicaAccessorsBeforeStart(t *testing.T) {
	r, err := replica.New("rx", replica.ServiceConfig{Service: "svc"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Addr() != "" || r.StateCounter() != 0 || r.Requests() != 0 || r.Name() != "rx" {
		t.Fatal("pre-start accessors wrong")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := replica.New("", replica.ServiceConfig{Service: "s"}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := replica.New("r", replica.ServiceConfig{}); err == nil {
		t.Fatal("empty service accepted")
	}
}
