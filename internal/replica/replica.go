// Package replica assembles one warm-passively replicated server node, the
// unit the paper deploys on each Emulab machine: an unmodified mini-ORB
// serving the time-of-day application, wrapped by the MEAD interceptor with
// the Proactive Fault-Tolerance Manager embedded in it, a memory-leak fault
// injector, group membership through the GCS, registration with the Naming
// Service, and periodic state transfer from the primary to the backups.
package replica

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mead/internal/cdr"
	"mead/internal/durable"
	"mead/internal/faultinject"
	"mead/internal/ftmgr"
	"mead/internal/gcs"
	"mead/internal/giop"
	"mead/internal/namesvc"
	"mead/internal/orb"
	"mead/internal/resource"
	"mead/internal/telemetry"
)

// ExitReason records why a replica instance terminated.
type ExitReason int

// Exit reasons.
const (
	// ExitCrashed: the injected resource-exhaustion fault killed the
	// process abruptly.
	ExitCrashed ExitReason = iota + 1
	// ExitRejuvenated: the proactive framework migrated all clients away
	// and gracefully restarted the replica at quiescence.
	ExitRejuvenated
	// ExitStopped: administrative shutdown.
	ExitStopped
)

func (r ExitReason) String() string {
	switch r {
	case ExitCrashed:
		return "crashed"
	case ExitRejuvenated:
		return "rejuvenated"
	case ExitStopped:
		return "stopped"
	default:
		return fmt.Sprintf("ExitReason(%d)", int(r))
	}
}

// DefaultCheckpointEvery is the warm-passive state-transfer period.
const DefaultCheckpointEvery = 50 * time.Millisecond

// DefaultDurableCheckpointBytes is the log-growth threshold that triggers an
// incremental durable checkpoint (snapshot + log-suffix truncation).
const DefaultDurableCheckpointBytes = 32 << 10

// ObjectName is the single application object each replica hosts.
const ObjectName = "clock"

// ServiceConfig describes the replicated service a replica belongs to; all
// replicas of a service share one ServiceConfig (modulo Seed derivation).
type ServiceConfig struct {
	// Service is the service name (naming-context prefix and group stem).
	Service string
	// TypeID is the CORBA repository id of the application object.
	TypeID string
	// HubAddr is the GCS hub endpoint.
	HubAddr string
	// NamesAddr is the Naming Service endpoint.
	NamesAddr string
	// Scheme selects the recovery strategy.
	Scheme ftmgr.Scheme
	// LaunchThreshold and MigrateThreshold configure the FT manager
	// (zero means the ftmgr defaults of 80% / 90%).
	LaunchThreshold  float64
	MigrateThreshold float64
	// Fault parameterizes the memory-leak injector.
	Fault faultinject.Config
	// InjectFault enables the leak (on the first client request).
	InjectFault bool
	// CheckpointEvery is the state-transfer period (default 50 ms).
	CheckpointEvery time.Duration
	// AdaptiveLeadTime, when non-zero, enables adaptive migration
	// thresholds (the paper's future-work extension): the threshold is
	// derived from the observed leak trend so that migration starts with
	// roughly this much hand-off time remaining.
	AdaptiveLeadTime time.Duration
	// RequestFault, when non-nil, adds a per-request countable-resource
	// leak (descriptor/thread exhaustion) alongside the memory leak; the
	// FT manager then monitors the worst of the two resources.
	RequestFault *faultinject.RequestLeakConfig
	// MonitorInterval, when non-zero, switches threshold checking to a
	// timer-driven poller goroutine — the design the paper rejected,
	// retained for the ablation benchmarks. Zero keeps the paper's
	// event-driven (write-path) checking.
	MonitorInterval time.Duration
	// Objects is the number of application objects each replica hosts
	// (default 1: the paper's single time-of-day object). The paper
	// predicts the LOCATION_FORWARD scheme's bookkeeping "will increase
	// significantly" with this number, "since it maintains an IOR entry
	// for each object instantiated"; the object-table scaling bench
	// measures that claim.
	Objects int
	// AcceptLoops shards the server ORB's accept loop across this many
	// goroutines (0 or 1 means one). Striped client pools redial several
	// connections per client after a recovery event; sharding keeps
	// connection admission off the critical path of that storm.
	AcceptLoops int
	// StateDir, when non-empty, enables the durable-state subsystem: each
	// replica persists an append-only op log plus incremental checkpoints
	// under StateDir/<replica-name> and runs the recovery handshake
	// (replay local log, then fetch the delta from live group members) on
	// startup. Empty keeps the purely in-memory warm-passive behaviour.
	StateDir string
	// DurableCheckpointBytes triggers a durable checkpoint once this many
	// log bytes accumulate since the last one (default 32 KiB). Only
	// meaningful with StateDir.
	DurableCheckpointBytes int64
	// DurableFaults, when non-nil, injects deterministic durable-I/O
	// faults (torn/short writes, fsync errors) into every replica store
	// sharing this config — the chaos harness's disk-damage hook.
	DurableFaults *durable.FaultInjector
	// Logf, if set, receives progress lines.
	Logf func(format string, args ...interface{})
	// Telemetry, when set, is threaded into the server ORB (dispatch
	// histogram), the FT manager (threshold-crossing events), and the fault
	// injector (leak-level gauges).
	Telemetry *telemetry.Telemetry
}

// Group returns the service's GCS group name ("new server replicas join a
// unique server-specific group as soon as they are launched").
func (c ServiceConfig) Group() string { return "mead." + c.Service }

// BindingName returns the replica's Naming Service name.
func (c ServiceConfig) BindingName(replica string) string {
	return c.Service + "/" + replica
}

// Replica is one running replica instance. A restarted replica is a new
// Replica value (fresh budget, fresh connections), as a restarted process
// would be.
type Replica struct {
	name string
	cfg  ServiceConfig

	budget   *resource.Budget
	injector *faultinject.Injector
	reqLeak  *faultinject.RequestLeak
	member   *gcs.Member
	mgr      *ftmgr.Manager
	srv      *orb.ServerORB
	state    *clockState

	store         *durable.Store
	clientIDs     *cdr.Interner
	recoveryNonce uint64

	requests atomic.Int64

	exitOnce sync.Once
	reason   ExitReason
	done     chan struct{}
	loopWG   sync.WaitGroup
}

// New returns an unstarted replica named name.
func New(name string, cfg ServiceConfig) (*Replica, error) {
	if name == "" || cfg.Service == "" {
		return nil, errors.New("replica: name and service required")
	}
	if cfg.TypeID == "" {
		cfg.TypeID = "IDL:mead/TimeOfDay:1.0"
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = DefaultCheckpointEvery
	}
	return &Replica{
		name: name,
		cfg:  cfg,
		done: make(chan struct{}),
	}, nil
}

// Name returns the replica's name.
func (r *Replica) Name() string { return r.name }

// Addr returns the replica's ORB endpoint (after Start).
func (r *Replica) Addr() string {
	if r.srv == nil {
		return ""
	}
	return r.srv.Addr()
}

// Requests returns how many application requests this instance served.
func (r *Replica) Requests() int64 { return r.requests.Load() }

// StateCounter returns the servant's replicated counter.
func (r *Replica) StateCounter() uint64 {
	if r.state == nil {
		return 0
	}
	return r.state.Counter()
}

// OpNumber returns the replica's durable op number (0 when not durable).
func (r *Replica) OpNumber() uint64 {
	if r.state == nil {
		return 0
	}
	return r.state.OpNumber()
}

// Budget exposes the replica's resource budget (tests and examples).
func (r *Replica) Budget() *resource.Budget { return r.budget }

// Manager exposes the embedded fault-tolerance manager.
func (r *Replica) Manager() *ftmgr.Manager { return r.mgr }

// Done is closed when the replica instance has terminated.
func (r *Replica) Done() <-chan struct{} { return r.done }

// ExitReason is valid after Done is closed.
func (r *Replica) ExitReason() ExitReason { return r.reason }

// Start brings the replica up: budget, injector, GCS membership, ORB,
// naming registration, announcement, delivery and checkpoint loops.
func (r *Replica) Start() error {
	var err error
	if r.budget, err = faultinject.NewBudget(r.cfg.Fault); err != nil {
		return fmt.Errorf("replica %s: %w", r.name, err)
	}
	if r.cfg.InjectFault {
		r.injector, err = faultinject.New(r.cfg.Fault, r.budget, func() {
			r.logf("replica %s: resource exhausted, crashing", r.name)
			go r.exit(ExitCrashed)
		})
		if err != nil {
			return fmt.Errorf("replica %s: %w", r.name, err)
		}
		r.injector.Instrument(r.cfg.Telemetry)
	}

	// Durable recovery happens before the replica is reachable: replay the
	// local checkpoint + log, so the handshake below only needs the delta.
	r.state = &clockState{replica: r.name, tel: r.cfg.Telemetry}
	r.clientIDs = cdr.NewInterner(1024)
	if r.cfg.StateDir != "" {
		store, res, derr := durable.Open(durable.Config{
			Dir:     filepath.Join(r.cfg.StateDir, r.name),
			Replica: r.name,
			Faults:  r.cfg.DurableFaults,
			Logf:    r.cfg.Logf,
		})
		if derr != nil {
			return fmt.Errorf("replica %s: %w", r.name, derr)
		}
		r.store = store
		r.cfg.Telemetry.RecoveryStarted(r.name, int64(res.Snap.OpNumber)-int64(res.Replayed))
		r.state.restore(res.Snap)
		r.state.store = store
		r.cfg.Telemetry.LogReplayed(r.name, int64(res.Replayed), res.Truncated)
		r.logf("replica %s: durable recovery: checkpoint=%v damaged=%v replayed=%d truncated=%v op=%d counter=%d",
			r.name, res.CheckpointLoaded, res.CheckpointDamaged, res.Replayed, res.Truncated,
			res.Snap.OpNumber, res.Snap.Counter)
	}

	if r.member, err = gcs.Dial(r.cfg.HubAddr, r.name); err != nil {
		if r.store != nil {
			r.store.Close()
		}
		return fmt.Errorf("replica %s: %w", r.name, err)
	}

	var adaptive *ftmgr.AdaptiveThreshold
	if r.cfg.AdaptiveLeadTime > 0 {
		adaptive = ftmgr.NewAdaptiveThreshold(r.cfg.AdaptiveLeadTime)
	}
	monitor := ftmgr.Monitor(r.budget)
	if r.cfg.RequestFault != nil {
		r.reqLeak, err = faultinject.NewRequestLeak(*r.cfg.RequestFault, func() {
			r.logf("replica %s: %s exhausted, crashing", r.name, r.reqLeak.Budget().Name())
			go r.exit(ExitCrashed)
		})
		if err != nil {
			r.cleanupPartial()
			return fmt.Errorf("replica %s: %w", r.name, err)
		}
		monitor = resource.MaxOf{r.budget, r.reqLeak.Budget()}
	}
	r.mgr, err = ftmgr.NewManager(ftmgr.Config{
		ReplicaName:      r.name,
		Group:            r.cfg.Group(),
		Scheme:           r.cfg.Scheme,
		Monitor:          monitor,
		LaunchThreshold:  r.cfg.LaunchThreshold,
		MigrateThreshold: r.cfg.MigrateThreshold,
		Adaptive:         adaptive,
		TimerDriven:      r.cfg.MonitorInterval > 0,
		Member:           r.member,
		Telemetry:        r.cfg.Telemetry,
		OnFirstRequest: func() {
			if r.injector != nil {
				_ = r.injector.Activate()
			}
		},
		OnMigrate: func() {
			r.logf("replica %s: migrate threshold crossed, handing clients off", r.name)
			go r.maybeRejuvenate()
		},
		RecoverySnapshot: r.recoverySnapshot(),
	})
	if err != nil {
		r.cleanupPartial()
		return fmt.Errorf("replica %s: %w", r.name, err)
	}

	r.srv = orb.NewServer(
		orb.WithServerConnWrapper(r.mgr.WrapServerConn),
		orb.WithServerTelemetry(r.cfg.Telemetry),
		orb.WithServerAcceptLoops(r.cfg.AcceptLoops),
		orb.WithConnClosedHook(func(active int) {
			if active == 0 {
				go r.maybeRejuvenate()
			}
		}),
	)
	objects := r.cfg.Objects
	if objects <= 0 {
		objects = 1
	}
	servant := r.servant()
	keys := make([][]byte, 0, objects)
	keys = append(keys, giop.MakeObjectKey(r.cfg.Service, ObjectName))
	for i := 1; i < objects; i++ {
		keys = append(keys, giop.MakeObjectKey(r.cfg.Service, fmt.Sprintf("%s-%d", ObjectName, i)))
	}
	for _, key := range keys {
		r.srv.Register(key, servant)
	}
	if err := r.srv.Listen("127.0.0.1:0"); err != nil {
		r.cleanupPartial()
		return fmt.Errorf("replica %s: %w", r.name, err)
	}
	if err := r.srv.Start(); err != nil {
		r.cleanupPartial()
		return fmt.Errorf("replica %s: %w", r.name, err)
	}
	iors := make([]giop.IOR, 0, len(keys))
	for _, key := range keys {
		keyIOR, err := r.srv.IORFor(r.cfg.TypeID, key)
		if err != nil {
			r.cleanupPartial()
			return fmt.Errorf("replica %s: %w", r.name, err)
		}
		iors = append(iors, keyIOR)
	}
	ior := iors[0]

	// Register with the Naming Service. Rebind keeps the original
	// registration order, and a crashed replica's stale binding stays in
	// place until this point — the source of the cached reactive scheme's
	// TRANSIENT exceptions.
	if r.cfg.NamesAddr != "" {
		nc := namesvc.NewClient(r.cfg.NamesAddr)
		if err := nc.Rebind(r.cfg.BindingName(r.name), ior); err != nil {
			r.cleanupPartial()
			return fmt.Errorf("replica %s: naming registration: %w", r.name, err)
		}
	}

	if err := r.member.Join(r.cfg.Group()); err != nil {
		r.cleanupPartial()
		return fmt.Errorf("replica %s: %w", r.name, err)
	}
	// Announce every hosted object's IOR: the LOCATION_FORWARD scheme's
	// per-object bookkeeping cost scales with this list.
	if err := r.mgr.AnnounceSelf(r.srv.Addr(), iors); err != nil {
		r.cleanupPartial()
		return fmt.Errorf("replica %s: %w", r.name, err)
	}
	if r.store != nil {
		// Recovery handshake, VSR-style: having replayed the local log,
		// multicast a status query naming the reached op number; live
		// members answer privately with their snapshots and deliveryLoop
		// merges anything newer (nonce-guarded against stale answers to an
		// earlier incarnation).
		r.recoveryNonce = recoveryNonces.Add(1)
		q := ftmgr.RecoveryQuery{From: r.name, OpNumber: r.state.OpNumber(), Nonce: r.recoveryNonce}
		if err := r.member.Multicast(r.cfg.Group(), ftmgr.EncodeRecoveryQuery(q)); err != nil {
			r.cleanupPartial()
			return fmt.Errorf("replica %s: %w", r.name, err)
		}
	}

	r.loopWG.Add(2)
	go func() {
		defer r.loopWG.Done()
		r.deliveryLoop()
	}()
	go func() {
		defer r.loopWG.Done()
		r.checkpointLoop()
	}()
	if r.cfg.MonitorInterval > 0 {
		r.loopWG.Add(1)
		go func() {
			defer r.loopWG.Done()
			r.monitorLoop()
		}()
	}
	r.logf("replica %s: serving %s at %s (scheme %v)", r.name, r.cfg.Service, r.srv.Addr(), r.cfg.Scheme)
	return nil
}

func (r *Replica) cleanupPartial() {
	if r.srv != nil {
		_ = r.srv.Close()
	}
	if r.member != nil {
		_ = r.member.Close()
	}
	if r.injector != nil {
		r.injector.Stop()
	}
	if r.store != nil {
		r.store.Close()
	}
}

// recoveryNonces distinguishes recovery-handshake incarnations within one
// process (each restart queries with a fresh nonce).
var recoveryNonces atomic.Uint64

// recoverySnapshot returns the ftmgr callback answering RecoveryQuery
// messages, or nil when the replica keeps no durable state (in-memory
// replicas leave recovery to the warm-passive checkpoint stream).
func (r *Replica) recoverySnapshot() func() []byte {
	if r.cfg.StateDir == "" {
		return nil
	}
	return func() []byte { return durable.EncodeSnapshot(r.state.snapshot()) }
}

// Crash terminates the replica abruptly (process-crash semantics).
func (r *Replica) Crash() { r.exit(ExitCrashed) }

// Stop terminates the replica administratively.
func (r *Replica) Stop() { r.exit(ExitStopped) }

// maybeRejuvenate gracefully restarts the replica once migration has begun
// and the last client connection has drained — the quiescence condition the
// paper required before a faulty replica could be restarted safely.
func (r *Replica) maybeRejuvenate() {
	if r.mgr.Migrating() && r.srv.ActiveConnections() == 0 {
		r.logf("replica %s: quiescent after migration, rejuvenating", r.name)
		r.exit(ExitRejuvenated)
	}
}

func (r *Replica) exit(reason ExitReason) {
	r.exitOnce.Do(func() {
		r.reason = reason
		if r.injector != nil {
			r.injector.Stop()
		}
		if r.srv != nil {
			r.srv.Crash()
		}
		if r.member != nil {
			_ = r.member.Close()
		}
		r.loopWG.Wait()
		if r.store != nil {
			// Orderly close: drain and flush the writer queue so the log is
			// complete on disk. Genuine crash-tail loss is modeled
			// explicitly by the durable fault injector, keeping kill-all
			// recovery tests deterministic instead of racing the writer.
			r.store.Close()
		}
		close(r.done)
	})
}

func (r *Replica) logf(format string, args ...interface{}) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// deliveryLoop pumps GCS events into the FT manager, applies incoming
// state checkpoints, and merges recovery-handshake answers.
func (r *Replica) deliveryLoop() {
	viewSize := 0
	for d := range r.member.Deliveries() {
		r.mgr.HandleDelivery(d)
		if d.Kind == gcs.DeliverView {
			// Re-issue the recovery query when the view grows: a replica
			// that cold-restarted before its peers (the whole-group
			// disaster) queried an empty group, and the joiners may hold
			// newer checkpoints than its own log tail. The nonce is
			// unchanged — answers merge forward-only, so re-asking is
			// idempotent.
			grew := len(d.View.Members) > viewSize
			viewSize = len(d.View.Members)
			if grew && r.store != nil {
				q := ftmgr.RecoveryQuery{From: r.name, OpNumber: r.state.OpNumber(), Nonce: r.recoveryNonce}
				_ = r.member.Multicast(r.cfg.Group(), ftmgr.EncodeRecoveryQuery(q))
			}
		}
		if d.Kind != gcs.DeliverData && d.Kind != gcs.DeliverPrivate {
			continue
		}
		msg, err := ftmgr.DecodeMessage(d.Payload)
		if err != nil {
			continue
		}
		switch v := msg.(type) {
		case ftmgr.Checkpoint:
			if v.From == r.name {
				continue
			}
			if len(v.Data) > 0 {
				// Durable checkpoint stream: merge the full snapshot
				// (counter + dedup table) and persist it, so a backup that
				// later cold-restarts recovers the state it was mirroring.
				if snap, derr := durable.DecodeSnapshot(v.Data); derr == nil {
					if r.state.applySnapshot(snap) && r.store != nil {
						r.store.Checkpoint(r.state.snapshot())
						r.cfg.Telemetry.CheckpointPersisted(r.name)
					}
				}
			} else {
				r.state.applyCheckpoint(v.Seq)
			}
		case ftmgr.RecoveryState:
			r.handleRecoveryState(v)
		}
	}
}

// handleRecoveryState merges one recovery-handshake answer: the delta fetch
// completing the status → replay → fetch sequence. Stale answers (wrong
// nonce: addressed to an earlier incarnation of this replica name) are
// dropped; merges are forward-only, so answers from several members are
// safe in any order.
func (r *Replica) handleRecoveryState(rs ftmgr.RecoveryState) {
	if r.store == nil || rs.Nonce != r.recoveryNonce || rs.From == r.name {
		return
	}
	snap, err := durable.DecodeSnapshot(rs.Data)
	if err != nil {
		return
	}
	if r.state.applySnapshot(snap) {
		merged := r.state.snapshot()
		r.store.Checkpoint(merged)
		r.cfg.Telemetry.CheckpointPersisted(r.name)
		r.cfg.Telemetry.StateFetched(r.name, int64(merged.OpNumber))
		r.logf("replica %s: recovery fetched state from %s (op=%d counter=%d)",
			r.name, rs.From, merged.OpNumber, merged.Counter)
	}
}

// checkpointLoop periodically transfers the primary's state to the backups
// (warm passive replication) and, in durable mode, writes incremental
// durable checkpoints whenever the op log has grown past the threshold.
func (r *Replica) checkpointLoop() {
	ticker := time.NewTicker(r.cfg.CheckpointEvery)
	defer ticker.Stop()
	threshold := r.cfg.DurableCheckpointBytes
	if threshold <= 0 {
		threshold = DefaultDurableCheckpointBytes
	}
	for {
		select {
		case <-ticker.C:
			if r.store != nil && r.store.LogBytes() >= threshold {
				// Incremental checkpoint: snapshot the state, let the
				// writer persist it and truncate the covered log suffix.
				r.store.Checkpoint(r.state.snapshot())
				r.cfg.Telemetry.CheckpointPersisted(r.name)
			}
			if !r.mgr.IsPrimary() {
				continue
			}
			cp := ftmgr.Checkpoint{From: r.name, Seq: r.state.Counter()}
			if r.store != nil {
				// Durable mode ships the full snapshot (counter + dedup
				// table) so backups can persist what they mirror and
				// at-most-once survives fail-over.
				cp.Data = durable.EncodeSnapshot(r.state.snapshot())
			}
			if err := r.member.Multicast(r.cfg.Group(), ftmgr.EncodeCheckpoint(cp)); err != nil {
				return
			}
		case <-r.member.Done():
			return
		}
	}
}

// monitorLoop is the timer-driven threshold poller used only in the
// ablation configuration (MonitorInterval > 0).
func (r *Replica) monitorLoop() {
	ticker := time.NewTicker(r.cfg.MonitorInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			r.mgr.PollThresholds()
		case <-r.member.Done():
			return
		}
	}
}

// servant builds the time-of-day application object: the paper's test
// application ("a simple CORBA client ... requested the time-of-day ...
// from one of three warm-passively replicated CORBA servers").
func (r *Replica) servant() orb.Servant {
	return orb.ServantFunc(func(op string, args *cdr.Decoder, result *cdr.Encoder) error {
		switch op {
		case "time_of_day":
			r.requests.Add(1)
			if r.reqLeak != nil {
				r.reqLeak.OnRequest()
			}
			// Optional at-most-once identity (client id + invocation seq).
			// Anonymous requests (no args) always execute; identified
			// retransmissions of an already-executed seq are answered from
			// the dedup table without re-executing. The id is interned so
			// the steady-state decode stays allocation-free.
			var client string
			var seq uint64
			if args != nil && args.Remaining() > 0 {
				c, err := args.ReadStringIntern(r.clientIDs)
				if err != nil {
					return &giop.SystemException{RepoID: giop.RepoBadOperation, Completed: giop.CompletedNo}
				}
				s, err := args.ReadULongLong()
				if err != nil {
					return &giop.SystemException{RepoID: giop.RepoBadOperation, Completed: giop.CompletedNo}
				}
				client, seq = c, s
			}
			count, dup := r.state.exec(client, seq)
			if dup {
				r.cfg.Telemetry.DupSuppressed()
			} else if r.store != nil {
				r.cfg.Telemetry.OpLogged()
			}
			result.WriteLongLong(time.Now().UnixNano())
			result.WriteULongLong(count)
			result.WriteString(r.name)
			return nil
		case "counter":
			result.WriteULongLong(r.state.Counter())
			return nil
		default:
			return &giop.SystemException{RepoID: giop.RepoBadOperation, Completed: giop.CompletedNo}
		}
	})
}

// clockState is the replicated application state: a monotonic invocation
// counter carried by warm-passive checkpoints, plus (in durable mode) the
// VSR-style op number and the at-most-once dedup table, both persisted via
// the attached store.
type clockState struct {
	mu       sync.Mutex
	counter  uint64
	opNumber uint64
	dedup    map[string]durable.DedupEntry
	store    *durable.Store // nil: in-memory only
	replica  string
	tel      *telemetry.Telemetry
}

// exec runs one application operation under the at-most-once contract.
// client=="" is anonymous: always executes. An identified request executes
// only if seq advances past the client's dedup entry; otherwise the cached
// counter is returned (dup=true) and nothing is logged — a retransmission
// observed after the original already executed. Log appends happen inside
// the lock, so queue order matches execution order (the store's
// checkpoint-truncation contract).
func (s *clockState) exec(client string, seq uint64) (count uint64, dup bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if client != "" {
		if e, ok := s.dedup[client]; ok && seq <= e.Seq {
			return e.Counter, true
		}
	}
	s.counter++
	s.opNumber++
	if client != "" {
		if s.dedup == nil {
			s.dedup = make(map[string]durable.DedupEntry)
		}
		s.dedup[client] = durable.DedupEntry{Client: client, Seq: seq, Counter: s.counter}
	}
	if s.store != nil {
		s.store.Append(durable.Op{
			OpNumber:  s.opNumber,
			Counter:   s.counter,
			Client:    client,
			ClientSeq: seq,
		})
	}
	return s.counter, false
}

// Counter returns the current state value.
func (s *clockState) Counter() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counter
}

// OpNumber returns the last executed (or merged) op number.
func (s *clockState) OpNumber() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opNumber
}

// restore seeds the state from a recovered snapshot (before serving).
func (s *clockState) restore(snap durable.Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counter = snap.Counter
	s.opNumber = snap.OpNumber
	s.dedup = nil
	for _, e := range snap.Dedup {
		if s.dedup == nil {
			s.dedup = make(map[string]durable.DedupEntry, len(snap.Dedup))
		}
		s.dedup[e.Client] = e
	}
}

// snapshot renders the current state as a checkpointable snapshot (dedup
// entries in canonical client order).
func (s *clockState) snapshot() durable.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := durable.Snapshot{OpNumber: s.opNumber, Counter: s.counter}
	if len(s.dedup) > 0 {
		snap.Dedup = make([]durable.DedupEntry, 0, len(s.dedup))
		for _, e := range s.dedup {
			snap.Dedup = append(snap.Dedup, e)
		}
		sort.Slice(snap.Dedup, func(i, j int) bool { return snap.Dedup[i].Client < snap.Dedup[j].Client })
	}
	return snap
}

// applyCheckpoint merges a legacy counter-only checkpoint: state only moves
// forward.
func (s *clockState) applyCheckpoint(seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq > s.counter {
		s.counter = seq
	}
}

// applySnapshot merges a full snapshot forward-only and reports whether the
// op number (the persistence trigger) advanced. Dedup rows merge per client
// on the highest seq, so answers and checkpoints apply safely in any order.
func (s *clockState) applySnapshot(snap durable.Snapshot) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	advanced := snap.OpNumber > s.opNumber
	if advanced {
		s.opNumber = snap.OpNumber
	}
	if snap.Counter > s.counter {
		s.counter = snap.Counter
	}
	for _, e := range snap.Dedup {
		if cur, ok := s.dedup[e.Client]; !ok || e.Seq > cur.Seq {
			if s.dedup == nil {
				s.dedup = make(map[string]durable.DedupEntry, len(snap.Dedup))
			}
			s.dedup[e.Client] = e
		}
	}
	return advanced
}
