// Package replica assembles one warm-passively replicated server node, the
// unit the paper deploys on each Emulab machine: an unmodified mini-ORB
// serving the time-of-day application, wrapped by the MEAD interceptor with
// the Proactive Fault-Tolerance Manager embedded in it, a memory-leak fault
// injector, group membership through the GCS, registration with the Naming
// Service, and periodic state transfer from the primary to the backups.
package replica

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mead/internal/cdr"
	"mead/internal/faultinject"
	"mead/internal/ftmgr"
	"mead/internal/gcs"
	"mead/internal/giop"
	"mead/internal/namesvc"
	"mead/internal/orb"
	"mead/internal/resource"
	"mead/internal/telemetry"
)

// ExitReason records why a replica instance terminated.
type ExitReason int

// Exit reasons.
const (
	// ExitCrashed: the injected resource-exhaustion fault killed the
	// process abruptly.
	ExitCrashed ExitReason = iota + 1
	// ExitRejuvenated: the proactive framework migrated all clients away
	// and gracefully restarted the replica at quiescence.
	ExitRejuvenated
	// ExitStopped: administrative shutdown.
	ExitStopped
)

func (r ExitReason) String() string {
	switch r {
	case ExitCrashed:
		return "crashed"
	case ExitRejuvenated:
		return "rejuvenated"
	case ExitStopped:
		return "stopped"
	default:
		return fmt.Sprintf("ExitReason(%d)", int(r))
	}
}

// DefaultCheckpointEvery is the warm-passive state-transfer period.
const DefaultCheckpointEvery = 50 * time.Millisecond

// ObjectName is the single application object each replica hosts.
const ObjectName = "clock"

// ServiceConfig describes the replicated service a replica belongs to; all
// replicas of a service share one ServiceConfig (modulo Seed derivation).
type ServiceConfig struct {
	// Service is the service name (naming-context prefix and group stem).
	Service string
	// TypeID is the CORBA repository id of the application object.
	TypeID string
	// HubAddr is the GCS hub endpoint.
	HubAddr string
	// NamesAddr is the Naming Service endpoint.
	NamesAddr string
	// Scheme selects the recovery strategy.
	Scheme ftmgr.Scheme
	// LaunchThreshold and MigrateThreshold configure the FT manager
	// (zero means the ftmgr defaults of 80% / 90%).
	LaunchThreshold  float64
	MigrateThreshold float64
	// Fault parameterizes the memory-leak injector.
	Fault faultinject.Config
	// InjectFault enables the leak (on the first client request).
	InjectFault bool
	// CheckpointEvery is the state-transfer period (default 50 ms).
	CheckpointEvery time.Duration
	// AdaptiveLeadTime, when non-zero, enables adaptive migration
	// thresholds (the paper's future-work extension): the threshold is
	// derived from the observed leak trend so that migration starts with
	// roughly this much hand-off time remaining.
	AdaptiveLeadTime time.Duration
	// RequestFault, when non-nil, adds a per-request countable-resource
	// leak (descriptor/thread exhaustion) alongside the memory leak; the
	// FT manager then monitors the worst of the two resources.
	RequestFault *faultinject.RequestLeakConfig
	// MonitorInterval, when non-zero, switches threshold checking to a
	// timer-driven poller goroutine — the design the paper rejected,
	// retained for the ablation benchmarks. Zero keeps the paper's
	// event-driven (write-path) checking.
	MonitorInterval time.Duration
	// Objects is the number of application objects each replica hosts
	// (default 1: the paper's single time-of-day object). The paper
	// predicts the LOCATION_FORWARD scheme's bookkeeping "will increase
	// significantly" with this number, "since it maintains an IOR entry
	// for each object instantiated"; the object-table scaling bench
	// measures that claim.
	Objects int
	// AcceptLoops shards the server ORB's accept loop across this many
	// goroutines (0 or 1 means one). Striped client pools redial several
	// connections per client after a recovery event; sharding keeps
	// connection admission off the critical path of that storm.
	AcceptLoops int
	// Logf, if set, receives progress lines.
	Logf func(format string, args ...interface{})
	// Telemetry, when set, is threaded into the server ORB (dispatch
	// histogram), the FT manager (threshold-crossing events), and the fault
	// injector (leak-level gauges).
	Telemetry *telemetry.Telemetry
}

// Group returns the service's GCS group name ("new server replicas join a
// unique server-specific group as soon as they are launched").
func (c ServiceConfig) Group() string { return "mead." + c.Service }

// BindingName returns the replica's Naming Service name.
func (c ServiceConfig) BindingName(replica string) string {
	return c.Service + "/" + replica
}

// Replica is one running replica instance. A restarted replica is a new
// Replica value (fresh budget, fresh connections), as a restarted process
// would be.
type Replica struct {
	name string
	cfg  ServiceConfig

	budget   *resource.Budget
	injector *faultinject.Injector
	reqLeak  *faultinject.RequestLeak
	member   *gcs.Member
	mgr      *ftmgr.Manager
	srv      *orb.ServerORB
	state    *clockState

	requests atomic.Int64

	exitOnce sync.Once
	reason   ExitReason
	done     chan struct{}
	loopWG   sync.WaitGroup
}

// New returns an unstarted replica named name.
func New(name string, cfg ServiceConfig) (*Replica, error) {
	if name == "" || cfg.Service == "" {
		return nil, errors.New("replica: name and service required")
	}
	if cfg.TypeID == "" {
		cfg.TypeID = "IDL:mead/TimeOfDay:1.0"
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = DefaultCheckpointEvery
	}
	return &Replica{
		name: name,
		cfg:  cfg,
		done: make(chan struct{}),
	}, nil
}

// Name returns the replica's name.
func (r *Replica) Name() string { return r.name }

// Addr returns the replica's ORB endpoint (after Start).
func (r *Replica) Addr() string {
	if r.srv == nil {
		return ""
	}
	return r.srv.Addr()
}

// Requests returns how many application requests this instance served.
func (r *Replica) Requests() int64 { return r.requests.Load() }

// StateCounter returns the servant's replicated counter.
func (r *Replica) StateCounter() uint64 {
	if r.state == nil {
		return 0
	}
	return r.state.Counter()
}

// Budget exposes the replica's resource budget (tests and examples).
func (r *Replica) Budget() *resource.Budget { return r.budget }

// Manager exposes the embedded fault-tolerance manager.
func (r *Replica) Manager() *ftmgr.Manager { return r.mgr }

// Done is closed when the replica instance has terminated.
func (r *Replica) Done() <-chan struct{} { return r.done }

// ExitReason is valid after Done is closed.
func (r *Replica) ExitReason() ExitReason { return r.reason }

// Start brings the replica up: budget, injector, GCS membership, ORB,
// naming registration, announcement, delivery and checkpoint loops.
func (r *Replica) Start() error {
	var err error
	if r.budget, err = faultinject.NewBudget(r.cfg.Fault); err != nil {
		return fmt.Errorf("replica %s: %w", r.name, err)
	}
	if r.cfg.InjectFault {
		r.injector, err = faultinject.New(r.cfg.Fault, r.budget, func() {
			r.logf("replica %s: resource exhausted, crashing", r.name)
			go r.exit(ExitCrashed)
		})
		if err != nil {
			return fmt.Errorf("replica %s: %w", r.name, err)
		}
		r.injector.Instrument(r.cfg.Telemetry)
	}

	if r.member, err = gcs.Dial(r.cfg.HubAddr, r.name); err != nil {
		return fmt.Errorf("replica %s: %w", r.name, err)
	}

	var adaptive *ftmgr.AdaptiveThreshold
	if r.cfg.AdaptiveLeadTime > 0 {
		adaptive = ftmgr.NewAdaptiveThreshold(r.cfg.AdaptiveLeadTime)
	}
	monitor := ftmgr.Monitor(r.budget)
	if r.cfg.RequestFault != nil {
		r.reqLeak, err = faultinject.NewRequestLeak(*r.cfg.RequestFault, func() {
			r.logf("replica %s: %s exhausted, crashing", r.name, r.reqLeak.Budget().Name())
			go r.exit(ExitCrashed)
		})
		if err != nil {
			r.cleanupPartial()
			return fmt.Errorf("replica %s: %w", r.name, err)
		}
		monitor = resource.MaxOf{r.budget, r.reqLeak.Budget()}
	}
	r.mgr, err = ftmgr.NewManager(ftmgr.Config{
		ReplicaName:      r.name,
		Group:            r.cfg.Group(),
		Scheme:           r.cfg.Scheme,
		Monitor:          monitor,
		LaunchThreshold:  r.cfg.LaunchThreshold,
		MigrateThreshold: r.cfg.MigrateThreshold,
		Adaptive:         adaptive,
		TimerDriven:      r.cfg.MonitorInterval > 0,
		Member:           r.member,
		Telemetry:        r.cfg.Telemetry,
		OnFirstRequest: func() {
			if r.injector != nil {
				_ = r.injector.Activate()
			}
		},
		OnMigrate: func() {
			r.logf("replica %s: migrate threshold crossed, handing clients off", r.name)
			go r.maybeRejuvenate()
		},
	})
	if err != nil {
		r.cleanupPartial()
		return fmt.Errorf("replica %s: %w", r.name, err)
	}

	r.state = &clockState{}
	r.srv = orb.NewServer(
		orb.WithServerConnWrapper(r.mgr.WrapServerConn),
		orb.WithServerTelemetry(r.cfg.Telemetry),
		orb.WithServerAcceptLoops(r.cfg.AcceptLoops),
		orb.WithConnClosedHook(func(active int) {
			if active == 0 {
				go r.maybeRejuvenate()
			}
		}),
	)
	objects := r.cfg.Objects
	if objects <= 0 {
		objects = 1
	}
	servant := r.servant()
	keys := make([][]byte, 0, objects)
	keys = append(keys, giop.MakeObjectKey(r.cfg.Service, ObjectName))
	for i := 1; i < objects; i++ {
		keys = append(keys, giop.MakeObjectKey(r.cfg.Service, fmt.Sprintf("%s-%d", ObjectName, i)))
	}
	for _, key := range keys {
		r.srv.Register(key, servant)
	}
	if err := r.srv.Listen("127.0.0.1:0"); err != nil {
		r.cleanupPartial()
		return fmt.Errorf("replica %s: %w", r.name, err)
	}
	if err := r.srv.Start(); err != nil {
		r.cleanupPartial()
		return fmt.Errorf("replica %s: %w", r.name, err)
	}
	iors := make([]giop.IOR, 0, len(keys))
	for _, key := range keys {
		keyIOR, err := r.srv.IORFor(r.cfg.TypeID, key)
		if err != nil {
			r.cleanupPartial()
			return fmt.Errorf("replica %s: %w", r.name, err)
		}
		iors = append(iors, keyIOR)
	}
	ior := iors[0]

	// Register with the Naming Service. Rebind keeps the original
	// registration order, and a crashed replica's stale binding stays in
	// place until this point — the source of the cached reactive scheme's
	// TRANSIENT exceptions.
	if r.cfg.NamesAddr != "" {
		nc := namesvc.NewClient(r.cfg.NamesAddr)
		if err := nc.Rebind(r.cfg.BindingName(r.name), ior); err != nil {
			r.cleanupPartial()
			return fmt.Errorf("replica %s: naming registration: %w", r.name, err)
		}
	}

	if err := r.member.Join(r.cfg.Group()); err != nil {
		r.cleanupPartial()
		return fmt.Errorf("replica %s: %w", r.name, err)
	}
	// Announce every hosted object's IOR: the LOCATION_FORWARD scheme's
	// per-object bookkeeping cost scales with this list.
	if err := r.mgr.AnnounceSelf(r.srv.Addr(), iors); err != nil {
		r.cleanupPartial()
		return fmt.Errorf("replica %s: %w", r.name, err)
	}

	r.loopWG.Add(2)
	go func() {
		defer r.loopWG.Done()
		r.deliveryLoop()
	}()
	go func() {
		defer r.loopWG.Done()
		r.checkpointLoop()
	}()
	if r.cfg.MonitorInterval > 0 {
		r.loopWG.Add(1)
		go func() {
			defer r.loopWG.Done()
			r.monitorLoop()
		}()
	}
	r.logf("replica %s: serving %s at %s (scheme %v)", r.name, r.cfg.Service, r.srv.Addr(), r.cfg.Scheme)
	return nil
}

func (r *Replica) cleanupPartial() {
	if r.srv != nil {
		_ = r.srv.Close()
	}
	if r.member != nil {
		_ = r.member.Close()
	}
	if r.injector != nil {
		r.injector.Stop()
	}
}

// Crash terminates the replica abruptly (process-crash semantics).
func (r *Replica) Crash() { r.exit(ExitCrashed) }

// Stop terminates the replica administratively.
func (r *Replica) Stop() { r.exit(ExitStopped) }

// maybeRejuvenate gracefully restarts the replica once migration has begun
// and the last client connection has drained — the quiescence condition the
// paper required before a faulty replica could be restarted safely.
func (r *Replica) maybeRejuvenate() {
	if r.mgr.Migrating() && r.srv.ActiveConnections() == 0 {
		r.logf("replica %s: quiescent after migration, rejuvenating", r.name)
		r.exit(ExitRejuvenated)
	}
}

func (r *Replica) exit(reason ExitReason) {
	r.exitOnce.Do(func() {
		r.reason = reason
		if r.injector != nil {
			r.injector.Stop()
		}
		if r.srv != nil {
			r.srv.Crash()
		}
		if r.member != nil {
			_ = r.member.Close()
		}
		r.loopWG.Wait()
		close(r.done)
	})
}

func (r *Replica) logf(format string, args ...interface{}) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// deliveryLoop pumps GCS events into the FT manager and applies incoming
// state checkpoints.
func (r *Replica) deliveryLoop() {
	for d := range r.member.Deliveries() {
		r.mgr.HandleDelivery(d)
		if d.Kind != gcs.DeliverData {
			continue
		}
		msg, err := ftmgr.DecodeMessage(d.Payload)
		if err != nil {
			continue
		}
		if cp, ok := msg.(ftmgr.Checkpoint); ok && cp.From != r.name {
			r.state.applyCheckpoint(cp.Seq)
		}
	}
}

// checkpointLoop periodically transfers the primary's state to the backups
// (warm passive replication).
func (r *Replica) checkpointLoop() {
	ticker := time.NewTicker(r.cfg.CheckpointEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if !r.mgr.IsPrimary() {
				continue
			}
			cp := ftmgr.Checkpoint{From: r.name, Seq: r.state.Counter()}
			if err := r.member.Multicast(r.cfg.Group(), ftmgr.EncodeCheckpoint(cp)); err != nil {
				return
			}
		case <-r.member.Done():
			return
		}
	}
}

// monitorLoop is the timer-driven threshold poller used only in the
// ablation configuration (MonitorInterval > 0).
func (r *Replica) monitorLoop() {
	ticker := time.NewTicker(r.cfg.MonitorInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			r.mgr.PollThresholds()
		case <-r.member.Done():
			return
		}
	}
}

// servant builds the time-of-day application object: the paper's test
// application ("a simple CORBA client ... requested the time-of-day ...
// from one of three warm-passively replicated CORBA servers").
func (r *Replica) servant() orb.Servant {
	return orb.ServantFunc(func(op string, args *cdr.Decoder, result *cdr.Encoder) error {
		switch op {
		case "time_of_day":
			r.requests.Add(1)
			if r.reqLeak != nil {
				r.reqLeak.OnRequest()
			}
			count := r.state.increment()
			result.WriteLongLong(time.Now().UnixNano())
			result.WriteULongLong(count)
			result.WriteString(r.name)
			return nil
		case "counter":
			result.WriteULongLong(r.state.Counter())
			return nil
		default:
			return &giop.SystemException{RepoID: giop.RepoBadOperation, Completed: giop.CompletedNo}
		}
	})
}

// clockState is the replicated application state: a monotonic invocation
// counter carried by warm-passive checkpoints.
type clockState struct {
	mu      sync.Mutex
	counter uint64
}

func (s *clockState) increment() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counter++
	return s.counter
}

// Counter returns the current state value.
func (s *clockState) Counter() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counter
}

// applyCheckpoint merges a checkpoint: state only moves forward.
func (s *clockState) applyCheckpoint(seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq > s.counter {
		s.counter = seq
	}
}
