package cdr

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func orders() []ByteOrder { return []ByteOrder{BigEndian, LittleEndian} }

func TestByteOrderString(t *testing.T) {
	if BigEndian.String() != "big-endian" || LittleEndian.String() != "little-endian" {
		t.Fatalf("unexpected ByteOrder strings: %q %q", BigEndian, LittleEndian)
	}
}

func TestPrimitiveRoundTrip(t *testing.T) {
	for _, order := range orders() {
		e := NewEncoder(order)
		e.WriteOctet(0xAB)
		e.WriteBool(true)
		e.WriteBool(false)
		e.WriteUShort(0xBEEF)
		e.WriteULong(0xDEADBEEF)
		e.WriteULongLong(0x0123456789ABCDEF)
		e.WriteShort(-1234)
		e.WriteLong(-123456789)
		e.WriteLongLong(-1234567890123)
		e.WriteDouble(3.14159)

		d := NewDecoder(e.Bytes(), order)
		if v, err := d.ReadOctet(); err != nil || v != 0xAB {
			t.Fatalf("[%v] octet = %v, %v", order, v, err)
		}
		if v, err := d.ReadBool(); err != nil || !v {
			t.Fatalf("[%v] bool = %v, %v", order, v, err)
		}
		if v, err := d.ReadBool(); err != nil || v {
			t.Fatalf("[%v] bool = %v, %v", order, v, err)
		}
		if v, err := d.ReadUShort(); err != nil || v != 0xBEEF {
			t.Fatalf("[%v] ushort = %#x, %v", order, v, err)
		}
		if v, err := d.ReadULong(); err != nil || v != 0xDEADBEEF {
			t.Fatalf("[%v] ulong = %#x, %v", order, v, err)
		}
		if v, err := d.ReadULongLong(); err != nil || v != 0x0123456789ABCDEF {
			t.Fatalf("[%v] ulonglong = %#x, %v", order, v, err)
		}
		if v, err := d.ReadShort(); err != nil || v != -1234 {
			t.Fatalf("[%v] short = %v, %v", order, v, err)
		}
		if v, err := d.ReadLong(); err != nil || v != -123456789 {
			t.Fatalf("[%v] long = %v, %v", order, v, err)
		}
		if v, err := d.ReadLongLong(); err != nil || v != -1234567890123 {
			t.Fatalf("[%v] longlong = %v, %v", order, v, err)
		}
		if v, err := d.ReadDouble(); err != nil || v != 3.14159 {
			t.Fatalf("[%v] double = %v, %v", order, v, err)
		}
		if d.Remaining() != 0 {
			t.Fatalf("[%v] %d bytes left over", order, d.Remaining())
		}
	}
}

func TestAlignmentPadding(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteOctet(1) // offset 0
	e.WriteULong(2) // must align to 4: pad 3
	if e.Len() != 8 {
		t.Fatalf("len after octet+ulong = %d, want 8", e.Len())
	}
	e.WriteOctet(3)     // offset 8
	e.WriteULongLong(4) // align to 16: pad 7
	if e.Len() != 24 {
		t.Fatalf("len after octet+ulonglong = %d, want 24", e.Len())
	}

	d := NewDecoder(e.Bytes(), BigEndian)
	if v, _ := d.ReadOctet(); v != 1 {
		t.Fatal("octet mismatch")
	}
	if v, _ := d.ReadULong(); v != 2 {
		t.Fatal("ulong mismatch")
	}
	if v, _ := d.ReadOctet(); v != 3 {
		t.Fatal("second octet mismatch")
	}
	if v, _ := d.ReadULongLong(); v != 4 {
		t.Fatal("ulonglong mismatch")
	}
}

func TestBigEndianWireFormat(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteULong(0x01020304)
	want := []byte{1, 2, 3, 4}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("big-endian ulong = % x, want % x", e.Bytes(), want)
	}
}

func TestLittleEndianWireFormat(t *testing.T) {
	e := NewEncoder(LittleEndian)
	e.WriteULong(0x01020304)
	want := []byte{4, 3, 2, 1}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("little-endian ulong = % x, want % x", e.Bytes(), want)
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, order := range orders() {
		for _, s := range []string{"", "a", "timeofday", "IDL:mead/TimeOfDay:1.0", "embedded\x01bytes"} {
			e := NewEncoder(order)
			e.WriteString(s)
			d := NewDecoder(e.Bytes(), order)
			got, err := d.ReadString()
			if err != nil {
				t.Fatalf("[%v] ReadString(%q): %v", order, s, err)
			}
			if got != s {
				t.Fatalf("[%v] round trip %q -> %q", order, s, got)
			}
		}
	}
}

func TestStringWireFormat(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteString("hi")
	want := []byte{0, 0, 0, 3, 'h', 'i', 0}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("string encoding = % x, want % x", e.Bytes(), want)
	}
}

func TestReadStringErrors(t *testing.T) {
	// zero length
	e := NewEncoder(BigEndian)
	e.WriteULong(0)
	if _, err := NewDecoder(e.Bytes(), BigEndian).ReadString(); !errors.Is(err, ErrBadString) {
		t.Fatalf("zero-length string: err = %v, want ErrBadString", err)
	}
	// length larger than buffer
	e = NewEncoder(BigEndian)
	e.WriteULong(1000)
	if _, err := NewDecoder(e.Bytes(), BigEndian).ReadString(); !errors.Is(err, ErrLengthOverflow) {
		t.Fatalf("overflow string: err = %v, want ErrLengthOverflow", err)
	}
	// missing NUL
	raw := []byte{0, 0, 0, 2, 'h', 'i'}
	if _, err := NewDecoder(raw, BigEndian).ReadString(); !errors.Is(err, ErrBadString) {
		t.Fatalf("missing NUL: err = %v, want ErrBadString", err)
	}
}

func TestOctetsRoundTrip(t *testing.T) {
	for _, order := range orders() {
		payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAA}, 52)}
		for _, p := range payloads {
			e := NewEncoder(order)
			e.WriteOctets(p)
			d := NewDecoder(e.Bytes(), order)
			got, err := d.ReadOctets()
			if err != nil {
				t.Fatalf("[%v] ReadOctets: %v", order, err)
			}
			if !bytes.Equal(got, p) {
				t.Fatalf("[%v] octets % x -> % x", order, p, got)
			}
		}
	}
}

func TestReadOctetsCopies(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteOctets([]byte{1, 2, 3})
	buf := e.Bytes()
	d := NewDecoder(buf, BigEndian)
	got, err := d.ReadOctets()
	if err != nil {
		t.Fatal(err)
	}
	buf[4] = 99 // mutate the underlying stream
	if got[0] != 1 {
		t.Fatal("ReadOctets did not copy its result")
	}
}

func TestOctetsOverflow(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteULong(math.MaxUint32)
	if _, err := NewDecoder(e.Bytes(), BigEndian).ReadOctets(); !errors.Is(err, ErrLengthOverflow) {
		t.Fatalf("err = %v, want ErrLengthOverflow", err)
	}
}

func TestEncapsulationRoundTrip(t *testing.T) {
	for _, outer := range orders() {
		e := NewEncoder(outer)
		e.WriteULong(7)
		e.WriteEncapsulation(func(inner *Encoder) {
			inner.WriteString("host.example")
			inner.WriteUShort(9999)
			inner.WriteOctets([]byte{1, 2, 3})
		})
		e.WriteULong(8)

		d := NewDecoder(e.Bytes(), outer)
		if v, _ := d.ReadULong(); v != 7 {
			t.Fatal("prefix mismatch")
		}
		inner, err := d.ReadEncapsulation()
		if err != nil {
			t.Fatalf("ReadEncapsulation: %v", err)
		}
		if inner.Order() != outer {
			t.Fatalf("inner order = %v, want %v", inner.Order(), outer)
		}
		host, err := inner.ReadString()
		if err != nil || host != "host.example" {
			t.Fatalf("inner string = %q, %v", host, err)
		}
		if port, _ := inner.ReadUShort(); port != 9999 {
			t.Fatalf("inner port = %d", port)
		}
		if oct, _ := inner.ReadOctets(); !bytes.Equal(oct, []byte{1, 2, 3}) {
			t.Fatalf("inner octets = % x", oct)
		}
		if v, _ := d.ReadULong(); v != 8 {
			t.Fatal("suffix mismatch")
		}
	}
}

func TestEmptyEncapsulationError(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteOctets(nil)
	if _, err := NewDecoder(e.Bytes(), BigEndian).ReadEncapsulation(); err == nil {
		t.Fatal("empty encapsulation accepted")
	}
}

func TestTruncatedReads(t *testing.T) {
	checks := []func(*Decoder) error{
		func(d *Decoder) error { _, err := d.ReadOctet(); return err },
		func(d *Decoder) error { _, err := d.ReadUShort(); return err },
		func(d *Decoder) error { _, err := d.ReadULong(); return err },
		func(d *Decoder) error { _, err := d.ReadULongLong(); return err },
		func(d *Decoder) error { _, err := d.ReadString(); return err },
		func(d *Decoder) error { _, err := d.ReadOctets(); return err },
	}
	for i, check := range checks {
		if err := check(NewDecoder(nil, BigEndian)); !errors.Is(err, ErrTruncated) {
			t.Errorf("check %d on empty buffer: err = %v, want ErrTruncated", i, err)
		}
	}
	// partial ulong
	if _, err := NewDecoder([]byte{1, 2}, BigEndian).ReadULong(); !errors.Is(err, ErrTruncated) {
		t.Errorf("partial ulong: err = %v, want ErrTruncated", err)
	}
}

// Property: any sequence of (tagged) primitive writes decodes back to the
// same values, in both byte orders.
func TestQuickMixedRoundTrip(t *testing.T) {
	type record struct {
		A uint16
		B uint32
		C uint64
		D bool
		S string
		O []byte
	}
	f := func(r record, little bool) bool {
		order := BigEndian
		if little {
			order = LittleEndian
		}
		e := NewEncoder(order)
		e.WriteUShort(r.A)
		e.WriteBool(r.D)
		e.WriteULongLong(r.C)
		e.WriteString(r.S)
		e.WriteOctets(r.O)
		e.WriteULong(r.B)

		d := NewDecoder(e.Bytes(), order)
		a, err := d.ReadUShort()
		if err != nil || a != r.A {
			return false
		}
		db, err := d.ReadBool()
		if err != nil || db != r.D {
			return false
		}
		c, err := d.ReadULongLong()
		if err != nil || c != r.C {
			return false
		}
		s, err := d.ReadString()
		if err != nil || s != r.S {
			return false
		}
		o, err := d.ReadOctets()
		if err != nil || !bytes.Equal(o, r.O) {
			return false
		}
		b, err := d.ReadULong()
		if err != nil || b != r.B {
			return false
		}
		return d.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never panics on arbitrary input bytes.
func TestQuickDecoderNeverPanics(t *testing.T) {
	f := func(raw []byte, little bool) bool {
		order := BigEndian
		if little {
			order = LittleEndian
		}
		d := NewDecoder(raw, order)
		for d.Remaining() > 0 {
			before := d.Pos()
			_, _ = d.ReadString()
			_, _ = d.ReadOctets()
			_, _ = d.ReadULong()
			if _, err := d.ReadOctet(); err != nil {
				break
			}
			if d.Pos() == before {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
