package cdr

import "sync"

// Interner deduplicates hot repeated strings decoded off the wire —
// operation names, object-key prefixes, exception repository ids — so the
// steady-state receive path never allocates a fresh string per message.
//
// Lookups by []byte key use the map[string]T compiler fast path (no
// conversion allocation); only the first sighting of a value pays one
// allocation. The cache is bounded: once full, unseen values are still
// returned correctly (as fresh copies) but not cached, so a hostile peer
// streaming unique strings cannot grow it without bound.
type Interner struct {
	max int
	mu  sync.RWMutex
	m   map[string]string
}

// NewInterner returns an Interner holding at most max distinct strings.
func NewInterner(max int) *Interner {
	if max <= 0 {
		max = 256
	}
	return &Interner{max: max, m: make(map[string]string, 16)}
}

// Intern returns the canonical string equal to b, allocating only on first
// sight (or when the cache is full).
func (it *Interner) Intern(b []byte) string {
	it.mu.RLock()
	s, ok := it.m[string(b)] // no-alloc map lookup
	it.mu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	it.mu.Lock()
	if canon, ok := it.m[s]; ok {
		s = canon // lost the insert race; keep the canonical copy
	} else if len(it.m) < it.max {
		it.m[s] = s
	}
	it.mu.Unlock()
	return s
}

// Len reports how many distinct strings are cached (test/diagnostic hook).
func (it *Interner) Len() int {
	it.mu.RLock()
	defer it.mu.RUnlock()
	return len(it.m)
}
