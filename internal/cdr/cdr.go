// Package cdr implements the subset of OMG Common Data Representation (CDR)
// marshalling that GIOP messages need: naturally aligned primitive types in
// either byte order, strings, octet sequences, and encapsulations.
//
// Alignment is computed relative to the start of the CDR stream (offset 0 =
// the first byte handed to the Encoder or Decoder). GIOP message bodies and
// encapsulations each start their own stream, which is how this package is
// used by package giop, so encoder and decoder positions always agree.
package cdr

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// ByteOrder is the CDR byte-order flag: 0 means big-endian, 1 little-endian,
// exactly as carried in GIOP headers and encapsulation prefixes.
type ByteOrder byte

// Byte orders. BigEndian is the zero value, matching CORBA's flag encoding.
const (
	BigEndian    ByteOrder = 0
	LittleEndian ByteOrder = 1
)

func (o ByteOrder) String() string {
	if o == LittleEndian {
		return "little-endian"
	}
	return "big-endian"
}

// Marshalling errors.
var (
	// ErrTruncated reports a read past the end of the buffer.
	ErrTruncated = errors.New("cdr: truncated stream")
	// ErrBadString reports a malformed CDR string (bad length or missing
	// NUL terminator).
	ErrBadString = errors.New("cdr: malformed string")
	// ErrLengthOverflow reports a sequence length too large for the
	// remaining buffer, a sign of a corrupt or hostile stream.
	ErrLengthOverflow = errors.New("cdr: sequence length exceeds remaining stream")
)

// Encoder builds a CDR stream. The zero value is not usable; use NewEncoder
// (or GetEncoder for the pooled marshalling fast path).
type Encoder struct {
	buf    []byte
	order  ByteOrder
	origin int // alignment origin: offset of the current stream's first byte
}

// encoderInitialCap pre-sizes fresh encoder buffers so typical GIOP
// messages (headers + small bodies) encode without growth reallocations.
const encoderInitialCap = 128

// maxPooledEncoderCap bounds the buffers the encoder pool retains, so one
// huge fragmented message does not pin its buffer forever.
const maxPooledEncoderCap = 64 << 10

var encoderPool = sync.Pool{
	New: func() any { return &Encoder{buf: make([]byte, 0, encoderInitialCap)} },
}

// NewEncoder returns an Encoder producing a stream in the given byte order.
func NewEncoder(order ByteOrder) *Encoder {
	return &Encoder{order: order, buf: make([]byte, 0, encoderInitialCap)}
}

// GetEncoder returns a pooled Encoder reset to the given byte order. The
// marshalling hot path recycles encoder buffers through this pool; return
// the encoder with Release once its Bytes have been consumed.
func GetEncoder(order ByteOrder) *Encoder {
	e := encoderPool.Get().(*Encoder)
	e.Reset(order)
	return e
}

// Release returns a pooled encoder for reuse. The caller must not touch e,
// or any slice previously obtained from Bytes, after Release.
func (e *Encoder) Release() {
	if cap(e.buf) > maxPooledEncoderCap {
		e.buf = make([]byte, 0, encoderInitialCap)
	}
	encoderPool.Put(e)
}

// Reset clears the encoder for reuse, keeping its allocated buffer.
func (e *Encoder) Reset(order ByteOrder) {
	e.buf = e.buf[:0]
	e.origin = 0
	e.order = order
}

// Bytes returns the encoded stream. The returned slice aliases the
// encoder's buffer; callers must not retain it across further writes.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the current stream length in bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Order returns the encoder's byte order.
func (e *Encoder) Order() ByteOrder { return e.order }

// Skip appends n zero bytes verbatim — space for a fixed-size prefix (e.g.
// a GIOP message header) that the caller patches after encoding the body.
func (e *Encoder) Skip(n int) {
	e.buf = append(e.buf, zeroPad[:n]...)
}

// Rebase makes the current position the stream's alignment origin, starting
// a spliced sub-stream — the encoding dual of Decoder.Rest. GIOP bodies and
// operation arguments each begin a fresh origin this way, so single-buffer
// message encoding pads identically to independently encoded sub-streams.
func (e *Encoder) Rebase() {
	e.origin = len(e.buf)
}

// zeroPad supplies alignment padding (max 8-byte alignment) and Skip
// scratch (max one GIOP/MEAD header).
var zeroPad [16]byte

// align pads the stream with zero bytes so the next write lands on a
// multiple of n relative to the alignment origin (n must be a power of two).
func (e *Encoder) align(n int) {
	if rem := (len(e.buf) - e.origin) % n; rem != 0 {
		e.buf = append(e.buf, zeroPad[:n-rem]...)
	}
}

// WriteOctet appends a single octet.
func (e *Encoder) WriteOctet(v byte) {
	e.buf = append(e.buf, v)
}

// WriteRaw appends bytes verbatim, without any alignment. It splices an
// independently encoded CDR sub-stream (e.g. operation arguments aligned
// relative to their own start) into this stream.
func (e *Encoder) WriteRaw(b []byte) {
	e.buf = append(e.buf, b...)
}

// WriteBool appends a CDR boolean (one octet, 0 or 1).
func (e *Encoder) WriteBool(v bool) {
	if v {
		e.WriteOctet(1)
	} else {
		e.WriteOctet(0)
	}
}

// WriteUShort appends an aligned 16-bit unsigned integer.
func (e *Encoder) WriteUShort(v uint16) {
	e.align(2)
	if e.order == LittleEndian {
		e.buf = append(e.buf, byte(v), byte(v>>8))
	} else {
		e.buf = append(e.buf, byte(v>>8), byte(v))
	}
}

// WriteULong appends an aligned 32-bit unsigned integer.
func (e *Encoder) WriteULong(v uint32) {
	e.align(4)
	if e.order == LittleEndian {
		e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	} else {
		e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
}

// WriteULongLong appends an aligned 64-bit unsigned integer.
func (e *Encoder) WriteULongLong(v uint64) {
	e.align(8)
	if e.order == LittleEndian {
		e.buf = append(e.buf,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	} else {
		e.buf = append(e.buf,
			byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
}

// WriteShort appends an aligned 16-bit signed integer.
func (e *Encoder) WriteShort(v int16) { e.WriteUShort(uint16(v)) }

// WriteLong appends an aligned 32-bit signed integer.
func (e *Encoder) WriteLong(v int32) { e.WriteULong(uint32(v)) }

// WriteLongLong appends an aligned 64-bit signed integer.
func (e *Encoder) WriteLongLong(v int64) { e.WriteULongLong(uint64(v)) }

// WriteDouble appends an aligned IEEE-754 double.
func (e *Encoder) WriteDouble(v float64) { e.WriteULongLong(math.Float64bits(v)) }

// WriteString appends a CDR string: ulong length (including the trailing
// NUL), the bytes, then a NUL terminator.
func (e *Encoder) WriteString(s string) {
	e.WriteULong(uint32(len(s) + 1))
	e.buf = append(e.buf, s...)
	e.buf = append(e.buf, 0)
}

// WriteOctets appends a sequence<octet>: ulong length then the raw bytes.
func (e *Encoder) WriteOctets(b []byte) {
	e.WriteULong(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// WriteEncapsulation appends a CDR encapsulation: an octet-sequence whose
// payload is its own CDR stream (starting with a byte-order octet) built by
// fill. The inner stream uses the same byte order as the outer encoder.
func (e *Encoder) WriteEncapsulation(fill func(*Encoder)) {
	inner := GetEncoder(e.order)
	inner.WriteOctet(byte(e.order))
	fill(inner)
	e.WriteOctets(inner.Bytes())
	inner.Release()
}

// Decoder consumes a CDR stream produced by Encoder (or a conforming CORBA
// peer). Methods return ErrTruncated when the stream is exhausted early.
//
// The decoder never copies or mutates buf; plain Read methods return copies,
// while the Borrow/InPlace variants return slices aliasing buf (see the
// buffer-ownership rules in docs/PROTOCOL.md §8).
type Decoder struct {
	buf    []byte
	pos    int
	order  ByteOrder
	origin int // alignment origin: offset of the current stream's first byte
}

// NewDecoder returns a Decoder over buf interpreting multi-byte values in
// the given byte order.
func NewDecoder(buf []byte, order ByteOrder) *Decoder {
	return &Decoder{buf: buf, order: order}
}

var decoderPool = sync.Pool{New: func() any { return new(Decoder) }}

// GetDecoder returns a pooled Decoder over buf — the decode-side dual of
// GetEncoder. Return it with Release once the stream (and everything
// borrowed from it) is no longer needed; callers that never Release merely
// forgo reuse.
func GetDecoder(buf []byte, order ByteOrder) *Decoder {
	d := decoderPool.Get().(*Decoder)
	d.buf = buf
	d.pos = 0
	d.origin = 0
	d.order = order
	return d
}

// Release returns a pooled decoder for reuse. The caller must not touch d
// after Release; slices previously borrowed from the underlying buffer
// remain valid (the buffer's lifetime is governed by its own owner).
func (d *Decoder) Release() {
	d.buf = nil
	decoderPool.Put(d)
}

// Rebase makes the current position the stream's alignment origin, starting
// a spliced sub-stream in place — the decoding dual of Encoder.Rebase.
// DecodeRequest/DecodeReply use it to hand back the same decoder positioned
// at the operation arguments (their own alignment origin) without
// allocating a second decoder.
func (d *Decoder) Rebase() {
	d.origin = d.pos
}

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.pos }

// Rest returns the unread bytes without consuming them. Callers use it to
// start a fresh CDR stream (fresh alignment origin) over a spliced
// sub-stream such as operation arguments.
func (d *Decoder) Rest() []byte { return d.buf[d.pos:] }

// Pos returns the current read offset.
func (d *Decoder) Pos() int { return d.pos }

// Order returns the decoder's byte order.
func (d *Decoder) Order() ByteOrder { return d.order }

func (d *Decoder) align(n int) error {
	rem := (d.pos - d.origin) % n
	if rem == 0 {
		return nil
	}
	next := d.pos + n - rem
	if next > len(d.buf) {
		d.pos = len(d.buf)
		return ErrTruncated
	}
	d.pos = next
	return nil
}

func (d *Decoder) take(n int) ([]byte, error) {
	if d.Remaining() < n {
		return nil, ErrTruncated
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

// ReadOctet reads a single octet.
func (d *Decoder) ReadOctet() (byte, error) {
	b, err := d.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// ReadBool reads a CDR boolean.
func (d *Decoder) ReadBool() (bool, error) {
	b, err := d.ReadOctet()
	return b != 0, err
}

// ReadUShort reads an aligned 16-bit unsigned integer.
func (d *Decoder) ReadUShort() (uint16, error) {
	if err := d.align(2); err != nil {
		return 0, err
	}
	b, err := d.take(2)
	if err != nil {
		return 0, err
	}
	if d.order == LittleEndian {
		return uint16(b[0]) | uint16(b[1])<<8, nil
	}
	return uint16(b[0])<<8 | uint16(b[1]), nil
}

// ReadULong reads an aligned 32-bit unsigned integer.
func (d *Decoder) ReadULong() (uint32, error) {
	if err := d.align(4); err != nil {
		return 0, err
	}
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	if d.order == LittleEndian {
		return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), nil
}

// ReadULongLong reads an aligned 64-bit unsigned integer.
func (d *Decoder) ReadULongLong() (uint64, error) {
	if err := d.align(8); err != nil {
		return 0, err
	}
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	if d.order == LittleEndian {
		return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
			uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56, nil
	}
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7]), nil
}

// ReadShort reads an aligned 16-bit signed integer.
func (d *Decoder) ReadShort() (int16, error) {
	v, err := d.ReadUShort()
	return int16(v), err
}

// ReadLong reads an aligned 32-bit signed integer.
func (d *Decoder) ReadLong() (int32, error) {
	v, err := d.ReadULong()
	return int32(v), err
}

// ReadLongLong reads an aligned 64-bit signed integer.
func (d *Decoder) ReadLongLong() (int64, error) {
	v, err := d.ReadULongLong()
	return int64(v), err
}

// ReadDouble reads an aligned IEEE-754 double.
func (d *Decoder) ReadDouble() (float64, error) {
	v, err := d.ReadULongLong()
	return math.Float64frombits(v), err
}

// ReadString reads a CDR string. The result is a copy, safe to retain.
func (d *Decoder) ReadString() (string, error) {
	b, err := d.readStringBytes()
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// ReadOctetsBorrow reads a sequence<octet> and returns a slice aliasing the
// decoder's buffer — the zero-copy fast path for the GIOP receive cycle.
// The slice is valid only as long as the underlying buffer (for pooled
// message bodies: until the body is released); callers that retain it past
// that point must copy first.
func (d *Decoder) ReadOctetsBorrow() ([]byte, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if uint32(d.Remaining()) < n {
		return nil, ErrLengthOverflow
	}
	b, err := d.take(int(n))
	if err != nil {
		return nil, err
	}
	// Cap the slice so appends by a careless caller cannot scribble on the
	// bytes that follow in the shared buffer.
	return b[:len(b):len(b)], nil
}

// ReadOctets reads a sequence<octet>. The returned slice is a copy.
func (d *Decoder) ReadOctets() ([]byte, error) {
	b, err := d.ReadOctetsBorrow()
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// ReadStringIntern reads a CDR string through an Interner: repeated values
// (operation names, repository ids) resolve to one shared immutable string
// with no per-read allocation. The result is a normal Go string, safe to
// retain.
func (d *Decoder) ReadStringIntern(it *Interner) (string, error) {
	b, err := d.readStringBytes()
	if err != nil {
		return "", err
	}
	return it.Intern(b), nil
}

// readStringBytes reads a CDR string and returns its bytes (sans NUL)
// aliasing the decoder's buffer.
func (d *Decoder) readStringBytes() ([]byte, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("%w: zero-length string (must include NUL)", ErrBadString)
	}
	if uint32(d.Remaining()) < n {
		return nil, ErrLengthOverflow
	}
	b, err := d.take(int(n))
	if err != nil {
		return nil, err
	}
	if b[n-1] != 0 {
		return nil, fmt.Errorf("%w: missing NUL terminator", ErrBadString)
	}
	return b[:n-1], nil
}

// ReadEncapsulation reads a CDR encapsulation and returns a Decoder over its
// payload, positioned after the byte-order octet and honouring the order it
// declares.
func (d *Decoder) ReadEncapsulation() (*Decoder, error) {
	payload, err := d.ReadOctets()
	if err != nil {
		return nil, err
	}
	if len(payload) == 0 {
		return nil, fmt.Errorf("cdr: empty encapsulation: %w", ErrTruncated)
	}
	inner := NewDecoder(payload, ByteOrder(payload[0]&1))
	inner.pos = 1
	return inner, nil
}

// ReadEncapsulationInPlace reads a CDR encapsulation and returns a Decoder
// (by value, so it can live on the caller's stack) whose stream aliases the
// outer buffer instead of copying the payload. Values read from it obey the
// same borrow rules as the outer decoder.
func (d *Decoder) ReadEncapsulationInPlace() (Decoder, error) {
	payload, err := d.ReadOctetsBorrow()
	if err != nil {
		return Decoder{}, err
	}
	if len(payload) == 0 {
		return Decoder{}, fmt.Errorf("cdr: empty encapsulation: %w", ErrTruncated)
	}
	return Decoder{buf: payload, pos: 1, origin: 0, order: ByteOrder(payload[0] & 1)}, nil
}
