package cdr

import (
	"testing"
)

// FuzzReadString guards the shared string parse (readStringBytes) behind
// ReadString, ReadStringIntern, and the borrow decoders: arbitrary bytes
// must never panic or read out of bounds, and the interned and plain
// decodes of the same stream must agree.
func FuzzReadString(f *testing.F) {
	good := NewEncoder(BigEndian)
	good.WriteString("ping")
	f.Add(good.Bytes(), true)
	two := NewEncoder(LittleEndian)
	two.WriteString("")
	two.WriteString("a longer string that overflows the small path")
	f.Add(two.Bytes(), false)
	f.Add([]byte{}, true)
	f.Add([]byte{0, 0, 0, 4, 'a', 'b'}, true)            // length past end
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0}, true) // huge length
	f.Add([]byte{0, 0, 0, 1, 0}, true)                   // empty string, NUL only
	f.Add([]byte{0, 0, 0, 2, 'x', 'y'}, false)           // missing terminator

	it := NewInterner(64)
	f.Fuzz(func(t *testing.T, data []byte, big bool) {
		order := LittleEndian
		if big {
			order = BigEndian
		}
		d1 := NewDecoder(data, order)
		s1, err1 := d1.ReadString()

		d2 := GetDecoder(data, order)
		s2, err2 := d2.ReadStringIntern(it)
		d2.Release()

		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("ReadString err=%v, ReadStringIntern err=%v", err1, err2)
		}
		if err1 == nil {
			if s1 != s2 {
				t.Fatalf("ReadString %q != ReadStringIntern %q", s1, s2)
			}
			// A second interned read of the same bytes must hit the cache
			// and still agree.
			d3 := GetDecoder(data, order)
			s3, err3 := d3.ReadStringIntern(it)
			d3.Release()
			if err3 != nil || s3 != s1 {
				t.Fatalf("cached intern read: %q, %v", s3, err3)
			}
		}
	})
}

// FuzzDecoderStream drives a mixed read sequence over arbitrary bytes so the
// borrow variants (capacity-capped aliases) and alignment logic can't read
// past the buffer.
func FuzzDecoderStream(f *testing.F) {
	e := NewEncoder(BigEndian)
	e.WriteULong(7)
	e.WriteOctets([]byte{1, 2, 3})
	e.WriteString("op")
	e.WriteUShort(99)
	f.Add(e.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, order := range []ByteOrder{BigEndian, LittleEndian} {
			d := GetDecoder(data, order)
			_, _ = d.ReadULong()
			if b, err := d.ReadOctetsBorrow(); err == nil {
				if len(b) > len(data) || cap(b) != len(b) {
					t.Fatalf("borrow escapes body: len %d cap %d body %d", len(b), cap(b), len(data))
				}
			}
			_, _ = d.ReadString()
			if enc, err := d.ReadEncapsulationInPlace(); err == nil {
				_, _ = enc.ReadULong()
			}
			_, _ = d.ReadUShort()
			d.Release()
		}
	})
}
