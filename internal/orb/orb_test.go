package orb

import (
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mead/internal/cdr"
	"mead/internal/giop"
	"mead/internal/interceptor"
)

const typeID = "IDL:mead/TimeOfDay:1.0"

var clockKey = giop.MakeObjectKey("timeofday", "clock")

// echoServant implements time_of_day (returns a longlong) and echo.
type echoServant struct {
	calls atomic.Int64
	// called ticks once per invocation, letting tests of asynchronous
	// paths (oneway) wait on the event itself rather than poll the counter.
	called chan struct{}
}

func (s *echoServant) Invoke(op string, args *cdr.Decoder, result *cdr.Encoder) error {
	s.calls.Add(1)
	select {
	case s.called <- struct{}{}:
	default:
	}
	switch op {
	case "time_of_day":
		result.WriteLongLong(time.Now().UnixNano())
		return nil
	case "echo":
		v, err := args.ReadString()
		if err != nil {
			return err
		}
		result.WriteString(v)
		return nil
	case "sum64":
		a, err := args.ReadULongLong()
		if err != nil {
			return err
		}
		b, err := args.ReadULongLong()
		if err != nil {
			return err
		}
		result.WriteULongLong(a + b)
		return nil
	case "fail_user":
		return &UserException{RepoID: "IDL:mead/AppError:1.0"}
	case "fail_system":
		return giop.Transient(7, giop.CompletedNo)
	case "fail_plain":
		return errors.New("boom")
	default:
		return &giop.SystemException{RepoID: giop.RepoBadOperation, Completed: giop.CompletedNo}
	}
}

func startServer(t *testing.T, opts ...ServerOption) (*ServerORB, *echoServant) {
	t.Helper()
	s := NewServer(opts...)
	servant := &echoServant{called: make(chan struct{}, 64)}
	s.Register(clockKey, servant)
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, servant
}

func objectFor(t *testing.T, s *ServerORB, copts ...ClientOption) *ObjectRef {
	t.Helper()
	ior, err := s.IORFor(typeID, clockKey)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(copts...)
	o := c.Object(ior)
	t.Cleanup(func() { _ = o.Close() })
	return o
}

func invokeTime(o *ObjectRef) (int64, error) {
	var ts int64
	err := o.Invoke("time_of_day", nil, func(d *cdr.Decoder) error {
		v, err := d.ReadLongLong()
		ts = v
		return err
	})
	return ts, err
}

func TestBasicInvocation(t *testing.T) {
	s, servant := startServer(t)
	o := objectFor(t, s)
	ts, err := invokeTime(o)
	if err != nil {
		t.Fatal(err)
	}
	if ts == 0 {
		t.Fatal("zero timestamp")
	}
	if servant.calls.Load() != 1 {
		t.Fatalf("servant calls = %d", servant.calls.Load())
	}
}

func TestEchoArgsRoundTrip(t *testing.T) {
	s, _ := startServer(t)
	o := objectFor(t, s)
	var got string
	err := o.Invoke("echo", func(e *cdr.Encoder) {
		e.WriteString("hello over GIOP")
	}, func(d *cdr.Decoder) error {
		v, err := d.ReadString()
		got = v
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "hello over GIOP" {
		t.Fatalf("echo = %q", got)
	}
}

func TestEightByteAlignedArgs(t *testing.T) {
	// Arguments and results with 8-byte alignment must survive the
	// header-then-body splice on both directions.
	s, _ := startServer(t)
	o := objectFor(t, s)
	var got uint64
	err := o.Invoke("sum64", func(e *cdr.Encoder) {
		e.WriteULongLong(1<<40 + 5)
		e.WriteULongLong(37)
	}, func(d *cdr.Decoder) error {
		v, err := d.ReadULongLong()
		got = v
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1<<40+42 {
		t.Fatalf("sum = %d", got)
	}
}

func TestSequentialInvocationsReuseConnection(t *testing.T) {
	s, servant := startServer(t)
	o := objectFor(t, s)
	for i := 0; i < 20; i++ {
		if _, err := invokeTime(o); err != nil {
			t.Fatal(err)
		}
	}
	if servant.calls.Load() != 20 {
		t.Fatalf("servant calls = %d", servant.calls.Load())
	}
	if got := s.ActiveConnections(); got != 1 {
		t.Fatalf("active connections = %d, want 1", got)
	}
	st := o.Stats()
	if st.Invocations != 20 || st.Forwards != 0 || st.Retransmissions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUserException(t *testing.T) {
	s, _ := startServer(t)
	o := objectFor(t, s)
	err := o.Invoke("fail_user", nil, nil)
	var ue *UserException
	if !errors.As(err, &ue) || ue.RepoID != "IDL:mead/AppError:1.0" {
		t.Fatalf("err = %v", err)
	}
}

func TestSystemExceptionFromServant(t *testing.T) {
	s, _ := startServer(t)
	o := objectFor(t, s)
	err := o.Invoke("fail_system", nil, nil)
	var se *giop.SystemException
	if !errors.As(err, &se) || se.RepoID != giop.RepoTransient || se.Minor != 7 {
		t.Fatalf("err = %v", err)
	}
}

func TestPlainErrorBecomesInternal(t *testing.T) {
	s, _ := startServer(t)
	o := objectFor(t, s)
	err := o.Invoke("fail_plain", nil, nil)
	var se *giop.SystemException
	if !errors.As(err, &se) || se.RepoID != giop.RepoInternal {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownObjectKey(t *testing.T) {
	s, _ := startServer(t)
	ior, err := s.IORFor(typeID, giop.MakeObjectKey("timeofday", "bogus"))
	if err != nil {
		t.Fatal(err)
	}
	o := NewClient().Object(ior)
	defer o.Close()
	callErr := o.Invoke("time_of_day", nil, nil)
	var se *giop.SystemException
	if !errors.As(callErr, &se) || se.RepoID != giop.RepoObjectNotExist {
		t.Fatalf("err = %v", callErr)
	}
}

func TestCrashRaisesCommFailureMidStream(t *testing.T) {
	s, _ := startServer(t)
	o := objectFor(t, s)
	if _, err := invokeTime(o); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	_, err := invokeTime(o)
	var se *giop.SystemException
	if !errors.As(err, &se) || se.RepoID != giop.RepoCommFailure {
		t.Fatalf("post-crash err = %v, want COMM_FAILURE", err)
	}
}

func TestConnectRefusedRaisesTransient(t *testing.T) {
	// A reference to a dead endpoint (stale cache entry) raises TRANSIENT.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	ior, err := giop.NewIORForAddr(typeID, addr, clockKey)
	if err != nil {
		t.Fatal(err)
	}
	o := NewClient(WithDialTimeout(200 * time.Millisecond)).Object(ior)
	defer o.Close()
	callErr := o.Invoke("time_of_day", nil, nil)
	var se *giop.SystemException
	if !errors.As(callErr, &se) || se.RepoID != giop.RepoTransient {
		t.Fatalf("err = %v, want TRANSIENT", callErr)
	}
}

func TestLocationForwardTransparentRetransmit(t *testing.T) {
	// A front server that always LOCATION_FORWARDs to the real server; the
	// client application must observe a normal reply and no exception.
	real, servant := startServer(t)
	fwdIOR, err := real.IORFor(typeID, clockKey)
	if err != nil {
		t.Fatal(err)
	}

	front, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()
	go func() {
		conn, err := front.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		h, body, err := giop.ReadMessage(conn)
		if err != nil {
			return
		}
		hdr, _, err := giop.DecodeRequest(h.Order, body)
		if err != nil {
			return
		}
		reply := giop.EncodeReply(cdr.BigEndian,
			giop.ReplyHeader{RequestID: hdr.RequestID, Status: giop.ReplyLocationForward},
			func(e *cdr.Encoder) { giop.EncodeIOR(e, fwdIOR) })
		_, _ = conn.Write(reply)
	}()

	frontIOR, err := giop.NewIORForAddr(typeID, front.Addr().String(), clockKey)
	if err != nil {
		t.Fatal(err)
	}
	o := NewClient().Object(frontIOR)
	defer o.Close()
	if _, err := invokeTime(o); err != nil {
		t.Fatalf("forwarded invocation failed: %v", err)
	}
	if servant.calls.Load() != 1 {
		t.Fatalf("real servant calls = %d", servant.calls.Load())
	}
	st := o.Stats()
	if st.Forwards != 1 {
		t.Fatalf("forward count = %d", st.Forwards)
	}
	// The reference now points at the real server.
	gotAddr, _ := o.IOR().Addr()
	wantAddr, _ := fwdIOR.Addr()
	if gotAddr != wantAddr {
		t.Fatalf("reference addr = %s, want %s", gotAddr, wantAddr)
	}
}

func TestForwardLoopBounded(t *testing.T) {
	// A server that forwards to itself forever must not loop: the ORB
	// gives up after maxForwards and raises COMM_FAILURE.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	selfIOR, err := giop.NewIORForAddr(typeID, ln.Addr().String(), clockKey)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				for {
					h, body, err := giop.ReadMessage(c)
					if err != nil {
						return
					}
					hdr, _, err := giop.DecodeRequest(h.Order, body)
					if err != nil {
						return
					}
					reply := giop.EncodeReply(cdr.BigEndian,
						giop.ReplyHeader{RequestID: hdr.RequestID, Status: giop.ReplyLocationForward},
						func(e *cdr.Encoder) { giop.EncodeIOR(e, selfIOR) })
					if _, err := c.Write(reply); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	o := NewClient(WithMaxForwards(3)).Object(selfIOR)
	defer o.Close()
	err = o.Invoke("time_of_day", nil, nil)
	var se *giop.SystemException
	if !errors.As(err, &se) || se.RepoID != giop.RepoCommFailure {
		t.Fatalf("err = %v, want COMM_FAILURE after forward limit", err)
	}
	if st := o.Stats(); st.Forwards != 4 { // attempts 0..3 each forwarded
		t.Fatalf("forwards = %d", st.Forwards)
	}
}

func TestRedirectMovesReference(t *testing.T) {
	s1, servant1 := startServer(t)
	s2 := NewServer()
	servant2 := &echoServant{}
	s2.Register(clockKey, servant2)
	if err := s2.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s2.Close() })

	o := objectFor(t, s1)
	if _, err := invokeTime(o); err != nil {
		t.Fatal(err)
	}
	ior2, err := s2.IORFor(typeID, clockKey)
	if err != nil {
		t.Fatal(err)
	}
	o.Redirect(ior2)
	if _, err := invokeTime(o); err != nil {
		t.Fatal(err)
	}
	if servant1.calls.Load() != 1 || servant2.calls.Load() != 1 {
		t.Fatalf("calls = %d/%d", servant1.calls.Load(), servant2.calls.Load())
	}
}

func TestConnClosedHook(t *testing.T) {
	var lastActive atomic.Int64
	closed := make(chan struct{}, 4)
	s, _ := startServer(t, WithConnClosedHook(func(active int) {
		lastActive.Store(int64(active))
		closed <- struct{}{}
	}))
	o := objectFor(t, s)
	if _, err := invokeTime(o); err != nil {
		t.Fatal(err)
	}
	_ = o.Close()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("conn-closed hook never fired")
	}
	if lastActive.Load() != 0 {
		t.Fatalf("active after close = %d", lastActive.Load())
	}
}

func TestLittleEndianInterop(t *testing.T) {
	s, _ := startServer(t, WithServerByteOrder(cdr.LittleEndian))
	o := objectFor(t, s, WithClientByteOrder(cdr.LittleEndian))
	var got string
	err := o.Invoke("echo", func(e *cdr.Encoder) { e.WriteString("le") },
		func(d *cdr.Decoder) error {
			v, err := d.ReadString()
			got = v
			return err
		})
	if err != nil || got != "le" {
		t.Fatalf("echo = %q, %v", got, err)
	}
}

func TestServerDoubleCloseSafe(t *testing.T) {
	s, _ := startServer(t)
	_ = s.Close()
	_ = s.Close()
}

func TestIORForBeforeListen(t *testing.T) {
	s := NewServer()
	if _, err := s.IORFor(typeID, clockKey); err == nil {
		t.Fatal("IORFor before Listen succeeded")
	}
}

func TestStartBeforeListen(t *testing.T) {
	s := NewServer()
	if err := s.Start(); err == nil {
		t.Fatal("Start before Listen succeeded")
	}
}

func TestLocateObjectHere(t *testing.T) {
	s, _ := startServer(t)
	o := objectFor(t, s)
	status, err := o.Locate()
	if err != nil {
		t.Fatal(err)
	}
	if status != giop.LocateObjectHere {
		t.Fatalf("status = %v, want OBJECT_HERE", status)
	}
}

func TestLocateUnknownObject(t *testing.T) {
	s, _ := startServer(t)
	ior, err := s.IORFor(typeID, giop.MakeObjectKey("timeofday", "missing"))
	if err != nil {
		t.Fatal(err)
	}
	o := NewClient().Object(ior)
	defer o.Close()
	status, err := o.Locate()
	if err != nil {
		t.Fatal(err)
	}
	if status != giop.LocateUnknownObject {
		t.Fatalf("status = %v, want UNKNOWN_OBJECT", status)
	}
}

func TestOneWayInvocation(t *testing.T) {
	s, servant := startServer(t)
	o := objectFor(t, s)
	if err := o.InvokeOneWay("time_of_day", nil); err != nil {
		t.Fatal(err)
	}
	// Oneway has no reply; a subsequent two-way call on the same
	// connection confirms the stream stayed aligned.
	if _, err := invokeTime(o); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-servant.called:
		case <-time.After(5 * time.Second):
			t.Fatalf("servant calls = %d, want 2", servant.calls.Load())
		}
	}
	if st := o.Stats(); st.Invocations != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLocateAgainstDeadServer(t *testing.T) {
	s, _ := startServer(t)
	o := objectFor(t, s)
	if _, err := o.Locate(); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	if _, err := o.Locate(); err == nil {
		t.Fatal("locate against dead server succeeded")
	}
}

func TestServerRejectsGarbageStream(t *testing.T) {
	s, _ := startServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GARBAGE-NOT-GIOP----")); err != nil {
		t.Fatal(err)
	}
	// The server drops the connection without crashing; subsequent
	// clients are unaffected.
	one := make([]byte, 1)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(one); err == nil {
		t.Fatal("server kept a garbage connection open")
	}
	o := objectFor(t, s)
	if _, err := invokeTime(o); err != nil {
		t.Fatalf("server unusable after garbage stream: %v", err)
	}
}

func TestServerSendsMessageErrorOnCorruptRequest(t *testing.T) {
	s, _ := startServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Valid GIOP framing, corrupt Request body.
	msg := giop.EncodeMessage(cdr.BigEndian, giop.MsgRequest, []byte{0xFF, 0xFF, 0xFF})
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	h, _, err := giop.ReadMessage(conn)
	if err != nil {
		t.Fatalf("no MessageError received: %v", err)
	}
	if h.Type != giop.MsgMessageError {
		t.Fatalf("reply type = %v, want MessageError", h.Type)
	}
}

func TestClientRejectsCorruptReply(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, _, err := giop.ReadMessage(conn); err != nil {
			return
		}
		// Valid framing, corrupt Reply body.
		_, _ = conn.Write(giop.EncodeMessage(cdr.BigEndian, giop.MsgReply, []byte{1, 2}))
	}()
	ior, err := giop.NewIORForAddr(typeID, ln.Addr().String(), clockKey)
	if err != nil {
		t.Fatal(err)
	}
	o := NewClient().Object(ior)
	defer o.Close()
	if err := o.Invoke("time_of_day", nil, nil); err == nil {
		t.Fatal("corrupt reply accepted")
	}
}

func TestConcurrentObjectRefs(t *testing.T) {
	// Multiple independent references (each its own connection) may
	// invoke concurrently against one server.
	s, servant := startServer(t)
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			ior, err := s.IORFor(typeID, clockKey)
			if err != nil {
				errs <- err
				return
			}
			o := NewClient().Object(ior)
			defer o.Close()
			for k := 0; k < 20; k++ {
				if _, err := invokeTime(o); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if servant.calls.Load() != n*20 {
		t.Fatalf("servant calls = %d, want %d", servant.calls.Load(), n*20)
	}
}

func TestFragmentedInvocationEndToEnd(t *testing.T) {
	// Both directions fragmented: a large echo through a server and
	// client configured with small fragment sizes.
	s := NewServer(WithServerMaxBodyBytes(128))
	servant := &echoServant{called: make(chan struct{}, 64)}
	s.Register(clockKey, servant)
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	o := objectFor(t, s, WithClientMaxBodyBytes(128))

	payload := strings.Repeat("fragmentation!", 200) // ~2.8 KB
	var got string
	err := o.Invoke("echo", func(e *cdr.Encoder) {
		e.WriteString(payload)
	}, func(d *cdr.Decoder) error {
		v, err := d.ReadString()
		got = v
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != payload {
		t.Fatalf("fragmented echo corrupted: %d bytes vs %d", len(got), len(payload))
	}
}

func TestFragmentedThroughInterceptorPassThrough(t *testing.T) {
	// A pass-through interceptor must forward fragmented streams intact.
	s := NewServer(WithServerMaxBodyBytes(100))
	servant := &echoServant{called: make(chan struct{}, 64)}
	s.Register(clockKey, servant)
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	o := objectFor(t, s,
		WithClientMaxBodyBytes(100),
		WithClientConnWrapper(func(c net.Conn) net.Conn {
			return interceptor.New(c, interceptor.Hooks{})
		}))

	payload := strings.Repeat("x", 1500)
	var got string
	err := o.Invoke("echo", func(e *cdr.Encoder) { e.WriteString(payload) },
		func(d *cdr.Decoder) error {
			v, err := d.ReadString()
			got = v
			return err
		})
	if err != nil {
		t.Fatal(err)
	}
	if got != payload {
		t.Fatal("fragmented echo through interceptor corrupted")
	}
}
