package orb

import (
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"mead/internal/cdr"
	"mead/internal/giop"
)

// connWriter serializes and batches concurrent message writes on one
// connection. Each writer announces itself (pending) before taking the
// lock; after queueing its frame segments, the last writer out flushes the
// whole queue as ONE vectored write (net.Buffers → writev on TCP), so a
// burst of concurrent frames leaves in a single syscall without ever being
// copied into an intermediate coalescing buffer.
//
// Frames queue as segments that alias the pooled CDR encoders that built
// them (writeEncoder): the writer owns each encoder from enqueue until its
// bytes are on the wire, then Releases it — this is what lets the encode
// path skip finishMessage's exact-size copy. Ownership rules are documented
// in docs/PROTOCOL.md §10.
//
// With batching enabled (client pools that opted in via
// WithRequestBatching), a flush of more than one whole unfragmented message
// is additionally wrapped in a single GIOP batch frame (giop.MsgBatch), so
// the receiving server pays one header read and one frame parse for the
// whole burst.
type connWriter struct {
	conn    net.Conn
	batch   bool          // wrap multi-frame flushes in one batch frame
	order   cdr.ByteOrder // byte order of fabricated batch-frame headers
	pending atomic.Int64
	batches atomic.Uint64 // batch frames emitted (test/diagnostic hook)

	mu       sync.Mutex
	err      error                // sticky transport error; fails later writers fast
	bufs     net.Buffers          // queued wire segments, flushed last-writer-out
	owned    []*cdr.Encoder       // pooled encoders backing queued segments
	canBatch bool                 // every queued segment is one whole unfragmented message
	hdr      [giop.HeaderLen]byte // reusable batch-frame header storage
}

func newConnWriter(conn net.Conn, order cdr.ByteOrder, batch bool) *connWriter {
	return &connWriter{conn: conn, order: order, batch: batch, canBatch: true}
}

// writeMessage queues one pre-rendered message (fragmenting per maxBody)
// and flushes unless another writer has already committed to following it.
func (w *connWriter) writeMessage(msg []byte, maxBody int) error {
	if maxBody > 0 && len(msg)-giop.HeaderLen > maxBody {
		frames, err := giop.FragmentMessage(msg, maxBody)
		if err != nil {
			return err
		}
		return w.enqueueFragments(frames)
	}
	return w.enqueue(msg, nil, true)
}

// writeEncoder queues the complete message held in a pooled encoder (as
// returned by the EncodeRequestPooled family). Ownership of e transfers to
// the writer, which Releases it once the bytes are on the wire — or here,
// immediately, on the fragmentation fallback and the failed-connection
// fast path.
func (w *connWriter) writeEncoder(e *cdr.Encoder, maxBody int) error {
	msg := e.Bytes()
	if maxBody > 0 && len(msg)-giop.HeaderLen > maxBody {
		// Cold path: FragmentMessage copies the chunks into frames that own
		// their arrays, so the encoder can be recycled right away.
		frames, err := giop.FragmentMessage(msg, maxBody)
		e.Release()
		if err != nil {
			return err
		}
		return w.enqueueFragments(frames)
	}
	return w.enqueue(msg, e, true)
}

// enqueue adds one wire segment (with the encoder backing it, if pooled)
// and runs the last-writer-out flush protocol. The Gosched between
// enqueueing and the flush decision lets every already-runnable caller
// queue its frame first; under a burst the whole batch then leaves in a
// single vectored write, which matters most when GOMAXPROCS is small and
// writers would otherwise run (and flush) strictly one after another.
func (w *connWriter) enqueue(seg []byte, owned *cdr.Encoder, batchable bool) error {
	w.pending.Add(1)
	w.mu.Lock()
	err := w.err
	if err == nil {
		w.bufs = append(w.bufs, seg)
		if owned != nil {
			w.owned = append(w.owned, owned)
		}
		if !batchable {
			w.canBatch = false
		}
	} else if owned != nil {
		owned.Release()
	}
	w.mu.Unlock()
	return w.finishWrite(err)
}

// enqueueFragments queues the frames of one fragmented message. Fragmented
// messages are never batch-framed (batch sub-frames must be whole single
// messages), so their presence disables batching for this flush.
func (w *connWriter) enqueueFragments(frames [][]byte) error {
	w.pending.Add(1)
	w.mu.Lock()
	err := w.err
	if err == nil {
		w.bufs = append(w.bufs, frames...)
		w.canBatch = false
	}
	w.mu.Unlock()
	return w.finishWrite(err)
}

func (w *connWriter) finishWrite(err error) error {
	runtime.Gosched()
	if w.pending.Add(-1) == 0 {
		w.mu.Lock()
		if ferr := w.flushLocked(); err == nil {
			err = ferr
		}
		w.mu.Unlock()
	}
	return err
}

// flushLocked sends every queued segment in one vectored write and releases
// the encoders backing them. When batching applies (enabled, >1 whole
// message queued, total within MaxMessageSize) the segments are prefixed
// with a batch-frame header so the peer sees a single giop.MsgBatch frame.
func (w *connWriter) flushLocked() error {
	if w.err != nil {
		w.releaseLocked()
		return w.err
	}
	if len(w.bufs) == 0 {
		return nil
	}
	if w.batch && w.canBatch && len(w.bufs) > 1 {
		total := 0
		for _, s := range w.bufs {
			total += len(s)
		}
		if total <= giop.MaxMessageSize() {
			giop.PutBatchHeader(w.hdr[:], w.order, total)
			w.bufs = append(w.bufs, nil)
			copy(w.bufs[1:], w.bufs[:len(w.bufs)-1])
			w.bufs[0] = w.hdr[:]
			w.batches.Add(1)
		}
	}
	// WriteTo via a copy of the slice header: consume() advances v and nils
	// entries as they drain, while w.bufs keeps the backing array for reuse.
	v := w.bufs
	_, err := v.WriteTo(w.conn)
	w.releaseLocked()
	if err != nil {
		w.err = err
	}
	return err
}

// releaseLocked recycles the encoders behind the queued segments and resets
// the queue, keeping both backing arrays for the next flush.
func (w *connWriter) releaseLocked() {
	for i, e := range w.owned {
		e.Release()
		w.owned[i] = nil
	}
	w.owned = w.owned[:0]
	clear(w.bufs)
	w.bufs = w.bufs[:0]
	w.canBatch = true
}
