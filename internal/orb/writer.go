package orb

import (
	"bufio"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"mead/internal/giop"
)

// connWriteBufSize sizes the coalescing write buffer on multiplexed
// connections.
const connWriteBufSize = 32 << 10

// connWriter serializes and batches concurrent message writes on one
// connection. Each writer announces itself (pending) before taking the lock;
// after appending its message to the shared buffer, the last writer out
// flushes. Under bursts this coalesces many frames into one transport write,
// which is what lets a single connection carry many concurrent in-flight
// requests at a fraction of the per-request syscall cost.
type connWriter struct {
	conn    net.Conn
	pending atomic.Int64

	mu sync.Mutex
	bw *bufio.Writer
}

func newConnWriter(conn net.Conn) *connWriter {
	return &connWriter{conn: conn, bw: bufio.NewWriterSize(conn, connWriteBufSize)}
}

// writeMessage appends one message (fragmenting per maxBody) and flushes
// unless another writer has already committed to following it — that writer
// (or its successor) then takes over the flush, so the buffer is always
// flushed by whoever leaves last. The Gosched between appending and the
// flush decision lets every already-runnable caller enqueue its message
// first; under a burst of concurrent writers the whole batch then leaves in
// a single transport write, which matters most when GOMAXPROCS is small and
// writers would otherwise run (and flush) strictly one after another.
func (w *connWriter) writeMessage(msg []byte, maxBody int) error {
	w.pending.Add(1)
	w.mu.Lock()
	err := giop.WriteMessageFragmented(w.bw, msg, maxBody)
	w.mu.Unlock()
	runtime.Gosched()
	if w.pending.Add(-1) == 0 {
		w.mu.Lock()
		if ferr := w.bw.Flush(); err == nil {
			err = ferr
		}
		w.mu.Unlock()
	}
	return err
}
