// Package orb implements the miniature CORBA Object Request Broker this
// reproduction substitutes for TAO: a server ORB (listener + object adapter
// dispatching GIOP Requests to servants registered under persistent object
// keys) and a client ORB (connection management, request/reply, and the
// native handling of LOCATION_FORWARD and NEEDS_ADDRESSING_MODE replies that
// the paper's proactive schemes exploit).
//
// Both sides accept a connection-wrapper hook, which is where the MEAD
// interceptors interpose on the byte stream — the Go equivalent of the
// paper's library-interpositioning of socket(), read(), writev() et al.
// The ORB core itself stays "unmodified": it never looks at MEAD frames and
// has no knowledge of the recovery schemes.
package orb

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mead/internal/cdr"
	"mead/internal/giop"
	"mead/internal/telemetry"
)

// connReadBufSize sizes the buffered reader over each connection; one fill
// typically captures several small GIOP frames, collapsing the
// header-then-body read pairs into a single syscall. Sized to swallow a
// whole pipelined burst (64 in-flight small requests) in one fill.
const connReadBufSize = 16 << 10

// Servant is a CORBA object implementation: it receives an operation name
// with decoded-argument access and writes its result.
//
// Returning a *giop.SystemException maps to a SYSTEM_EXCEPTION reply;
// a *UserException maps to USER_EXCEPTION; any other error maps to a
// CORBA INTERNAL system exception.
type Servant interface {
	Invoke(op string, args *cdr.Decoder, result *cdr.Encoder) error
}

// ServantFunc adapts a function to the Servant interface.
type ServantFunc func(op string, args *cdr.Decoder, result *cdr.Encoder) error

// Invoke calls f.
func (f ServantFunc) Invoke(op string, args *cdr.Decoder, result *cdr.Encoder) error {
	return f(op, args, result)
}

// UserException is a CORBA user exception raised by a servant and surfaced
// to the client application.
type UserException struct {
	RepoID string
}

func (e *UserException) Error() string {
	return fmt.Sprintf("CORBA user exception %s", e.RepoID)
}

// ConnWrapper interposes on an accepted or dialed connection; it is the
// attachment point for MEAD interceptors.
type ConnWrapper func(net.Conn) net.Conn

// ErrServerClosed reports use of a closed server ORB.
var ErrServerClosed = errors.New("orb: server closed")

// ServerOption configures a ServerORB.
type ServerOption interface{ applyServer(*ServerORB) }

type serverOptionFunc func(*ServerORB)

func (f serverOptionFunc) applyServer(s *ServerORB) { f(s) }

// WithServerConnWrapper interposes w on every accepted connection.
func WithServerConnWrapper(w ConnWrapper) ServerOption {
	return serverOptionFunc(func(s *ServerORB) { s.wrap = w })
}

// WithServerWireWrapper interposes w on every accepted connection *beneath*
// the interceptor wrapper: w sees the raw socket bytes, and the conn wrapper
// (the MEAD interceptor) is layered on top of w's result. The chaos harness
// attaches wire-fault injection here so faults hit below the interceptor
// boundary, exactly where a real network fault would.
func WithServerWireWrapper(w ConnWrapper) ServerOption {
	return serverOptionFunc(func(s *ServerORB) { s.wireWrap = w })
}

// WithServerByteOrder sets the byte order of replies (default big-endian).
func WithServerByteOrder(order cdr.ByteOrder) ServerOption {
	return serverOptionFunc(func(s *ServerORB) { s.order = order })
}

// WithServerMaxBodyBytes enables GIOP 1.1 fragmentation of replies whose
// bodies exceed n bytes (0 disables; the default).
func WithServerMaxBodyBytes(n int) ServerOption {
	return serverOptionFunc(func(s *ServerORB) { s.maxBody = n })
}

// WithServerTelemetry attaches the process telemetry: the ORB records a
// dispatch count and servant-latency histogram per executed request. The
// recording path adds no allocations; a nil Telemetry is equivalent to not
// setting the option.
func WithServerTelemetry(t *telemetry.Telemetry) ServerOption {
	return serverOptionFunc(func(s *ServerORB) { s.tel = t })
}

// WithServerAcceptLoops runs n concurrent accept goroutines on the
// listener (n < 1 means 1, the default). A single accept loop serializes
// connection admission; under striped client pools a reconnection storm
// (every client redialing N stripes after a recovery event) makes that
// serialization visible, so the replica plumbing shards accepts per core.
func WithServerAcceptLoops(n int) ServerOption {
	return serverOptionFunc(func(s *ServerORB) { s.acceptLoops = n })
}

// WithConnClosedHook registers a callback invoked (with the remaining
// active-connection count) whenever a client connection closes. The
// proactive fault-tolerance manager uses it to detect quiescence before
// rejuvenating a faulty replica.
func WithConnClosedHook(hook func(active int)) ServerOption {
	return serverOptionFunc(func(s *ServerORB) { s.onConnClosed = hook })
}

// ServerORB is the server-side ORB: listener plus object adapter.
type ServerORB struct {
	order        cdr.ByteOrder
	wrap         ConnWrapper
	wireWrap     ConnWrapper
	onConnClosed func(active int)
	maxBody      int
	acceptLoops  int
	served       atomic.Uint64
	tel          *telemetry.Telemetry // nil-safe; see WithServerTelemetry

	ln net.Listener
	wg sync.WaitGroup

	mu       sync.Mutex
	servants map[string]Servant
	conns    map[net.Conn]struct{}
	closed   bool
}

// NewServer returns a server ORB.
func NewServer(opts ...ServerOption) *ServerORB {
	s := &ServerORB{
		order:    cdr.BigEndian,
		servants: make(map[string]Servant),
		conns:    make(map[net.Conn]struct{}),
	}
	for _, o := range opts {
		o.applyServer(s)
	}
	return s
}

// Register binds a servant to a persistent object key. It may be called
// before or after Listen.
func (s *ServerORB) Register(objectKey []byte, servant Servant) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.servants[string(objectKey)] = servant
}

// Listen binds the ORB's endpoint (e.g. "127.0.0.1:0") without accepting.
func (s *ServerORB) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("orb: listen %s: %w", addr, err)
	}
	s.ln = ln
	return nil
}

// Addr returns the bound endpoint.
func (s *ServerORB) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// IORFor builds the IOR clients use to reach the object registered under
// objectKey on this ORB instance.
func (s *ServerORB) IORFor(typeID string, objectKey []byte) (giop.IOR, error) {
	addr := s.Addr()
	if addr == "" {
		return giop.IOR{}, errors.New("orb: IORFor before Listen")
	}
	return giop.NewIORForAddr(typeID, addr, objectKey)
}

// Start begins accepting connections. Listen must have been called.
func (s *ServerORB) Start() error {
	if s.ln == nil {
		return errors.New("orb: Start before Listen")
	}
	n := s.acceptLoops
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.acceptLoop()
		}()
	}
	return nil
}

// Served reports how many requests this ORB's servants have executed.
// At-most-once checks compare it against client-side success counts: a
// served count above the successes bounds the re-executions (COMPLETED_MAYBE
// retransmissions), and equality proves exactly-once for the run.
func (s *ServerORB) Served() uint64 { return s.served.Load() }

// ActiveConnections returns the number of live client connections.
func (s *ServerORB) ActiveConnections() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Crash abruptly terminates the ORB: the listener and every live connection
// are torn down immediately, exactly what a remote peer observes of a
// process crash. Used by the fault injector.
func (s *ServerORB) Crash() {
	s.shutdown()
}

// Close gracefully shuts the ORB down. With the recovery schemes having
// migrated all clients first, there is no observable difference from Crash
// at the transport level; the distinction is that Close is invoked at
// quiescence.
func (s *ServerORB) Close() error {
	s.shutdown()
	return nil
}

func (s *ServerORB) shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if s.ln != nil {
		_ = s.ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
}

func (s *ServerORB) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		if s.wireWrap != nil {
			conn = s.wireWrap(conn)
		}
		if s.wrap != nil {
			conn = s.wrap(conn)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *ServerORB) serveConn(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		active := len(s.conns)
		hook := s.onConnClosed
		s.mu.Unlock()
		if hook != nil {
			hook(active)
		}
	}()
	// Requests are decoded on this goroutine but dispatched concurrently,
	// so one slow servant no longer head-of-line-blocks the connection.
	// Replies are serialized through cw: GIOP allows interleaved replies
	// in any order (clients demultiplex by request id), but each reply's
	// frames must stay contiguous on the wire.
	//
	// Message bodies come from the pooled-buffer read path; the dispatch
	// goroutine owns each request's buffer (the decoded header and argument
	// stream borrow it) and releases it after the reply is written.
	rd := bufio.NewReaderSize(conn, connReadBufSize)
	cw := newConnWriter(conn, s.order, false)
	for {
		h, mb, err := giop.ReadMessagePooled(rd)
		if err != nil {
			return
		}
		switch h.Type {
		case giop.MsgRequest:
			hdr, args, err := giop.DecodeRequest(h.Order, mb.Bytes())
			if err != nil {
				mb.Release()
				_ = cw.writeMessage(giop.EncodeMessage(s.order, giop.MsgMessageError, nil), 0)
				return
			}
			// serveConn's own wg slot keeps the counter above zero, so this
			// Add cannot race a Wait that already returned.
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.dispatchRequest(conn, cw, hdr, args, mb)
			}()
		case giop.MsgBatch:
			// A client-side burst coalesced into one frame: decode each
			// sub-request and dispatch it exactly as if it had arrived
			// alone. Every dispatch retains mb (all sub-bodies alias it);
			// the reader's own reference drops after the walk.
			err := giop.ForEachInBatch(mb.Bytes(), func(sh giop.Header, sbody []byte) error {
				switch sh.Type {
				case giop.MsgRequest:
					hdr, args, err := giop.DecodeRequest(sh.Order, sbody)
					if err != nil {
						return err
					}
					mb.Retain()
					s.wg.Add(1)
					go func() {
						defer s.wg.Done()
						s.dispatchRequest(conn, cw, hdr, args, mb)
					}()
					return nil
				case giop.MsgLocateRequest:
					return s.handleLocate(cw, sh, sbody)
				case giop.MsgCancelRequest:
					return nil
				default:
					return fmt.Errorf("orb: %v message inside batch frame", sh.Type)
				}
			})
			mb.Release()
			if err != nil {
				_ = cw.writeMessage(giop.EncodeMessage(s.order, giop.MsgMessageError, nil), 0)
				return
			}
		case giop.MsgCloseConnection:
			mb.Release()
			return
		case giop.MsgLocateRequest:
			err := s.handleLocate(cw, h, mb.Bytes())
			mb.Release()
			if err != nil {
				return
			}
		case giop.MsgCancelRequest:
			// Accepted and ignored, as the specification permits: the reply
			// (if any) for the cancelled request is simply still delivered.
			mb.Release()
		default:
			mb.Release()
			_ = cw.writeMessage(giop.EncodeMessage(s.order, giop.MsgMessageError, nil), 0)
			return
		}
	}
}

// handleLocate answers GIOP LocateRequests: OBJECT_HERE for keys this
// adapter serves, UNKNOWN_OBJECT otherwise.
func (s *ServerORB) handleLocate(cw *connWriter, h giop.Header, body []byte) error {
	hdr, err := giop.DecodeLocateRequest(h.Order, body)
	if err != nil {
		return cw.writeMessage(giop.EncodeMessage(s.order, giop.MsgMessageError, nil), 0)
	}
	s.mu.Lock()
	_, known := s.servants[string(hdr.ObjectKey)]
	s.mu.Unlock()
	status := giop.LocateUnknownObject
	if known {
		status = giop.LocateObjectHere
	}
	reply := giop.EncodeLocateReply(s.order,
		giop.LocateReplyHeader{RequestID: hdr.RequestID, Status: status}, nil)
	if err := cw.writeMessage(reply, s.maxBody); err != nil {
		return fmt.Errorf("orb: write locate reply: %w", err)
	}
	return nil
}

// dispatchRequest invokes the servant for one decoded Request and writes its
// reply (through the connection's batching writer). It runs on a per-request
// goroutine and owns mb, the pooled buffer backing hdr and args; both die
// when it returns. A write failure tears the connection down, which unblocks
// the reader.
func (s *ServerORB) dispatchRequest(conn net.Conn, cw *connWriter, hdr giop.RequestHeader, args *cdr.Decoder, mb *giop.MsgBuf) {
	defer mb.Release()
	defer args.Release()
	s.mu.Lock()
	servant := s.servants[string(hdr.ObjectKey)]
	s.mu.Unlock()

	var (
		status giop.ReplyStatus
		sysEx  *giop.SystemException
		userEx *UserException
		result = cdr.GetEncoder(s.order)
	)
	defer result.Release()
	switch {
	case servant == nil:
		status = giop.ReplySystemException
		sysEx = &giop.SystemException{
			RepoID:    giop.RepoObjectNotExist,
			Completed: giop.CompletedNo,
		}
	default:
		s.served.Add(1)
		began := time.Now()
		err := servant.Invoke(hdr.Operation, args, result)
		s.tel.Dispatched(time.Since(began))
		switch {
		case err == nil:
			status = giop.ReplyNoException
		case errors.As(err, &sysEx):
			status = giop.ReplySystemException
		case errors.As(err, &userEx):
			status = giop.ReplyUserException
		default:
			status = giop.ReplySystemException
			sysEx = &giop.SystemException{RepoID: giop.RepoInternal, Completed: giop.CompletedYes}
		}
	}
	if !hdr.ResponseExpected {
		return
	}

	// The reply stays in its pooled encoder: cw owns it from here and
	// releases it after the vectored write, skipping the exact-size copy
	// EncodeReply would make.
	reply := giop.EncodeReplyPooled(s.order, giop.ReplyHeader{RequestID: hdr.RequestID, Status: status},
		func(e *cdr.Encoder) {
			switch status {
			case giop.ReplyNoException:
				e.WriteRaw(result.Bytes())
			case giop.ReplySystemException:
				giop.EncodeSystemException(e, sysEx)
			case giop.ReplyUserException:
				e.WriteString(userEx.RepoID)
			}
		})
	if err := cw.writeEncoder(reply, s.maxBody); err != nil {
		_ = conn.Close()
	}
}
