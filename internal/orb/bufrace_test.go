package orb

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"mead/internal/cdr"
)

// TestPooledBufferReleaseUnderPipelining hammers the pooled receive path
// from many concurrent callers through one multiplexed connection: each
// caller echoes a distinctive payload and verifies it byte-for-byte. A
// buffer released while another request still reads it (double release,
// premature recycle, borrow outliving its MsgBuf) shows up here as payload
// corruption — and as a data race under `go test -race`.
func TestPooledBufferReleaseUnderPipelining(t *testing.T) {
	const callers = 64
	const perCaller = 25

	s, _ := startServer(t)
	ior, err := s.IORFor(typeID, clockKey)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(WithConnectionPool())
	defer c.Close()
	o := c.Object(ior)

	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Vary payload size across callers so requests land in
			// different buffer size classes (including fragments of the
			// same class being recycled between goroutines).
			pad := bytes.Repeat([]byte{byte('a' + i%26)}, 16*(i%32))
			for k := 0; k < perCaller; k++ {
				want := fmt.Sprintf("caller-%d-call-%d-%s", i, k, pad)
				var got string
				err := o.Invoke("echo", func(e *cdr.Encoder) {
					e.WriteString(want)
				}, func(d *cdr.Decoder) error {
					v, err := d.ReadString()
					got = v
					return err
				})
				if err != nil {
					errs[i] = fmt.Errorf("call %d: %w", k, err)
					return
				}
				if got != want {
					errs[i] = fmt.Errorf("call %d: payload corrupted: got %d bytes, want %d", k, len(got), len(want))
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("caller %d: %v", i, err)
		}
	}
}

// TestSerializedBufferReuseAcrossInvocations covers the private-connection
// path: one reference, many sequential invocations with differing payload
// sizes, all recycling through the same pooled buffers.
func TestSerializedBufferReuseAcrossInvocations(t *testing.T) {
	s, _ := startServer(t)
	o := objectFor(t, s)
	for k := 0; k < 200; k++ {
		want := fmt.Sprintf("seq-%d-%s", k, bytes.Repeat([]byte{byte('A' + k%26)}, 7*(k%40)))
		var got string
		err := o.Invoke("echo", func(e *cdr.Encoder) {
			e.WriteString(want)
		}, func(d *cdr.Decoder) error {
			v, err := d.ReadString()
			got = v
			return err
		})
		if err != nil {
			t.Fatalf("call %d: %v", k, err)
		}
		if got != want {
			t.Fatalf("call %d: payload corrupted", k)
		}
	}
}
