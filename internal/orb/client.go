package orb

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"mead/internal/cdr"
	"mead/internal/giop"
	"mead/internal/telemetry"
)

// ClientOption configures a ClientORB.
type ClientOption interface{ applyClient(*ClientORB) }

type clientOptionFunc func(*ClientORB)

func (f clientOptionFunc) applyClient(c *ClientORB) { f(c) }

// WithClientConnWrapper interposes w on every dialed connection (the
// client-side MEAD interceptor).
func WithClientConnWrapper(w ConnWrapper) ClientOption {
	return clientOptionFunc(func(c *ClientORB) { c.wrap = w })
}

// DialFunc opens the transport to a replica. The experiment harness swaps
// in netfault's chaos dialer here; the default is net.DialTimeout.
type DialFunc func(network, addr string, timeout time.Duration) (net.Conn, error)

// WithDialer replaces the transport dialer for every connection this ORB
// opens (private and pooled).
func WithDialer(d DialFunc) ClientOption {
	return clientOptionFunc(func(c *ClientORB) { c.dial = d })
}

// WithTelemetry attaches the process telemetry: the ORB records wire-level
// counters, round-trip histograms, and recovery-trace events (request sent,
// retransmit, forward taken, stale reply) on every invocation path. The
// recording paths add no allocations; a nil Telemetry is equivalent to not
// setting the option.
func WithTelemetry(t *telemetry.Telemetry) ClientOption {
	return clientOptionFunc(func(c *ClientORB) { c.tel = t })
}

// WithClientByteOrder sets the byte order of requests (default big-endian).
func WithClientByteOrder(order cdr.ByteOrder) ClientOption {
	return clientOptionFunc(func(c *ClientORB) { c.order = order })
}

// WithDialTimeout sets the connect timeout (default 5s).
func WithDialTimeout(d time.Duration) ClientOption {
	return clientOptionFunc(func(c *ClientORB) { c.dialTimeout = d })
}

// WithMaxForwards bounds how many LOCATION_FORWARD / NEEDS_ADDRESSING_MODE
// retransmissions one invocation may perform (default 8).
func WithMaxForwards(n int) ClientOption {
	return clientOptionFunc(func(c *ClientORB) { c.maxForwards = n })
}

// WithClientMaxBodyBytes enables GIOP 1.1 fragmentation of requests whose
// bodies exceed n bytes (0 disables; the default).
func WithClientMaxBodyBytes(n int) ClientOption {
	return clientOptionFunc(func(c *ClientORB) { c.maxBody = n })
}

// WithConnectionPool switches every ObjectRef of this ORB onto a shared
// multiplexed transport: one connection per IIOP host:port, with concurrent
// in-flight requests demultiplexed by request id. Invocations on one
// ObjectRef are then no longer serialized against each other.
//
// The pooled transport is incompatible with client-side interceptor schemes
// that assume a single in-flight request per connection (NEEDS_ADDRESSING's
// fabricated replies, the MEAD piggyback swap); callers wire it up only for
// schemes without that assumption.
func WithConnectionPool() ClientOption {
	return clientOptionFunc(func(c *ClientORB) { c.poolWanted = true })
}

// WithPoolStripes widens the shared pool to n multiplexed connections per
// IIOP host:port (implies WithConnectionPool; n < 1 means 1, the default).
// Each stripe has its own reader goroutine and vectored-write flush chain;
// requests are placed by power-of-two-choices on the per-stripe in-flight
// count, so concurrent callers spread across stripes and throughput scales
// with GOMAXPROCS instead of serializing behind one demultiplexer.
func WithPoolStripes(n int) ClientOption {
	return clientOptionFunc(func(c *ClientORB) {
		c.poolWanted = true
		c.poolStripes = n
	})
}

// WithRequestBatching lets the pooled transport coalesce a burst of
// concurrent requests into single giop.MsgBatch frames (one wire frame, one
// server-side header parse for the whole burst). Batch frames are a vendor
// extension of this implementation: enable it only against servers built
// from this codebase — replies are never batched, so the option changes the
// client→server direction only. See docs/PROTOCOL.md §10.
func WithRequestBatching() ClientOption {
	return clientOptionFunc(func(c *ClientORB) { c.batching = true })
}

// ClientORB is the client-side ORB.
type ClientORB struct {
	order       cdr.ByteOrder
	wrap        ConnWrapper
	dial        DialFunc
	dialTimeout time.Duration
	maxForwards int
	maxBody     int
	poolWanted  bool
	poolStripes int
	batching    bool
	pool        *connPool            // nil unless WithConnectionPool
	tel         *telemetry.Telemetry // nil-safe; see WithTelemetry
}

// NewClient returns a client ORB.
func NewClient(opts ...ClientOption) *ClientORB {
	c := &ClientORB{
		order:       cdr.BigEndian,
		dial:        net.DialTimeout,
		dialTimeout: 5 * time.Second,
		maxForwards: 8,
	}
	for _, o := range opts {
		o.applyClient(c)
	}
	// The pool is built after all options applied so stripe count and
	// batching take effect regardless of option order.
	if c.poolWanted {
		c.pool = newConnPool(c)
	}
	return c
}

// Close releases the ORB's shared resources (the connection pool, when
// enabled); in-flight pooled invocations observe COMM_FAILURE. References
// with private connections are closed individually via ObjectRef.Close.
func (c *ClientORB) Close() error {
	if c.pool != nil {
		c.pool.close()
	}
	return nil
}

// PooledConnections reports how many shared connections are currently live
// (0 when pooling is disabled). Diagnostics and tests use it to assert that
// many references share one transport.
func (c *ClientORB) PooledConnections() int {
	if c.pool == nil {
		return 0
	}
	return c.pool.activeConns()
}

// Stats counts the transparent recovery actions a reference performed;
// the experiment harness reads them to report retransmission overheads.
type Stats struct {
	Invocations     int
	Forwards        int // LOCATION_FORWARD retransmissions
	Retransmissions int // NEEDS_ADDRESSING_MODE retransmissions
}

// ObjectRef is a client-side reference to a (possibly replicated) CORBA
// object. With the default private connection, invocations on one ObjectRef
// are serialized, as with a single-threaded CORBA client; on an ORB built
// WithConnectionPool they proceed concurrently over the shared multiplexed
// transport.
type ObjectRef struct {
	orb *ClientORB

	mu     sync.Mutex
	ior    giop.IOR
	addr   string // cached ior.Addr() of the live conn, for telemetry labels
	conn   net.Conn
	rd     *bufio.Reader // buffers reads from conn
	nextID uint32
	stats  Stats
}

// Object materializes a reference from an IOR.
func (c *ClientORB) Object(ior giop.IOR) *ObjectRef {
	return &ObjectRef{orb: c, nextID: 1, ior: ior}
}

// IOR returns the reference's current IOR (it changes when the ORB follows
// a LOCATION_FORWARD).
func (o *ObjectRef) IOR() giop.IOR {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.ior
}

// Stats returns a snapshot of the reference's recovery counters.
func (o *ObjectRef) Stats() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}

// Redirect rebinds the reference to a new IOR, dropping any existing
// connection. Reactive client strategies call it after a failure.
func (o *ObjectRef) Redirect(ior giop.IOR) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.dropConnLocked()
	o.ior = ior
}

// Close releases the reference's connection.
func (o *ObjectRef) Close() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.dropConnLocked()
	return nil
}

func (o *ObjectRef) dropConnLocked() {
	if o.conn != nil {
		_ = o.conn.Close()
		o.conn = nil
		o.rd = nil
	}
}

// connectLocked establishes the transport to the reference's current IOR.
// Connection refusal maps to TRANSIENT: the reference may be stale (the
// paper's cached-reference failure mode).
func (o *ObjectRef) connectLocked() error {
	if o.conn != nil {
		return nil
	}
	addr, err := o.ior.Addr()
	if err != nil {
		return giop.Transient(1, giop.CompletedNo)
	}
	conn, err := o.orb.dial("tcp", addr, o.orb.dialTimeout)
	if err != nil {
		return giop.Transient(2, giop.CompletedNo)
	}
	if o.orb.wrap != nil {
		conn = o.orb.wrap(conn)
	}
	o.conn = conn
	o.addr = addr
	o.rd = bufio.NewReaderSize(conn, connReadBufSize)
	o.orb.tel.ConnOpened(addr)
	return nil
}

// Invoke performs one two-way CORBA invocation: marshal, send, await reply,
// and transparently handle LOCATION_FORWARD and NEEDS_ADDRESSING_MODE per
// the GIOP specification. Both retransmission paths are exactly the
// mechanics the paper's proactive schemes trigger.
func (o *ObjectRef) Invoke(op string, writeArgs func(*cdr.Encoder), readResult func(*cdr.Decoder) error) error {
	if o.orb.pool != nil {
		return o.invokePooled(op, writeArgs, readResult)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.stats.Invocations++

	for attempt := 0; attempt <= o.orb.maxForwards; attempt++ {
		if err := o.connectLocked(); err != nil {
			return err
		}
		prof, err := o.ior.IIOP()
		if err != nil {
			return fmt.Errorf("orb: reference has no IIOP profile: %w", err)
		}
		reqID := o.nextID
		o.nextID++
		msg := giop.EncodeRequest(o.orb.order, giop.RequestHeader{
			RequestID:        reqID,
			ResponseExpected: true,
			ObjectKey:        prof.ObjectKey,
			Operation:        op,
		}, writeArgs)
		sentAt := time.Now()
		if err := giop.WriteMessageFragmented(o.conn, msg, o.orb.maxBody); err != nil {
			o.dropConnLocked()
			return giop.CommFailure(10, giop.CompletedMaybe)
		}
		o.orb.tel.RequestSent(o.addr)

		// The reply header, status body, and the decoder d all borrow mb;
		// every exit from the switch below releases both before returning
		// (or before retransmitting). DecodeReply releases the decoder
		// itself on failure.
		var (
			rh giop.ReplyHeader
			d  *cdr.Decoder
			mb *giop.MsgBuf
		)
		for skips := 0; ; skips++ {
			hdr, b, err := o.readReplyLocked(reqID)
			if err != nil {
				o.dropConnLocked()
				return err
			}
			h, dec, err := giop.DecodeReply(hdr.Order, b.Bytes())
			if err != nil {
				b.Release()
				o.dropConnLocked()
				return fmt.Errorf("orb: corrupt reply: %w", err)
			}
			if h.RequestID != reqID {
				// A stale request id: the late reply to a request this
				// reference already retransmitted, or a wire-duplicated
				// frame. GIOP replies carry the id precisely so mismatched
				// ones can be discarded; bound the skips so a desynced
				// stream still surfaces an error.
				dec.Release()
				b.Release()
				o.orb.tel.StaleReply()
				if skips >= maxStaleReplies {
					o.dropConnLocked()
					return &giop.SystemException{RepoID: giop.RepoInternal, Minor: 20, Completed: giop.CompletedMaybe}
				}
				continue
			}
			rh, d, mb = h, dec, b
			break
		}
		o.orb.tel.ReplyReceived(time.Since(sentAt))

		switch rh.Status {
		case giop.ReplyNoException:
			var rerr error
			if readResult != nil {
				rerr = readResult(d)
			}
			d.Release()
			mb.Release()
			if rerr != nil {
				return fmt.Errorf("orb: decode result of %q: %w", op, rerr)
			}
			return nil
		case giop.ReplyUserException:
			repo, rerr := d.ReadString()
			d.Release()
			mb.Release()
			if rerr != nil {
				return fmt.Errorf("orb: corrupt user exception: %w", rerr)
			}
			return &UserException{RepoID: repo}
		case giop.ReplySystemException:
			se, rerr := giop.DecodeSystemException(d)
			d.Release()
			mb.Release()
			if rerr != nil {
				return fmt.Errorf("orb: corrupt system exception: %w", rerr)
			}
			return se
		case giop.ReplyLocationForward, giop.ReplyLocationForwardPerm:
			fwd, rerr := giop.DecodeIOR(d)
			d.Release()
			mb.Release()
			if rerr != nil {
				o.dropConnLocked()
				return fmt.Errorf("orb: corrupt LOCATION_FORWARD body: %w", rerr)
			}
			// "The client ORB, on receiving this message, transparently
			// retransmits the client request to the new replica without
			// notifying the client application."
			o.dropConnLocked()
			o.ior = fwd
			o.stats.Forwards++
			if tel := o.orb.tel; tel != nil {
				a, _ := fwd.Addr()
				tel.ForwardTaken(a)
			}
			continue
		case giop.ReplyNeedsAddressingMode:
			// "...causes the client-side ORB to retransmit its last request
			// over the new connection." The interceptor has already swapped
			// the underlying transport; we simply resend.
			d.Release()
			mb.Release()
			o.stats.Retransmissions++
			o.orb.tel.Retransmitted(o.addr)
			continue
		default:
			d.Release()
			mb.Release()
			o.dropConnLocked()
			return &giop.SystemException{RepoID: giop.RepoInternal, Minor: 21, Completed: giop.CompletedMaybe}
		}
	}
	o.dropConnLocked()
	return giop.CommFailure(11, giop.CompletedMaybe)
}

// InvokeOneWay sends a request without expecting a reply (a CORBA oneway
// operation). Delivery is best-effort, as the standard specifies.
func (o *ObjectRef) InvokeOneWay(op string, writeArgs func(*cdr.Encoder)) error {
	if o.orb.pool != nil {
		return o.oneWayPooled(op, writeArgs)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.stats.Invocations++
	if err := o.connectLocked(); err != nil {
		return err
	}
	prof, err := o.ior.IIOP()
	if err != nil {
		return fmt.Errorf("orb: reference has no IIOP profile: %w", err)
	}
	reqID := o.nextID
	o.nextID++
	msg := giop.EncodeRequest(o.orb.order, giop.RequestHeader{
		RequestID:        reqID,
		ResponseExpected: false,
		ObjectKey:        prof.ObjectKey,
		Operation:        op,
	}, writeArgs)
	if err := giop.WriteMessageFragmented(o.conn, msg, o.orb.maxBody); err != nil {
		o.dropConnLocked()
		return giop.CommFailure(14, giop.CompletedMaybe)
	}
	return nil
}

// Locate issues a GIOP LocateRequest for the reference's object. An
// OBJECT_FORWARD answer retargets the reference, mirroring the ORB's
// LOCATION_FORWARD handling.
func (o *ObjectRef) Locate() (giop.LocateStatus, error) {
	if o.orb.pool != nil {
		return o.locatePooled()
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if err := o.connectLocked(); err != nil {
		return 0, err
	}
	prof, err := o.ior.IIOP()
	if err != nil {
		return 0, fmt.Errorf("orb: reference has no IIOP profile: %w", err)
	}
	reqID := o.nextID
	o.nextID++
	msg := giop.EncodeLocateRequest(o.orb.order, giop.LocateRequestHeader{
		RequestID: reqID,
		ObjectKey: prof.ObjectKey,
	})
	if _, err := o.conn.Write(msg); err != nil {
		o.dropConnLocked()
		return 0, giop.CommFailure(15, giop.CompletedMaybe)
	}
	h, mb, err := giop.ReadMessagePooled(o.rd)
	if err != nil {
		o.dropConnLocked()
		return 0, giop.CommFailure(16, giop.CompletedMaybe)
	}
	if h.Type != giop.MsgLocateReply {
		mb.Release()
		o.dropConnLocked()
		return 0, &giop.SystemException{RepoID: giop.RepoInternal, Minor: 23, Completed: giop.CompletedMaybe}
	}
	hdr, fwd, err := giop.DecodeLocateReply(h.Order, mb.Bytes())
	mb.Release() // hdr and fwd are fully copied out of the body
	if err != nil {
		o.dropConnLocked()
		return 0, fmt.Errorf("orb: corrupt locate reply: %w", err)
	}
	if hdr.Status == giop.LocateObjectForward && fwd != nil {
		o.dropConnLocked()
		o.ior = *fwd
		o.stats.Forwards++
	}
	return hdr.Status, nil
}

// maxStaleReplies bounds how many mismatched-request-id replies one
// invocation will discard before declaring the stream desynced.
const maxStaleReplies = 32

// readReplyLocked reads messages until the Reply for reqID arrives. Read
// errors (EOF from a crashed server) surface as COMM_FAILURE, which takes
// "about 1.8 ms to register at the client" in the paper's reactive runs.
// The caller owns the returned pooled buffer.
func (o *ObjectRef) readReplyLocked(reqID uint32) (giop.Header, *giop.MsgBuf, error) {
	for {
		h, mb, err := giop.ReadMessagePooled(o.rd)
		if err != nil {
			return giop.Header{}, nil, giop.CommFailure(12, giop.CompletedMaybe)
		}
		switch h.Type {
		case giop.MsgReply:
			return h, mb, nil
		case giop.MsgCloseConnection:
			mb.Release()
			return giop.Header{}, nil, giop.CommFailure(13, giop.CompletedNo)
		default:
			// LocateReply/MessageError are unexpected on this path.
			mb.Release()
			return giop.Header{}, nil, &giop.SystemException{
				RepoID: giop.RepoInternal, Minor: 22, Completed: giop.CompletedMaybe,
			}
		}
	}
}
