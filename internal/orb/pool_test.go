package orb

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mead/internal/cdr"
	"mead/internal/giop"
)

func pooledObjectFor(t *testing.T, s *ServerORB) (*ClientORB, *ObjectRef) {
	t.Helper()
	ior, err := s.IORFor(typeID, clockKey)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(WithConnectionPool())
	t.Cleanup(func() { _ = c.Close() })
	return c, c.Object(ior)
}

// reverseStub accepts one connection, collects n echo requests, and answers
// them in REVERSE arrival order — legal under GIOP, where replies carry the
// request id and may be arbitrarily interleaved.
func reverseStub(t *testing.T, n int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		type req struct {
			id  uint32
			arg string
		}
		var reqs []req
		for len(reqs) < n {
			h, body, err := giop.ReadMessage(conn)
			if err != nil || h.Type != giop.MsgRequest {
				return
			}
			hdr, args, err := giop.DecodeRequest(h.Order, body)
			if err != nil {
				return
			}
			arg, err := args.ReadString()
			if err != nil {
				return
			}
			reqs = append(reqs, req{id: hdr.RequestID, arg: arg})
		}
		for i := len(reqs) - 1; i >= 0; i-- {
			r := reqs[i]
			reply := giop.EncodeReply(cdr.BigEndian,
				giop.ReplyHeader{RequestID: r.id, Status: giop.ReplyNoException},
				func(e *cdr.Encoder) { e.WriteString(r.arg) })
			if _, err := conn.Write(reply); err != nil {
				return
			}
		}
		// Hold the connection open until the test tears the listener down.
		_, _, _ = giop.ReadMessage(conn)
	}()
	return ln.Addr().String()
}

// TestPooledOutOfOrderReplies drives n concurrent callers through one shared
// connection against a server that replies strictly in reverse order; every
// caller must still receive the reply matching its own request id.
func TestPooledOutOfOrderReplies(t *testing.T) {
	const n = 8
	addr := reverseStub(t, n)
	ior, err := giop.NewIORForAddr(typeID, addr, clockKey)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(WithConnectionPool())
	defer c.Close()
	o := c.Object(ior)

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("caller-%d", i)
			var got string
			err := o.Invoke("echo", func(e *cdr.Encoder) {
				e.WriteString(want)
			}, func(d *cdr.Decoder) error {
				v, err := d.ReadString()
				got = v
				return err
			})
			if err != nil {
				errs[i] = err
				return
			}
			if got != want {
				errs[i] = fmt.Errorf("caller %d got %q, want %q", i, got, want)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestPooledConcurrentStress hammers one shared connection from many
// goroutines (run under -race); each invocation checks its own arithmetic
// result so cross-wired replies would be detected.
func TestPooledConcurrentStress(t *testing.T) {
	s, _ := startServer(t)
	c, o := pooledObjectFor(t, s)

	const goroutines = 16
	const perG = 50
	var wg sync.WaitGroup
	var failures atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				a, b := uint64(g*1000+i), uint64(i*7+1)
				var sum uint64
				err := o.Invoke("sum64", func(e *cdr.Encoder) {
					e.WriteULongLong(a)
					e.WriteULongLong(b)
				}, func(d *cdr.Decoder) error {
					v, err := d.ReadULongLong()
					sum = v
					return err
				})
				if err != nil || sum != a+b {
					failures.Add(1)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d goroutines failed", n)
	}
	if got := c.PooledConnections(); got != 1 {
		t.Fatalf("pooled connections = %d, want 1", got)
	}
}

// TestPooledSharedConnection asserts that many ObjectRefs to the same
// replica share one TCP connection.
func TestPooledSharedConnection(t *testing.T) {
	s, _ := startServer(t)
	ior, err := s.IORFor(typeID, clockKey)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(WithConnectionPool())
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		o := c.Object(ior)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := invokeTime(o); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := s.ActiveConnections(); got != 1 {
		t.Fatalf("server sees %d connections, want 1", got)
	}
	if got := c.PooledConnections(); got != 1 {
		t.Fatalf("client pools %d connections, want 1", got)
	}
}

// TestPooledLocationForward verifies the pooled retransmission path: a stub
// answers LOCATION_FORWARD pointing at the real server, and the invocation
// transparently lands there.
func TestPooledLocationForward(t *testing.T) {
	s, _ := startServer(t)
	realIOR, err := s.IORFor(typeID, clockKey)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					h, body, err := giop.ReadMessage(conn)
					if err != nil || h.Type != giop.MsgRequest {
						return
					}
					hdr, _, err := giop.DecodeRequest(h.Order, body)
					if err != nil {
						return
					}
					reply := giop.EncodeReply(cdr.BigEndian,
						giop.ReplyHeader{RequestID: hdr.RequestID, Status: giop.ReplyLocationForward},
						func(e *cdr.Encoder) { giop.EncodeIOR(e, realIOR) })
					if _, err := conn.Write(reply); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	staleIOR, err := giop.NewIORForAddr(typeID, ln.Addr().String(), clockKey)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(WithConnectionPool())
	defer c.Close()
	o := c.Object(staleIOR)
	if _, err := invokeTime(o); err != nil {
		t.Fatal(err)
	}
	if st := o.Stats(); st.Forwards != 1 {
		t.Fatalf("forwards = %d, want 1", st.Forwards)
	}
	// The reference is now rebound: later invocations go straight to the
	// real replica over the (second) pooled connection.
	if _, err := invokeTime(o); err != nil {
		t.Fatal(err)
	}
	if st := o.Stats(); st.Forwards != 1 {
		t.Fatalf("forwards after rebind = %d, want 1", st.Forwards)
	}
}

// TestPooledFailAllInFlight kills the server while several requests are in
// flight on the shared connection; every caller must observe COMM_FAILURE
// promptly instead of hanging.
func TestPooledFailAllInFlight(t *testing.T) {
	const n = 4
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Swallow n requests without replying, then drop the connection.
		for i := 0; i < n; i++ {
			if _, _, err := giop.ReadMessage(conn); err != nil {
				break
			}
		}
		_ = conn.Close()
	}()

	ior, err := giop.NewIORForAddr(typeID, ln.Addr().String(), clockKey)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(WithConnectionPool())
	defer c.Close()
	o := c.Object(ior)

	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := invokeTime(o)
			done <- err
		}()
	}
	deadline := time.After(5 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case err := <-done:
			var se *giop.SystemException
			if !errors.As(err, &se) || se.RepoID != giop.RepoCommFailure {
				t.Fatalf("caller error = %v, want COMM_FAILURE", err)
			}
		case <-deadline:
			t.Fatal("in-flight callers still blocked after connection death")
		}
	}
	if got := c.PooledConnections(); got != 0 {
		t.Fatalf("dead connection still pooled (%d)", got)
	}
}

// TestPooledLocate exercises LocateRequest demultiplexing on the shared
// transport.
func TestPooledLocate(t *testing.T) {
	s, _ := startServer(t)
	_, o := pooledObjectFor(t, s)
	status, err := o.Locate()
	if err != nil {
		t.Fatal(err)
	}
	if status != giop.LocateObjectHere {
		t.Fatalf("status = %v, want OBJECT_HERE", status)
	}
}

// TestPooledClientClosed asserts that invocations after ClientORB.Close fail
// fast with a typed error.
func TestPooledClientClosed(t *testing.T) {
	s, _ := startServer(t)
	c, o := pooledObjectFor(t, s)
	if _, err := invokeTime(o); err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	if _, err := invokeTime(o); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("err = %v, want ErrClientClosed", err)
	}
}
