package orb

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mead/internal/cdr"
	"mead/internal/giop"
)

// ErrClientClosed reports use of a closed client ORB's connection pool.
var ErrClientClosed = errors.New("orb: client closed")

// connPool shares multiplexed connections between every ObjectRef of one
// ClientORB, keyed by IIOP "host:port". GIOP permits any number of
// outstanding requests per connection — replies carry the request id and may
// arrive in any order — so one TCP connection per replica suffices for an
// arbitrary number of concurrent invocations.
//
// The pool is striped: each address owns a fixed slice of `stripes`
// connection slots (default 1, see WithPoolStripes). One connection means
// one reader goroutine and one writer flush chain; striping multiplies
// those so throughput scales with GOMAXPROCS instead of serializing every
// caller behind a single demultiplexer.
type connPool struct {
	orb     *ClientORB
	stripes int

	mu     sync.Mutex
	conns  map[string][]*muxConn
	rr     uint64 // round-robin cursor for first-touch stripe placement
	closed bool
}

func newConnPool(orb *ClientORB) *connPool {
	n := orb.poolStripes
	if n < 1 {
		n = 1
	}
	return &connPool{orb: orb, stripes: n, conns: make(map[string][]*muxConn)}
}

// get returns a live multiplexed connection to addr, dialing one if needed.
// Concurrent callers for the same stripe share a single dial.
func (p *connPool) get(addr string) (*muxConn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClientClosed
	}
	ss := p.conns[addr]
	if ss == nil {
		ss = make([]*muxConn, p.stripes)
		p.conns[addr] = ss
	}
	idx := 0
	if p.stripes > 1 {
		idx = p.placeLocked(ss)
	}
	mc := ss[idx]
	if mc == nil {
		mc = &muxConn{pool: p, addr: addr, slot: idx, pending: make(map[uint32]chan muxReply), nextID: 1}
		ss[idx] = mc
	}
	p.mu.Unlock()

	mc.dialOnce.Do(mc.dial)
	if mc.dialErr != nil {
		p.remove(mc)
		return nil, mc.dialErr
	}
	return mc, nil
}

// placeLocked picks a stripe for the next request. Unclaimed slots are
// filled round-robin first, so a concurrent burst deterministically brings
// every stripe up; once all slots are live, placement is power-of-two-
// choices on the per-stripe in-flight count, which keeps load within a
// constant factor of balanced without any global coordination.
func (p *connPool) placeLocked(ss []*muxConn) int {
	start := int(p.rr % uint64(len(ss)))
	p.rr++
	for k := 0; k < len(ss); k++ {
		if j := (start + k) % len(ss); ss[j] == nil {
			return j
		}
	}
	i := rand.IntN(len(ss))
	j := rand.IntN(len(ss))
	if ss[j].inflight.Load() < ss[i].inflight.Load() {
		i = j
	}
	return i
}

// remove unregisters mc so the next get() landing on its stripe redials.
// Only mc's own slot is cleared: the address's other stripes keep carrying
// traffic, so one dead connection settles only its own in-flight requests.
func (p *connPool) remove(mc *muxConn) {
	p.mu.Lock()
	if ss := p.conns[mc.addr]; mc.slot < len(ss) && ss[mc.slot] == mc {
		ss[mc.slot] = nil
	}
	p.mu.Unlock()
}

// close tears down every pooled connection; in-flight requests observe
// COMM_FAILURE.
func (p *connPool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	var conns []*muxConn
	for _, ss := range p.conns {
		for _, mc := range ss {
			if mc != nil {
				conns = append(conns, mc)
			}
		}
	}
	p.mu.Unlock()
	for _, mc := range conns {
		mc.fail(giop.CommFailure(17, giop.CompletedMaybe))
	}
}

// activeConns reports how many pooled connections are currently live
// (test/diagnostic hook).
func (p *connPool) activeConns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, ss := range p.conns {
		for _, mc := range ss {
			if mc != nil {
				n++
			}
		}
	}
	return n
}

// muxReply is one demultiplexed answer (Reply or LocateReply) delivered to
// the caller that issued the matching request id. The receiving caller takes
// ownership of mb (the pooled buffer holding the message body) and must
// Release it.
type muxReply struct {
	hdr giop.Header
	mb  *giop.MsgBuf
	err error
}

// muxConn is one shared connection with a demultiplexing reader goroutine.
// Writes are serialized by writeMu (each request's frames must stay
// contiguous); reads happen only on the readLoop goroutine, which routes
// each reply to the pending channel registered under its request id. This
// split keeps the interceptor Conn's read-side and write-side state each on
// a single goroutine.
type muxConn struct {
	pool *connPool
	addr string
	slot int // stripe index within the pool's per-address slice

	dialOnce sync.Once
	dialErr  error
	conn     net.Conn
	cw       *connWriter // serializes and batches frame writes

	// inflight counts requests awaiting replies on this stripe; the pool's
	// power-of-two-choices placement reads it lock-free.
	inflight atomic.Int64

	mu      sync.Mutex
	nextID  uint32
	pending map[uint32]chan muxReply
	closed  bool
	err     error // terminal error delivered to late arrivals
}

// dial establishes the transport (with the ORB's interceptor wrapper, as on
// the private-connection path) and starts the demultiplexing reader.
// Connection refusal maps to TRANSIENT: the pooled address may be stale (the
// paper's cached-reference failure mode).
func (m *muxConn) dial() {
	conn, err := m.pool.orb.dial("tcp", m.addr, m.pool.orb.dialTimeout)
	if err != nil {
		m.dialErr = giop.Transient(2, giop.CompletedNo)
		return
	}
	if m.pool.orb.wrap != nil {
		conn = m.pool.orb.wrap(conn)
	}
	m.conn = conn
	m.cw = newConnWriter(conn, m.pool.orb.order, m.pool.orb.batching)
	m.pool.orb.tel.ConnOpened(m.addr)
	go m.readLoop()
}

// roundTrip allocates a request id, renders the message into a pooled
// encoder via build, hands it to the vectored writer, and blocks until the
// demultiplexer delivers the matching reply or the connection dies. Any
// number of callers may be in roundTrip concurrently.
func (m *muxConn) roundTrip(build func(reqID uint32) *cdr.Encoder) (giop.Header, *giop.MsgBuf, error) {
	m.mu.Lock()
	if m.closed {
		err := m.err
		m.mu.Unlock()
		return giop.Header{}, nil, err
	}
	id := m.nextID
	m.nextID++
	ch := make(chan muxReply, 1)
	m.pending[id] = ch
	m.mu.Unlock()

	m.inflight.Add(1)
	if err := m.cw.writeEncoder(build(id), m.pool.orb.maxBody); err != nil {
		// fail() settles every pending request, including ours.
		m.fail(giop.CommFailure(10, giop.CompletedMaybe))
	}
	r := <-ch
	m.inflight.Add(-1)
	return r.hdr, r.mb, r.err
}

// send writes a request that expects no reply (oneway). The id is still
// allocated from the shared counter so it cannot collide with two-way
// requests in flight.
func (m *muxConn) send(build func(reqID uint32) *cdr.Encoder) error {
	m.mu.Lock()
	if m.closed {
		err := m.err
		m.mu.Unlock()
		return err
	}
	id := m.nextID
	m.nextID++
	m.mu.Unlock()

	if err := m.cw.writeEncoder(build(id), m.pool.orb.maxBody); err != nil {
		m.fail(giop.CommFailure(14, giop.CompletedMaybe))
		return giop.CommFailure(14, giop.CompletedMaybe)
	}
	return nil
}

// readLoop is the per-connection demultiplexer: it reads logical GIOP
// messages (reassembling fragments) and routes Reply/LocateReply messages to
// the caller that issued the request id. Any stream-level failure settles
// every in-flight request with COMM_FAILURE — the reactive schemes' recovery
// logic then takes over, exactly as on the serialized path.
func (m *muxConn) readLoop() {
	rd := bufio.NewReaderSize(m.conn, connReadBufSize)
	for {
		h, mb, err := giop.ReadMessagePooled(rd)
		if err != nil {
			m.fail(giop.CommFailure(12, giop.CompletedMaybe))
			return
		}
		switch h.Type {
		case giop.MsgReply:
			id, err := giop.ReplyIDOf(h.Order, mb.Bytes())
			if err != nil {
				mb.Release()
				m.fail(&giop.SystemException{RepoID: giop.RepoInternal, Minor: 20, Completed: giop.CompletedMaybe})
				return
			}
			m.deliver(id, muxReply{hdr: h, mb: mb})
		case giop.MsgLocateReply:
			d := cdr.GetDecoder(mb.Bytes(), h.Order)
			id, err := d.ReadULong()
			d.Release()
			if err != nil {
				mb.Release()
				m.fail(&giop.SystemException{RepoID: giop.RepoInternal, Minor: 20, Completed: giop.CompletedMaybe})
				return
			}
			m.deliver(id, muxReply{hdr: h, mb: mb})
		case giop.MsgCloseConnection:
			mb.Release()
			m.fail(giop.CommFailure(13, giop.CompletedNo))
			return
		default:
			// MessageError (or anything else) means the peer rejected our
			// stream; nothing sensible can follow.
			mb.Release()
			m.fail(&giop.SystemException{RepoID: giop.RepoInternal, Minor: 22, Completed: giop.CompletedMaybe})
			return
		}
	}
}

// deliver hands the reply to the waiting caller, if any. Replies to unknown
// ids (e.g. a request that already failed) are dropped — and their pooled
// buffer recycled here, since no caller will ever Release it.
func (m *muxConn) deliver(id uint32, r muxReply) {
	m.mu.Lock()
	ch := m.pending[id]
	delete(m.pending, id)
	m.mu.Unlock()
	if ch != nil {
		ch <- r
		return
	}
	m.pool.orb.tel.StaleReply()
	r.mb.Release()
}

// invokePooled is Invoke over the shared multiplexed transport. It holds no
// lock across the network round trip, so any number of goroutines may invoke
// through the same ObjectRef concurrently. The LOCATION_FORWARD /
// NEEDS_ADDRESSING_MODE retransmission loop mirrors the serialized path,
// except a redirect retargets only this reference's IOR — the shared
// connection stays up for other references still using it.
func (o *ObjectRef) invokePooled(op string, writeArgs func(*cdr.Encoder), readResult func(*cdr.Decoder) error) error {
	o.mu.Lock()
	o.stats.Invocations++
	ior := o.ior
	o.mu.Unlock()

	for attempt := 0; attempt <= o.orb.maxForwards; attempt++ {
		addr, err := ior.Addr()
		if err != nil {
			return giop.Transient(1, giop.CompletedNo)
		}
		prof, err := ior.IIOP()
		if err != nil {
			return fmt.Errorf("orb: reference has no IIOP profile: %w", err)
		}
		mc, err := o.orb.pool.get(addr)
		if err != nil {
			return err
		}
		sentAt := time.Now()
		o.orb.tel.RequestSent(addr)
		hdr, mb, err := mc.roundTrip(func(reqID uint32) *cdr.Encoder {
			return giop.EncodeRequestPooled(o.orb.order, giop.RequestHeader{
				RequestID:        reqID,
				ResponseExpected: true,
				ObjectKey:        prof.ObjectKey,
				Operation:        op,
			}, writeArgs)
		})
		if err != nil {
			return err
		}
		o.orb.tel.ReplyReceived(time.Since(sentAt))
		// roundTrip handed us ownership of mb; rh and d borrow it, so every
		// exit below releases both before returning (or retransmitting).
		if hdr.Type != giop.MsgReply {
			mb.Release()
			return &giop.SystemException{RepoID: giop.RepoInternal, Minor: 22, Completed: giop.CompletedMaybe}
		}
		rh, d, err := giop.DecodeReply(hdr.Order, mb.Bytes())
		if err != nil {
			mb.Release()
			return fmt.Errorf("orb: corrupt reply: %w", err)
		}

		switch rh.Status {
		case giop.ReplyNoException:
			var rerr error
			if readResult != nil {
				rerr = readResult(d)
			}
			d.Release()
			mb.Release()
			if rerr != nil {
				return fmt.Errorf("orb: decode result of %q: %w", op, rerr)
			}
			return nil
		case giop.ReplyUserException:
			repo, rerr := d.ReadString()
			d.Release()
			mb.Release()
			if rerr != nil {
				return fmt.Errorf("orb: corrupt user exception: %w", rerr)
			}
			return &UserException{RepoID: repo}
		case giop.ReplySystemException:
			se, rerr := giop.DecodeSystemException(d)
			d.Release()
			mb.Release()
			if rerr != nil {
				return fmt.Errorf("orb: corrupt system exception: %w", rerr)
			}
			return se
		case giop.ReplyLocationForward, giop.ReplyLocationForwardPerm:
			fwd, rerr := giop.DecodeIOR(d)
			d.Release()
			mb.Release()
			if rerr != nil {
				return fmt.Errorf("orb: corrupt LOCATION_FORWARD body: %w", rerr)
			}
			ior = fwd
			o.mu.Lock()
			o.ior = fwd
			o.stats.Forwards++
			o.mu.Unlock()
			if tel := o.orb.tel; tel != nil {
				a, _ := fwd.Addr()
				tel.ForwardTaken(a)
			}
			continue
		case giop.ReplyNeedsAddressingMode:
			d.Release()
			mb.Release()
			o.mu.Lock()
			o.stats.Retransmissions++
			o.mu.Unlock()
			o.orb.tel.Retransmitted(addr)
			continue
		default:
			d.Release()
			mb.Release()
			return &giop.SystemException{RepoID: giop.RepoInternal, Minor: 21, Completed: giop.CompletedMaybe}
		}
	}
	return giop.CommFailure(11, giop.CompletedMaybe)
}

// oneWayPooled is InvokeOneWay over the shared transport.
func (o *ObjectRef) oneWayPooled(op string, writeArgs func(*cdr.Encoder)) error {
	o.mu.Lock()
	o.stats.Invocations++
	ior := o.ior
	o.mu.Unlock()

	addr, err := ior.Addr()
	if err != nil {
		return giop.Transient(1, giop.CompletedNo)
	}
	prof, err := ior.IIOP()
	if err != nil {
		return fmt.Errorf("orb: reference has no IIOP profile: %w", err)
	}
	mc, err := o.orb.pool.get(addr)
	if err != nil {
		return err
	}
	return mc.send(func(reqID uint32) *cdr.Encoder {
		return giop.EncodeRequestPooled(o.orb.order, giop.RequestHeader{
			RequestID:        reqID,
			ResponseExpected: false,
			ObjectKey:        prof.ObjectKey,
			Operation:        op,
		}, writeArgs)
	})
}

// locatePooled is Locate over the shared transport; LocateReplies are
// demultiplexed by request id exactly like Replies.
func (o *ObjectRef) locatePooled() (giop.LocateStatus, error) {
	o.mu.Lock()
	ior := o.ior
	o.mu.Unlock()

	addr, err := ior.Addr()
	if err != nil {
		return 0, giop.Transient(1, giop.CompletedNo)
	}
	prof, err := ior.IIOP()
	if err != nil {
		return 0, fmt.Errorf("orb: reference has no IIOP profile: %w", err)
	}
	mc, err := o.orb.pool.get(addr)
	if err != nil {
		return 0, err
	}
	hdr, mb, err := mc.roundTrip(func(reqID uint32) *cdr.Encoder {
		return giop.EncodeLocateRequestPooled(o.orb.order, giop.LocateRequestHeader{
			RequestID: reqID,
			ObjectKey: prof.ObjectKey,
		})
	})
	if err != nil {
		return 0, giop.CommFailure(16, giop.CompletedMaybe)
	}
	if hdr.Type != giop.MsgLocateReply {
		mb.Release()
		return 0, &giop.SystemException{RepoID: giop.RepoInternal, Minor: 23, Completed: giop.CompletedMaybe}
	}
	lh, fwd, err := giop.DecodeLocateReply(hdr.Order, mb.Bytes())
	mb.Release() // lh and fwd are fully copied out of the body
	if err != nil {
		return 0, fmt.Errorf("orb: corrupt locate reply: %w", err)
	}
	if lh.Status == giop.LocateObjectForward && fwd != nil {
		o.mu.Lock()
		o.ior = *fwd
		o.stats.Forwards++
		o.mu.Unlock()
	}
	return lh.Status, nil
}

// fail terminates the connection once: it closes the transport, unregisters
// from the pool (so the next invocation redials), and settles every pending
// request with err.
func (m *muxConn) fail(err error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.err = err
	pend := m.pending
	m.pending = nil
	m.mu.Unlock()

	if m.conn != nil {
		_ = m.conn.Close()
	}
	m.pool.remove(m)
	for _, ch := range pend {
		ch <- muxReply{err: err}
	}
}
