package orb

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mead/internal/cdr"
	"mead/internal/giop"
	"mead/internal/netfault"
)

// TestWriterBatchesConcurrentFrames pins down the batch-emission protocol
// deterministically: with the flush held open (an artificial pending
// writer), queued messages accumulate; the writer that drops pending to
// zero flushes them all as ONE giop.MsgBatch frame.
func TestWriterBatchesConcurrentFrames(t *testing.T) {
	srv, cli := net.Pipe()
	defer srv.Close()
	defer cli.Close()

	w := newConnWriter(cli, cdr.BigEndian, true)
	req := func(id uint32) *cdr.Encoder {
		return giop.EncodeRequestPooled(cdr.BigEndian, giop.RequestHeader{
			RequestID: id, ResponseExpected: true, ObjectKey: []byte("k"), Operation: "echo",
		}, nil)
	}

	type read struct {
		h   giop.Header
		mb  *giop.MsgBuf
		err error
	}
	reads := make(chan read, 4)
	go func() {
		for i := 0; i < 2; i++ {
			h, mb, err := giop.ReadMessagePooled(srv)
			reads <- read{h, mb, err}
		}
	}()

	w.pending.Add(1) // hold the flush open, as a mid-write concurrent caller would
	if err := w.writeEncoder(req(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := w.writeEncoder(req(2), 0); err != nil {
		t.Fatal(err)
	}
	w.pending.Add(-1)
	// The next writer leaves last and flushes all three messages together.
	if err := w.writeEncoder(req(3), 0); err != nil {
		t.Fatal(err)
	}

	r := <-reads
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.h.Type != giop.MsgBatch {
		t.Fatalf("frame type = %v, want Batch", r.h.Type)
	}
	var ids []uint32
	err := giop.ForEachInBatch(r.mb.Bytes(), func(sh giop.Header, body []byte) error {
		hdr, d, err := giop.DecodeRequest(sh.Order, body)
		if err != nil {
			return err
		}
		d.Release()
		ids = append(ids, hdr.RequestID)
		return nil
	})
	r.mb.Release()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("batched request ids = %v, want [1 2 3]", ids)
	}
	if got := w.batches.Load(); got != 1 {
		t.Fatalf("batches emitted = %d, want 1", got)
	}

	// A lone message flushes as a plain Request frame, not a 1-element batch.
	if err := w.writeEncoder(req(4), 0); err != nil {
		t.Fatal(err)
	}
	r = <-reads
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.h.Type != giop.MsgRequest {
		t.Fatalf("lone frame type = %v, want Request", r.h.Type)
	}
	r.mb.Release()
}

// TestServerDecodesBatchFrame drives a handcrafted batch frame into the
// server over a raw socket and expects one independent reply per
// sub-request — the server half of the batching contract, deterministic
// regardless of client flush timing.
func TestServerDecodesBatchFrame(t *testing.T) {
	s, _ := startServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const n = 3
	var body []byte
	for i := uint32(1); i <= n; i++ {
		body = append(body, giop.EncodeRequest(cdr.BigEndian, giop.RequestHeader{
			RequestID: i, ResponseExpected: true, ObjectKey: clockKey, Operation: "echo",
		}, func(e *cdr.Encoder) { e.WriteString(fmt.Sprintf("batched-%d", i)) })...)
	}
	frame := make([]byte, giop.HeaderLen+len(body))
	giop.PutBatchHeader(frame, cdr.BigEndian, len(body))
	copy(frame[giop.HeaderLen:], body)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}

	got := map[uint32]string{}
	for i := 0; i < n; i++ {
		h, rbody, err := giop.ReadMessage(conn)
		if err != nil {
			t.Fatal(err)
		}
		if h.Type != giop.MsgReply {
			t.Fatalf("reply %d: type = %v", i, h.Type)
		}
		rh, d, err := giop.DecodeReply(h.Order, rbody)
		if err != nil {
			t.Fatal(err)
		}
		if rh.Status != giop.ReplyNoException {
			t.Fatalf("reply %d: status = %v", i, rh.Status)
		}
		v, err := d.ReadString()
		d.Release()
		if err != nil {
			t.Fatal(err)
		}
		got[rh.RequestID] = v
	}
	for i := uint32(1); i <= n; i++ {
		if want := fmt.Sprintf("batched-%d", i); got[i] != want {
			t.Fatalf("reply for request %d = %q, want %q", i, got[i], want)
		}
	}
	if served := s.Served(); served != n {
		t.Fatalf("served = %d, want %d", served, n)
	}
}

// TestPooledBatchingEndToEnd hammers a batching striped pool from many
// concurrent callers; every echo must come back byte-identical, proving
// demultiplexing and reply routing survive batch coalescing (run under
// -race).
func TestPooledBatchingEndToEnd(t *testing.T) {
	const callers = 64
	const perCaller = 10

	s, _ := startServer(t)
	ior, err := s.IORFor(typeID, clockKey)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(WithPoolStripes(2), WithRequestBatching())
	defer c.Close()
	o := c.Object(ior)

	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < perCaller; k++ {
				want := fmt.Sprintf("caller-%d-call-%d", i, k)
				var got string
				err := o.Invoke("echo", func(e *cdr.Encoder) {
					e.WriteString(want)
				}, func(d *cdr.Decoder) error {
					v, err := d.ReadString()
					got = v
					return err
				})
				if err != nil {
					errs[i] = err
					return
				}
				if got != want {
					errs[i] = fmt.Errorf("call %d: got %q, want %q", k, got, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if served := s.Served(); served != callers*perCaller {
		t.Fatalf("served = %d, want %d", served, callers*perCaller)
	}
}

// TestStripedPoolSpreadsStripes asserts a concurrent burst brings every
// stripe up (the pool's first-touch round-robin) and that both sides agree
// on the connection count afterwards.
func TestStripedPoolSpreadsStripes(t *testing.T) {
	const stripes = 4
	s, _ := startServer(t)
	ior, err := s.IORFor(typeID, clockKey)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(WithPoolStripes(stripes))
	defer c.Close()
	o := c.Object(ior)

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := invokeTime(o); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := c.PooledConnections(); got != stripes {
		t.Fatalf("client pools %d connections, want %d", got, stripes)
	}
	if got := s.ActiveConnections(); got != stripes {
		t.Fatalf("server sees %d connections, want %d", got, stripes)
	}
}

// TestStripedPoolFailSettlesOnlyThatStripe kills one stripe while both
// stripes hold an in-flight request: the dead stripe's caller observes
// COMM_FAILURE, the other stripe's caller keeps waiting undisturbed.
func TestStripedPoolFailSettlesOnlyThatStripe(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { // swallow connections, never reply
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { _, _, _ = giop.ReadMessage(conn) }()
		}
	}()

	ior, err := giop.NewIORForAddr(typeID, ln.Addr().String(), clockKey)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(WithPoolStripes(2))
	defer c.Close()
	o := c.Object(ior)

	// First-touch round-robin places caller A on stripe 0, caller B on
	// stripe 1, deterministically.
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := invokeTime(o)
			results <- err
		}()
		waitForStripes(t, c, ln.Addr().String(), i+1)
	}

	c.pool.mu.Lock()
	mc := c.pool.conns[ln.Addr().String()][0]
	c.pool.mu.Unlock()
	mc.fail(giop.CommFailure(10, giop.CompletedMaybe))

	select {
	case err := <-results:
		var se *giop.SystemException
		if !errors.As(err, &se) || se.RepoID != giop.RepoCommFailure {
			t.Fatalf("failed stripe's caller got %v, want COMM_FAILURE", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("failed stripe's caller still blocked")
	}
	select {
	case err := <-results:
		t.Fatalf("other stripe's caller settled too (%v); stripes are not isolated", err)
	case <-time.After(100 * time.Millisecond):
	}
	if got := c.PooledConnections(); got != 1 {
		t.Fatalf("pooled connections after stripe death = %d, want 1", got)
	}
	_ = c.Close() // settles the surviving caller
	<-results
}

// waitForStripes polls until n stripes to addr each carry at least one
// in-flight request.
func waitForStripes(t *testing.T, c *ClientORB, addr string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		live := 0
		c.pool.mu.Lock()
		for _, mc := range c.pool.conns[addr] {
			if mc != nil && mc.inflight.Load() > 0 {
				live++
			}
		}
		c.pool.mu.Unlock()
		if live >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("stripes with in-flight requests never reached %d", n)
}

// TestStripedPoolStripeCutChaos runs the netfault plan the satellite task
// asks for: mid-burst, one stripe's connection is cut right after a request
// (and one reply is wire-duplicated earlier, exercising the stale-reply
// skip). Callers riding the cut stripe settle with COMM_FAILURE, everyone
// else keeps getting byte-correct echoes, and the pool redials back to full
// width afterwards. Run under -race.
func TestStripedPoolStripeCutChaos(t *testing.T) {
	const stripes = 4
	const callers = 64
	const perCaller = 5

	s, _ := startServer(t)
	addr := s.Addr()
	inj, err := netfault.NewInjector(7, netfault.Plan{
		{Kind: netfault.DuplicateReply, At: 20, Addr: addr},
		{Kind: netfault.CutAfterRequest, At: 150, Addr: addr},
	})
	if err != nil {
		t.Fatal(err)
	}
	ior, err := giop.NewIORForAddr(typeID, addr, clockKey)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(WithPoolStripes(stripes), WithDialer(inj.DialTimeout))
	defer c.Close()
	o := c.Object(ior)

	var wg sync.WaitGroup
	var failures, successes atomic.Int64
	errCh := make(chan error, callers*perCaller)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < perCaller; k++ {
				want := fmt.Sprintf("chaos-%d-%d", i, k)
				var got string
				err := o.Invoke("echo", func(e *cdr.Encoder) {
					e.WriteString(want)
				}, func(d *cdr.Decoder) error {
					v, err := d.ReadString()
					got = v
					return err
				})
				switch {
				case err == nil && got == want:
					successes.Add(1)
				case err == nil:
					errCh <- fmt.Errorf("caller %d call %d: cross-wired reply %q != %q", i, k, got, want)
				default:
					var se *giop.SystemException
					if !errors.As(err, &se) || se.RepoID != giop.RepoCommFailure {
						errCh <- fmt.Errorf("caller %d call %d: %v (want COMM_FAILURE)", i, k, err)
					}
					failures.Add(1)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	if inj.FiredTotal("cut-after-request") == 0 {
		t.Fatal("chaos plan never fired the stripe cut")
	}
	if f := failures.Load(); f == 0 {
		t.Fatal("no caller observed the stripe cut")
	}
	if got, want := successes.Load()+failures.Load(), int64(callers*perCaller); got != want {
		t.Fatalf("accounted invocations = %d, want %d", got, want)
	}
	// Surviving stripes carried traffic through the cut: far more calls
	// succeeded than one stripe alone could have settled as failures.
	if successes.Load() <= failures.Load() {
		t.Fatalf("successes (%d) <= failures (%d); other stripes did not keep carrying traffic",
			successes.Load(), failures.Load())
	}

	// The pool recovers to full width: the dead slot redials on demand.
	var wg2 sync.WaitGroup
	for i := 0; i < 2*stripes; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			if _, err := invokeTime(o); err != nil {
				t.Error(err)
			}
		}()
	}
	wg2.Wait()
	if got := c.PooledConnections(); got != stripes {
		t.Fatalf("pooled connections after recovery = %d, want %d", got, stripes)
	}
}

// TestServerAcceptSharding smoke-tests the sharded accept path: several
// accept goroutines on one listener admit concurrent clients correctly.
func TestServerAcceptSharding(t *testing.T) {
	s, _ := startServer(t, WithServerAcceptLoops(4))
	ior, err := s.IORFor(typeID, clockKey)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewClient()
			o := c.Object(ior)
			defer o.Close()
			if _, err := invokeTime(o); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
