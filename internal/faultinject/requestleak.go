package faultinject

import (
	"errors"
	"sync"

	"mead/internal/resource"
)

// RequestLeak models the other resource-exhaustion family the paper's fault
// model covers (Section 3.2 lists "memory, file descriptors, threads"): a
// countable resource consumed per served request and never released —
// descriptor or thread leakage — crashing the process at the cap. Unlike
// the time-driven memory leak, exhaustion here is load-proportional, which
// exercises the threshold machinery from a different angle.
type RequestLeak struct {
	budget      *resource.Budget
	perRequest  int64
	onExhausted func()

	once sync.Once
}

// RequestLeakConfig parameterizes a RequestLeak.
type RequestLeakConfig struct {
	// Resource names the leaked resource (default "descriptors").
	Resource string
	// Capacity is the total units available (default 512, a typical
	// per-process descriptor limit).
	Capacity int64
	// PerRequest is the units leaked per request (default 1).
	PerRequest int64
}

func (c RequestLeakConfig) withDefaults() RequestLeakConfig {
	if c.Resource == "" {
		c.Resource = "descriptors"
	}
	if c.Capacity == 0 {
		c.Capacity = 512
	}
	if c.PerRequest == 0 {
		c.PerRequest = 1
	}
	return c
}

// NewRequestLeak returns a per-request leak; onExhausted fires once when
// the budget runs out.
func NewRequestLeak(cfg RequestLeakConfig, onExhausted func()) (*RequestLeak, error) {
	cfg = cfg.withDefaults()
	if cfg.PerRequest < 0 || cfg.Capacity < 0 {
		return nil, errors.New("faultinject: negative request-leak parameters")
	}
	budget, err := resource.NewBudget(cfg.Resource, cfg.Capacity)
	if err != nil {
		return nil, err
	}
	return &RequestLeak{
		budget:      budget,
		perRequest:  cfg.PerRequest,
		onExhausted: onExhausted,
	}, nil
}

// Budget exposes the leak's resource budget (for threshold monitoring).
func (l *RequestLeak) Budget() *resource.Budget { return l.budget }

// OnRequest leaks one request's worth of the resource.
func (l *RequestLeak) OnRequest() {
	if l.budget.Consume(l.perRequest) {
		l.once.Do(func() {
			if l.onExhausted != nil {
				l.onExhausted()
			}
		})
	}
}
