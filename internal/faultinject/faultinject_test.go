package faultinject

import (
	"sync/atomic"
	"testing"
	"time"
)

func fastConfig() Config {
	return Config{
		BufferBytes: 4096,
		Tick:        time.Millisecond,
		Scale:       64,
		Shape:       2,
		ChunkUnit:   8,
		Seed:        1,
	}
}

func TestDefaultsApplied(t *testing.T) {
	budget, err := NewBudget(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if budget.Capacity() != DefaultBufferBytes {
		t.Fatalf("default capacity = %d", budget.Capacity())
	}
	in, err := New(Config{}, budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := in.Config()
	if cfg.Tick != DefaultTick || cfg.Scale != DefaultScale ||
		cfg.Shape != DefaultShape || cfg.ChunkUnit != DefaultChunkUnit {
		t.Fatalf("defaults = %+v", cfg)
	}
	in.Stop()
}

func TestNewRejectsNilBudget(t *testing.T) {
	if _, err := New(Config{}, nil, nil); err == nil {
		t.Fatal("nil budget accepted")
	}
}

func TestNewRejectsBadWeibull(t *testing.T) {
	budget, _ := NewBudget(Config{})
	if _, err := New(Config{Scale: -1}, budget, nil); err == nil {
		t.Fatal("negative scale accepted")
	}
}

func TestLeakExhaustsAndFiresOnce(t *testing.T) {
	cfg := fastConfig()
	budget, err := NewBudget(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int32
	crashed := make(chan struct{})
	in, err := New(cfg, budget, func() {
		if fired.Add(1) == 1 {
			close(crashed)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if in.Activated() {
		t.Fatal("activated before Activate")
	}
	if err := in.Activate(); err != nil {
		t.Fatal(err)
	}
	if !in.Activated() {
		t.Fatal("not activated after Activate")
	}
	select {
	case <-crashed:
	case <-time.After(10 * time.Second):
		t.Fatal("leak never exhausted the budget")
	}
	if !budget.Exhausted() {
		t.Fatal("budget not exhausted at crash")
	}
	time.Sleep(20 * time.Millisecond)
	if fired.Load() != 1 {
		t.Fatalf("onExhausted fired %d times", fired.Load())
	}
	in.Stop()
}

func TestActivateIdempotent(t *testing.T) {
	cfg := fastConfig()
	budget, _ := NewBudget(cfg)
	in, err := New(cfg, budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := in.Activate(); err != nil {
			t.Fatal(err)
		}
	}
	in.Stop()
}

func TestStopBeforeActivate(t *testing.T) {
	cfg := fastConfig()
	budget, _ := NewBudget(cfg)
	in, _ := New(cfg, budget, nil)
	in.Stop()
	in.Stop() // idempotent
	if err := in.Activate(); err == nil {
		t.Fatal("Activate after Stop succeeded")
	}
}

func TestStopHaltsLeak(t *testing.T) {
	cfg := fastConfig()
	cfg.BufferBytes = 1 << 40 // effectively infinite
	budget, _ := NewBudget(cfg)
	in, _ := New(cfg, budget, nil)
	_ = in.Activate()
	time.Sleep(10 * time.Millisecond)
	in.Stop()
	used := budget.Used()
	time.Sleep(20 * time.Millisecond)
	if budget.Used() != used {
		t.Fatal("leak continued after Stop")
	}
}

func TestLeakRateMatchesCalibration(t *testing.T) {
	// With the paper's parameters at default chunk unit, expected leak per
	// tick is ~Weibull mean * unit; the budget must last roughly
	// BufferBytes / (mean*unit) ticks (within 3x either way — it is a
	// stochastic process).
	cfg := Config{
		BufferBytes: 32 * 1024,
		Tick:        time.Millisecond, // compressed time
		Seed:        7,
	}
	budget, _ := NewBudget(cfg)
	crashed := make(chan struct{})
	in, err := New(cfg, budget, func() { close(crashed) })
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_ = in.Activate()
	select {
	case <-crashed:
	case <-time.After(30 * time.Second):
		t.Fatal("no crash")
	}
	ticks := float64(time.Since(start)) / float64(cfg.Tick)
	expected := float64(32*1024) / (56.72 * float64(DefaultChunkUnit)) // ~18 ticks
	if ticks < expected/3 || ticks > expected*8 {
		t.Fatalf("crash after %.1f ticks, expected around %.1f", ticks, expected)
	}
	in.Stop()
}

func TestRequestLeakDefaults(t *testing.T) {
	l, err := NewRequestLeak(RequestLeakConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.Budget().Name() != "descriptors" || l.Budget().Capacity() != 512 {
		t.Fatalf("defaults = %s/%d", l.Budget().Name(), l.Budget().Capacity())
	}
}

func TestRequestLeakFiresOnceAtCap(t *testing.T) {
	var fired atomic.Int32
	l, err := NewRequestLeak(RequestLeakConfig{Capacity: 5, PerRequest: 1}, func() {
		fired.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.OnRequest()
	}
	if fired.Load() != 1 {
		t.Fatalf("onExhausted fired %d times", fired.Load())
	}
	if !l.Budget().Exhausted() {
		t.Fatal("budget not exhausted")
	}
}

func TestRequestLeakFractionGrowsPerRequest(t *testing.T) {
	l, err := NewRequestLeak(RequestLeakConfig{Capacity: 10, PerRequest: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.OnRequest()
	if f := l.Budget().Fraction(); f != 0.2 {
		t.Fatalf("fraction after one request = %v", f)
	}
}

func TestRequestLeakRejectsNegative(t *testing.T) {
	if _, err := NewRequestLeak(RequestLeakConfig{Capacity: -1}, nil); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if _, err := NewRequestLeak(RequestLeakConfig{PerRequest: -1}, nil); err == nil {
		t.Fatal("negative per-request accepted")
	}
}
