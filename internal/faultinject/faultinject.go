// Package faultinject reproduces the paper's fault-injection strategy
// (Section 5.1): "We injected a memory-leak fault by declaring a 32KB
// buffer of memory within the Interceptor, and then slowly exhausting the
// buffer according to a Weibull probability distribution ... The memory
// leak at a server replica was activated when the server received its first
// client request. At every subsequent 150ms intervals after the onset of
// the fault, we exhausted chunks of memory according to a Weibull
// distribution with a scale parameter of 64, and a shape parameter of 2.0."
//
// The paper's parameters are internally inconsistent: a raw Weibull(64,
// 2.0) draw has mean ~56.7, which against a 32 KB buffer would take ~87 s
// to cause a failure, while the paper reports "approximately one server
// failure for every 250 client invocations" (250 ms at the 1 ms request
// period) — reachable only with draws so large that a single 150 ms tick
// would blow straight through the 80%/90% thresholds, which would have made
// the paper's own zero-client-failure proactive results impossible. We
// scale each draw by a configurable ChunkUnit and default it to 32 bytes:
// the leak then crosses the thresholds gradually (the behaviour the
// proactive results depend on) and exhausts the buffer in ~18 ticks.
// Experiment drivers shrink Tick to raise the failure rate toward the
// paper's invocations-per-failure ratio; see EXPERIMENTS.md.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mead/internal/resource"
	"mead/internal/stats"
	"mead/internal/telemetry"
)

// Defaults from Section 5.1 of the paper.
const (
	DefaultBufferBytes = 32 * 1024
	DefaultTick        = 150 * time.Millisecond
	DefaultScale       = 64.0
	DefaultShape       = 2.0
	DefaultChunkUnit   = 32
)

// Config parameterizes a memory-leak injector.
type Config struct {
	// BufferBytes is the leak buffer capacity (default 32 KB).
	BufferBytes int64
	// Tick is the leak interval (default 150 ms).
	Tick time.Duration
	// Scale and Shape are the Weibull parameters (defaults 64 and 2.0).
	Scale float64
	Shape float64
	// ChunkUnit scales each Weibull draw to bytes (default 32).
	ChunkUnit int64
	// Seed makes runs reproducible.
	Seed int64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.BufferBytes == 0 {
		c.BufferBytes = DefaultBufferBytes
	}
	if c.Tick == 0 {
		c.Tick = DefaultTick
	}
	if c.Scale == 0 {
		c.Scale = DefaultScale
	}
	if c.Shape == 0 {
		c.Shape = DefaultShape
	}
	if c.ChunkUnit == 0 {
		c.ChunkUnit = DefaultChunkUnit
	}
	return c
}

// ErrStopped reports activation of a stopped injector.
var ErrStopped = errors.New("faultinject: injector stopped")

// Injector drives one replica's memory leak. The leak starts on Activate
// (the first client request) and consumes the budget every Tick until
// exhaustion, at which point onExhausted fires once (the process-crash
// fault) and the injector stops.
type Injector struct {
	cfg         Config
	budget      *resource.Budget
	weibull     *stats.Weibull
	onExhausted func()

	mu        sync.Mutex
	activated bool
	stopped   bool
	stop      chan struct{}
	done      chan struct{}

	tel *telemetry.Telemetry // nil-safe; see Instrument
}

// New returns an injector leaking from budget.
func New(cfg Config, budget *resource.Budget, onExhausted func()) (*Injector, error) {
	cfg = cfg.withDefaults()
	w, err := stats.NewWeibull(cfg.Scale, cfg.Shape, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("faultinject: %w", err)
	}
	if budget == nil {
		return nil, errors.New("faultinject: nil budget")
	}
	return &Injector{
		cfg:         cfg,
		budget:      budget,
		weibull:     w,
		onExhausted: onExhausted,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}, nil
}

// NewBudget builds the leak buffer matching cfg.
func NewBudget(cfg Config) (*resource.Budget, error) {
	cfg = cfg.withDefaults()
	return resource.NewBudget("memory", cfg.BufferBytes)
}

// Config returns the injector's effective configuration.
func (in *Injector) Config() Config { return in.cfg }

// Instrument attaches telemetry: every leak tick publishes the budget's
// used/capacity levels as gauges. Call before Activate.
func (in *Injector) Instrument(t *telemetry.Telemetry) {
	in.mu.Lock()
	in.tel = t
	in.mu.Unlock()
}

// Activated reports whether the leak has started.
func (in *Injector) Activated() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.activated
}

// Activate starts the leak. Subsequent calls are no-ops, so wiring it to
// every incoming request reproduces "activated when the server received its
// first client request".
func (in *Injector) Activate() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.stopped {
		return ErrStopped
	}
	if in.activated {
		return nil
	}
	in.activated = true
	go in.leak()
	return nil
}

// Stop halts the leak (idempotent). It does not reset the budget.
func (in *Injector) Stop() {
	in.mu.Lock()
	if in.stopped {
		in.mu.Unlock()
		return
	}
	in.stopped = true
	wasActive := in.activated
	close(in.stop)
	in.mu.Unlock()
	if wasActive {
		<-in.done
	}
}

func (in *Injector) leak() {
	defer close(in.done)
	in.mu.Lock()
	tel := in.tel
	in.mu.Unlock()
	ticker := time.NewTicker(in.cfg.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			chunk := int64(in.weibull.Sample() * float64(in.cfg.ChunkUnit))
			exhausted := in.budget.Consume(chunk)
			tel.LeakSample(in.budget.Used(), in.budget.Capacity())
			if exhausted {
				if in.onExhausted != nil {
					in.onExhausted()
				}
				return
			}
		case <-in.stop:
			return
		}
	}
}
