package telemetry

import (
	"math"
	"math/bits"
	"time"
)

// The histogram is log-linear (HdrHistogram-style): values below 16 ns get
// exact one-nanosecond buckets; above that, each power-of-two range is
// split into 16 linear sub-buckets, so any recorded value is off by at
// most 1/16 (6.25%) of itself. With histMaxShift 31 the top finite bucket
// ends just below 2^36 ns (~68.7 s); anything larger lands in the overflow
// bucket and is reported as the exact observed maximum.
const (
	histSubBuckets = 16
	histMaxShift   = 31
	// histNumBuckets: shift ranges over [0, histMaxShift], and within a
	// shift the index (u>>shift) ranges over [0, 31] for shift 0 and
	// [16, 31] otherwise, giving a dense index space of
	// histMaxShift*16 + 32 finite buckets plus one overflow slot.
	histNumBuckets = histMaxShift*histSubBuckets + 2*histSubBuckets + 1
	histOverflow   = histNumBuckets - 1
)

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	u := uint64(v)
	shift := bits.Len64(u) - 5 // keep the top 5 bits (16 sub-buckets)
	if shift <= 0 {
		return int(u)
	}
	if shift > histMaxShift {
		return histOverflow
	}
	return shift*histSubBuckets + int(u>>uint(shift))
}

// bucketUpper returns the largest value a finite bucket can hold.
func bucketUpper(idx int) int64 {
	if idx < histSubBuckets {
		return int64(idx)
	}
	shift := idx/histSubBuckets - 1
	t := idx - shift*histSubBuckets
	return int64(t+1)<<uint(shift) - 1
}

// Histogram records a latency distribution in fixed buckets: p50/p99/max
// come out without storing samples, and Observe is lock-free and
// allocation-free. The zero value is ready to use.
type Histogram struct {
	count Counter
	sum   Counter
	max   Gauge
	// buckets are plain atomics (not shard-striped): one histogram has
	// hundreds of buckets, so concurrent observers of a real latency
	// distribution rarely collide on a line.
	buckets [histNumBuckets]Gauge
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.count.Inc()
	h.sum.Add(uint64(v))
	h.buckets[bucketIndex(v)].Add(1)
	for {
		cur := h.max.Value()
		if v <= cur {
			break
		}
		if h.max.v.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Snapshot captures a point-in-time copy. Concurrent Observes may tear
// across fields by a sample or two; for metrics that is acceptable.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	s.Count = h.count.Value()
	s.Sum = time.Duration(h.sum.Value())
	s.Max = time.Duration(h.max.Value())
	for i := range h.buckets {
		s.Buckets[i] = uint64(h.buckets[i].Value())
	}
	return s
}

// Snapshot is an immutable copy of a histogram, safe to merge and query.
type Snapshot struct {
	Count   uint64
	Sum     time.Duration
	Max     time.Duration
	Buckets [histNumBuckets]uint64
}

// Merge folds another snapshot (e.g. a different shard's) into s.
func (s *Snapshot) Merge(o Snapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the average recorded duration (0 when empty).
func (s Snapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile returns the q-th quantile (0 <= q <= 1) as the upper bound of
// the bucket holding that rank, clamped to the observed maximum; an empty
// snapshot yields 0. The log-linear bucketing bounds the relative error at
// 1/16 and guarantees monotonicity: p50 <= p99 <= Max.
func (s Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			if i == histOverflow {
				return s.Max
			}
			upper := time.Duration(bucketUpper(i))
			if upper > s.Max {
				upper = s.Max
			}
			return upper
		}
	}
	return s.Max
}

// P50 is the median.
func (s Snapshot) P50() time.Duration { return s.Quantile(0.50) }

// P99 is the 99th percentile.
func (s Snapshot) P99() time.Duration { return s.Quantile(0.99) }
