// Package telemetry is mead's zero-steady-state-allocation observability
// layer: lock-free shard-striped counters, fixed-bucket log-linear latency
// histograms (p50/p99/max without storing samples), and a bounded
// ring-buffer trace of recovery events with JSONL export.
//
// Every instrumentation method is nil-safe: a nil *Telemetry is a no-op, so
// call sites never branch and uninstrumented configurations pay only an
// inlined nil check. None of the recording paths allocate: counters and
// histogram buckets are preallocated atomics, and trace events are written
// into a preallocated ring whose string fields alias strings the emitter
// already holds.
package telemetry

import (
	"time"
)

// Telemetry aggregates every metric mead emits. One instance is shared per
// process (or per experiment deployment); all methods are safe for
// concurrent use and no-ops on a nil receiver.
type Telemetry struct {
	scheme string
	start  time.Time

	// Client-side wire activity (ORB + interceptor).
	RequestsSent     Counter // GIOP Requests written (incl. retransmissions)
	RepliesReceived  Counter // GIOP Replies matched to a request
	Retransmits      Counter // requests re-sent after NEEDS_ADDRESSING or swap
	LocationForwards Counter // LOCATION_FORWARD replies followed
	CommFailures     Counter // COMM_FAILURE exceptions surfaced to the app
	Transients       Counter // TRANSIENT exceptions surfaced to the app
	StaleReplies     Counter // replies discarded (no matching request)
	ConnsOpened      Counter // client transports dialed
	ConnSwaps        Counter // interceptor transport swaps (dup2-equivalent)
	MeadFailovers    Counter // MEAD fail-over frames consumed

	// Server / framework activity.
	ServerRequests     Counter // requests dispatched by the server ORB
	ThresholdCrossings Counter // resource thresholds crossed
	ReplicasKilled     Counter // replica departures seen by recovery mgr
	Relaunches         Counter // replicas (re)launched by recovery mgr
	Multicasts         Counter // GCS messages delivered to members
	ViewChanges        Counter // GCS view changes emitted
	NameOps            Counter // naming-service operations served

	// Durable-state subsystem (internal/durable + recovery handshake).
	OpsLogged            Counter // op records appended to the durable log
	OpsReplayed          Counter // log records replayed during recovery
	DupsSuppressed       Counter // retransmissions answered from the dedup table
	CheckpointsPersisted Counter // durable checkpoints written (incl. backups)
	LogTruncations       Counter // damaged log tails truncated at recovery

	// Resource-leak progression (faultinject).
	LeakBytes    Gauge // bytes currently consumed by the injected leak
	LeakCapacity Gauge // budget capacity the leak runs against

	// Latency distributions, all in nanoseconds.
	InvokeRTT    Histogram // every client invocation round-trip
	SteadyRTT    Histogram // fault-free invocations (per-scheme Table 1)
	FailoverRTT  Histogram // invocations that crossed a fail-over
	DispatchTime Histogram // server-side servant dispatch duration

	trace *Trace
}

// Option configures New.
type Option func(*Telemetry)

// WithScheme labels every trace event with the recovery scheme under test.
func WithScheme(scheme string) Option {
	return func(t *Telemetry) { t.scheme = scheme }
}

// WithTraceCapacity bounds the recovery-event ring (default
// DefaultTraceCapacity).
func WithTraceCapacity(n int) Option {
	return func(t *Telemetry) { t.trace = newTrace(n) }
}

// New builds a Telemetry with its trace ring preallocated.
func New(opts ...Option) *Telemetry {
	t := &Telemetry{start: time.Now()}
	for _, o := range opts {
		o(t)
	}
	if t.trace == nil {
		t.trace = newTrace(DefaultTraceCapacity)
	}
	return t
}

// Scheme returns the scheme label (empty on nil).
func (t *Telemetry) Scheme() string {
	if t == nil {
		return ""
	}
	return t.scheme
}

// Trace exposes the recovery-event ring (nil on a nil Telemetry).
func (t *Telemetry) Trace() *Trace {
	if t == nil {
		return nil
	}
	return t.trace
}

// Events returns a copy of the retained trace events (nil-safe).
func (t *Telemetry) Events() []Event {
	if t == nil {
		return nil
	}
	return t.trace.Events()
}

func (t *Telemetry) event(kind EventKind, replica, addr string, value int64) {
	t.trace.record(Event{
		At:      time.Since(t.start),
		Kind:    kind,
		Scheme:  t.scheme,
		Replica: replica,
		Addr:    addr,
		Value:   value,
	})
}

// --- Client-side wire instrumentation (ORB + interceptor) ---

// RequestSent records one GIOP Request written to addr.
func (t *Telemetry) RequestSent(addr string) {
	if t == nil {
		return
	}
	t.RequestsSent.Inc()
	t.event(EvRequestSent, "", addr, 0)
}

// ReplyReceived records one matched GIOP Reply and its round-trip time.
func (t *Telemetry) ReplyReceived(rtt time.Duration) {
	if t == nil {
		return
	}
	t.RepliesReceived.Inc()
	t.InvokeRTT.Observe(rtt)
}

// Retransmitted records a re-send of an in-flight request to addr.
func (t *Telemetry) Retransmitted(addr string) {
	if t == nil {
		return
	}
	t.Retransmits.Inc()
	t.event(EvRetransmit, "", addr, 0)
}

// ForwardTaken records a LOCATION_FORWARD reply being followed to addr.
func (t *Telemetry) ForwardTaken(addr string) {
	if t == nil {
		return
	}
	t.LocationForwards.Inc()
	t.event(EvLocationForward, "", addr, 0)
}

// CommFailureRaised records a COMM_FAILURE surfacing to the application
// while bound to the named replica.
func (t *Telemetry) CommFailureRaised(replica, addr string) {
	if t == nil {
		return
	}
	t.CommFailures.Inc()
	t.event(EvCommFailure, replica, addr, 0)
}

// TransientRaised records a TRANSIENT surfacing to the application while
// bound to the named replica.
func (t *Telemetry) TransientRaised(replica, addr string) {
	if t == nil {
		return
	}
	t.Transients.Inc()
	t.event(EvTransient, replica, addr, 0)
}

// FailoverReceived records a MEAD fail-over frame naming addr as the new
// primary.
func (t *Telemetry) FailoverReceived(addr string) {
	if t == nil {
		return
	}
	t.MeadFailovers.Inc()
	t.event(EvMeadFailover, "", addr, 0)
}

// ConnSwapped records the interceptor swapping the transport under the ORB
// to addr.
func (t *Telemetry) ConnSwapped(addr string) {
	if t == nil {
		return
	}
	t.ConnSwaps.Inc()
	t.event(EvConnSwapped, "", addr, 0)
}

// StaleReply records a reply that matched no in-flight request.
func (t *Telemetry) StaleReply() {
	if t == nil {
		return
	}
	t.StaleReplies.Inc()
}

// ConnOpened records a client transport dialed to addr (counter only; dials
// are routine, not recovery events).
func (t *Telemetry) ConnOpened(addr string) {
	if t == nil {
		return
	}
	_ = addr
	t.ConnsOpened.Inc()
}

// --- Server / framework instrumentation ---

// Dispatched records one server-side servant dispatch.
func (t *Telemetry) Dispatched(d time.Duration) {
	if t == nil {
		return
	}
	t.ServerRequests.Inc()
	t.DispatchTime.Observe(d)
}

// ThresholdCrossed records the named replica crossing a resource threshold
// at the given usage percentage.
func (t *Telemetry) ThresholdCrossed(replica string, pct int64) {
	if t == nil {
		return
	}
	t.ThresholdCrossings.Inc()
	t.event(EvThresholdCrossed, replica, "", pct)
}

// ReplicaKilled records the recovery manager observing the named replica
// leave the group.
func (t *Telemetry) ReplicaKilled(replica string) {
	if t == nil {
		return
	}
	t.ReplicasKilled.Inc()
	t.event(EvReplicaKilled, replica, "", 0)
}

// Relaunched records the recovery manager (re)launching the named replica
// (counter only; the kill that preceded it is the recovery event).
func (t *Telemetry) Relaunched(replica string) {
	if t == nil {
		return
	}
	_ = replica
	t.Relaunches.Inc()
}

// --- Durable-state instrumentation ---

// OpLogged records one op record handed to the durable log (hot path:
// counter only, no trace event).
func (t *Telemetry) OpLogged() {
	if t == nil {
		return
	}
	t.OpsLogged.Inc()
}

// DupSuppressed records one retransmission answered from the at-most-once
// dedup table instead of re-executing (hot path: counter only).
func (t *Telemetry) DupSuppressed() {
	if t == nil {
		return
	}
	t.DupsSuppressed.Inc()
}

// RecoveryStarted records the named replica beginning durable recovery,
// with the checkpoint's op number (before log replay) as the value.
func (t *Telemetry) RecoveryStarted(replica string, checkpointOp int64) {
	if t == nil {
		return
	}
	t.event(EvRecoveryStarted, replica, "", checkpointOp)
}

// LogReplayed records the named replica finishing local log replay: n
// records applied, and whether a damaged tail was truncated along the way.
func (t *Telemetry) LogReplayed(replica string, n int64, truncated bool) {
	if t == nil {
		return
	}
	if n > 0 {
		t.OpsReplayed.Add(uint64(n))
	}
	if truncated {
		t.LogTruncations.Inc()
	}
	t.event(EvLogReplayed, replica, "", n)
}

// StateFetched records the recovery handshake merging a newer snapshot into
// the named replica, with the merged op number as the value.
func (t *Telemetry) StateFetched(replica string, opNumber int64) {
	if t == nil {
		return
	}
	t.event(EvStateFetched, replica, "", opNumber)
}

// CheckpointPersisted records one durable checkpoint written by the named
// replica (counter only; routine, not a recovery event).
func (t *Telemetry) CheckpointPersisted(replica string) {
	if t == nil {
		return
	}
	_ = replica
	t.CheckpointsPersisted.Inc()
}

// LeakSample records the injected leak's current level against its budget.
func (t *Telemetry) LeakSample(used, capacity int64) {
	if t == nil {
		return
	}
	t.LeakBytes.Set(used)
	t.LeakCapacity.Set(capacity)
}

// Multicast records one GCS payload delivery to a member.
func (t *Telemetry) Multicast() {
	if t == nil {
		return
	}
	t.Multicasts.Inc()
}

// ViewChange records one GCS view emission.
func (t *Telemetry) ViewChange() {
	if t == nil {
		return
	}
	t.ViewChanges.Inc()
}

// NameOp records one naming-service operation served.
func (t *Telemetry) NameOp() {
	if t == nil {
		return
	}
	t.NameOps.Inc()
}

// --- Experiment measurement ---

// SteadyInvoke records a fault-free invocation round-trip.
func (t *Telemetry) SteadyInvoke(d time.Duration) {
	if t == nil {
		return
	}
	t.SteadyRTT.Observe(d)
}

// FailoverInvoke records an invocation that spanned a fail-over.
func (t *Telemetry) FailoverInvoke(d time.Duration) {
	if t == nil {
		return
	}
	t.FailoverRTT.Observe(d)
}
