package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// EventKind identifies one recovery-relevant action in the trace ring.
type EventKind uint8

// The recovery-event vocabulary. Each kind corresponds to one protocol or
// framework action (docs/PROTOCOL.md §9 maps them to GIOP/MEAD messages).
const (
	// EvRequestSent: a GIOP Request left the client (including
	// retransmissions of the same logical invocation).
	EvRequestSent EventKind = iota + 1
	// EvRetransmit: the client re-sent an in-flight request — the ORB's
	// NEEDS_ADDRESSING_MODE handling or the interceptor's write-side
	// replay after a transport swap.
	EvRetransmit
	// EvCommFailure: a CORBA COMM_FAILURE exception reached the client
	// application.
	EvCommFailure
	// EvTransient: a CORBA TRANSIENT exception reached the client
	// application (the stale-reference failure mode).
	EvTransient
	// EvLocationForward: the client ORB followed a LOCATION_FORWARD (or
	// OBJECT_FORWARD) reply to a new IOR.
	EvLocationForward
	// EvMeadFailover: the client interceptor consumed a MEAD fail-over
	// frame announcing the migration target.
	EvMeadFailover
	// EvConnSwapped: the client interceptor swapped the transport
	// underneath the unmodified ORB (dup2-equivalent).
	EvConnSwapped
	// EvThresholdCrossed: a server replica crossed a resource threshold
	// (Value holds the usage in percent).
	EvThresholdCrossed
	// EvReplicaKilled: the Recovery Manager observed a replica's
	// departure from the group (crash or rejuvenation).
	EvReplicaKilled
	// EvRecoveryStarted: a restarting replica began durable recovery
	// (Value holds the checkpoint's op number, before log replay).
	EvRecoveryStarted
	// EvLogReplayed: the replica finished replaying its local op log
	// (Value holds the number of records applied).
	EvLogReplayed
	// EvStateFetched: the recovery handshake merged a newer snapshot from
	// a live group member (Value holds the merged op number).
	EvStateFetched
)

var eventKindNames = [...]string{
	EvRequestSent:      "request-sent",
	EvRetransmit:       "retransmit",
	EvCommFailure:      "comm-failure",
	EvTransient:        "transient",
	EvLocationForward:  "location-forward",
	EvMeadFailover:     "mead-failover",
	EvConnSwapped:      "conn-swapped",
	EvThresholdCrossed: "threshold-crossed",
	EvReplicaKilled:    "replica-killed",
	EvRecoveryStarted:  "recovery-started",
	EvLogReplayed:      "log-replayed",
	EvStateFetched:     "state-fetched",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) && eventKindNames[k] != "" {
		return eventKindNames[k]
	}
	return "unknown"
}

// MarshalJSON renders the kind as its string name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// Event is one entry of the recovery-event trace.
type Event struct {
	// Seq is the event's global sequence number (monotonic per
	// Telemetry, never reset, so export consumers can detect ring
	// overwrites as gaps).
	Seq uint64 `json:"seq"`
	// At is the time since the Telemetry was created.
	At time.Duration `json:"at_ns"`
	// Kind identifies the action.
	Kind EventKind `json:"kind"`
	// Scheme is the recovery scheme label of the emitting Telemetry.
	Scheme string `json:"scheme,omitempty"`
	// Replica names the replica involved, when the emitter knows it
	// (recovery manager, threshold machinery).
	Replica string `json:"replica,omitempty"`
	// Addr is the remote transport address involved, when the emitter
	// sits at the wire level (ORB, interceptor).
	Addr string `json:"addr,omitempty"`
	// Value carries an optional numeric payload (threshold percent).
	Value int64 `json:"value,omitempty"`
}

// DefaultTraceCapacity bounds the ring when WithTraceCapacity is not given.
const DefaultTraceCapacity = 4096

// Trace is a bounded ring buffer of recovery events. Appends are
// mutex-serialized but allocation-free: the ring is preallocated and event
// string fields alias strings the emitter already holds. When the ring is
// full the oldest events are overwritten (Dropped counts them); Seq numbers
// keep growing, so an export shows the gap.
type Trace struct {
	mu      sync.Mutex
	ring    []Event
	next    uint64 // total events ever recorded == next Seq
	dropped uint64
}

func newTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Trace{ring: make([]Event, capacity)}
}

// record appends one event, stamping Seq. ev.At must already be set.
func (tr *Trace) record(ev Event) {
	tr.mu.Lock()
	ev.Seq = tr.next
	if tr.next >= uint64(len(tr.ring)) {
		tr.dropped++
	}
	tr.ring[tr.next%uint64(len(tr.ring))] = ev
	tr.next++
	tr.mu.Unlock()
}

// Len returns how many events are currently held (at most the capacity).
func (tr *Trace) Len() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.next < uint64(len(tr.ring)) {
		return int(tr.next)
	}
	return len(tr.ring)
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (tr *Trace) Dropped() uint64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.dropped
}

// Events returns the retained events oldest-first. The returned slice is a
// copy owned by the caller; the ring keeps recording concurrently.
func (tr *Trace) Events() []Event {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := uint64(len(tr.ring))
	start := uint64(0)
	count := tr.next
	if tr.next > n {
		start = tr.next - n
		count = n
	}
	out := make([]Event, 0, count)
	for s := start; s < tr.next; s++ {
		out = append(out, tr.ring[s%n])
	}
	return out
}

// WriteJSONL exports the retained events as one JSON object per line. The
// events are snapshotted first (see Events), so the writer may be slow
// without blocking recorders; the exported copy does not alias ring memory.
func (tr *Trace) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range tr.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
