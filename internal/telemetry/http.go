package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"
)

// counterDesc maps an exported counter to its metric name and help text.
// Names follow Prometheus conventions: mead_ prefix, _total suffix.
type counterDesc struct {
	name string
	help string
	get  func(*Telemetry) *Counter
}

type gaugeDesc struct {
	name string
	help string
	get  func(*Telemetry) *Gauge
}

type histDesc struct {
	name string
	help string
	get  func(*Telemetry) *Histogram
}

var counterDescs = []counterDesc{
	{"mead_requests_sent_total", "GIOP Requests written by the client (including retransmissions).", func(t *Telemetry) *Counter { return &t.RequestsSent }},
	{"mead_replies_received_total", "GIOP Replies matched to an in-flight request.", func(t *Telemetry) *Counter { return &t.RepliesReceived }},
	{"mead_retransmits_total", "Requests re-sent after NEEDS_ADDRESSING_MODE or a transport swap.", func(t *Telemetry) *Counter { return &t.Retransmits }},
	{"mead_location_forwards_total", "LOCATION_FORWARD replies followed to a new IOR.", func(t *Telemetry) *Counter { return &t.LocationForwards }},
	{"mead_comm_failures_total", "COMM_FAILURE exceptions surfaced to the application.", func(t *Telemetry) *Counter { return &t.CommFailures }},
	{"mead_transients_total", "TRANSIENT exceptions surfaced to the application.", func(t *Telemetry) *Counter { return &t.Transients }},
	{"mead_stale_replies_total", "Replies discarded because no request was in flight.", func(t *Telemetry) *Counter { return &t.StaleReplies }},
	{"mead_conns_opened_total", "Client transports dialed.", func(t *Telemetry) *Counter { return &t.ConnsOpened }},
	{"mead_conn_swaps_total", "Interceptor transport swaps beneath the ORB.", func(t *Telemetry) *Counter { return &t.ConnSwaps }},
	{"mead_mead_failovers_total", "MEAD fail-over frames consumed by the client interceptor.", func(t *Telemetry) *Counter { return &t.MeadFailovers }},
	{"mead_server_requests_total", "Requests dispatched by the server ORB.", func(t *Telemetry) *Counter { return &t.ServerRequests }},
	{"mead_threshold_crossings_total", "Resource thresholds crossed by replicas.", func(t *Telemetry) *Counter { return &t.ThresholdCrossings }},
	{"mead_replicas_killed_total", "Replica departures observed by the recovery manager.", func(t *Telemetry) *Counter { return &t.ReplicasKilled }},
	{"mead_relaunches_total", "Replicas (re)launched by the recovery manager.", func(t *Telemetry) *Counter { return &t.Relaunches }},
	{"mead_multicasts_total", "GCS payload deliveries to members.", func(t *Telemetry) *Counter { return &t.Multicasts }},
	{"mead_view_changes_total", "GCS view changes emitted.", func(t *Telemetry) *Counter { return &t.ViewChanges }},
	{"mead_name_ops_total", "Naming-service operations served.", func(t *Telemetry) *Counter { return &t.NameOps }},
	{"mead_ops_logged_total", "Op records appended to the durable log.", func(t *Telemetry) *Counter { return &t.OpsLogged }},
	{"mead_ops_replayed_total", "Log records replayed during durable recovery.", func(t *Telemetry) *Counter { return &t.OpsReplayed }},
	{"mead_dups_suppressed_total", "Retransmissions answered from the at-most-once dedup table.", func(t *Telemetry) *Counter { return &t.DupsSuppressed }},
	{"mead_checkpoints_persisted_total", "Durable checkpoints written.", func(t *Telemetry) *Counter { return &t.CheckpointsPersisted }},
	{"mead_log_truncations_total", "Damaged durable-log tails truncated at recovery.", func(t *Telemetry) *Counter { return &t.LogTruncations }},
}

var gaugeDescs = []gaugeDesc{
	{"mead_leak_bytes", "Bytes currently consumed by the injected memory leak.", func(t *Telemetry) *Gauge { return &t.LeakBytes }},
	{"mead_leak_capacity_bytes", "Resource-budget capacity the injected leak runs against.", func(t *Telemetry) *Gauge { return &t.LeakCapacity }},
}

var histDescs = []histDesc{
	{"mead_invoke_rtt_seconds", "Client invocation round-trip time.", func(t *Telemetry) *Histogram { return &t.InvokeRTT }},
	{"mead_steady_rtt_seconds", "Fault-free invocation round-trip time.", func(t *Telemetry) *Histogram { return &t.SteadyRTT }},
	{"mead_failover_rtt_seconds", "Round-trip time of invocations spanning a fail-over.", func(t *Telemetry) *Histogram { return &t.FailoverRTT }},
	{"mead_dispatch_seconds", "Server-side servant dispatch duration.", func(t *Telemetry) *Histogram { return &t.DispatchTime }},
}

func promLabels(t *Telemetry) string {
	if t.scheme == "" {
		return ""
	}
	return fmt.Sprintf(`{scheme=%q}`, t.scheme)
}

func seconds(d time.Duration) float64 { return d.Seconds() }

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4). Histograms are rendered as summaries: quantile
// series plus _sum and _count, with durations in seconds.
func (t *Telemetry) WritePrometheus(w io.Writer) error {
	if t == nil {
		return nil
	}
	var b strings.Builder
	labels := promLabels(t)
	for _, d := range counterDescs {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s%s %d\n",
			d.name, d.help, d.name, d.name, labels, d.get(t).Value())
	}
	for _, d := range gaugeDescs {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s%s %d\n",
			d.name, d.help, d.name, d.name, labels, d.get(t).Value())
	}
	for _, d := range histDescs {
		s := d.get(t).Snapshot()
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s summary\n", d.name, d.help, d.name)
		for _, q := range [...]struct {
			q float64
			v time.Duration
		}{{0.5, s.P50()}, {0.99, s.P99()}, {1.0, s.Max}} {
			if t.scheme != "" {
				fmt.Fprintf(&b, "%s{scheme=%q,quantile=\"%g\"} %g\n", d.name, t.scheme, q.q, seconds(q.v))
			} else {
				fmt.Fprintf(&b, "%s{quantile=\"%g\"} %g\n", d.name, q.q, seconds(q.v))
			}
		}
		fmt.Fprintf(&b, "%s_sum%s %g\n%s_count%s %d\n",
			d.name, labels, seconds(s.Sum), d.name, labels, s.Count)
	}
	tr := t.trace
	fmt.Fprintf(&b, "# HELP mead_trace_events_total Recovery events recorded (including overwritten).\n# TYPE mead_trace_events_total counter\nmead_trace_events_total%s %d\n", labels, uint64(tr.Len())+tr.Dropped())
	fmt.Fprintf(&b, "# HELP mead_trace_dropped_total Recovery events overwritten by ring wrap-around.\n# TYPE mead_trace_dropped_total counter\nmead_trace_dropped_total%s %d\n", labels, tr.Dropped())
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonHist is the JSON shape of one histogram.
type jsonHist struct {
	Count uint64 `json:"count"`
	SumNS int64  `json:"sum_ns"`
	Mean  int64  `json:"mean_ns"`
	P50   int64  `json:"p50_ns"`
	P99   int64  `json:"p99_ns"`
	Max   int64  `json:"max_ns"`
}

func histJSON(s Snapshot) jsonHist {
	return jsonHist{
		Count: s.Count,
		SumNS: int64(s.Sum),
		Mean:  int64(s.Mean()),
		P50:   int64(s.P50()),
		P99:   int64(s.P99()),
		Max:   int64(s.Max),
	}
}

// WriteJSON renders every metric as one JSON document.
func (t *Telemetry) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	doc := struct {
		Scheme     string              `json:"scheme,omitempty"`
		Counters   map[string]uint64   `json:"counters"`
		Gauges     map[string]int64    `json:"gauges"`
		Histograms map[string]jsonHist `json:"histograms"`
		TraceLen   int                 `json:"trace_len"`
		TraceDrops uint64              `json:"trace_dropped"`
	}{
		Scheme:     t.scheme,
		Counters:   make(map[string]uint64, len(counterDescs)),
		Gauges:     make(map[string]int64, len(gaugeDescs)),
		Histograms: make(map[string]jsonHist, len(histDescs)),
		TraceLen:   t.trace.Len(),
		TraceDrops: t.trace.Dropped(),
	}
	for _, d := range counterDescs {
		doc.Counters[d.name] = d.get(t).Value()
	}
	for _, d := range gaugeDescs {
		doc.Gauges[d.name] = d.get(t).Value()
	}
	for _, d := range histDescs {
		doc.Histograms[d.name] = histJSON(d.get(t).Snapshot())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Handler returns an http.Handler exposing:
//
//	/metrics       Prometheus text format (JSON with ?format=json or an
//	               Accept: application/json header)
//	/metrics.json  JSON document
//	/trace         recovery-event trace as JSONL
func Handler(t *Telemetry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" ||
			strings.Contains(r.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json")
			_ = t.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = t.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = t.WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if t == nil {
			return
		}
		_ = t.trace.WriteJSONL(w)
	})
	return mux
}

// Server is a running metrics endpoint.
type Server struct {
	ln   net.Listener
	http *http.Server
}

// Serve starts an HTTP metrics endpoint on addr (e.g. ":9464" or
// "127.0.0.1:0"). It returns once the listener is bound; requests are
// served in the background until Close.
func Serve(addr string, t *Telemetry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(t)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, http: srv}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the endpoint.
func (s *Server) Close() error { return s.http.Close() }
