package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestGaugeBasics(t *testing.T) {
	var g Gauge
	g.Set(100)
	g.Add(-30)
	if got := g.Value(); got != 70 {
		t.Fatalf("gauge = %d, want 70", got)
	}
}

func TestNilTelemetryIsNoOp(t *testing.T) {
	var tel *Telemetry
	// Every instrumentation method must be callable on nil.
	tel.RequestSent("a")
	tel.ReplyReceived(time.Millisecond)
	tel.Retransmitted("a")
	tel.ForwardTaken("a")
	tel.CommFailureRaised("r1", "a")
	tel.TransientRaised("r1", "a")
	tel.FailoverReceived("a")
	tel.ConnSwapped("a")
	tel.StaleReply()
	tel.ConnOpened("a")
	tel.Dispatched(time.Microsecond)
	tel.ThresholdCrossed("r1", 80)
	tel.ReplicaKilled("r1")
	tel.Relaunched("r1")
	tel.LeakSample(10, 100)
	tel.Multicast()
	tel.ViewChange()
	tel.NameOp()
	tel.SteadyInvoke(time.Millisecond)
	tel.FailoverInvoke(time.Millisecond)
	if tel.Events() != nil || tel.Trace() != nil || tel.Scheme() != "" {
		t.Fatal("nil accessors not empty")
	}
	var buf bytes.Buffer
	if err := tel.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tel.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTraceRingBounded(t *testing.T) {
	tr := newTrace(4)
	for i := 0; i < 10; i++ {
		tr.record(Event{Kind: EvRequestSent, Value: int64(i)})
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4", len(evs))
	}
	// Oldest-first, retaining the newest 4 with monotonic seqs.
	for i, ev := range evs {
		wantVal, wantSeq := int64(6+i), uint64(6+i)
		if ev.Value != wantVal || ev.Seq != wantSeq {
			t.Fatalf("event %d = {seq %d val %d}, want {seq %d val %d}",
				i, ev.Seq, ev.Value, wantSeq, wantVal)
		}
	}
}

func TestTraceEventFields(t *testing.T) {
	tel := New(WithScheme("mead-message"))
	tel.CommFailureRaised("r2", "127.0.0.1:9000")
	tel.ThresholdCrossed("r1", 83)
	evs := tel.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Kind != EvCommFailure || evs[0].Replica != "r2" ||
		evs[0].Addr != "127.0.0.1:9000" || evs[0].Scheme != "mead-message" {
		t.Fatalf("bad comm-failure event: %+v", evs[0])
	}
	if evs[1].Kind != EvThresholdCrossed || evs[1].Replica != "r1" || evs[1].Value != 83 {
		t.Fatalf("bad threshold event: %+v", evs[1])
	}
	if evs[1].At < evs[0].At {
		t.Fatalf("timestamps not monotonic: %v then %v", evs[0].At, evs[1].At)
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvRequestSent, EvRetransmit, EvCommFailure, EvTransient,
		EvLocationForward, EvMeadFailover, EvConnSwapped, EvThresholdCrossed,
		EvReplicaKilled}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || s == "" {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if EventKind(0).String() != "unknown" || EventKind(200).String() != "unknown" {
		t.Fatal("out-of-range kinds should stringify as unknown")
	}
}

func TestTraceJSONL(t *testing.T) {
	tel := New(WithScheme("reactive"))
	tel.RequestSent("127.0.0.1:1")
	tel.CommFailureRaised("r1", "127.0.0.1:1")
	var buf bytes.Buffer
	if err := tel.Trace().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	if lines[0]["kind"] != "request-sent" || lines[1]["kind"] != "comm-failure" {
		t.Fatalf("kinds = %v, %v", lines[0]["kind"], lines[1]["kind"])
	}
	if lines[1]["replica"] != "r1" || lines[1]["scheme"] != "reactive" {
		t.Fatalf("fields lost in JSONL: %v", lines[1])
	}
}

// TestConcurrentStress hammers counters, histograms, and the trace ring from
// 64 goroutines; run with -race this doubles as the data-race proof, and the
// final counts prove no increments were lost.
func TestConcurrentStress(t *testing.T) {
	const goroutines = 64
	const perG = 2000
	tel := New(WithTraceCapacity(256))
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tel.RequestSent("addr")
				tel.ReplyReceived(time.Duration(i) * time.Microsecond)
				tel.Dispatched(time.Duration(g) * time.Microsecond)
				tel.LeakSample(int64(i), perG)
				if i%100 == 0 {
					tel.ConnSwapped("addr")
					_ = tel.Events()
					_ = tel.InvokeRTT.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	const total = goroutines * perG
	if got := tel.RequestsSent.Value(); got != total {
		t.Fatalf("RequestsSent = %d, want %d", got, total)
	}
	if got := tel.RepliesReceived.Value(); got != total {
		t.Fatalf("RepliesReceived = %d, want %d", got, total)
	}
	s := tel.InvokeRTT.Snapshot()
	if s.Count != total {
		t.Fatalf("histogram count = %d, want %d", s.Count, total)
	}
	var bucketSum uint64
	for _, n := range s.Buckets {
		bucketSum += n
	}
	if bucketSum != total {
		t.Fatalf("bucket sum = %d, want %d", bucketSum, total)
	}
	tr := tel.Trace()
	if got := uint64(tr.Len()) + tr.Dropped(); got != total+total/100 {
		t.Fatalf("trace recorded %d events, want %d", got, total+total/100)
	}
}

func TestPrometheusFormat(t *testing.T) {
	tel := New(WithScheme("lf"))
	tel.RequestSent("a")
	tel.ReplyReceived(2 * time.Millisecond)
	tel.Dispatched(50 * time.Microsecond)
	var buf bytes.Buffer
	if err := tel.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE mead_requests_sent_total counter",
		`mead_requests_sent_total{scheme="lf"} 1`,
		"# TYPE mead_invoke_rtt_seconds summary",
		`mead_invoke_rtt_seconds{scheme="lf",quantile="0.5"}`,
		`mead_invoke_rtt_seconds_count{scheme="lf"} 1`,
		"# TYPE mead_leak_bytes gauge",
		"mead_trace_events_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be "name{labels} value" with a numeric value.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
		var f float64
		if _, err := fmt.Sscanf(fields[1], "%g", &f); err != nil {
			t.Fatalf("non-numeric value in line %q", line)
		}
	}
}

func TestJSONExport(t *testing.T) {
	tel := New(WithScheme("mead-message"))
	tel.ReplyReceived(time.Millisecond)
	tel.SteadyInvoke(time.Millisecond)
	var buf bytes.Buffer
	if err := tel.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Scheme     string                     `json:"scheme"`
		Counters   map[string]uint64          `json:"counters"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Scheme != "mead-message" {
		t.Fatalf("scheme = %q", doc.Scheme)
	}
	if doc.Counters["mead_replies_received_total"] != 1 {
		t.Fatalf("counter missing: %v", doc.Counters)
	}
	if _, ok := doc.Histograms["mead_steady_rtt_seconds"]; !ok {
		t.Fatalf("histogram missing: %v", doc.Histograms)
	}
}

func TestHTTPEndpoint(t *testing.T) {
	tel := New(WithScheme("reactive"))
	tel.RequestSent("a")
	srv, err := Serve("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path, accept string) (string, string) {
		req, _ := http.NewRequest("GET", "http://"+srv.Addr()+path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics", "")
	if !strings.HasPrefix(ct, "text/plain") || !strings.Contains(body, "mead_requests_sent_total") {
		t.Fatalf("/metrics: ct=%q body=%q", ct, body[:min(len(body), 120)])
	}
	body, ct = get("/metrics", "application/json")
	if !strings.HasPrefix(ct, "application/json") || !strings.Contains(body, "counters") {
		t.Fatalf("/metrics (json accept): ct=%q", ct)
	}
	body, _ = get("/metrics.json", "")
	if !strings.Contains(body, "mead_requests_sent_total") {
		t.Fatal("/metrics.json missing counters")
	}
	body, _ = get("/trace", "")
	if !strings.Contains(body, "request-sent") {
		t.Fatalf("/trace missing event: %q", body)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
