package telemetry

import (
	"sync/atomic"
	"unsafe"
)

// counterShards is the number of independent cache lines one Counter
// spreads its increments over. Eight lines absorb the contention of the
// 64-caller pipelined workload without making Value() reads expensive.
const counterShards = 8

// counterShard is one padded slot: the value occupies its own cache line so
// concurrent writers on different shards never false-share.
type counterShard struct {
	v atomic.Uint64
	_ [56]byte // pad to 64 bytes
}

// Counter is a lock-free, shard-striped monotonic counter. The zero value
// is ready to use. Add is wait-free and allocation-free; Value folds the
// shards and may be slightly stale relative to concurrent adders, which is
// fine for metrics.
type Counter struct {
	shards [counterShards]counterShard
}

// shardHint spreads goroutines over shards using the goroutine's stack
// address: stacks are at least a page apart, so the low-ish bits above the
// cache-line bits differ between goroutines. The local never escapes (the
// unsafe.Pointer is converted to uintptr immediately), so this is free.
func shardHint() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b))>>10) & (counterShards - 1)
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	c.shards[shardHint()].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is an instantaneous level (e.g. leaked bytes). The zero value is
// ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }
