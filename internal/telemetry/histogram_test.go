package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	if s.P50() != 0 || s.P99() != 0 || s.Mean() != 0 {
		t.Fatalf("empty quantiles not zero: p50=%v p99=%v mean=%v", s.P50(), s.P99(), s.Mean())
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(1234 * time.Microsecond)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d, want 1", s.Count)
	}
	want := 1234 * time.Microsecond
	if s.Max != want || s.Sum != want {
		t.Fatalf("max=%v sum=%v, want %v", s.Max, s.Sum, want)
	}
	// With one sample every quantile is that sample (clamped to Max).
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != want {
			t.Fatalf("Quantile(%g) = %v, want %v", q, got, want)
		}
	}
}

func TestBucketBoundaries(t *testing.T) {
	// Exact buckets below histSubBuckets.
	for v := int64(0); v < histSubBuckets; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want %d", v, got, v)
		}
		if got := bucketUpper(int(v)); got != v {
			t.Fatalf("bucketUpper(%d) = %d, want %d", v, got, v)
		}
	}
	// Every value must land in a bucket whose upper bound is >= the value
	// and within 1/16 relative error.
	vals := []int64{15, 16, 17, 31, 32, 33, 63, 64, 127, 128, 1000, 4095, 4096,
		1 << 20, (1 << 20) + 1, 1<<36 - 1}
	for _, v := range vals {
		idx := bucketIndex(v)
		if idx == histOverflow {
			t.Fatalf("bucketIndex(%d) overflowed", v)
		}
		up := bucketUpper(idx)
		if up < v {
			t.Fatalf("bucketUpper(bucketIndex(%d)) = %d < value", v, up)
		}
		if float64(up-v) > float64(v)/16+1 {
			t.Fatalf("value %d bucket upper %d: relative error > 1/16", v, up)
		}
		// Bucket indexes must be monotonic in the value.
		if idx2 := bucketIndex(v + 1); idx2 < idx {
			t.Fatalf("bucketIndex not monotonic at %d: %d then %d", v, idx, idx2)
		}
	}
	// Adjacent buckets tile the value space: upper(i)+1 lands in bucket > i.
	for i := 0; i < histOverflow-1; i++ {
		up := bucketUpper(i)
		if got := bucketIndex(up); got != i {
			t.Fatalf("bucketIndex(bucketUpper(%d)=%d) = %d", i, up, got)
		}
		if got := bucketIndex(up + 1); got != i+1 {
			t.Fatalf("bucketIndex(%d+1) = %d, want %d", up, got, i+1)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	huge := time.Duration(1) << 40 // ~18 min, beyond the top finite bucket
	h.Observe(huge)
	h.Observe(time.Millisecond)
	s := h.Snapshot()
	if s.Buckets[histOverflow] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", s.Buckets[histOverflow])
	}
	if s.Max != huge {
		t.Fatalf("max = %v, want %v", s.Max, huge)
	}
	// The top quantile must report the exact observed max, not a bucket bound.
	if got := s.Quantile(1); got != huge {
		t.Fatalf("Quantile(1) = %v, want %v", got, huge)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	s := h.Snapshot()
	if s.Count != 1 || s.Buckets[0] != 1 || s.Sum != 0 {
		t.Fatalf("negative observation not clamped to zero: %+v", s)
	}
}

func TestSnapshotMerge(t *testing.T) {
	var a, b Histogram
	for i := 1; i <= 100; i++ {
		a.Observe(time.Duration(i) * time.Microsecond)
	}
	for i := 101; i <= 200; i++ {
		b.Observe(time.Duration(i) * time.Microsecond)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa
	merged.Merge(sb)
	if merged.Count != 200 {
		t.Fatalf("merged count = %d, want 200", merged.Count)
	}
	if merged.Max != sb.Max {
		t.Fatalf("merged max = %v, want %v", merged.Max, sb.Max)
	}
	if merged.Sum != sa.Sum+sb.Sum {
		t.Fatalf("merged sum = %v, want %v", merged.Sum, sa.Sum+sb.Sum)
	}
	// Merged distribution must equal observing everything in one histogram.
	var all Histogram
	for i := 1; i <= 200; i++ {
		all.Observe(time.Duration(i) * time.Microsecond)
	}
	if got, want := merged.P50(), all.Snapshot().P50(); got != want {
		t.Fatalf("merged p50 = %v, combined p50 = %v", got, want)
	}
}

func TestQuantileMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	for i := 0; i < 5000; i++ {
		h.Observe(time.Duration(rng.Int63n(int64(50 * time.Millisecond))))
	}
	s := h.Snapshot()
	prev := time.Duration(-1)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotonic: Quantile(%g)=%v < previous %v", q, v, prev)
		}
		prev = v
	}
	if s.P50() > s.P99() || s.P99() > s.Max {
		t.Fatalf("p50=%v p99=%v max=%v violate p50<=p99<=max", s.P50(), s.P99(), s.Max)
	}
}

// TestQuantileKnownDistributions checks histogram quantiles against the
// exact sample quantiles of analytically known inputs, within the 1/16
// relative-error bound of log-linear bucketing.
func TestQuantileKnownDistributions(t *testing.T) {
	cases := []struct {
		name string
		gen  func() []int64
	}{
		{"uniform-1..10000", func() []int64 {
			out := make([]int64, 10000)
			for i := range out {
				out[i] = int64(i + 1)
			}
			return out
		}},
		{"exponential", func() []int64 {
			rng := rand.New(rand.NewSource(11))
			out := make([]int64, 20000)
			for i := range out {
				out[i] = int64(rng.ExpFloat64() * 1e6)
			}
			return out
		}},
		{"bimodal", func() []int64 {
			// 95% fast ops near 100µs, 5% slow near 50ms — the classic
			// fail-over-tail shape from the paper's measurements.
			rng := rand.New(rand.NewSource(13))
			out := make([]int64, 10000)
			for i := range out {
				if rng.Float64() < 0.95 {
					out[i] = int64(100_000 + rng.Int63n(10_000))
				} else {
					out[i] = int64(50_000_000 + rng.Int63n(1_000_000))
				}
			}
			return out
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vals := tc.gen()
			var h Histogram
			for _, v := range vals {
				h.Observe(time.Duration(v))
			}
			s := h.Snapshot()
			sorted := append([]int64(nil), vals...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			for _, q := range []float64{0.5, 0.9, 0.99} {
				rank := int(math.Ceil(q*float64(len(sorted)))) - 1
				exact := float64(sorted[rank])
				got := float64(s.Quantile(q))
				if relerr := math.Abs(got-exact) / exact; relerr > 1.0/16+1e-9 {
					t.Fatalf("Quantile(%g) = %v, exact %v, rel err %.4f > 1/16",
						q, got, exact, relerr)
				}
			}
			if got := time.Duration(sorted[len(sorted)-1]); s.Max != got {
				t.Fatalf("max = %v, want %v", s.Max, got)
			}
			exactMean := 0.0
			for _, v := range vals {
				exactMean += float64(v)
			}
			exactMean /= float64(len(vals))
			// Mean is exact up to integer truncation of Sum/Count.
			if diff := math.Abs(float64(s.Mean()) - exactMean); diff > 1 {
				t.Fatalf("mean = %v, exact %v", s.Mean(), exactMean)
			}
		})
	}
}
