package namesvc

import (
	"errors"
	"fmt"
	"testing"

	"mead/internal/giop"
)

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	s := NewServer()
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, NewClient(s.Addr())
}

func testIOR(port uint16) giop.IOR {
	return giop.NewIOR("IDL:mead/TimeOfDay:1.0", "127.0.0.1", port,
		giop.MakeObjectKey("timeofday", "clock"))
}

func TestBindAndResolve(t *testing.T) {
	_, c := startServer(t)
	ior := testIOR(7001)
	if err := c.Bind("timeofday/r1", ior); err != nil {
		t.Fatal(err)
	}
	got, err := c.Resolve("timeofday/r1")
	if err != nil {
		t.Fatal(err)
	}
	addr, err := got.Addr()
	if err != nil || addr != "127.0.0.1:7001" {
		t.Fatalf("resolved addr = %q, %v", addr, err)
	}
}

func TestResolveNotFound(t *testing.T) {
	_, c := startServer(t)
	if _, err := c.Resolve("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestDoubleBindRejected(t *testing.T) {
	_, c := startServer(t)
	if err := c.Bind("n", testIOR(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Bind("n", testIOR(2)); err == nil {
		t.Fatal("double bind accepted")
	}
}

func TestRebindReplaces(t *testing.T) {
	_, c := startServer(t)
	if err := c.Bind("n", testIOR(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Rebind("n", testIOR(2)); err != nil {
		t.Fatal(err)
	}
	got, err := c.Resolve("n")
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := got.IIOP()
	if prof.Port != 2 {
		t.Fatalf("port after rebind = %d", prof.Port)
	}
}

func TestRebindFreshNameWorks(t *testing.T) {
	_, c := startServer(t)
	if err := c.Rebind("fresh", testIOR(9)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resolve("fresh"); err != nil {
		t.Fatal(err)
	}
}

func TestUnbind(t *testing.T) {
	_, c := startServer(t)
	_ = c.Bind("n", testIOR(1))
	if err := c.Unbind("n"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resolve("n"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err after unbind = %v", err)
	}
	if err := c.Unbind("n"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double unbind err = %v", err)
	}
}

func TestListRegistrationOrder(t *testing.T) {
	_, c := startServer(t)
	for i := 1; i <= 3; i++ {
		if err := c.Bind(fmt.Sprintf("timeofday/r%d", i), testIOR(uint16(7000+i))); err != nil {
			t.Fatal(err)
		}
	}
	_ = c.Bind("other/x", testIOR(9000))

	entries, err := c.List("timeofday/")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("listing size = %d, want 3", len(entries))
	}
	for i, e := range entries {
		want := fmt.Sprintf("timeofday/r%d", i+1)
		if e.Name != want {
			t.Fatalf("entry %d = %q, want %q", i, e.Name, want)
		}
	}
}

func TestListOrderStableAcrossRebind(t *testing.T) {
	// A restarted replica rebinds its name; its position in the listing
	// (the "next replica" order) must not change.
	_, c := startServer(t)
	_ = c.Bind("s/r1", testIOR(1))
	_ = c.Bind("s/r2", testIOR(2))
	_ = c.Bind("s/r3", testIOR(3))
	if err := c.Rebind("s/r1", testIOR(100)); err != nil {
		t.Fatal(err)
	}
	entries, err := c.List("s/")
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].Name != "s/r1" {
		t.Fatalf("first entry after rebind = %q", entries[0].Name)
	}
	prof, _ := entries[0].IOR.IIOP()
	if prof.Port != 100 {
		t.Fatalf("rebound IOR port = %d", prof.Port)
	}
}

func TestListEmptyPrefix(t *testing.T) {
	_, c := startServer(t)
	entries, err := c.List("missing/")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("entries = %v", entries)
	}
}

func TestClientAgainstClosedServer(t *testing.T) {
	s, c := startServer(t)
	_ = s.Close()
	if _, err := c.Resolve("x"); err == nil {
		t.Fatal("resolve against closed server succeeded")
	}
}

func TestManyConcurrentClients(t *testing.T) {
	_, c := startServer(t)
	_ = c.Bind("s/r1", testIOR(1))
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			_, err := c.Resolve("s/r1")
			done <- err
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
