package namesvc

import (
	"fmt"
	"io"
	"net"
	"time"

	"mead/internal/cdr"
	"mead/internal/frame"
	"mead/internal/giop"
)

// writeFrame and readFrame adapt the shared length-prefixed framing.
func writeFrame(w io.Writer, payload []byte) error { return frame.Write(w, payload) }
func readFrame(r io.Reader) ([]byte, error)        { return frame.Read(r) }

// readFrameInto is the buffer-recycling variant used by the server's
// receive loop (which copies every field it keeps out of the frame).
func readFrameInto(r io.Reader, buf []byte) (payload, next []byte, err error) {
	return frame.ReadInto(r, buf)
}

// Client talks to the naming service. Each call opens its own connection,
// as a CORBA client resolving through a remote Naming Service would; the
// connection cost is part of the reactive schemes' re-resolution spike that
// the paper measures.
type Client struct {
	addr    string
	timeout time.Duration
}

// NewClient returns a client for the naming service at addr.
func NewClient(addr string) *Client {
	return &Client{addr: addr, timeout: 5 * time.Second}
}

func (c *Client) call(req []byte) (*cdr.Decoder, error) {
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return nil, fmt.Errorf("namesvc: dial %s: %w", c.addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(c.timeout))
	if err := writeFrame(conn, req); err != nil {
		return nil, err
	}
	reply, err := readFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("namesvc: read reply: %w", err)
	}
	return cdr.NewDecoder(reply, cdr.BigEndian), nil
}

func (c *Client) nameOp(op byte, name string, extra ...string) (*cdr.Decoder, byte, error) {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteOctet(op)
	e.WriteString(name)
	for _, s := range extra {
		e.WriteString(s)
	}
	d, err := c.call(e.Bytes())
	if err != nil {
		return nil, 0, err
	}
	st, err := d.ReadOctet()
	if err != nil {
		return nil, 0, err
	}
	return d, st, nil
}

// Bind registers ior under name; it fails if the name is already bound.
func (c *Client) Bind(name string, ior giop.IOR) error {
	return c.bind(opBind, name, ior)
}

// Rebind registers ior under name, replacing any existing binding. Restarted
// replicas use Rebind so their registration order is preserved.
func (c *Client) Rebind(name string, ior giop.IOR) error {
	return c.bind(opRebind, name, ior)
}

func (c *Client) bind(op byte, name string, ior giop.IOR) error {
	d, st, err := c.nameOp(op, name, ior.String())
	if err != nil {
		return err
	}
	switch st {
	case stOK:
		return nil
	case stError:
		msg, _ := d.ReadString()
		return fmt.Errorf("namesvc: bind %q: %s", name, msg)
	default:
		return fmt.Errorf("namesvc: bind %q: unexpected status %d", name, st)
	}
}

// Resolve looks up the IOR bound to name.
func (c *Client) Resolve(name string) (giop.IOR, error) {
	d, st, err := c.nameOp(opResolve, name)
	if err != nil {
		return giop.IOR{}, err
	}
	switch st {
	case stOK:
		s, err := d.ReadString()
		if err != nil {
			return giop.IOR{}, err
		}
		return giop.ParseIOR(s)
	case stNotFound:
		return giop.IOR{}, fmt.Errorf("resolve %q: %w", name, ErrNotFound)
	default:
		return giop.IOR{}, fmt.Errorf("namesvc: resolve %q: unexpected status %d", name, st)
	}
}

// Unbind removes the binding for name.
func (c *Client) Unbind(name string) error {
	_, st, err := c.nameOp(opUnbind, name)
	if err != nil {
		return err
	}
	if st == stNotFound {
		return fmt.Errorf("unbind %q: %w", name, ErrNotFound)
	}
	return nil
}

// List returns all bindings whose names begin with prefix, in registration
// order ("the addresses of the three server replicas" that the cached
// reactive client stores).
func (c *Client) List(prefix string) ([]Entry, error) {
	d, st, err := c.nameOp(opList, prefix)
	if err != nil {
		return nil, err
	}
	if st != stOK {
		return nil, fmt.Errorf("namesvc: list %q: unexpected status %d", prefix, st)
	}
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("namesvc: implausible listing size %d", n)
	}
	entries := make([]Entry, 0, n)
	for i := uint32(0); i < n; i++ {
		name, err := d.ReadString()
		if err != nil {
			return nil, err
		}
		iorStr, err := d.ReadString()
		if err != nil {
			return nil, err
		}
		ior, err := giop.ParseIOR(iorStr)
		if err != nil {
			return nil, fmt.Errorf("namesvc: listing entry %q: %w", name, err)
		}
		entries = append(entries, Entry{Name: name, IOR: ior})
	}
	return entries, nil
}
