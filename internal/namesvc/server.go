// Package namesvc provides the CORBA Naming Service substitute used by the
// reactive recovery baselines: replicas bind their stringified IORs under
// "<service>/<replica>" names, and clients resolve them (paying a visible
// round trip, which is the "spike" the paper measures when reactive clients
// re-resolve references after a failure).
//
// Bindings survive a replica's crash until the restarted replica rebinds:
// that is precisely what creates the stale references that cause the cached
// reactive scheme's TRANSIENT exceptions in the paper (Section 5.2.1).
package namesvc

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"mead/internal/cdr"
	"mead/internal/giop"
	"mead/internal/telemetry"
)

// Wire opcodes.
const (
	opBind    byte = 1
	opRebind  byte = 2
	opResolve byte = 3
	opUnbind  byte = 4
	opList    byte = 5
)

// Reply statuses.
const (
	stOK       byte = 1
	stNotFound byte = 2
	stError    byte = 3
)

// Service errors.
var (
	// ErrNotFound reports an unbound name.
	ErrNotFound = errors.New("namesvc: name not found")
	// ErrAlreadyBound reports a bind over an existing name (use Rebind).
	ErrAlreadyBound = errors.New("namesvc: name already bound")
	// ErrClosed reports use of a closed server or client.
	ErrClosed = errors.New("namesvc: closed")
)

type binding struct {
	name string
	ior  string // stringified IOR
	seq  int    // original registration order, stable across rebinds
}

// Server is the naming service daemon.
type Server struct {
	ln  net.Listener
	wg  sync.WaitGroup
	tel *telemetry.Telemetry // nil-safe; see SetTelemetry

	mu       sync.Mutex
	bindings map[string]*binding
	nextSeq  int
	closed   bool
}

// NewServer returns an unstarted naming service.
func NewServer() *Server {
	return &Server{bindings: make(map[string]*binding)}
}

// SetTelemetry attaches the process telemetry: every naming operation served
// is counted. Call before Start.
func (s *Server) SetTelemetry(t *telemetry.Telemetry) { s.tel = t }

// Start begins serving on addr (e.g. "127.0.0.1:0").
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("namesvc: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop()
	}()
	return nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	if s.ln != nil {
		_ = s.ln.Close()
	}
	s.wg.Wait()
	return nil
}

// bindLocked implements bind/rebind. Rebinding preserves the original
// registration sequence so "next replica" ordering is stable across
// restarts.
func (s *Server) bind(name, ior string, rebind bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.bindings[name]; ok {
		if !rebind {
			return ErrAlreadyBound
		}
		existing.ior = ior
		return nil
	}
	s.bindings[name] = &binding{name: name, ior: ior, seq: s.nextSeq}
	s.nextSeq++
	return nil
}

func (s *Server) resolve(name string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.bindings[name]
	if !ok {
		return "", false
	}
	return b.ior, true
}

func (s *Server) unbind(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.bindings[name]; !ok {
		return false
	}
	delete(s.bindings, name)
	return true
}

// list returns (name, ior) pairs whose names start with prefix, in
// registration order.
func (s *Server) list(prefix string) []binding {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []binding
	for _, b := range s.bindings {
		if strings.HasPrefix(b.name, prefix) {
			out = append(out, *b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	// One reusable frame buffer serves the whole loop: handle() copies every
	// field it keeps (names, IOR strings) out of the frame.
	var buf []byte
	for {
		_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		var frame []byte
		var err error
		frame, buf, err = readFrameInto(conn, buf)
		if err != nil {
			return
		}
		reply, err := s.handle(frame)
		if err != nil {
			return
		}
		if err := writeFrame(conn, reply); err != nil {
			return
		}
	}
}

func (s *Server) handle(frame []byte) ([]byte, error) {
	d := cdr.NewDecoder(frame, cdr.BigEndian)
	op, err := d.ReadOctet()
	if err != nil {
		return nil, err
	}
	s.tel.NameOp()
	e := cdr.NewEncoder(cdr.BigEndian)
	switch op {
	case opBind, opRebind:
		name, err := d.ReadString()
		if err != nil {
			return nil, err
		}
		ior, err := d.ReadString()
		if err != nil {
			return nil, err
		}
		if err := s.bind(name, ior, op == opRebind); err != nil {
			e.WriteOctet(stError)
			e.WriteString(err.Error())
		} else {
			e.WriteOctet(stOK)
		}
	case opResolve:
		name, err := d.ReadString()
		if err != nil {
			return nil, err
		}
		if ior, ok := s.resolve(name); ok {
			e.WriteOctet(stOK)
			e.WriteString(ior)
		} else {
			e.WriteOctet(stNotFound)
		}
	case opUnbind:
		name, err := d.ReadString()
		if err != nil {
			return nil, err
		}
		if s.unbind(name) {
			e.WriteOctet(stOK)
		} else {
			e.WriteOctet(stNotFound)
		}
	case opList:
		prefix, err := d.ReadString()
		if err != nil {
			return nil, err
		}
		entries := s.list(prefix)
		e.WriteOctet(stOK)
		e.WriteULong(uint32(len(entries)))
		for _, b := range entries {
			e.WriteString(b.name)
			e.WriteString(b.ior)
		}
	default:
		return nil, fmt.Errorf("namesvc: unknown op %d", op)
	}
	return e.Bytes(), nil
}

// Entry is one (name, IOR) binding as returned by List.
type Entry struct {
	Name string
	IOR  giop.IOR
}
