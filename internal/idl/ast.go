// Package idl implements the OMG IDL front-end every CORBA deployment
// builds on: a lexer and parser for the IDL subset the MEAD test
// applications need (modules, interfaces with [oneway] operations and
// in/out/inout parameters, structs, enums, sequences, and the basic types),
// plus a Go code generator emitting typed client stubs and server skeletons
// over the mini-ORB in internal/orb. The cmd/mead-idl binary wraps it as
// the command-line IDL compiler.
package idl

import "fmt"

// Kind enumerates IDL type constructors.
type Kind int

// Type kinds.
const (
	KindVoid Kind = iota + 1
	KindBoolean
	KindOctet
	KindShort
	KindUShort
	KindLong
	KindULong
	KindLongLong
	KindULongLong
	KindDouble
	KindString
	KindSequence
	KindNamed // struct or enum reference
)

// Type is an IDL type expression.
type Type struct {
	Kind Kind
	// Elem is the element type for sequences.
	Elem *Type
	// Name is the referenced declaration for KindNamed.
	Name string
}

func (t Type) String() string {
	switch t.Kind {
	case KindVoid:
		return "void"
	case KindBoolean:
		return "boolean"
	case KindOctet:
		return "octet"
	case KindShort:
		return "short"
	case KindUShort:
		return "unsigned short"
	case KindLong:
		return "long"
	case KindULong:
		return "unsigned long"
	case KindLongLong:
		return "long long"
	case KindULongLong:
		return "unsigned long long"
	case KindDouble:
		return "double"
	case KindString:
		return "string"
	case KindSequence:
		return fmt.Sprintf("sequence<%s>", t.Elem)
	case KindNamed:
		return t.Name
	default:
		return fmt.Sprintf("Kind(%d)", int(t.Kind))
	}
}

// Direction is a parameter passing mode.
type Direction int

// Parameter directions.
const (
	DirIn Direction = iota + 1
	DirOut
	DirInOut
)

func (d Direction) String() string {
	switch d {
	case DirIn:
		return "in"
	case DirOut:
		return "out"
	case DirInOut:
		return "inout"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Param is one operation parameter.
type Param struct {
	Dir  Direction
	Type Type
	Name string
}

// Operation is one interface operation.
type Operation struct {
	Name   string
	Ret    Type
	Params []Param
	Oneway bool
	Raises []string
}

// Interface is an IDL interface declaration.
type Interface struct {
	Name string
	Ops  []Operation
}

// Field is one struct member.
type Field struct {
	Type Type
	Name string
}

// Struct is an IDL struct declaration.
type Struct struct {
	Name   string
	Fields []Field
}

// Enum is an IDL enum declaration.
type Enum struct {
	Name    string
	Members []string
}

// Module is an IDL module with its declarations.
type Module struct {
	Name       string
	Interfaces []Interface
	Structs    []Struct
	Enums      []Enum
}

// File is a parsed IDL compilation unit.
type File struct {
	Modules []Module
}

// RepoID derives the CORBA repository id of a declaration.
func RepoID(module, name string) string {
	if module == "" {
		return "IDL:" + name + ":1.0"
	}
	return "IDL:" + module + "/" + name + ":1.0"
}
