package idl

import (
	goparser "go/parser"
	gotoken "go/token"
	"os"
	"strings"
	"testing"
)

const sampleIDL = `
// line comment
/* block
   comment */
module mead {
  enum Health { HEALTHY, DEGRADED, FAILING };

  struct Status {
    string replica;
    Health health;
    unsigned long long counter;
    sequence<octet> payload;
    sequence<string> tags;
  };

  interface TimeOfDay {
    long long time_of_day(out unsigned long long counter, out string replica);
    unsigned long long counter();
    Status status(in string requester);
    double scale(in double factor, inout double value);
    oneway void note(in string message);
  };
};
`

func parseSample(t *testing.T) *File {
	t.Helper()
	f, err := Parse(sampleIDL)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParseSampleShape(t *testing.T) {
	f := parseSample(t)
	if len(f.Modules) != 1 {
		t.Fatalf("modules = %d", len(f.Modules))
	}
	m := f.Modules[0]
	if m.Name != "mead" || len(m.Enums) != 1 || len(m.Structs) != 1 || len(m.Interfaces) != 1 {
		t.Fatalf("module = %+v", m)
	}
	if got := m.Enums[0].Members; len(got) != 3 || got[0] != "HEALTHY" {
		t.Fatalf("enum members = %v", got)
	}
	st := m.Structs[0]
	if st.Fields[2].Type.Kind != KindULongLong {
		t.Fatalf("counter field type = %v", st.Fields[2].Type)
	}
	if st.Fields[3].Type.Kind != KindSequence || st.Fields[3].Type.Elem.Kind != KindOctet {
		t.Fatalf("payload field type = %v", st.Fields[3].Type)
	}
	iface := m.Interfaces[0]
	if len(iface.Ops) != 5 {
		t.Fatalf("ops = %d", len(iface.Ops))
	}
	tod := iface.Ops[0]
	if tod.Name != "time_of_day" || tod.Ret.Kind != KindLongLong || len(tod.Params) != 2 {
		t.Fatalf("time_of_day = %+v", tod)
	}
	if tod.Params[0].Dir != DirOut || tod.Params[0].Type.Kind != KindULongLong {
		t.Fatalf("param 0 = %+v", tod.Params[0])
	}
	scale := iface.Ops[3]
	if scale.Params[1].Dir != DirInOut {
		t.Fatalf("scale param = %+v", scale.Params[1])
	}
	note := iface.Ops[4]
	if !note.Oneway || note.Ret.Kind != KindVoid {
		t.Fatalf("note = %+v", note)
	}
}

func TestParseTopLevelDecls(t *testing.T) {
	f, err := Parse(`interface Ping { void ping(); };`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Modules) != 1 || f.Modules[0].Name != "" {
		t.Fatalf("modules = %+v", f.Modules)
	}
	if RepoID("", "Ping") != "IDL:Ping:1.0" {
		t.Fatal("top-level repo id wrong")
	}
}

func TestParseRaises(t *testing.T) {
	f, err := Parse(`interface I { void op() raises (NotFound, Busy); };`)
	if err != nil {
		t.Fatal(err)
	}
	op := f.Modules[0].Interfaces[0].Ops[0]
	if len(op.Raises) != 2 || op.Raises[0] != "NotFound" || op.Raises[1] != "Busy" {
		t.Fatalf("raises = %v", op.Raises)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unterminated comment": "/* nope",
		"bad char":             "interface I @ {};",
		"missing brace":        "module m  interface I {}; };",
		"missing semicolon":    "interface I { void op() };",
		"oneway with result":   "interface I { oneway long op(); };",
		"oneway with out":      "interface I { oneway void op(out long x); };",
		"void param":           "interface I { void op(in void x); };",
		"unknown named type":   "interface I { Mystery op(); };",
		"dup op":               "interface I { void a(); void a(); };",
		"dup decl":             "module m { struct S { long x; }; enum S { A }; };",
		"void struct field":    "struct S { void x; };",
		"sequence of void":     "struct S { sequence<void> x; };",
		"unsigned garbage":     "struct S { unsigned string x; };",
		"bad direction":        "interface I { void op(sideways long x); };",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Parse(src); err == nil {
				t.Fatalf("accepted %q", src)
			}
		})
	}
}

func TestParseErrorsMentionLine(t *testing.T) {
	_, err := Parse("interface I {\n  void op(\n}")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want line 3", err)
	}
}

func TestTypeStrings(t *testing.T) {
	seq := Type{Kind: KindSequence, Elem: &Type{Kind: KindULong}}
	if seq.String() != "sequence<unsigned long>" {
		t.Fatalf("seq = %q", seq)
	}
	if (Type{Kind: KindNamed, Name: "Foo"}).String() != "Foo" {
		t.Fatal("named type string wrong")
	}
	if DirInOut.String() != "inout" || DirIn.String() != "in" || DirOut.String() != "out" {
		t.Fatal("direction strings wrong")
	}
}

func TestGoName(t *testing.T) {
	cases := map[string]string{
		"time_of_day": "TimeOfDay",
		"counter":     "Counter",
		"HEALTHY":     "HEALTHY",
		"a_b_c":       "ABC",
		"_x":          "X",
		"":            "X",
	}
	for in, want := range cases {
		if got := GoName(in); got != want {
			t.Errorf("GoName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGeneratedCodeParses(t *testing.T) {
	f := parseSample(t)
	code, err := Generate(f, "gen")
	if err != nil {
		t.Fatal(err)
	}
	fset := gotoken.NewFileSet()
	if _, err := goparser.ParseFile(fset, "gen.go", code, 0); err != nil {
		t.Fatalf("generated code does not parse: %v", err)
	}
	for _, want := range []string{
		"const TimeOfDayTypeID = \"IDL:mead/TimeOfDay:1.0\"",
		"type TimeOfDay interface",
		"func NewTimeOfDayServant(impl TimeOfDay) orb.Servant",
		"type TimeOfDayStub struct",
		"type Status struct",
		"type Health int32",
		"HealthHEALTHY",
		"InvokeOneWay(\"note\"",
	} {
		if !strings.Contains(string(code), want) {
			t.Errorf("generated code missing %q", want)
		}
	}
}

func TestCheckedInStubMatchesGenerator(t *testing.T) {
	// The example's generated package must stay in sync with the
	// generator (the moral equivalent of a go:generate diff check).
	src, err := os.ReadFile("../../examples/idlstub/timeofday.idl")
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Generate(f, "gen")
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile("../../examples/idlstub/gen/gen.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("examples/idlstub/gen/gen.go is stale; regenerate with cmd/mead-idl")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	f := parseSample(t)
	a, err := Generate(f, "gen")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(f, "gen")
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("generator output is nondeterministic")
	}
}
