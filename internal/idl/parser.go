package idl

import (
	"fmt"
)

// Parse parses an IDL compilation unit.
func Parse(src string) (*File, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	f := &File{}
	topLevel := Module{Name: ""}
	for p.tok.kind != tokEOF {
		switch {
		case p.isKeyword("module"):
			m, err := p.parseModule()
			if err != nil {
				return nil, err
			}
			f.Modules = append(f.Modules, m)
		case p.isKeyword("interface"), p.isKeyword("struct"), p.isKeyword("enum"):
			if err := p.parseDeclInto(&topLevel); err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf("expected module, interface, struct or enum, found %q", p.tok.text)
		}
	}
	if len(topLevel.Interfaces)+len(topLevel.Structs)+len(topLevel.Enums) > 0 {
		f.Modules = append(f.Modules, topLevel)
	}
	if err := check(f); err != nil {
		return nil, err
	}
	return f, nil
}

type parser struct {
	lx  *lexer
	tok token
}

func (p *parser) advance() error {
	tok, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("idl: line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == tokIdent && p.tok.text == kw
}

// expectIdent consumes and returns a (non-keyword) identifier.
func (p *parser) expectIdent(what string) (string, error) {
	if p.tok.kind != tokIdent {
		return "", p.errorf("expected %s, found %q", what, p.tok.text)
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return "", err
	}
	return name, nil
}

// expectPunct consumes the given punctuation.
func (p *parser) expectPunct(text string) error {
	if p.tok.kind != tokPunct || p.tok.text != text {
		return p.errorf("expected %q, found %q", text, p.tok.text)
	}
	return p.advance()
}

func (p *parser) acceptPunct(text string) (bool, error) {
	if p.tok.kind == tokPunct && p.tok.text == text {
		return true, p.advance()
	}
	return false, nil
}

func (p *parser) acceptKeyword(kw string) (bool, error) {
	if p.isKeyword(kw) {
		return true, p.advance()
	}
	return false, nil
}

func (p *parser) parseModule() (Module, error) {
	if err := p.advance(); err != nil { // consume "module"
		return Module{}, err
	}
	name, err := p.expectIdent("module name")
	if err != nil {
		return Module{}, err
	}
	m := Module{Name: name}
	if err := p.expectPunct("{"); err != nil {
		return Module{}, err
	}
	for {
		if done, err := p.acceptPunct("}"); err != nil {
			return Module{}, err
		} else if done {
			break
		}
		if err := p.parseDeclInto(&m); err != nil {
			return Module{}, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return Module{}, err
	}
	return m, nil
}

func (p *parser) parseDeclInto(m *Module) error {
	switch {
	case p.isKeyword("interface"):
		iface, err := p.parseInterface()
		if err != nil {
			return err
		}
		m.Interfaces = append(m.Interfaces, iface)
	case p.isKeyword("struct"):
		st, err := p.parseStruct()
		if err != nil {
			return err
		}
		m.Structs = append(m.Structs, st)
	case p.isKeyword("enum"):
		en, err := p.parseEnum()
		if err != nil {
			return err
		}
		m.Enums = append(m.Enums, en)
	default:
		return p.errorf("expected interface, struct or enum, found %q", p.tok.text)
	}
	return nil
}

func (p *parser) parseInterface() (Interface, error) {
	if err := p.advance(); err != nil { // consume "interface"
		return Interface{}, err
	}
	name, err := p.expectIdent("interface name")
	if err != nil {
		return Interface{}, err
	}
	iface := Interface{Name: name}
	if err := p.expectPunct("{"); err != nil {
		return Interface{}, err
	}
	for {
		if done, err := p.acceptPunct("}"); err != nil {
			return Interface{}, err
		} else if done {
			break
		}
		op, err := p.parseOperation()
		if err != nil {
			return Interface{}, err
		}
		iface.Ops = append(iface.Ops, op)
	}
	if err := p.expectPunct(";"); err != nil {
		return Interface{}, err
	}
	return iface, nil
}

func (p *parser) parseOperation() (Operation, error) {
	var op Operation
	oneway, err := p.acceptKeyword("oneway")
	if err != nil {
		return op, err
	}
	op.Oneway = oneway
	ret, err := p.parseType()
	if err != nil {
		return op, err
	}
	op.Ret = ret
	if op.Name, err = p.expectIdent("operation name"); err != nil {
		return op, err
	}
	if err := p.expectPunct("("); err != nil {
		return op, err
	}
	for {
		if done, err := p.acceptPunct(")"); err != nil {
			return op, err
		} else if done {
			break
		}
		if len(op.Params) > 0 {
			if err := p.expectPunct(","); err != nil {
				return op, err
			}
		}
		param, err := p.parseParam()
		if err != nil {
			return op, err
		}
		op.Params = append(op.Params, param)
	}
	if got, err := p.acceptKeyword("raises"); err != nil {
		return op, err
	} else if got {
		if err := p.expectPunct("("); err != nil {
			return op, err
		}
		for {
			exc, err := p.expectIdent("exception name")
			if err != nil {
				return op, err
			}
			op.Raises = append(op.Raises, exc)
			if more, err := p.acceptPunct(","); err != nil {
				return op, err
			} else if !more {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return op, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return op, err
	}
	if op.Oneway && (op.Ret.Kind != KindVoid || len(op.Params) > 0 && hasOutParams(op.Params)) {
		return op, p.errorf("oneway operation %s must return void and have no out parameters", op.Name)
	}
	return op, nil
}

func hasOutParams(params []Param) bool {
	for _, pa := range params {
		if pa.Dir != DirIn {
			return true
		}
	}
	return false
}

func (p *parser) parseParam() (Param, error) {
	var pa Param
	switch {
	case p.isKeyword("in"):
		pa.Dir = DirIn
	case p.isKeyword("out"):
		pa.Dir = DirOut
	case p.isKeyword("inout"):
		pa.Dir = DirInOut
	default:
		return pa, p.errorf("expected parameter direction, found %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return pa, err
	}
	t, err := p.parseType()
	if err != nil {
		return pa, err
	}
	pa.Type = t
	if pa.Name, err = p.expectIdent("parameter name"); err != nil {
		return pa, err
	}
	return pa, nil
}

func (p *parser) parseStruct() (Struct, error) {
	if err := p.advance(); err != nil { // consume "struct"
		return Struct{}, err
	}
	name, err := p.expectIdent("struct name")
	if err != nil {
		return Struct{}, err
	}
	st := Struct{Name: name}
	if err := p.expectPunct("{"); err != nil {
		return Struct{}, err
	}
	for {
		if done, err := p.acceptPunct("}"); err != nil {
			return Struct{}, err
		} else if done {
			break
		}
		t, err := p.parseType()
		if err != nil {
			return Struct{}, err
		}
		fieldName, err := p.expectIdent("field name")
		if err != nil {
			return Struct{}, err
		}
		if err := p.expectPunct(";"); err != nil {
			return Struct{}, err
		}
		st.Fields = append(st.Fields, Field{Type: t, Name: fieldName})
	}
	if err := p.expectPunct(";"); err != nil {
		return Struct{}, err
	}
	return st, nil
}

func (p *parser) parseEnum() (Enum, error) {
	if err := p.advance(); err != nil { // consume "enum"
		return Enum{}, err
	}
	name, err := p.expectIdent("enum name")
	if err != nil {
		return Enum{}, err
	}
	en := Enum{Name: name}
	if err := p.expectPunct("{"); err != nil {
		return Enum{}, err
	}
	for {
		member, err := p.expectIdent("enum member")
		if err != nil {
			return Enum{}, err
		}
		en.Members = append(en.Members, member)
		if more, err := p.acceptPunct(","); err != nil {
			return Enum{}, err
		} else if !more {
			break
		}
	}
	if err := p.expectPunct("}"); err != nil {
		return Enum{}, err
	}
	if err := p.expectPunct(";"); err != nil {
		return Enum{}, err
	}
	return en, nil
}

// parseType parses a type expression.
func (p *parser) parseType() (Type, error) {
	if p.tok.kind != tokIdent {
		return Type{}, p.errorf("expected type, found %q", p.tok.text)
	}
	switch p.tok.text {
	case "void":
		return p.simple(KindVoid)
	case "boolean":
		return p.simple(KindBoolean)
	case "octet":
		return p.simple(KindOctet)
	case "short":
		return p.simple(KindShort)
	case "double":
		return p.simple(KindDouble)
	case "string":
		return p.simple(KindString)
	case "long":
		if err := p.advance(); err != nil {
			return Type{}, err
		}
		if p.isKeyword("long") {
			if err := p.advance(); err != nil {
				return Type{}, err
			}
			return Type{Kind: KindLongLong}, nil
		}
		return Type{Kind: KindLong}, nil
	case "unsigned":
		if err := p.advance(); err != nil {
			return Type{}, err
		}
		switch {
		case p.isKeyword("short"):
			if err := p.advance(); err != nil {
				return Type{}, err
			}
			return Type{Kind: KindUShort}, nil
		case p.isKeyword("long"):
			if err := p.advance(); err != nil {
				return Type{}, err
			}
			if p.isKeyword("long") {
				if err := p.advance(); err != nil {
					return Type{}, err
				}
				return Type{Kind: KindULongLong}, nil
			}
			return Type{Kind: KindULong}, nil
		default:
			return Type{}, p.errorf("expected short or long after unsigned, found %q", p.tok.text)
		}
	case "sequence":
		if err := p.advance(); err != nil {
			return Type{}, err
		}
		if err := p.expectPunct("<"); err != nil {
			return Type{}, err
		}
		elem, err := p.parseType()
		if err != nil {
			return Type{}, err
		}
		if elem.Kind == KindVoid || elem.Kind == KindSequence {
			return Type{}, p.errorf("unsupported sequence element type %s", elem)
		}
		if err := p.expectPunct(">"); err != nil {
			return Type{}, err
		}
		return Type{Kind: KindSequence, Elem: &elem}, nil
	default:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return Type{}, err
		}
		return Type{Kind: KindNamed, Name: name}, nil
	}
}

func (p *parser) simple(k Kind) (Type, error) {
	if err := p.advance(); err != nil {
		return Type{}, err
	}
	return Type{Kind: k}, nil
}

// check validates cross-references and name uniqueness.
func check(f *File) error {
	for _, m := range f.Modules {
		names := make(map[string]string)
		declare := func(kind, name string) error {
			if prev, dup := names[name]; dup {
				return fmt.Errorf("idl: module %q: %s %q redeclares %s", m.Name, kind, name, prev)
			}
			names[name] = kind
			return nil
		}
		for _, st := range m.Structs {
			if err := declare("struct", st.Name); err != nil {
				return err
			}
		}
		for _, en := range m.Enums {
			if err := declare("enum", en.Name); err != nil {
				return err
			}
		}
		for _, iface := range m.Interfaces {
			if err := declare("interface", iface.Name); err != nil {
				return err
			}
		}
		resolve := func(t Type, where string) error {
			for t.Kind == KindSequence {
				t = *t.Elem
			}
			if t.Kind != KindNamed {
				return nil
			}
			if kind := names[t.Name]; kind != "struct" && kind != "enum" {
				return fmt.Errorf("idl: module %q: %s references unknown type %q", m.Name, where, t.Name)
			}
			return nil
		}
		for _, st := range m.Structs {
			for _, field := range st.Fields {
				if field.Type.Kind == KindVoid {
					return fmt.Errorf("idl: module %q: struct %s field %s cannot be void", m.Name, st.Name, field.Name)
				}
				if err := resolve(field.Type, "struct "+st.Name); err != nil {
					return err
				}
			}
		}
		for _, iface := range m.Interfaces {
			opNames := make(map[string]bool)
			for _, op := range iface.Ops {
				if opNames[op.Name] {
					return fmt.Errorf("idl: interface %s: duplicate operation %q", iface.Name, op.Name)
				}
				opNames[op.Name] = true
				if err := resolve(op.Ret, "operation "+op.Name); err != nil {
					return err
				}
				for _, pa := range op.Params {
					if pa.Type.Kind == KindVoid {
						return fmt.Errorf("idl: operation %s: parameter %s cannot be void", op.Name, pa.Name)
					}
					if err := resolve(pa.Type, "operation "+op.Name); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}
