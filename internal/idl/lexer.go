package idl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token classes.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokPunct // one of { } ( ) ; , < >
)

type token struct {
	kind tokenKind
	text string
	line int
}

// lexer tokenizes IDL source. Keywords are ordinary identifiers; the parser
// distinguishes them.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1}
}

// errorf builds a positioned lexical/syntax error.
func (lx *lexer) errorf(line int, format string, args ...interface{}) error {
	return fmt.Errorf("idl: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.peekAt(1) == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.peekAt(1) == '*':
			end := strings.Index(lx.src[lx.pos+2:], "*/")
			if end < 0 {
				return token{}, lx.errorf(lx.line, "unterminated block comment")
			}
			lx.line += strings.Count(lx.src[lx.pos:lx.pos+2+end+2], "\n")
			lx.pos += 2 + end + 2
		default:
			return lx.lexToken()
		}
	}
	return token{kind: tokEOF, line: lx.line}, nil
}

func (lx *lexer) peekAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *lexer) lexToken() (token, error) {
	c := lx.src[lx.pos]
	if strings.ContainsRune("{}();,<>", rune(c)) {
		lx.pos++
		return token{kind: tokPunct, text: string(c), line: lx.line}, nil
	}
	if isIdentStart(rune(c)) {
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(rune(lx.src[lx.pos])) {
			lx.pos++
		}
		return token{kind: tokIdent, text: lx.src[start:lx.pos], line: lx.line}, nil
	}
	return token{}, lx.errorf(lx.line, "unexpected character %q", c)
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
