package gcs

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"mead/internal/cdr"
)

// DeliveryKind distinguishes the event types a member receives.
type DeliveryKind int

// Delivery kinds.
const (
	// DeliverData is a totally-ordered group multicast (including the
	// member's own sends: self-delivery, as in Spread).
	DeliverData DeliveryKind = iota + 1
	// DeliverView is a membership-change notification.
	DeliverView
	// DeliverPrivate is a point-to-point message addressed to this
	// member's private name.
	DeliverPrivate
)

// View is a group membership snapshot. Members are in join order: the first
// entry is the oldest member, which MEAD uses as the coordinator/primary
// ("the first replica listed in Spread's group-membership list").
type View struct {
	Group   string
	ID      uint64
	Seq     uint64
	Members []string
}

// Primary returns the oldest member, or "" for an empty view.
func (v View) Primary() string {
	if len(v.Members) == 0 {
		return ""
	}
	return v.Members[0]
}

// Delivery is one ordered event from the group-communication system.
type Delivery struct {
	Kind    DeliveryKind
	Group   string // data and view deliveries
	Seq     uint64 // data and view deliveries
	Sender  string // data and private deliveries
	Payload []byte // data and private deliveries
	View    View   // view deliveries
}

// Member errors.
var (
	// ErrMemberClosed reports use of a closed member connection.
	ErrMemberClosed = errors.New("gcs: member closed")
	// ErrDenied reports a hub-rejected connection (duplicate name).
	ErrDenied = errors.New("gcs: connection denied by hub")
)

// Member is one endpoint of the group-communication system.
type Member struct {
	name string
	conn net.Conn

	deliveries chan Delivery

	writeMu sync.Mutex
	mu      sync.Mutex
	closed  bool
	quit    chan struct{}
	done    chan struct{}
}

// DialFunc opens the member's transport to the hub; the chaos harness
// substitutes netfault's injecting dialer (default net.DialTimeout).
type DialFunc func(network, addr string, timeout time.Duration) (net.Conn, error)

// Dial connects to the hub at addr and registers under the given unique
// member name.
func Dial(addr, name string) (*Member, error) {
	return DialWith(net.DialTimeout, addr, name)
}

// DialWith is Dial with an explicit transport dialer, so group
// communication runs over an injectable wire too.
func DialWith(dial DialFunc, addr, name string) (*Member, error) {
	conn, err := dial("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("gcs: dial hub %s: %w", addr, err)
	}
	m := &Member{
		name:       name,
		conn:       conn,
		deliveries: make(chan Delivery, 1024),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	if err := writeFrame(conn, encodeHello(name)); err != nil {
		_ = conn.Close()
		return nil, err
	}
	go m.readLoop()
	return m, nil
}

// Name returns the member's private name.
func (m *Member) Name() string { return m.name }

// Deliveries returns the ordered event stream. The channel is closed when
// the member disconnects.
func (m *Member) Deliveries() <-chan Delivery { return m.deliveries }

// Done is closed when the member's connection to the hub is gone.
func (m *Member) Done() <-chan struct{} { return m.done }

// Join subscribes the member to a group; the hub responds with a View.
func (m *Member) Join(group string) error {
	return m.send(encodeGroupOp(opJoin, group))
}

// Leave unsubscribes the member from a group.
func (m *Member) Leave(group string) error {
	return m.send(encodeGroupOp(opLeave, group))
}

// Multicast sends payload to all current members of group, in total order.
// Spread-style open-group semantics: the sender need not be a member.
func (m *Member) Multicast(group string, payload []byte) error {
	return m.send(encodeMcast(group, payload))
}

// Send delivers payload to one member's private name.
func (m *Member) Send(target string, payload []byte) error {
	return m.send(encodeSend(target, payload))
}

func (m *Member) send(frame []byte) error {
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return ErrMemberClosed
	}
	m.writeMu.Lock()
	defer m.writeMu.Unlock()
	if err := writeFrame(m.conn, frame); err != nil {
		return fmt.Errorf("gcs: member %s send: %w", m.name, err)
	}
	return nil
}

// Close disconnects from the hub. The hub will remove the member from all
// groups and emit views, exactly as for a crash.
func (m *Member) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.quit)
	m.mu.Unlock()
	return m.conn.Close()
}

func (m *Member) readLoop() {
	defer func() {
		m.mu.Lock()
		if !m.closed {
			m.closed = true
			close(m.quit)
		}
		m.mu.Unlock()
		_ = m.conn.Close()
		close(m.deliveries)
		close(m.done)
	}()
	// One reusable frame buffer serves the whole loop: every Delivery field
	// below is copied out of the frame by the CDR reads.
	var buf []byte
	for {
		var frame []byte
		var err error
		frame, buf, err = readFrameInto(m.conn, buf)
		if err != nil {
			return
		}
		d := cdr.NewDecoder(frame, cdr.BigEndian)
		op, err := d.ReadOctet()
		if err != nil {
			return
		}
		var dv Delivery
		switch op {
		case opDeliver:
			dv.Kind = DeliverData
			if dv.Group, err = d.ReadString(); err != nil {
				return
			}
			if dv.Seq, err = d.ReadULongLong(); err != nil {
				return
			}
			if dv.Sender, err = d.ReadString(); err != nil {
				return
			}
			if dv.Payload, err = d.ReadOctets(); err != nil {
				return
			}
		case opView:
			dv.Kind = DeliverView
			v := View{}
			if v.Group, err = d.ReadString(); err != nil {
				return
			}
			if v.ID, err = d.ReadULongLong(); err != nil {
				return
			}
			if v.Seq, err = d.ReadULongLong(); err != nil {
				return
			}
			n, err := d.ReadULong()
			if err != nil || n > 4096 {
				return
			}
			for i := uint32(0); i < n; i++ {
				member, err := d.ReadString()
				if err != nil {
					return
				}
				v.Members = append(v.Members, member)
			}
			dv.Group = v.Group
			dv.Seq = v.Seq
			dv.View = v
		case opPrivate:
			dv.Kind = DeliverPrivate
			if dv.Sender, err = d.ReadString(); err != nil {
				return
			}
			if dv.Payload, err = d.ReadOctets(); err != nil {
				return
			}
		case opDenied:
			return
		default:
			return
		}
		select {
		case m.deliveries <- dv:
		case <-m.quit:
			return
		}
	}
}
