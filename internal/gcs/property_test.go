package gcs

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// propertySeed is the single explicit seed behind every PRNG in the
// property tests: per-goroutine streams derive from it by index, so a run
// is reproducible end to end from this one constant.
const propertySeed int64 = 42

// TestPropertyTotalOrderUnderConcurrency: N members multicast concurrently;
// every member must observe the identical (seq, sender, payload) sequence —
// the total-order invariant everything above the GCS depends on.
func TestPropertyTotalOrderUnderConcurrency(t *testing.T) {
	h := startHub(t)
	const (
		members   = 5
		perSender = 40
	)
	ms := make([]*Member, members)
	for i := range ms {
		ms[i] = dial(t, h, fmt.Sprintf("p%d", i))
		if err := ms[i].Join("g"); err != nil {
			t.Fatal(err)
		}
		nextOfKind(t, ms[i], DeliverView)
	}
	// Drain the remaining join views so only data remains afterwards.
	drainViews := func(m *Member, joinsAfter int) {
		for i := 0; i < joinsAfter; i++ {
			nextOfKind(t, m, DeliverView)
		}
	}
	for i, m := range ms {
		drainViews(m, members-1-i)
	}

	var wg sync.WaitGroup
	for i, m := range ms {
		wg.Add(1)
		go func(idx int, m *Member) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(propertySeed + int64(idx)))
			for k := 0; k < perSender; k++ {
				payload := fmt.Sprintf("m%d-%d", idx, k)
				if err := m.Multicast("g", []byte(payload)); err != nil {
					return
				}
				if rng.Intn(4) == 0 {
					time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
				}
			}
		}(i, m)
	}
	wg.Wait()

	total := members * perSender
	sequences := make([][]string, members)
	for i, m := range ms {
		for len(sequences[i]) < total {
			d := nextOfKind(t, m, DeliverData)
			sequences[i] = append(sequences[i], fmt.Sprintf("%d:%s:%s", d.Seq, d.Sender, d.Payload))
		}
	}
	for i := 1; i < members; i++ {
		for k := 0; k < total; k++ {
			if sequences[i][k] != sequences[0][k] {
				t.Fatalf("member %d diverges at %d: %q vs %q",
					i, k, sequences[i][k], sequences[0][k])
			}
		}
	}
	// FIFO per sender: each sender's messages appear in send order.
	for idx := 0; idx < members; idx++ {
		sender := fmt.Sprintf("p%d", idx)
		wantNext := 0
		for _, entry := range sequences[0] {
			// entry format is "seq:sender:payload".
			var seq uint64
			var senderIdx, k int
			if n, _ := fmt.Sscanf(entry, "%d:"+sender+":m%d-%d", &seq, &senderIdx, &k); n == 3 && senderIdx == idx {
				if k != wantNext {
					t.Fatalf("sender %s message %d out of order (want %d): %s",
						sender, k, wantNext, entry)
				}
				wantNext++
			}
		}
		if wantNext != perSender {
			t.Fatalf("sender %s: only %d/%d messages matched", sender, wantNext, perSender)
		}
	}
}

// TestPropertySelfDeliveryCountExact: a member's own multicasts are
// delivered back exactly once each.
func TestPropertySelfDeliveryCountExact(t *testing.T) {
	h := startHub(t)
	m := dial(t, h, "solo")
	if err := m.Join("g"); err != nil {
		t.Fatal(err)
	}
	nextOfKind(t, m, DeliverView)
	const n = 100
	for i := 0; i < n; i++ {
		if err := m.Multicast("g", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[byte]int)
	for i := 0; i < n; i++ {
		d := nextOfKind(t, m, DeliverData)
		seen[d.Payload[0]]++
	}
	for i := 0; i < n; i++ {
		if seen[byte(i)] != 1 {
			t.Fatalf("message %d delivered %d times", i, seen[byte(i)])
		}
	}
}

// TestPropertyViewsMonotonic: view IDs strictly increase at every member.
func TestPropertyViewsMonotonic(t *testing.T) {
	h := startHub(t)
	watcher := dial(t, h, "w")
	if err := watcher.Join("g"); err != nil {
		t.Fatal(err)
	}
	// Generate churn: members joining and leaving.
	for i := 0; i < 6; i++ {
		m := dial(t, h, fmt.Sprintf("churn%d", i))
		if err := m.Join("g"); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			_ = m.Leave("g")
		}
	}
	var last uint64
	views := 0
	timeout := time.After(5 * time.Second)
	for views < 8 { // 1 own join + 6 joins + >=1 leave
		select {
		case d, ok := <-watcher.Deliveries():
			if !ok {
				t.Fatal("watcher disconnected")
			}
			if d.Kind != DeliverView {
				continue
			}
			if d.View.ID <= last && last != 0 {
				t.Fatalf("view id went %d -> %d", last, d.View.ID)
			}
			last = d.View.ID
			views++
		case <-timeout:
			t.Fatalf("only %d views observed", views)
		}
	}
}
