package gcs

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"mead/internal/cdr"
	"mead/internal/telemetry"
)

// Hub is the group-communication sequencer: the single point through which
// all multicasts flow, which is what gives the system total order per group
// and a consistent, ordered view of membership changes. It plays the role of
// the Spread daemon in the paper's deployment.
type Hub struct {
	ln     net.Listener
	events chan hubEvent
	done   chan struct{}
	loop   chan struct{} // closed when the run loop exits

	delay  time.Duration // artificial delivery latency (LAN emulation)
	jitter time.Duration // uniform random extra latency per delivery
	wrap   func(net.Conn) net.Conn
	tel    *telemetry.Telemetry // nil-safe; see WithHubTelemetry

	rngMu sync.Mutex
	rng   *rand.Rand

	mu      sync.Mutex
	conns   map[string]*hubConn
	groups  map[string]*hubGroup
	traffic map[string]uint64 // on-wire bytes per group
	started time.Time
	closed  bool

	wg sync.WaitGroup
}

type hubGroup struct {
	seq     uint64
	viewID  uint64
	members []string // join order; index 0 is the oldest member
}

type hubConn struct {
	name string
	conn net.Conn
	out  chan outFrame
	quit chan struct{}
}

// outFrame is a queued delivery with its earliest send time (due is zero
// when no artificial latency is configured).
type outFrame struct {
	frame []byte
	due   time.Time
}

// HubOption configures a Hub.
type HubOption interface{ applyHub(*Hub) }

type hubOptionFunc func(*Hub)

func (f hubOptionFunc) applyHub(h *Hub) { f(h) }

// WithConnWrapper interposes w on every accepted member connection (the
// chaos harness's injection point for hub-side wire faults).
func WithConnWrapper(w func(net.Conn) net.Conn) HubOption {
	return hubOptionFunc(func(h *Hub) { h.wrap = w })
}

// WithDeliveryDelay adds a fixed latency to every hub-to-member delivery,
// emulating a LAN hop (the paper's Emulab network) instead of loopback.
// The NEEDS_ADDRESSING scheme's failure window — the race between the
// client's 10 ms group query and membership agreement — only opens with
// realistic delivery latency.
func WithDeliveryDelay(d time.Duration) HubOption {
	return hubOptionFunc(func(h *Hub) { h.delay = d })
}

// WithDeliveryJitter adds a uniform random extra latency in [0, j) to each
// delivery, making latency-sensitive races (the paper's partial
// NEEDS_ADDRESSING failure rate) stochastic rather than all-or-nothing.
// The seed keeps runs reproducible.
func WithDeliveryJitter(j time.Duration, seed int64) HubOption {
	return hubOptionFunc(func(h *Hub) {
		h.jitter = j
		h.rng = rand.New(rand.NewSource(seed))
	})
}

// WithHubTelemetry attaches the process telemetry: the hub counts data
// multicasts delivered and views emitted.
func WithHubTelemetry(t *telemetry.Telemetry) HubOption {
	return hubOptionFunc(func(h *Hub) { h.tel = t })
}

type hubEventKind int

const (
	evRegister hubEventKind = iota + 1
	evJoin
	evLeave
	evMcast
	evSend
	evGone
)

type hubEvent struct {
	kind    hubEventKind
	hc      *hubConn
	group   string
	target  string
	payload []byte
}

// NewHub returns an unstarted Hub.
func NewHub(opts ...HubOption) *Hub {
	h := &Hub{
		events:  make(chan hubEvent, 256),
		done:    make(chan struct{}),
		loop:    make(chan struct{}),
		conns:   make(map[string]*hubConn),
		groups:  make(map[string]*hubGroup),
		traffic: make(map[string]uint64),
	}
	for _, o := range opts {
		o.applyHub(h)
	}
	return h
}

// Start begins listening on addr (e.g. "127.0.0.1:0") and serving members.
func (h *Hub) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("gcs: hub listen: %w", err)
	}
	h.ln = ln
	h.started = time.Now()
	h.wg.Add(2)
	go func() {
		defer h.wg.Done()
		h.acceptLoop()
	}()
	go func() {
		defer h.wg.Done()
		h.run()
	}()
	return nil
}

// Addr returns the hub's listen address.
func (h *Hub) Addr() string {
	if h.ln == nil {
		return ""
	}
	return h.ln.Addr().String()
}

// Close shuts the hub down and waits for its goroutines to exit.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	h.mu.Unlock()
	close(h.done)
	if h.ln != nil {
		_ = h.ln.Close()
	}
	h.wg.Wait()
	return nil
}

// GroupTraffic returns the cumulative on-wire bytes exchanged for the given
// group (multicasts received plus deliveries and views sent) and the hub
// start time, from which callers derive bytes/second for Figure 5.
func (h *Hub) GroupTraffic(group string) (bytes uint64, since time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.traffic[group], h.started
}

// ResetTraffic zeroes the per-group byte counters and restarts the
// accounting clock, so an experiment can scope bandwidth to its run.
func (h *Hub) ResetTraffic() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.traffic = make(map[string]uint64)
	h.started = time.Now()
}

// Members returns the current membership of a group in join order.
func (h *Hub) Members(group string) []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	g := h.groups[group]
	if g == nil {
		return nil
	}
	out := make([]string, len(g.members))
	copy(out, g.members)
	return out
}

func (h *Hub) acceptLoop() {
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if h.wrap != nil {
			conn = h.wrap(conn)
		}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			h.handshake(conn)
		}()
	}
}

// handshake reads the member's hello, registers it, then runs its read loop.
func (h *Hub) handshake(conn net.Conn) {
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	frame, err := readFrame(conn)
	if err != nil {
		_ = conn.Close()
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	d := cdr.NewDecoder(frame, cdr.BigEndian)
	op, err := d.ReadOctet()
	if err != nil || op != opHello {
		_ = conn.Close()
		return
	}
	name, err := d.ReadString()
	if err != nil || name == "" {
		_ = conn.Close()
		return
	}

	hc := &hubConn{
		name: name,
		conn: conn,
		out:  make(chan outFrame, 1024),
		quit: make(chan struct{}),
	}

	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		_ = conn.Close()
		return
	}
	if _, dup := h.conns[name]; dup {
		h.mu.Unlock()
		_ = writeFrame(conn, encodeDenied("duplicate member name "+name))
		_ = conn.Close()
		return
	}
	h.conns[name] = hc
	h.mu.Unlock()

	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		hc.writeLoop()
	}()
	h.readLoop(hc)
}

func (hc *hubConn) writeLoop() {
	for {
		select {
		case of := <-hc.out:
			if !of.due.IsZero() {
				if wait := time.Until(of.due); wait > 0 {
					timer := time.NewTimer(wait)
					select {
					case <-timer.C:
					case <-hc.quit:
						timer.Stop()
						return
					}
				}
			}
			if err := writeFrame(hc.conn, of.frame); err != nil {
				_ = hc.conn.Close()
				return
			}
		case <-hc.quit:
			return
		}
	}
}

// enqueue queues a frame for the member; a full queue marks the member as a
// slow consumer and drops the connection rather than stalling the hub.
func (hc *hubConn) enqueue(frame []byte, due time.Time) bool {
	select {
	case hc.out <- outFrame{frame: frame, due: due}:
		return true
	default:
		_ = hc.conn.Close()
		return false
	}
}

// dueTime stamps a delivery with the configured latency.
func (h *Hub) dueTime() time.Time {
	d := h.delay
	if h.jitter > 0 && h.rng != nil {
		h.rngMu.Lock()
		d += time.Duration(h.rng.Int63n(int64(h.jitter)))
		h.rngMu.Unlock()
	}
	if d <= 0 {
		return time.Time{}
	}
	return time.Now().Add(d)
}

func (h *Hub) readLoop(hc *hubConn) {
	defer func() {
		h.post(hubEvent{kind: evGone, hc: hc})
	}()
	// One reusable frame buffer serves the whole loop: the posted events
	// carry only copies (ReadString/ReadOctets) of the frame's fields.
	var buf []byte
	for {
		var frame []byte
		var err error
		frame, buf, err = readFrameInto(hc.conn, buf)
		if err != nil {
			return
		}
		d := cdr.NewDecoder(frame, cdr.BigEndian)
		op, err := d.ReadOctet()
		if err != nil {
			return
		}
		ev := hubEvent{hc: hc}
		switch op {
		case opJoin, opLeave:
			group, err := d.ReadString()
			if err != nil {
				return
			}
			ev.group = group
			if op == opJoin {
				ev.kind = evJoin
			} else {
				ev.kind = evLeave
			}
		case opMcast:
			group, err := d.ReadString()
			if err != nil {
				return
			}
			payload, err := d.ReadOctets()
			if err != nil {
				return
			}
			ev.kind = evMcast
			ev.group = group
			ev.payload = payload
			h.addTraffic(group, frameLen(len(frame)))
		case opSend:
			target, err := d.ReadString()
			if err != nil {
				return
			}
			payload, err := d.ReadOctets()
			if err != nil {
				return
			}
			ev.kind = evSend
			ev.target = target
			ev.payload = payload
		default:
			return
		}
		if !h.post(ev) {
			return
		}
	}
}

func (h *Hub) post(ev hubEvent) bool {
	select {
	case h.events <- ev:
		return true
	case <-h.done:
		return false
	}
}

func (h *Hub) addTraffic(group string, n uint64) {
	h.mu.Lock()
	h.traffic[group] += n
	h.mu.Unlock()
}

// run is the sequencer: the single goroutine that orders every event.
func (h *Hub) run() {
	defer close(h.loop)
	for {
		select {
		case ev := <-h.events:
			h.handle(ev)
		case <-h.done:
			h.mu.Lock()
			conns := make([]*hubConn, 0, len(h.conns))
			for _, hc := range h.conns {
				conns = append(conns, hc)
			}
			h.conns = make(map[string]*hubConn)
			h.mu.Unlock()
			for _, hc := range conns {
				close(hc.quit)
				_ = hc.conn.Close()
			}
			return
		}
	}
}

func (h *Hub) handle(ev hubEvent) {
	switch ev.kind {
	case evJoin:
		h.mu.Lock()
		g := h.groups[ev.group]
		if g == nil {
			g = &hubGroup{}
			h.groups[ev.group] = g
		}
		if !contains(g.members, ev.hc.name) {
			g.members = append(g.members, ev.hc.name)
		}
		h.mu.Unlock()
		h.emitView(ev.group, g)
	case evLeave:
		h.removeFromGroup(ev.group, ev.hc.name)
	case evMcast:
		h.deliver(ev.group, ev.hc.name, ev.payload)
	case evSend:
		h.mu.Lock()
		target := h.conns[ev.target]
		h.mu.Unlock()
		if target != nil {
			target.enqueue(encodePrivate(ev.hc.name, ev.payload), h.dueTime())
		}
	case evGone:
		h.mu.Lock()
		if h.conns[ev.hc.name] == ev.hc {
			delete(h.conns, ev.hc.name)
		}
		groups := make([]string, 0, len(h.groups))
		for name, g := range h.groups {
			if contains(g.members, ev.hc.name) {
				groups = append(groups, name)
			}
		}
		h.mu.Unlock()
		close(ev.hc.quit)
		_ = ev.hc.conn.Close()
		for _, group := range groups {
			h.removeFromGroup(group, ev.hc.name)
		}
	}
}

func (h *Hub) removeFromGroup(group, member string) {
	h.mu.Lock()
	g := h.groups[group]
	if g == nil || !contains(g.members, member) {
		h.mu.Unlock()
		return
	}
	kept := g.members[:0]
	for _, m := range g.members {
		if m != member {
			kept = append(kept, m)
		}
	}
	g.members = kept
	h.mu.Unlock()
	h.emitView(group, g)
}

// deliver fans a data message out to every current member of the group, in
// a single critical section so the sequence number and recipient set are
// consistent (total order).
func (h *Hub) deliver(group, sender string, payload []byte) {
	h.mu.Lock()
	g := h.groups[group]
	if g == nil {
		h.mu.Unlock()
		return
	}
	g.seq++
	frame := encodeDeliver(group, g.seq, sender, payload)
	recipients := h.lookupConns(g.members)
	h.traffic[group] += frameLen(len(frame)) * uint64(len(recipients))
	due := h.dueTime()
	h.mu.Unlock()
	h.tel.Multicast()
	for _, hc := range recipients {
		hc.enqueue(frame, due)
	}
}

func (h *Hub) emitView(group string, g *hubGroup) {
	h.mu.Lock()
	if h.groups[group] != g {
		h.mu.Unlock()
		return
	}
	g.seq++
	g.viewID++
	members := make([]string, len(g.members))
	copy(members, g.members)
	frame := encodeView(group, g.viewID, g.seq, members)
	recipients := h.lookupConns(members)
	h.traffic[group] += frameLen(len(frame)) * uint64(len(recipients))
	due := h.dueTime()
	h.mu.Unlock()
	h.tel.ViewChange()
	for _, hc := range recipients {
		hc.enqueue(frame, due)
	}
}

// lookupConns maps member names to live connections. Callers must hold h.mu.
func (h *Hub) lookupConns(names []string) []*hubConn {
	out := make([]*hubConn, 0, len(names))
	for _, n := range names {
		if hc, ok := h.conns[n]; ok {
			out = append(out, hc)
		}
	}
	return out
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// ErrHubClosed reports use of a closed hub.
var ErrHubClosed = errors.New("gcs: hub closed")
