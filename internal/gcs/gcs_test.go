package gcs

import (
	"fmt"
	"testing"
	"time"
)

func startHub(t *testing.T) *Hub {
	t.Helper()
	h := NewHub()
	if err := h.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	return h
}

func dial(t *testing.T, h *Hub, name string) *Member {
	t.Helper()
	m, err := Dial(h.Addr(), name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	return m
}

// next pulls the next delivery with a timeout.
func next(t *testing.T, m *Member) Delivery {
	t.Helper()
	select {
	case d, ok := <-m.Deliveries():
		if !ok {
			t.Fatalf("member %s: delivery channel closed", m.Name())
		}
		return d
	case <-time.After(5 * time.Second):
		t.Fatalf("member %s: timed out waiting for delivery", m.Name())
		panic("unreachable")
	}
}

// nextOfKind skips deliveries until one of the wanted kind arrives.
func nextOfKind(t *testing.T, m *Member, kind DeliveryKind) Delivery {
	t.Helper()
	for i := 0; i < 100; i++ {
		d := next(t, m)
		if d.Kind == kind {
			return d
		}
	}
	t.Fatalf("member %s: no delivery of kind %d in 100 events", m.Name(), kind)
	panic("unreachable")
}

func TestJoinDeliversView(t *testing.T) {
	h := startHub(t)
	a := dial(t, h, "a")
	if err := a.Join("g"); err != nil {
		t.Fatal(err)
	}
	d := next(t, a)
	if d.Kind != DeliverView {
		t.Fatalf("first delivery kind = %d, want view", d.Kind)
	}
	if len(d.View.Members) != 1 || d.View.Members[0] != "a" {
		t.Fatalf("view members = %v", d.View.Members)
	}
	if d.View.Primary() != "a" {
		t.Fatalf("primary = %q", d.View.Primary())
	}
}

func TestViewOrderIsJoinOrder(t *testing.T) {
	h := startHub(t)
	a := dial(t, h, "a")
	_ = a.Join("g")
	next(t, a) // view {a}
	b := dial(t, h, "b")
	_ = b.Join("g")
	va := next(t, a) // view {a,b}
	if va.Kind != DeliverView || len(va.View.Members) != 2 ||
		va.View.Members[0] != "a" || va.View.Members[1] != "b" {
		t.Fatalf("view after second join = %+v", va.View)
	}
	if got := h.Members("g"); len(got) != 2 || got[0] != "a" {
		t.Fatalf("hub members = %v", got)
	}
}

func TestSelfDeliveryAndTotalOrder(t *testing.T) {
	h := startHub(t)
	a := dial(t, h, "a")
	b := dial(t, h, "b")
	_ = a.Join("g")
	next(t, a)
	_ = b.Join("g")
	next(t, a)
	next(t, b)

	// Fire interleaved multicasts from both members.
	const n = 50
	for i := 0; i < n; i++ {
		if err := a.Multicast("g", []byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := b.Multicast("g", []byte(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	seqA := make([]uint64, 0, 2*n)
	msgA := make([]string, 0, 2*n)
	for i := 0; i < 2*n; i++ {
		d := nextOfKind(t, a, DeliverData)
		seqA = append(seqA, d.Seq)
		msgA = append(msgA, string(d.Payload))
	}
	seqB := make([]uint64, 0, 2*n)
	msgB := make([]string, 0, 2*n)
	for i := 0; i < 2*n; i++ {
		d := nextOfKind(t, b, DeliverData)
		seqB = append(seqB, d.Seq)
		msgB = append(msgB, string(d.Payload))
	}
	// Total order: both members observe identical sequences.
	for i := range seqA {
		if seqA[i] != seqB[i] || msgA[i] != msgB[i] {
			t.Fatalf("order divergence at %d: a=(%d,%s) b=(%d,%s)",
				i, seqA[i], msgA[i], seqB[i], msgB[i])
		}
		if i > 0 && seqA[i] <= seqA[i-1] {
			t.Fatalf("sequence not increasing at %d: %v", i, seqA[:i+1])
		}
	}
}

func TestOpenGroupMulticast(t *testing.T) {
	h := startHub(t)
	member := dial(t, h, "member")
	outsider := dial(t, h, "outsider")
	_ = member.Join("g")
	next(t, member)

	if err := outsider.Multicast("g", []byte("hello from outside")); err != nil {
		t.Fatal(err)
	}
	d := nextOfKind(t, member, DeliverData)
	if d.Sender != "outsider" || string(d.Payload) != "hello from outside" {
		t.Fatalf("delivery = %+v", d)
	}
	// Non-member sender must NOT receive its own multicast.
	select {
	case got := <-outsider.Deliveries():
		t.Fatalf("outsider received %+v", got)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestPrivateSend(t *testing.T) {
	h := startHub(t)
	a := dial(t, h, "a")
	b := dial(t, h, "b")
	// Joining and seeing the view guarantees b's registration completed
	// before the private send races it to the hub.
	_ = b.Join("sync")
	next(t, b)
	if err := a.Send("b", []byte("psst")); err != nil {
		t.Fatal(err)
	}
	d := next(t, b)
	if d.Kind != DeliverPrivate || d.Sender != "a" || string(d.Payload) != "psst" {
		t.Fatalf("private delivery = %+v", d)
	}
	// Send to an unknown member is silently dropped, not an error.
	if err := a.Send("nobody", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestCrashTriggersViewChange(t *testing.T) {
	h := startHub(t)
	a := dial(t, h, "a")
	b := dial(t, h, "b")
	_ = a.Join("g")
	next(t, a)
	_ = b.Join("g")
	next(t, a)
	next(t, b)

	// Abrupt disconnect of a (simulated crash).
	_ = a.Close()
	d := nextOfKind(t, b, DeliverView)
	if len(d.View.Members) != 1 || d.View.Members[0] != "b" {
		t.Fatalf("post-crash view = %v", d.View.Members)
	}
	if d.View.Primary() != "b" {
		t.Fatalf("post-crash primary = %q", d.View.Primary())
	}
}

func TestLeaveTriggersViewChange(t *testing.T) {
	h := startHub(t)
	a := dial(t, h, "a")
	b := dial(t, h, "b")
	_ = a.Join("g")
	next(t, a)
	_ = b.Join("g")
	next(t, a)
	next(t, b)
	if err := a.Leave("g"); err != nil {
		t.Fatal(err)
	}
	d := nextOfKind(t, b, DeliverView)
	if len(d.View.Members) != 1 || d.View.Members[0] != "b" {
		t.Fatalf("post-leave view = %v", d.View.Members)
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	h := startHub(t)
	m1 := dial(t, h, "dup")
	// Ensure m1's registration completed before the duplicate dial.
	_ = m1.Join("sync")
	next(t, m1)
	m2, err := Dial(h.Addr(), "dup")
	if err != nil {
		// Either the dial fails outright or the member is closed shortly.
		return
	}
	select {
	case <-m2.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("duplicate member was not disconnected")
	}
}

func TestMulticastAfterCloseFails(t *testing.T) {
	h := startHub(t)
	a := dial(t, h, "a")
	_ = a.Close()
	if err := a.Multicast("g", []byte("x")); err == nil {
		t.Fatal("multicast on closed member succeeded")
	}
}

func TestTrafficAccounting(t *testing.T) {
	h := startHub(t)
	a := dial(t, h, "a")
	b := dial(t, h, "b")
	_ = a.Join("g")
	next(t, a)
	_ = b.Join("g")
	next(t, a)
	next(t, b)

	before, _ := h.GroupTraffic("g")
	payload := make([]byte, 100)
	_ = a.Multicast("g", payload)
	nextOfKind(t, a, DeliverData)
	nextOfKind(t, b, DeliverData)
	after, _ := h.GroupTraffic("g")
	// 1 inbound frame + 2 delivered frames, each >= 100 bytes.
	if after-before < 300 {
		t.Fatalf("traffic delta = %d, want >= 300", after-before)
	}

	h.ResetTraffic()
	if n, _ := h.GroupTraffic("g"); n != 0 {
		t.Fatalf("traffic after reset = %d", n)
	}
}

func TestViewSeqSharesDataOrder(t *testing.T) {
	// Views and data share one sequence space per group so that membership
	// changes are ordered relative to messages (virtual synchrony).
	h := startHub(t)
	a := dial(t, h, "a")
	_ = a.Join("g")
	v1 := next(t, a)
	_ = a.Multicast("g", []byte("m"))
	d := nextOfKind(t, a, DeliverData)
	if d.Seq <= v1.Seq {
		t.Fatalf("data seq %d not after view seq %d", d.Seq, v1.Seq)
	}
}

func TestHubCloseDisconnectsMembers(t *testing.T) {
	h := NewHub()
	if err := h.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	m, err := Dial(h.Addr(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-m.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("member not disconnected on hub close")
	}
	_ = m.Close()
}

func TestHubDoubleCloseSafe(t *testing.T) {
	h := NewHub()
	if err := h.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRejoinIsIdempotent(t *testing.T) {
	h := startHub(t)
	a := dial(t, h, "a")
	_ = a.Join("g")
	next(t, a)
	_ = a.Join("g")
	d := nextOfKind(t, a, DeliverView)
	if len(d.View.Members) != 1 {
		t.Fatalf("double join duplicated member: %v", d.View.Members)
	}
}

func TestManyMembersViewConsistency(t *testing.T) {
	h := startHub(t)
	const n = 8
	members := make([]*Member, n)
	var last Delivery
	for i := 0; i < n; i++ {
		members[i] = dial(t, h, fmt.Sprintf("m%d", i))
		if err := members[i].Join("g"); err != nil {
			t.Fatal(err)
		}
		// Wait for this member's own view so joins are strictly ordered.
		last = nextOfKind(t, members[i], DeliverView)
	}
	// The last joiner's own view is generated from the hub's completed
	// membership, so both must list all n in join order — no polling.
	if got := last.View.Members; len(got) != n {
		t.Fatalf("final view has %d members: %v", len(got), got)
	}
	for i, name := range last.View.Members {
		if name != fmt.Sprintf("m%d", i) {
			t.Fatalf("view order = %v", last.View.Members)
		}
	}
	got := h.Members("g")
	if len(got) != n {
		t.Fatalf("hub membership = %v, want %d members", got, n)
	}
	for i, name := range got {
		if name != fmt.Sprintf("m%d", i) {
			t.Fatalf("membership order = %v", got)
		}
	}
}

func TestDeliveryDelayApplied(t *testing.T) {
	h := NewHub(WithDeliveryDelay(30 * time.Millisecond))
	if err := h.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	m, err := Dial(h.Addr(), "a")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	_ = m.Join("g")
	next(t, m) // view (also delayed; consumes the join latency)

	start := time.Now()
	if err := m.Multicast("g", []byte("x")); err != nil {
		t.Fatal(err)
	}
	nextOfKind(t, m, DeliverData)
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("self-delivery took %v, want >= ~30ms latency", elapsed)
	}
}

func TestNoDelayByDefaultIsFast(t *testing.T) {
	h := startHub(t)
	m := dial(t, h, "a")
	_ = m.Join("g")
	next(t, m)
	start := time.Now()
	_ = m.Multicast("g", []byte("x"))
	nextOfKind(t, m, DeliverData)
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("loopback delivery took %v", elapsed)
	}
}
