// Package gcs provides the totally-ordered reliable group-communication
// substrate that MEAD layers on (the paper uses the Spread toolkit). A
// central hub sequences all traffic, giving total order within each group,
// reliable delivery over TCP, and view-synchronous membership: join, leave
// and crash events are delivered as View messages in the same ordered stream
// as data messages. Members also own a private address (their member name)
// for point-to-point sends, mirroring Spread's private groups.
//
// The hub additionally accounts bytes exchanged per group, which is the
// measurement behind Figure 5 of the paper (group-communication bandwidth
// versus rejuvenation threshold).
package gcs

import (
	"io"

	"mead/internal/cdr"
	"mead/internal/frame"
)

// Wire opcodes (member -> hub).
const (
	opHello byte = 1
	opJoin  byte = 2
	opLeave byte = 3
	opMcast byte = 4
	opSend  byte = 5
)

// Wire opcodes (hub -> member).
const (
	opDeliver byte = 10
	opView    byte = 11
	opPrivate byte = 12
	opDenied  byte = 13
)

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error { return frame.Write(w, payload) }

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) { return frame.Read(r) }

// readFrameInto reads one length-prefixed frame, recycling buf. The payload
// aliases the returned buffer; receive loops that copy every field out of
// the frame (as the decoders below do) use it to avoid a per-message
// allocation.
func readFrameInto(r io.Reader, buf []byte) (payload, next []byte, err error) {
	return frame.ReadInto(r, buf)
}

// frameLen returns the on-wire size of a frame with the given payload
// length (used for bandwidth accounting).
func frameLen(payloadLen int) uint64 { return frame.WireLen(payloadLen) }

func encodeHello(name string) []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteOctet(opHello)
	e.WriteString(name)
	return e.Bytes()
}

func encodeGroupOp(op byte, group string) []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteOctet(op)
	e.WriteString(group)
	return e.Bytes()
}

func encodeMcast(group string, payload []byte) []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteOctet(opMcast)
	e.WriteString(group)
	e.WriteOctets(payload)
	return e.Bytes()
}

func encodeSend(target string, payload []byte) []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteOctet(opSend)
	e.WriteString(target)
	e.WriteOctets(payload)
	return e.Bytes()
}

func encodeDeliver(group string, seq uint64, sender string, payload []byte) []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteOctet(opDeliver)
	e.WriteString(group)
	e.WriteULongLong(seq)
	e.WriteString(sender)
	e.WriteOctets(payload)
	return e.Bytes()
}

func encodeView(group string, viewID, seq uint64, members []string) []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteOctet(opView)
	e.WriteString(group)
	e.WriteULongLong(viewID)
	e.WriteULongLong(seq)
	e.WriteULong(uint32(len(members)))
	for _, m := range members {
		e.WriteString(m)
	}
	return e.Bytes()
}

func encodePrivate(sender string, payload []byte) []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteOctet(opPrivate)
	e.WriteString(sender)
	e.WriteOctets(payload)
	return e.Bytes()
}

func encodeDenied(reason string) []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteOctet(opDenied)
	e.WriteString(reason)
	return e.Bytes()
}
