package ftmgr

import (
	"math"
	"testing"
	"time"
)

// fixedClockPredictor returns a predictor with a controllable clock.
func fixedClockPredictor(window int) (*TrendPredictor, *time.Time) {
	p := NewTrendPredictor(window)
	now := time.Unix(1000, 0)
	p.now = func() time.Time { return now }
	return p, &now
}

func TestTrendPredictorNeedsSamples(t *testing.T) {
	p := NewTrendPredictor(0)
	if _, ok := p.Rate(); ok {
		t.Fatal("rate with no samples")
	}
	p.Observe(0.1)
	p.Observe(0.2)
	if _, ok := p.Rate(); ok {
		t.Fatal("rate with two samples")
	}
	if _, ok := p.TimeToExhaustion(); ok {
		t.Fatal("projection with two samples")
	}
}

func TestTrendPredictorLinearLeak(t *testing.T) {
	p, now := fixedClockPredictor(0)
	// 10% per second for 5 seconds.
	for i := 0; i <= 5; i++ {
		p.Observe(0.1 * float64(i))
		*now = now.Add(time.Second)
	}
	rate, ok := p.Rate()
	if !ok {
		t.Fatal("no rate")
	}
	if math.Abs(rate-0.1) > 1e-9 {
		t.Fatalf("rate = %v, want 0.1/s", rate)
	}
	// Last sample: usage 0.5 -> 5 s to exhaustion.
	tte, ok := p.TimeToExhaustion()
	if !ok {
		t.Fatal("no projection")
	}
	if math.Abs(tte.Seconds()-5) > 0.01 {
		t.Fatalf("time to exhaustion = %v, want ~5s", tte)
	}
}

func TestTrendPredictorFlatAndShrinking(t *testing.T) {
	p, now := fixedClockPredictor(0)
	for i := 0; i < 5; i++ {
		p.Observe(0.5)
		*now = now.Add(time.Second)
	}
	if _, ok := p.TimeToExhaustion(); ok {
		t.Fatal("flat trend projected exhaustion")
	}
	p2, now2 := fixedClockPredictor(0)
	for i := 0; i < 5; i++ {
		p2.Observe(0.5 - 0.05*float64(i))
		*now2 = now2.Add(time.Second)
	}
	if _, ok := p2.TimeToExhaustion(); ok {
		t.Fatal("shrinking trend projected exhaustion")
	}
}

func TestTrendPredictorAlreadyExhausted(t *testing.T) {
	p, now := fixedClockPredictor(0)
	for i := 0; i <= 3; i++ {
		p.Observe(0.5 * float64(i)) // reaches 1.5
		*now = now.Add(time.Second)
	}
	tte, ok := p.TimeToExhaustion()
	if !ok || tte != 0 {
		t.Fatalf("exhausted projection = %v, %v", tte, ok)
	}
}

func TestTrendPredictorWindowSlides(t *testing.T) {
	p, now := fixedClockPredictor(4)
	// Old slow phase then a fast phase; the window must only see the fast
	// phase.
	for i := 0; i < 10; i++ {
		p.Observe(0.01 * float64(i))
		*now = now.Add(time.Second)
	}
	base := 0.09
	for i := 0; i < 4; i++ {
		p.Observe(base + 0.2*float64(i))
		*now = now.Add(time.Second)
	}
	rate, ok := p.Rate()
	if !ok {
		t.Fatal("no rate")
	}
	if math.Abs(rate-0.2) > 0.01 {
		t.Fatalf("windowed rate = %v, want ~0.2/s", rate)
	}
}

func TestAdaptiveThresholdFallsBackWithoutTrend(t *testing.T) {
	a := NewAdaptiveThreshold(100 * time.Millisecond)
	if th := a.Threshold(0.9); th != 0.9 {
		t.Fatalf("threshold without data = %v", th)
	}
}

func TestAdaptiveThresholdDerivesFromRate(t *testing.T) {
	a := NewAdaptiveThreshold(time.Second)
	now := time.Unix(0, 0)
	a.predictor.now = func() time.Time { return now }
	// 5% per second leak.
	for i := 0; i <= 5; i++ {
		a.Observe(0.05 * float64(i))
		now = now.Add(time.Second)
	}
	// threshold = 1 - 0.05 * 1s * safety(2) = 0.9
	th := a.Threshold(0.5)
	if math.Abs(th-0.9) > 0.001 {
		t.Fatalf("adaptive threshold = %v, want 0.9", th)
	}
}

func TestAdaptiveThresholdClamped(t *testing.T) {
	a := NewAdaptiveThreshold(10 * time.Second)
	now := time.Unix(0, 0)
	a.predictor.now = func() time.Time { return now }
	// Very fast leak: 30%/s -> raw threshold would be negative.
	for i := 0; i <= 4; i++ {
		a.Observe(0.3 * float64(i) / 4)
		now = now.Add(250 * time.Millisecond)
	}
	th := a.Threshold(0.8)
	if th != a.Floor {
		t.Fatalf("threshold = %v, want clamped to floor %v", th, a.Floor)
	}
	if a.Predictor() == nil {
		t.Fatal("nil predictor accessor")
	}
}

func TestManagerWithAdaptiveThreshold(t *testing.T) {
	h := startHub(t)
	b := budgetAt(t, 0)
	member := dialMember(t, h, "ra")
	adaptive := NewAdaptiveThreshold(50 * time.Millisecond)
	m, err := NewManager(Config{
		ReplicaName: "ra", Group: testGroup, Scheme: MeadMessage,
		Monitor: b, Member: member, Adaptive: adaptive,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Without a trend the preset 90% applies: 85% does not migrate.
	b.Consume(850)
	if m.checkThresholds() {
		t.Fatal("migrated below preset threshold without trend")
	}
	// Past the preset it migrates regardless.
	b.Consume(100)
	if !m.checkThresholds() {
		t.Fatal("did not migrate past preset threshold")
	}
}
