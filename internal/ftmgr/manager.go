package ftmgr

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"mead/internal/cdr"
	"mead/internal/gcs"
	"mead/internal/giop"
	"mead/internal/interceptor"
	"mead/internal/telemetry"
)

// Default thresholds from Section 3.2: "when the replica has used 80% of
// its allocated resources, the Proactive Fault-Tolerance Manager at that
// replica requests the Recovery Manager to launch a new replica. If the
// replica's resource usage exceeds our second threshold, e.g., when 90% of
// the allocated resources have been consumed, [it] can initiate the
// migration of all its current clients to the next non-faulty server
// replica in the group."
const (
	DefaultLaunchThreshold  = 0.80
	DefaultMigrateThreshold = 0.90
)

// Monitor is the resource-usage source the manager polls (event-driven,
// from the write path) — satisfied by *resource.Budget.
type Monitor interface {
	Name() string
	Fraction() float64
}

// Config parameterizes a server-side Manager.
type Config struct {
	// ReplicaName is this replica's GCS member name.
	ReplicaName string
	// Group is the server-specific GCS group.
	Group string
	// Scheme selects the proactive hand-off mechanism.
	Scheme Scheme
	// Monitor reports resource usage.
	Monitor Monitor
	// LaunchThreshold (T1) triggers the proactive fault notification.
	LaunchThreshold float64
	// MigrateThreshold (T2) triggers client migration.
	MigrateThreshold float64
	// Member is the replica's connection to the GCS; used to multicast
	// notices and answer primary queries.
	Member *gcs.Member
	// OnFirstRequest fires when the first client request arrives (the
	// fault-injection onset in the paper's experiments).
	OnFirstRequest func()
	// OnMigrate fires once when the manager starts migrating clients.
	OnMigrate func()
	// Adaptive, if set, derives the migration threshold from the observed
	// leak trend (the paper's future-work extension) instead of the
	// preset MigrateThreshold, which remains the fallback.
	Adaptive *AdaptiveThreshold
	// TimerDriven switches threshold checking from the event-driven write
	// path to an external poller calling PollThresholds — the design the
	// paper rejected ("multithreading introduced a great deal of overhead
	// ... and involved continuous periodic checking of resources") and
	// which this implementation keeps only for the ablation benchmarks.
	TimerDriven bool
	// Telemetry, when set, records threshold crossings as recovery-trace
	// events (with the usage percentage as the event value).
	Telemetry *telemetry.Telemetry
	// RecoverySnapshot, when set, returns this replica's current durable
	// snapshot payload (internal/durable encoding; opaque here). The
	// manager uses it to answer RecoveryQuery messages from restarting
	// group members — the serving half of the recovery handshake. Nil
	// leaves recovery queries unanswered by this replica.
	RecoverySnapshot func() []byte
}

// Manager is the server-side Proactive Fault-Tolerance Manager instance
// embedded in one replica's interceptors.
type Manager struct {
	cfg Config

	mu           sync.Mutex
	view         gcs.View
	replicas     map[string]Announce            // known replica endpoints by name
	iorsByHash   map[uint16]map[string]giop.IOR // objectKey hash16 -> replica name -> IOR
	migrating    bool
	noticeSent   bool
	firstRequest bool
	migrations   int // replies rewritten / piggybacked so far
}

// Errors.
var (
	errNoMember = errors.New("ftmgr: manager requires a GCS member")
)

// NewManager validates cfg and returns a Manager.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Member == nil {
		return nil, errNoMember
	}
	if cfg.Monitor == nil {
		return nil, errors.New("ftmgr: manager requires a resource monitor")
	}
	if cfg.LaunchThreshold == 0 {
		cfg.LaunchThreshold = DefaultLaunchThreshold
	}
	if cfg.MigrateThreshold == 0 {
		cfg.MigrateThreshold = DefaultMigrateThreshold
	}
	if cfg.LaunchThreshold > cfg.MigrateThreshold {
		return nil, fmt.Errorf("ftmgr: launch threshold %.2f above migrate threshold %.2f",
			cfg.LaunchThreshold, cfg.MigrateThreshold)
	}
	return &Manager{
		cfg:        cfg,
		replicas:   make(map[string]Announce),
		iorsByHash: make(map[uint16]map[string]giop.IOR),
	}, nil
}

// AnnounceSelf broadcasts this replica's endpoint and IORs to the group.
func (m *Manager) AnnounceSelf(addr string, iors []giop.IOR) error {
	a := Announce{Name: m.cfg.ReplicaName, Addr: addr, IORs: iors}
	m.learn(a)
	return m.cfg.Member.Multicast(m.cfg.Group, EncodeAnnounce(a))
}

// learn records a replica's endpoint and indexes its IORs by object-key
// hash (the paper's 16-bit-hash lookup optimization).
func (m *Manager) learn(a Announce) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.replicas[a.Name] = a
	for _, ior := range a.IORs {
		prof, err := ior.IIOP()
		if err != nil {
			continue
		}
		h := giop.Hash16(prof.ObjectKey)
		byName := m.iorsByHash[h]
		if byName == nil {
			byName = make(map[string]giop.IOR)
			m.iorsByHash[h] = byName
		}
		byName[a.Name] = ior
	}
}

// HandleDelivery processes one GCS event; the replica's event loop calls it
// for every delivery (the paper folds this into the intercepted select()).
func (m *Manager) HandleDelivery(d gcs.Delivery) {
	switch d.Kind {
	case gcs.DeliverView:
		if d.View.Group != m.cfg.Group {
			return
		}
		m.mu.Lock()
		m.view = d.View
		// Purge endpoint entries of departed members: a relaunched
		// replica re-announces its (new) endpoint after rejoining, and
		// forwarding clients to a dead incarnation's address in the
		// meantime would defeat the hand-off.
		inView := make(map[string]bool, len(d.View.Members))
		for _, member := range d.View.Members {
			inView[member] = true
		}
		for name := range m.replicas {
			if !inView[name] {
				delete(m.replicas, name)
				for _, byName := range m.iorsByHash {
					delete(byName, name)
				}
			}
		}
		isCoordinator := m.primaryNameLocked() == m.cfg.ReplicaName
		list := make([]Announce, 0, len(m.replicas))
		for _, member := range d.View.Members {
			if a, ok := m.replicas[member]; ok {
				list = append(list, a)
			}
		}
		m.mu.Unlock()
		// "Whenever group-membership changes occur ... the first replica
		// listed in the Spread group-membership message sends a message
		// that synchronizes the listing of active servers across the
		// group."
		if isCoordinator && len(list) > 0 {
			_ = m.cfg.Member.Multicast(m.cfg.Group, EncodeSyncList(SyncList{Replicas: list}))
		}
	case gcs.DeliverData:
		msg, err := DecodeMessage(d.Payload)
		if err != nil {
			return
		}
		switch v := msg.(type) {
		case Announce:
			m.learn(v)
		case SyncList:
			for _, a := range v.Replicas {
				m.learn(a)
			}
		case QueryPrimary:
			m.answerPrimaryQuery(v)
		case RecoveryQuery:
			m.answerRecoveryQuery(v)
		}
	case gcs.DeliverPrivate:
		// Replicas receive no private messages in the current protocol.
	}
}

// answerPrimaryQuery responds if this replica is the current primary.
func (m *Manager) answerPrimaryQuery(q QueryPrimary) {
	m.mu.Lock()
	isPrimary := m.primaryNameLocked() == m.cfg.ReplicaName
	self, known := m.replicas[m.cfg.ReplicaName]
	m.mu.Unlock()
	if !isPrimary || !known {
		return
	}
	_ = m.cfg.Member.Send(q.ReplyTo, EncodePrimaryIs(PrimaryIs{
		Name: self.Name, Addr: self.Addr, IORs: self.IORs,
	}))
}

// answerRecoveryQuery sends the replica's current snapshot privately to a
// restarting member. Every member holding state answers (not only the
// primary): the recovering replica merges forward-only, so redundant
// answers are harmless and the handshake survives the primary itself being
// mid-restart.
func (m *Manager) answerRecoveryQuery(q RecoveryQuery) {
	if m.cfg.RecoverySnapshot == nil || q.From == m.cfg.ReplicaName {
		return
	}
	data := m.cfg.RecoverySnapshot()
	if len(data) == 0 {
		return
	}
	_ = m.cfg.Member.Send(q.From, EncodeRecoveryState(RecoveryState{
		From:  m.cfg.ReplicaName,
		Nonce: q.Nonce,
		Data:  data,
	}))
}

// View returns the current group view.
func (m *Manager) View() gcs.View {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.view
}

// primaryNameLocked returns the first member of the current view that is a
// known (announced) replica. The Recovery Manager subscribes to the same
// group "to receive membership-change notifications", so raw view order may
// start with a non-replica member; primaries are chosen among replicas.
func (m *Manager) primaryNameLocked() string {
	for _, name := range m.view.Members {
		if _, ok := m.replicas[name]; ok {
			return name
		}
	}
	return ""
}

// IsPrimary reports whether this replica is the first replica in the
// current view.
func (m *Manager) IsPrimary() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.primaryNameLocked() == m.cfg.ReplicaName
}

// PrimaryName returns the current primary replica's name ("" if unknown).
func (m *Manager) PrimaryName() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.primaryNameLocked()
}

// Replicas returns the known replicas in current-view order.
func (m *Manager) Replicas() []Announce {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Announce, 0, len(m.view.Members))
	for _, name := range m.view.Members {
		if a, ok := m.replicas[name]; ok {
			out = append(out, a)
		}
	}
	return out
}

// NextReplica returns the next non-faulty replica after this one in view
// order — the migration target.
func (m *Manager) NextReplica() (Announce, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nextReplicaLocked()
}

func (m *Manager) nextReplicaLocked() (Announce, bool) {
	members := m.view.Members
	n := len(members)
	if n == 0 {
		return Announce{}, false
	}
	selfIdx := -1
	for i, name := range members {
		if name == m.cfg.ReplicaName {
			selfIdx = i
			break
		}
	}
	for off := 1; off <= n; off++ {
		candidate := members[(selfIdx+off+n)%n]
		if candidate == m.cfg.ReplicaName {
			continue
		}
		if a, ok := m.replicas[candidate]; ok {
			return a, true
		}
	}
	return Announce{}, false
}

// forwardIORFor finds the next replica's IOR for the object identified by
// key, via the 16-bit hash table.
func (m *Manager) forwardIORFor(key []byte) (giop.IOR, string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	next, ok := m.nextReplicaLocked()
	if !ok {
		return giop.IOR{}, "", false
	}
	byName, ok := m.iorsByHash[giop.Hash16(key)]
	if !ok {
		return giop.IOR{}, "", false
	}
	ior, ok := byName[next.Name]
	if !ok {
		return giop.IOR{}, "", false
	}
	return ior, next.Addr, true
}

// Migrating reports whether the migrate threshold has been crossed.
func (m *Manager) Migrating() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.migrating
}

// Migrations returns how many replies have carried a hand-off so far.
func (m *Manager) Migrations() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.migrations
}

// checkThresholds runs the event-driven two-step threshold scheme. It is
// called from the interceptor's write path ("proactive recovery needs to be
// triggered only when there are active client connections at the server").
func (m *Manager) checkThresholds() (migrate bool) {
	usage := m.cfg.Monitor.Fraction()
	migrateAt := m.cfg.MigrateThreshold
	launchAt := m.cfg.LaunchThreshold
	if m.cfg.Adaptive != nil {
		m.cfg.Adaptive.Observe(usage)
		migrateAt = m.cfg.Adaptive.Threshold(migrateAt)
		if launchAt > migrateAt {
			launchAt = 0.75 * migrateAt
		}
	}
	var (
		sendNotice  bool
		fireMigrate bool
	)
	m.mu.Lock()
	if usage >= launchAt && !m.noticeSent {
		m.noticeSent = true
		sendNotice = true
	}
	if usage >= migrateAt && !m.migrating {
		m.migrating = true
		fireMigrate = true
	}
	migrate = m.migrating
	m.mu.Unlock()

	if sendNotice || fireMigrate {
		m.cfg.Telemetry.ThresholdCrossed(m.cfg.ReplicaName, int64(usage*100))
	}

	if sendNotice {
		_ = m.cfg.Member.Multicast(m.cfg.Group, EncodeNotice(Notice{
			Replica:  m.cfg.ReplicaName,
			Resource: m.cfg.Monitor.Name(),
			Usage:    usage,
		}))
	}
	if fireMigrate && m.cfg.OnMigrate != nil {
		m.cfg.OnMigrate()
	}
	return migrate
}

// PollThresholds runs one threshold check from an external (timer-driven)
// poller; see Config.TimerDriven.
func (m *Manager) PollThresholds() bool {
	if !m.cfg.Scheme.Proactive() {
		return false
	}
	return m.checkThresholds()
}

// noteRequest handles read-side bookkeeping shared by all schemes.
func (m *Manager) noteRequest() {
	m.mu.Lock()
	first := !m.firstRequest
	m.firstRequest = true
	m.mu.Unlock()
	if first && m.cfg.OnFirstRequest != nil {
		m.cfg.OnFirstRequest()
	}
}

// noteServerRequest applies the read-side per-request bookkeeping for one
// inbound Request body — standalone or unwrapped from a batch frame.
func (m *Manager) noteServerRequest(st *connState, order cdr.ByteOrder, body []byte) {
	m.noteRequest()
	if m.cfg.Scheme == LocationForward {
		// Full request parsing: the dominant cost of this scheme (90% RTT
		// overhead in the paper). The decoded header borrows the frame
		// buffer, so the object key is copied into state that outlives
		// this hook call.
		hdr, d, err := giop.DecodeRequest(order, body)
		if err == nil {
			st.lastRequestID = hdr.RequestID
			st.lastObjectKey = append(st.lastObjectKey[:0], hdr.ObjectKey...)
			st.haveRequest = true
			d.Release()
		}
	}
}

// connState is the per-connection request tracking the LOCATION_FORWARD
// scheme needs ("we need to parse incoming GIOP Request messages to extract
// the request id field so that we can generate corresponding
// LOCATION_FORWARD Reply messages that contain the correct request id and
// object key").
type connState struct {
	lastRequestID uint32
	lastObjectKey []byte
	haveRequest   bool
}

// WrapServerConn interposes the scheme's server-side interceptor on an
// accepted connection; pass it to orb.WithServerConnWrapper.
func (m *Manager) WrapServerConn(conn net.Conn) net.Conn {
	st := &connState{}
	hooks := interceptor.Hooks{
		OnReadFrame: func(c *interceptor.Conn, f giop.Frame) ([]byte, error) {
			if f.Kind != giop.FrameGIOP {
				return f.Raw, nil
			}
			switch f.Header.Type {
			case giop.MsgRequest:
				m.noteServerRequest(st, f.Header.Order, f.Body())
			case giop.MsgBatch:
				// A batched client burst: apply the same per-request
				// bookkeeping to every sub-request so threshold triggering
				// and LOCATION_FORWARD id tracking observe batched and
				// unbatched clients identically. A malformed batch is left
				// for the ORB itself to reject.
				_ = giop.ForEachInBatch(f.Body(), func(sh giop.Header, sbody []byte) error {
					if sh.Type == giop.MsgRequest {
						m.noteServerRequest(st, sh.Order, sbody)
					}
					return nil
				})
			}
			return f.Raw, nil
		},
		OnWriteFrame: func(c *interceptor.Conn, f giop.Frame) ([]byte, error) {
			if f.Kind != giop.FrameGIOP || f.Header.Type != giop.MsgReply {
				return f.Raw, nil
			}
			// Write-side interception sees wire frames one at a time; a
			// fragmented reply (first frame flagged) is passed through
			// rather than rewritten mid-stream.
			if f.Header.Fragmented {
				return f.Raw, nil
			}
			// Only the proactive schemes run the threshold machinery;
			// the reactive baselines and the NEEDS_ADDRESSING scheme
			// (abrupt failures, no advance warning) serve replies as-is.
			if !m.cfg.Scheme.Proactive() {
				return f.Raw, nil
			}
			migrate := false
			if m.cfg.TimerDriven {
				// Ablation mode: a poller goroutine runs the checks; the
				// write path only consumes the decision.
				migrate = m.Migrating()
			} else {
				migrate = m.checkThresholds()
			}
			if !migrate {
				return f.Raw, nil
			}
			switch m.cfg.Scheme {
			case LocationForward:
				return m.rewriteLocationForward(st, f)
			case MeadMessage:
				return m.piggybackMead(f)
			default:
				return f.Raw, nil
			}
		},
	}
	return interceptor.New(conn, hooks)
}

// rewriteLocationForward suppresses the replica's normal reply and
// fabricates a LOCATION_FORWARD reply holding the next replica's IOR
// (Section 4.1).
func (m *Manager) rewriteLocationForward(st *connState, f giop.Frame) ([]byte, error) {
	if !st.haveRequest {
		return f.Raw, nil
	}
	ior, _, ok := m.forwardIORFor(st.lastObjectKey)
	if !ok {
		return f.Raw, nil // no migration target known; serve normally
	}
	m.mu.Lock()
	m.migrations++
	m.mu.Unlock()
	fwd := giop.EncodeReply(f.Header.Order,
		giop.ReplyHeader{RequestID: st.lastRequestID, Status: giop.ReplyLocationForward},
		func(e *cdr.Encoder) { giop.EncodeIOR(e, ior) })
	return fwd, nil
}

// piggybackMead prepends a MEAD fail-over frame to the regular reply
// (Section 4.3). The client interceptor consumes the MEAD frame, redirects
// the connection, and passes the reply to the application — no
// retransmission.
func (m *Manager) piggybackMead(f giop.Frame) ([]byte, error) {
	next, ok := m.NextReplica()
	if !ok {
		return f.Raw, nil
	}
	var ior giop.IOR
	if len(next.IORs) > 0 {
		ior = next.IORs[0]
	}
	m.mu.Lock()
	m.migrations++
	m.mu.Unlock()
	mead := giop.EncodeMeadFailover(next.Addr, ior)
	out := make([]byte, 0, len(mead)+len(f.Raw))
	out = append(out, mead...)
	out = append(out, f.Raw...)
	return out, nil
}
