// Package ftmgr implements the MEAD Proactive Fault-Tolerance Manager —
// the paper's primary contribution. It is "embedded within the server-side
// and client-side Interceptors" (Section 3.2): it monitors resource usage
// at the server, triggers the two-step proactive recovery thresholds, keeps
// the replica address/IOR tables synchronized over the group-communication
// system, and provides the interceptor hooks that realize the three
// proactive hand-off schemes of Section 4.
package ftmgr

import "fmt"

// Scheme selects a recovery strategy — the five rows of Table 1.
type Scheme int

// Recovery schemes.
const (
	// ReactiveNoCache: the client waits for a failure, then asks the
	// Naming Service for the next replica (baseline).
	ReactiveNoCache Scheme = iota + 1
	// ReactiveCache: the client pre-resolves all replica references and
	// walks the cache on failure; stale entries raise TRANSIENT.
	ReactiveCache
	// NeedsAddressing: on abrupt server EOF the client interceptor asks
	// the replica group for the new primary (10 ms timeout) and fabricates
	// a GIOP NEEDS_ADDRESSING_MODE reply to force a retransmission.
	NeedsAddressing
	// LocationForward: past the migration threshold the server interceptor
	// suppresses normal replies and fabricates GIOP LOCATION_FORWARD
	// replies carrying the next replica's IOR.
	LocationForward
	// MeadMessage: past the migration threshold the server interceptor
	// piggybacks a MEAD fail-over message (next replica's address) onto
	// the regular reply; the client interceptor redirects its connection.
	MeadMessage
)

// Proactive reports whether the scheme uses server-side threshold-triggered
// migration (LOCATION_FORWARD and MEAD message do; NEEDS_ADDRESSING is the
// "insufficient advance warning" case and reacts to EOF at the client).
func (s Scheme) Proactive() bool {
	return s == LocationForward || s == MeadMessage
}

// Reactive reports whether the scheme is a classical reactive baseline.
func (s Scheme) Reactive() bool {
	return s == ReactiveNoCache || s == ReactiveCache
}

func (s Scheme) String() string {
	switch s {
	case ReactiveNoCache:
		return "reactive-nocache"
	case ReactiveCache:
		return "reactive-cache"
	case NeedsAddressing:
		return "needs-addressing"
	case LocationForward:
		return "location-forward"
	case MeadMessage:
		return "mead-message"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// ParseScheme parses the String form back into a Scheme.
func ParseScheme(s string) (Scheme, error) {
	for _, sc := range []Scheme{ReactiveNoCache, ReactiveCache, NeedsAddressing, LocationForward, MeadMessage} {
		if sc.String() == s {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("ftmgr: unknown scheme %q", s)
}

// Schemes lists all five strategies in Table 1 order.
func Schemes() []Scheme {
	return []Scheme{ReactiveNoCache, ReactiveCache, NeedsAddressing, LocationForward, MeadMessage}
}
