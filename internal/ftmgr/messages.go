package ftmgr

import (
	"fmt"
	"math"

	"mead/internal/cdr"
	"mead/internal/giop"
)

// Message kinds carried over the group-communication system among the
// fault-tolerance managers, the Recovery Manager, and (for the
// NEEDS_ADDRESSING scheme) querying clients.
const (
	kindAnnounce      byte = 1
	kindSync          byte = 2
	kindNotice        byte = 3
	kindQueryPrimary  byte = 4
	kindPrimaryIs     byte = 5
	kindCheckpoint    byte = 6
	kindRecoveryQuery byte = 7
	kindRecoveryState byte = 8
)

// Announce advertises one replica's endpoint and object references. Each
// replica broadcasts it on startup ("we intercept the IOR returned by the
// Naming Service when each server replica registers its objects ... We then
// broadcast these IORs, through the Spread group communication system, to
// the MEAD Fault-Tolerance Managers collocated with the server replicas").
type Announce struct {
	Name string
	Addr string
	IORs []giop.IOR
}

// SyncList redistributes the full replica listing; the first replica in a
// new view sends it to synchronize the group after membership changes.
type SyncList struct {
	Replicas []Announce
}

// Notice is the proactive fault notification sent when a replica crosses
// its launch threshold; the Recovery Manager reacts by preparing a
// replacement.
type Notice struct {
	Replica  string
	Resource string
	Usage    float64
}

// QueryPrimary asks the replica group for the current primary's address
// (the NEEDS_ADDRESSING client's EOF recovery path).
type QueryPrimary struct {
	ReplyTo string
}

// PrimaryIs answers a QueryPrimary; the first replica in the group view
// responds.
type PrimaryIs struct {
	Name string
	Addr string
	IORs []giop.IOR
}

// Checkpoint carries warm-passive state from the primary to the backups.
// Data, when non-empty, is the durable snapshot payload (encoded by
// internal/durable; opaque to ftmgr) that lets backups persist received
// state; Seq alone is the legacy in-memory counter transfer.
type Checkpoint struct {
	From string
	Seq  uint64
	Data []byte
}

// RecoveryQuery is the VSR-style status message a restarting replica
// multicasts to the group after replaying its local log: "my state reaches
// OpNumber; send me anything newer." Nonce ties answers to this
// incarnation's query so stale responses addressed to an earlier
// incarnation are discarded (the SNIPPETS.md RecoveryProtocol exemplar).
type RecoveryQuery struct {
	From     string
	OpNumber uint64
	Nonce    uint64
}

// RecoveryState answers a RecoveryQuery with a private message: the
// responder's current durable snapshot payload (opaque to ftmgr;
// internal/durable owns the encoding). The recovering replica merges every
// answer forward-only, so responses from multiple members are safe.
type RecoveryState struct {
	From  string
	Nonce uint64
	Data  []byte
}

func encodeAnnounceBody(e *cdr.Encoder, a Announce) {
	e.WriteString(a.Name)
	e.WriteString(a.Addr)
	e.WriteULong(uint32(len(a.IORs)))
	for _, ior := range a.IORs {
		giop.EncodeIOR(e, ior)
	}
}

func decodeAnnounceBody(d *cdr.Decoder) (Announce, error) {
	var a Announce
	var err error
	if a.Name, err = d.ReadString(); err != nil {
		return a, err
	}
	if a.Addr, err = d.ReadString(); err != nil {
		return a, err
	}
	n, err := d.ReadULong()
	if err != nil {
		return a, err
	}
	if n > 1024 {
		return a, fmt.Errorf("ftmgr: implausible IOR count %d", n)
	}
	for i := uint32(0); i < n; i++ {
		ior, err := giop.DecodeIOR(d)
		if err != nil {
			return a, err
		}
		a.IORs = append(a.IORs, ior)
	}
	return a, nil
}

// EncodeAnnounce renders an Announce message payload.
func EncodeAnnounce(a Announce) []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteOctet(kindAnnounce)
	encodeAnnounceBody(e, a)
	return e.Bytes()
}

// EncodeSyncList renders a SyncList message payload.
func EncodeSyncList(s SyncList) []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteOctet(kindSync)
	e.WriteULong(uint32(len(s.Replicas)))
	for _, a := range s.Replicas {
		encodeAnnounceBody(e, a)
	}
	return e.Bytes()
}

// EncodeNotice renders a proactive fault notification payload.
func EncodeNotice(n Notice) []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteOctet(kindNotice)
	e.WriteString(n.Replica)
	e.WriteString(n.Resource)
	e.WriteULongLong(math.Float64bits(n.Usage))
	return e.Bytes()
}

// EncodeQueryPrimary renders a primary query payload.
func EncodeQueryPrimary(q QueryPrimary) []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteOctet(kindQueryPrimary)
	e.WriteString(q.ReplyTo)
	return e.Bytes()
}

// EncodePrimaryIs renders a primary answer payload.
func EncodePrimaryIs(p PrimaryIs) []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteOctet(kindPrimaryIs)
	encodeAnnounceBody(e, Announce{Name: p.Name, Addr: p.Addr, IORs: p.IORs})
	return e.Bytes()
}

// EncodeCheckpoint renders a state-transfer payload.
func EncodeCheckpoint(c Checkpoint) []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteOctet(kindCheckpoint)
	e.WriteString(c.From)
	e.WriteULongLong(c.Seq)
	e.WriteOctets(c.Data)
	return e.Bytes()
}

// EncodeRecoveryQuery renders a recovery status-query payload.
func EncodeRecoveryQuery(q RecoveryQuery) []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteOctet(kindRecoveryQuery)
	e.WriteString(q.From)
	e.WriteULongLong(q.OpNumber)
	e.WriteULongLong(q.Nonce)
	return e.Bytes()
}

// EncodeRecoveryState renders a recovery-handshake answer payload.
func EncodeRecoveryState(s RecoveryState) []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteOctet(kindRecoveryState)
	e.WriteString(s.From)
	e.WriteULongLong(s.Nonce)
	e.WriteOctets(s.Data)
	return e.Bytes()
}

// DecodeMessage parses any fault-tolerance message payload, returning one
// of Announce, SyncList, Notice, QueryPrimary, PrimaryIs, Checkpoint,
// RecoveryQuery, or RecoveryState.
func DecodeMessage(payload []byte) (interface{}, error) {
	d := cdr.NewDecoder(payload, cdr.BigEndian)
	kind, err := d.ReadOctet()
	if err != nil {
		return nil, fmt.Errorf("ftmgr: empty message: %w", err)
	}
	switch kind {
	case kindAnnounce:
		return decodeAnnounceBody(d)
	case kindSync:
		n, err := d.ReadULong()
		if err != nil {
			return nil, err
		}
		if n > 4096 {
			return nil, fmt.Errorf("ftmgr: implausible sync size %d", n)
		}
		var s SyncList
		for i := uint32(0); i < n; i++ {
			a, err := decodeAnnounceBody(d)
			if err != nil {
				return nil, err
			}
			s.Replicas = append(s.Replicas, a)
		}
		return s, nil
	case kindNotice:
		var n Notice
		if n.Replica, err = d.ReadString(); err != nil {
			return nil, err
		}
		if n.Resource, err = d.ReadString(); err != nil {
			return nil, err
		}
		bits, err := d.ReadULongLong()
		if err != nil {
			return nil, err
		}
		n.Usage = math.Float64frombits(bits)
		return n, nil
	case kindQueryPrimary:
		var q QueryPrimary
		if q.ReplyTo, err = d.ReadString(); err != nil {
			return nil, err
		}
		return q, nil
	case kindPrimaryIs:
		a, err := decodeAnnounceBody(d)
		if err != nil {
			return nil, err
		}
		return PrimaryIs{Name: a.Name, Addr: a.Addr, IORs: a.IORs}, nil
	case kindCheckpoint:
		var c Checkpoint
		if c.From, err = d.ReadString(); err != nil {
			return nil, err
		}
		if c.Seq, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if c.Data, err = d.ReadOctets(); err != nil {
			return nil, err
		}
		return c, nil
	case kindRecoveryQuery:
		var q RecoveryQuery
		if q.From, err = d.ReadString(); err != nil {
			return nil, err
		}
		if q.OpNumber, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if q.Nonce, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		return q, nil
	case kindRecoveryState:
		var s RecoveryState
		if s.From, err = d.ReadString(); err != nil {
			return nil, err
		}
		if s.Nonce, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if s.Data, err = d.ReadOctets(); err != nil {
			return nil, err
		}
		return s, nil
	default:
		return nil, fmt.Errorf("ftmgr: unknown message kind %d", kind)
	}
}
