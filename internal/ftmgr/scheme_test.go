package ftmgr

import "testing"

func TestSchemeStringsAndParse(t *testing.T) {
	for _, s := range Schemes() {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("nonsense"); err == nil {
		t.Fatal("unknown scheme parsed")
	}
	if Scheme(99).String() != "Scheme(99)" {
		t.Fatal("unknown scheme String")
	}
}

func TestSchemeClassification(t *testing.T) {
	tests := []struct {
		s         Scheme
		proactive bool
		reactive  bool
	}{
		{ReactiveNoCache, false, true},
		{ReactiveCache, false, true},
		{NeedsAddressing, false, false},
		{LocationForward, true, false},
		{MeadMessage, true, false},
	}
	for _, tt := range tests {
		if tt.s.Proactive() != tt.proactive || tt.s.Reactive() != tt.reactive {
			t.Errorf("%v: Proactive=%v Reactive=%v", tt.s, tt.s.Proactive(), tt.s.Reactive())
		}
	}
}

func TestSchemesCount(t *testing.T) {
	if len(Schemes()) != 5 {
		t.Fatalf("Schemes() = %d entries, want 5 (Table 1 rows)", len(Schemes()))
	}
}
