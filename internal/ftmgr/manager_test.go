package ftmgr

import (
	"sync/atomic"
	"testing"
	"time"

	"mead/internal/cdr"
	"mead/internal/gcs"
	"mead/internal/giop"
	"mead/internal/resource"
)

const testGroup = "mead.timeofday"

func startHub(t *testing.T) *gcs.Hub {
	t.Helper()
	h := gcs.NewHub()
	if err := h.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	return h
}

func dialMember(t *testing.T, h *gcs.Hub, name string) *gcs.Member {
	t.Helper()
	m, err := gcs.Dial(h.Addr(), name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	return m
}

// managerNode bundles a Manager with a delivery pump, as a replica would.
type managerNode struct {
	m      *Manager
	member *gcs.Member
}

func newManagerNode(t *testing.T, h *gcs.Hub, name string, scheme Scheme, mon Monitor) *managerNode {
	t.Helper()
	member := dialMember(t, h, name)
	m, err := NewManager(Config{
		ReplicaName: name,
		Group:       testGroup,
		Scheme:      scheme,
		Monitor:     mon,
		Member:      member,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := member.Join(testGroup); err != nil {
		t.Fatal(err)
	}
	go func() {
		for d := range member.Deliveries() {
			m.HandleDelivery(d)
		}
	}()
	node := &managerNode{m: m, member: member}
	// Wait until this node's own join is reflected in its view, so joins
	// from successively created nodes are strictly ordered.
	waitFor(t, name+" to join", func() bool {
		for _, member := range m.View().Members {
			if member == name {
				return true
			}
		}
		return false
	})
	return node
}

func budgetAt(t *testing.T, frac float64) *resource.Budget {
	t.Helper()
	b, err := resource.NewBudget("memory", 1000)
	if err != nil {
		t.Fatal(err)
	}
	b.Consume(int64(frac * 1000))
	return b
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestNewManagerValidation(t *testing.T) {
	h := startHub(t)
	member := dialMember(t, h, "v1")
	mon := budgetAt(t, 0)
	if _, err := NewManager(Config{Monitor: mon}); err == nil {
		t.Fatal("nil member accepted")
	}
	if _, err := NewManager(Config{Member: member}); err == nil {
		t.Fatal("nil monitor accepted")
	}
	if _, err := NewManager(Config{Member: member, Monitor: mon,
		LaunchThreshold: 0.95, MigrateThreshold: 0.9}); err == nil {
		t.Fatal("inverted thresholds accepted")
	}
	m, err := NewManager(Config{Member: member, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	if m.cfg.LaunchThreshold != DefaultLaunchThreshold ||
		m.cfg.MigrateThreshold != DefaultMigrateThreshold {
		t.Fatal("defaults not applied")
	}
}

func TestAnnouncePropagationAndNextReplica(t *testing.T) {
	h := startHub(t)
	mon := budgetAt(t, 0)
	n1 := newManagerNode(t, h, "r1", MeadMessage, mon)
	n2 := newManagerNode(t, h, "r2", MeadMessage, mon)
	n3 := newManagerNode(t, h, "r3", MeadMessage, mon)

	for i, n := range []*managerNode{n1, n2, n3} {
		port := uint16(7001 + i)
		if err := n.m.AnnounceSelf(n.member.Name()+"-addr", []giop.IOR{sampleIOR(port)}); err != nil {
			t.Fatal(err)
		}
	}

	waitFor(t, "r1 to learn all replicas", func() bool { return len(n1.m.Replicas()) == 3 })
	waitFor(t, "r3 to learn all replicas", func() bool { return len(n3.m.Replicas()) == 3 })

	next, ok := n1.m.NextReplica()
	if !ok || next.Name != "r2" {
		t.Fatalf("next after r1 = %+v, %v", next, ok)
	}
	next, ok = n3.m.NextReplica()
	if !ok || next.Name != "r1" {
		t.Fatalf("next after r3 = %+v, %v (should wrap)", next, ok)
	}
	if !n1.m.IsPrimary() || n2.m.IsPrimary() {
		t.Fatal("primary flags wrong")
	}
}

func TestNextReplicaSkipsDeparted(t *testing.T) {
	h := startHub(t)
	mon := budgetAt(t, 0)
	n1 := newManagerNode(t, h, "r1", MeadMessage, mon)
	n2 := newManagerNode(t, h, "r2", MeadMessage, mon)
	n3 := newManagerNode(t, h, "r3", MeadMessage, mon)
	for _, n := range []*managerNode{n1, n2, n3} {
		_ = n.m.AnnounceSelf("addr-"+n.member.Name(), nil)
	}
	waitFor(t, "full membership", func() bool { return len(n1.m.Replicas()) == 3 })

	_ = n2.member.Close() // r2 crashes
	waitFor(t, "view without r2", func() bool { return len(n1.m.View().Members) == 2 })
	next, ok := n1.m.NextReplica()
	if !ok || next.Name != "r3" {
		t.Fatalf("next after r1 with r2 dead = %+v, %v", next, ok)
	}
}

func TestSyncListRebroadcastByCoordinator(t *testing.T) {
	// A late joiner must learn earlier replicas' endpoints from the
	// coordinator's SyncList even though it missed their Announces.
	h := startHub(t)
	mon := budgetAt(t, 0)
	n1 := newManagerNode(t, h, "r1", MeadMessage, mon)
	_ = n1.m.AnnounceSelf("addr-r1", []giop.IOR{sampleIOR(7001)})
	waitFor(t, "r1 self-announce", func() bool { return len(n1.m.Replicas()) == 1 })

	n2 := newManagerNode(t, h, "r2", MeadMessage, mon)
	// n2 never saw r1's announce; the view change triggers r1 (the
	// coordinator) to re-sync the listing.
	waitFor(t, "r2 to learn r1 via sync", func() bool {
		for _, a := range n2.m.Replicas() {
			if a.Name == "r1" && a.Addr == "addr-r1" {
				return true
			}
		}
		return false
	})
}

func TestThresholdNoticeFiresOnce(t *testing.T) {
	h := startHub(t)
	b := budgetAt(t, 0)
	node := newManagerNode(t, h, "r1", MeadMessage, b)
	_ = node.m.AnnounceSelf("addr", nil)

	// Observer subscribed to the group sees the notice. Wait for its own
	// join view so the notice cannot race its membership.
	observer := dialMember(t, h, "obs")
	_ = observer.Join(testGroup)
	for d := range observer.Deliveries() {
		if d.Kind == gcs.DeliverView {
			break
		}
	}

	if node.m.checkThresholds() {
		t.Fatal("migrating below thresholds")
	}
	b.Consume(850) // 85% > launch, < migrate
	if node.m.checkThresholds() {
		t.Fatal("migrating below migrate threshold")
	}
	_ = node.m.checkThresholds() // second crossing: no duplicate notice

	var notices atomic.Int32
	done := make(chan struct{})
	go func() {
		defer close(done)
		timeout := time.After(2 * time.Second)
		for {
			select {
			case d, ok := <-observer.Deliveries():
				if !ok {
					return
				}
				if d.Kind != gcs.DeliverData {
					continue
				}
				if msg, err := DecodeMessage(d.Payload); err == nil {
					if _, isNotice := msg.(Notice); isNotice {
						notices.Add(1)
					}
				}
			case <-timeout:
				return
			}
		}
	}()
	<-done
	if notices.Load() != 1 {
		t.Fatalf("notices observed = %d, want exactly 1", notices.Load())
	}
}

func TestMigrateThresholdFiresCallback(t *testing.T) {
	h := startHub(t)
	b := budgetAt(t, 0)
	member := dialMember(t, h, "r1")
	var migrated atomic.Int32
	m, err := NewManager(Config{
		ReplicaName: "r1", Group: testGroup, Scheme: MeadMessage,
		Monitor: b, Member: member,
		OnMigrate: func() { migrated.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Consume(950)
	if !m.checkThresholds() {
		t.Fatal("not migrating at 95%")
	}
	_ = m.checkThresholds()
	if migrated.Load() != 1 {
		t.Fatalf("OnMigrate fired %d times", migrated.Load())
	}
	if !m.Migrating() {
		t.Fatal("Migrating() = false")
	}
}

func TestPrimaryQueryAnswered(t *testing.T) {
	h := startHub(t)
	mon := budgetAt(t, 0)
	n1 := newManagerNode(t, h, "r1", NeedsAddressing, mon)
	n2 := newManagerNode(t, h, "r2", NeedsAddressing, mon)
	_ = n1.m.AnnounceSelf("addr-r1", []giop.IOR{sampleIOR(7001)})
	_ = n2.m.AnnounceSelf("addr-r2", nil)
	waitFor(t, "membership", func() bool { return len(n1.m.Replicas()) == 2 })

	client := dialMember(t, h, "client-1")
	// Ensure registration before multicasting (join a scratch group).
	_ = client.Join("scratch")
	<-client.Deliveries()

	if err := client.Multicast(testGroup, EncodeQueryPrimary(QueryPrimary{ReplyTo: "client-1"})); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case d := <-client.Deliveries():
			if d.Kind != gcs.DeliverPrivate {
				continue
			}
			msg, err := DecodeMessage(d.Payload)
			if err != nil {
				t.Fatal(err)
			}
			p, ok := msg.(PrimaryIs)
			if !ok {
				continue
			}
			if p.Name != "r1" || p.Addr != "addr-r1" {
				t.Fatalf("primary answer = %+v", p)
			}
			return
		case <-deadline:
			t.Fatal("no primary answer")
		}
	}
}

func TestForwardIORLookup(t *testing.T) {
	h := startHub(t)
	mon := budgetAt(t, 0)
	n1 := newManagerNode(t, h, "r1", LocationForward, mon)
	n2 := newManagerNode(t, h, "r2", LocationForward, mon)
	key := giop.MakeObjectKey("timeofday", "clock")
	_ = n1.m.AnnounceSelf("a1", []giop.IOR{giop.NewIOR("IDL:t:1.0", "127.0.0.1", 1, key)})
	_ = n2.m.AnnounceSelf("a2", []giop.IOR{giop.NewIOR("IDL:t:1.0", "127.0.0.1", 2, key)})
	waitFor(t, "membership", func() bool { return len(n1.m.Replicas()) == 2 })

	ior, addr, ok := n1.m.forwardIORFor(key)
	if !ok {
		t.Fatal("no forward IOR")
	}
	if addr != "a2" {
		t.Fatalf("forward addr = %q", addr)
	}
	prof, _ := ior.IIOP()
	if prof.Port != 2 {
		t.Fatalf("forward port = %d", prof.Port)
	}
	if _, _, ok := n1.m.forwardIORFor([]byte("unknown-key")); ok {
		t.Fatal("unknown key produced a forward IOR")
	}
}

func TestCheckThresholdsCountsFromWritePath(t *testing.T) {
	// Verifies the LOCATION_FORWARD rewrite path produces a correct
	// fabricated reply once migrating.
	h := startHub(t)
	b := budgetAt(t, 0.95)
	n1 := newManagerNode(t, h, "r1", LocationForward, b)
	n2 := newManagerNode(t, h, "r2", LocationForward, b)
	key := giop.MakeObjectKey("timeofday", "clock")
	_ = n1.m.AnnounceSelf("a1", []giop.IOR{giop.NewIOR("IDL:t:1.0", "127.0.0.1", 1, key)})
	_ = n2.m.AnnounceSelf("a2", []giop.IOR{giop.NewIOR("IDL:t:1.0", "127.0.0.1", 2, key)})
	waitFor(t, "membership", func() bool { return len(n1.m.Replicas()) == 2 })

	st := &connState{lastRequestID: 77, lastObjectKey: key, haveRequest: true}
	n1.m.checkThresholds()
	orig := giop.EncodeReply(cdr.BigEndian, giop.ReplyHeader{RequestID: 77, Status: giop.ReplyNoException}, nil)
	frame := giop.Frame{Kind: giop.FrameGIOP, Header: giop.Header{Major: 1, Order: cdr.BigEndian, Type: giop.MsgReply, Size: uint32(len(orig) - giop.HeaderLen)}, Raw: orig}
	out, err := n1.m.rewriteLocationForward(st, frame)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := giop.ParseHeader(out[:giop.HeaderLen])
	if err != nil {
		t.Fatal(err)
	}
	rh, d, err := giop.DecodeReply(h2.Order, out[giop.HeaderLen:])
	if err != nil {
		t.Fatal(err)
	}
	if rh.Status != giop.ReplyLocationForward || rh.RequestID != 77 {
		t.Fatalf("rewritten reply = %+v", rh)
	}
	fwd, err := giop.DecodeIOR(d)
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := fwd.IIOP()
	if prof.Port != 2 {
		t.Fatalf("forwarded to port %d", prof.Port)
	}
	if n1.m.Migrations() != 1 {
		t.Fatalf("migrations = %d", n1.m.Migrations())
	}
}
