package ftmgr

import (
	"bytes"
	"testing"

	"mead/internal/giop"
)

func sampleIOR(port uint16) giop.IOR {
	return giop.NewIOR("IDL:mead/TimeOfDay:1.0", "127.0.0.1", port,
		giop.MakeObjectKey("timeofday", "clock"))
}

func TestAnnounceRoundTrip(t *testing.T) {
	a := Announce{Name: "r1", Addr: "127.0.0.1:7001", IORs: []giop.IOR{sampleIOR(7001), sampleIOR(7002)}}
	msg, err := DecodeMessage(EncodeAnnounce(a))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := msg.(Announce)
	if !ok {
		t.Fatalf("decoded %T", msg)
	}
	if got.Name != "r1" || got.Addr != "127.0.0.1:7001" || len(got.IORs) != 2 {
		t.Fatalf("announce = %+v", got)
	}
	p, err := got.IORs[1].IIOP()
	if err != nil || p.Port != 7002 {
		t.Fatalf("ior profile = %+v, %v", p, err)
	}
}

func TestSyncListRoundTrip(t *testing.T) {
	s := SyncList{Replicas: []Announce{
		{Name: "r1", Addr: "a:1", IORs: []giop.IOR{sampleIOR(1)}},
		{Name: "r2", Addr: "a:2"},
	}}
	msg, err := DecodeMessage(EncodeSyncList(s))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := msg.(SyncList)
	if !ok || len(got.Replicas) != 2 || got.Replicas[1].Name != "r2" {
		t.Fatalf("sync = %+v", msg)
	}
}

func TestNoticeRoundTrip(t *testing.T) {
	n := Notice{Replica: "r1", Resource: "memory", Usage: 0.83}
	msg, err := DecodeMessage(EncodeNotice(n))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := msg.(Notice)
	if !ok || got != n {
		t.Fatalf("notice = %+v", msg)
	}
}

func TestQueryAndPrimaryRoundTrip(t *testing.T) {
	q, err := DecodeMessage(EncodeQueryPrimary(QueryPrimary{ReplyTo: "client-7"}))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := q.(QueryPrimary); !ok || got.ReplyTo != "client-7" {
		t.Fatalf("query = %+v", q)
	}
	p, err := DecodeMessage(EncodePrimaryIs(PrimaryIs{Name: "r2", Addr: "h:2", IORs: []giop.IOR{sampleIOR(2)}}))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := p.(PrimaryIs); !ok || got.Name != "r2" || got.Addr != "h:2" || len(got.IORs) != 1 {
		t.Fatalf("primary = %+v", p)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := Checkpoint{From: "r1", Seq: 42, Data: []byte{1, 2, 3}}
	msg, err := DecodeMessage(EncodeCheckpoint(c))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := msg.(Checkpoint)
	if !ok || got.From != "r1" || got.Seq != 42 || !bytes.Equal(got.Data, c.Data) {
		t.Fatalf("checkpoint = %+v", msg)
	}
}

func TestDecodeMessageErrors(t *testing.T) {
	if _, err := DecodeMessage(nil); err == nil {
		t.Fatal("empty message decoded")
	}
	if _, err := DecodeMessage([]byte{99}); err == nil {
		t.Fatal("unknown kind decoded")
	}
	if _, err := DecodeMessage([]byte{kindAnnounce, 1, 2}); err == nil {
		t.Fatal("truncated announce decoded")
	}
}

func TestRecoveryHandshakeRoundTrip(t *testing.T) {
	q := RecoveryQuery{From: "r2", OpNumber: 1 << 40, Nonce: 77}
	msg, err := DecodeMessage(EncodeRecoveryQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := msg.(RecoveryQuery); !ok || got != q {
		t.Fatalf("recovery query = %+v", msg)
	}
	s := RecoveryState{From: "r1", Nonce: 77, Data: []byte{9, 8, 7}}
	msg, err = DecodeMessage(EncodeRecoveryState(s))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := msg.(RecoveryState)
	if !ok || got.From != "r1" || got.Nonce != 77 || !bytes.Equal(got.Data, s.Data) {
		t.Fatalf("recovery state = %+v", msg)
	}
}
