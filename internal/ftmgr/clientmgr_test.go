package ftmgr

import (
	"net"
	"sync"
	"testing"
	"time"

	"mead/internal/cdr"
	"mead/internal/giop"
)

func TestNewClientManagerValidation(t *testing.T) {
	if _, err := NewClientManager(ClientConfig{Scheme: ReactiveNoCache}); err == nil {
		t.Fatal("reactive scheme accepted for client interception")
	}
	if _, err := NewClientManager(ClientConfig{Scheme: NeedsAddressing}); err == nil {
		t.Fatal("NEEDS_ADDRESSING without member accepted")
	}
	cm, err := NewClientManager(ClientConfig{Scheme: MeadMessage})
	if err != nil {
		t.Fatal(err)
	}
	if cm.cfg.QueryTimeout != DefaultQueryTimeout {
		t.Fatalf("query timeout default = %v", cm.cfg.QueryTimeout)
	}
}

// fakeServer accepts connections and serves scripted frame bytes in
// response to each request read. A nil script result closes the connection
// (abrupt server failure). Close tears down the listener and every accepted
// connection, as a process crash would.
type fakeServer struct {
	ln    net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (fs *fakeServer) Addr() string { return fs.ln.Addr().String() }

func (fs *fakeServer) Close() error {
	_ = fs.ln.Close()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, c := range fs.conns {
		_ = c.Close()
	}
	fs.conns = nil
	return nil
}

func fakeReplyServer(t *testing.T, script func(reqNum int, hdr giop.RequestHeader) [][]byte) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{ln: ln}
	t.Cleanup(func() { _ = fs.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			fs.mu.Lock()
			fs.conns = append(fs.conns, conn)
			fs.mu.Unlock()
			go func(c net.Conn) {
				defer c.Close()
				for reqNum := 0; ; reqNum++ {
					h, body, err := giop.ReadMessage(c)
					if err != nil {
						return
					}
					hdr, _, err := giop.DecodeRequest(h.Order, body)
					if err != nil {
						return
					}
					frames := script(reqNum, hdr)
					if frames == nil {
						return // scripted abrupt failure
					}
					for _, frame := range frames {
						if _, err := c.Write(frame); err != nil {
							return
						}
					}
				}
			}(conn)
		}
	}()
	return fs
}

func okReply(id uint32) []byte {
	return giop.EncodeReply(cdr.BigEndian,
		giop.ReplyHeader{RequestID: id, Status: giop.ReplyNoException},
		func(e *cdr.Encoder) { e.WriteLongLong(12345) })
}

// doInvoke writes one request through conn and reads the reply, mimicking
// the ORB's use of the intercepted connection.
func doInvoke(t *testing.T, conn net.Conn, id uint32) giop.ReplyHeader {
	t.Helper()
	req := giop.EncodeRequest(cdr.BigEndian, giop.RequestHeader{
		RequestID:        id,
		ResponseExpected: true,
		ObjectKey:        giop.MakeObjectKey("timeofday", "clock"),
		Operation:        "time_of_day",
	}, nil)
	if _, err := conn.Write(req); err != nil {
		t.Fatalf("write request %d: %v", id, err)
	}
	h, body, err := giop.ReadMessage(conn)
	if err != nil {
		t.Fatalf("read reply %d: %v", id, err)
	}
	rh, _, err := giop.DecodeReply(h.Order, body)
	if err != nil {
		t.Fatal(err)
	}
	return rh
}

func TestMeadClientRedirects(t *testing.T) {
	// Backup server: plain replies.
	backup := fakeReplyServer(t, func(_ int, hdr giop.RequestHeader) [][]byte {
		return [][]byte{okReply(hdr.RequestID)}
	})
	backupIOR := giop.NewIOR("IDL:t:1.0", "127.0.0.1", 0, giop.MakeObjectKey("timeofday", "clock"))

	// Failing primary: piggybacks a MEAD fail-over frame pointing at the
	// backup onto its (final) reply.
	primary := fakeReplyServer(t, func(_ int, hdr giop.RequestHeader) [][]byte {
		return [][]byte{
			giop.EncodeMeadFailover(backup.Addr(), backupIOR),
			okReply(hdr.RequestID),
		}
	})

	var events []FailoverEvent
	cm, err := NewClientManager(ClientConfig{
		Scheme:     MeadMessage,
		OnFailover: func(ev FailoverEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := net.Dial("tcp", primary.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn := cm.WrapClientConn(raw)
	defer conn.Close()

	// First invocation: served by the primary, MEAD frame filtered out,
	// connection silently redirected.
	if rh := doInvoke(t, conn, 1); rh.Status != giop.ReplyNoException || rh.RequestID != 1 {
		t.Fatalf("reply 1 = %+v", rh)
	}
	// Second invocation: must reach the backup.
	if rh := doInvoke(t, conn, 2); rh.Status != giop.ReplyNoException || rh.RequestID != 2 {
		t.Fatalf("reply 2 = %+v", rh)
	}
	if cm.Failovers() != 1 || len(events) != 1 {
		t.Fatalf("failovers = %d, events = %d", cm.Failovers(), len(events))
	}
	if events[0].Scheme != MeadMessage || events[0].Target != backup.Addr() {
		t.Fatalf("event = %+v", events[0])
	}
}

func TestMeadClientIgnoresUnreachableTarget(t *testing.T) {
	// If the fail-over target is dead, the notice is dropped and the
	// current replica keeps serving.
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadLn.Addr().String()
	_ = deadLn.Close()
	deadIOR := giop.NewIOR("IDL:t:1.0", "127.0.0.1", 0, giop.MakeObjectKey("t", "c"))

	primary := fakeReplyServer(t, func(_ int, hdr giop.RequestHeader) [][]byte {
		return [][]byte{
			giop.EncodeMeadFailover(deadAddr, deadIOR),
			okReply(hdr.RequestID),
		}
	})
	cm, err := NewClientManager(ClientConfig{Scheme: MeadMessage, DialTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := net.Dial("tcp", primary.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn := cm.WrapClientConn(raw)
	defer conn.Close()
	for id := uint32(1); id <= 3; id++ {
		if rh := doInvoke(t, conn, id); rh.Status != giop.ReplyNoException {
			t.Fatalf("reply %d = %+v", id, rh)
		}
	}
	if cm.Failovers() != 0 {
		t.Fatalf("failovers = %d, want 0", cm.Failovers())
	}
}

func TestNeedsAddressingRecoversFromEOF(t *testing.T) {
	h := startHub(t)
	mon := budgetAt(t, 0)

	// Live backup replica: answers primary queries and serves requests.
	backup := fakeReplyServer(t, func(_ int, hdr giop.RequestHeader) [][]byte {
		return [][]byte{okReply(hdr.RequestID)}
	})
	n2 := newManagerNode(t, h, "r2", NeedsAddressing, mon)
	_ = n2.m.AnnounceSelf(backup.Addr(), nil)
	waitFor(t, "r2 in view", func() bool { return len(n2.m.View().Members) >= 1 })

	// Failing primary: serves one request then drops the connection.
	primary := fakeReplyServer(t, func(reqNum int, hdr giop.RequestHeader) [][]byte {
		if reqNum == 0 {
			return [][]byte{okReply(hdr.RequestID)}
		}
		return nil // no reply; connection will be closed via panic-free path
	})

	clientMember := dialMember(t, h, "client-na")
	cm, err := NewClientManager(ClientConfig{
		Scheme:       NeedsAddressing,
		Member:       clientMember,
		Group:        testGroup,
		QueryTimeout: 500 * time.Millisecond, // generous for CI timing
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := net.Dial("tcp", primary.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn := cm.WrapClientConn(raw)
	defer conn.Close()

	if rh := doInvoke(t, conn, 1); rh.Status != giop.ReplyNoException {
		t.Fatalf("reply 1 = %+v", rh)
	}

	// Kill the primary underneath the client: the next read hits EOF.
	primaryUnder := primary
	_ = primaryUnder.Close()
	// Write request 2 (may succeed into the dead socket's buffer), then
	// read: the interceptor must fabricate NEEDS_ADDRESSING_MODE.
	req := giop.EncodeRequest(cdr.BigEndian, giop.RequestHeader{
		RequestID: 2, ResponseExpected: true,
		ObjectKey: giop.MakeObjectKey("timeofday", "clock"), Operation: "time_of_day",
	}, nil)
	if _, err := conn.Write(req); err != nil {
		t.Skipf("request write failed before EOF detection: %v", err)
	}
	hh, body, err := giop.ReadMessage(conn)
	if err != nil {
		t.Fatalf("read after primary death: %v", err)
	}
	rh, _, err := giop.DecodeReply(hh.Order, body)
	if err != nil {
		t.Fatal(err)
	}
	if rh.Status != giop.ReplyNeedsAddressingMode || rh.RequestID != 2 {
		t.Fatalf("fabricated reply = %+v", rh)
	}
	// The ORB would now retransmit request 2; it must reach the backup.
	if rh := doInvoke(t, conn, 2); rh.Status != giop.ReplyNoException || rh.RequestID != 2 {
		t.Fatalf("retransmitted reply = %+v", rh)
	}
	if cm.Failovers() != 1 {
		t.Fatalf("failovers = %d", cm.Failovers())
	}
}

func TestNeedsAddressingTimeoutPropagatesEOF(t *testing.T) {
	h := startHub(t)
	// No replicas in the group: the query must time out and the EOF must
	// reach the caller (COMM_FAILURE at the ORB).
	clientMember := dialMember(t, h, "client-to")
	cm, err := NewClientManager(ClientConfig{
		Scheme:       NeedsAddressing,
		Member:       clientMember,
		Group:        testGroup,
		QueryTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	primary := fakeReplyServer(t, func(_ int, hdr giop.RequestHeader) [][]byte {
		return [][]byte{okReply(hdr.RequestID)}
	})
	raw, err := net.Dial("tcp", primary.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn := cm.WrapClientConn(raw)
	defer conn.Close()
	if rh := doInvoke(t, conn, 1); rh.Status != giop.ReplyNoException {
		t.Fatalf("reply 1 = %+v", rh)
	}
	// Kill the server; the recovery query has nobody to answer it.
	for _, c := range []interface{ Close() error }{primary} {
		_ = c.Close()
	}
	buf := make([]byte, 16)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read succeeded though no primary exists")
	}
	if cm.Failovers() != 0 {
		t.Fatalf("failovers = %d", cm.Failovers())
	}
}
