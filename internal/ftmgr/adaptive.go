package ftmgr

import (
	"math"
	"sync"
	"time"
)

// This file implements the paper's stated future work (Section 6): "we plan
// to integrate adaptive thresholds into our framework rather than relying
// on preset thresholds supplied by the user", driven by "more sophisticated
// failure prediction".
//
// TrendPredictor estimates the resource-exhaustion time from observed usage
// samples, in the spirit of Lin & Siewiorek's trend-analysis heuristics
// [7]; AdaptiveThreshold converts that estimate plus a required hand-off
// lead time into a migration threshold, realizing the paper's "ideal
// scenario ... to delay proactive recovery so that the proactive
// dependability framework has just enough time to redirect clients".

// trendSample is one timestamped usage observation.
type trendSample struct {
	at    time.Time
	usage float64
}

// TrendPredictor estimates the resource's growth rate from a sliding window
// of usage samples (least-squares slope) and projects time-to-exhaustion.
// It is safe for concurrent use.
type TrendPredictor struct {
	mu      sync.Mutex
	window  int
	samples []trendSample
	now     func() time.Time
}

// DefaultTrendWindow is the default sample window size.
const DefaultTrendWindow = 32

// NewTrendPredictor returns a predictor keeping the last window samples
// (<= 0 means DefaultTrendWindow).
func NewTrendPredictor(window int) *TrendPredictor {
	if window <= 0 {
		window = DefaultTrendWindow
	}
	return &TrendPredictor{window: window, now: time.Now}
}

// Observe records a usage fraction (0..1+).
func (p *TrendPredictor) Observe(usage float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.samples = append(p.samples, trendSample{at: p.now(), usage: usage})
	if len(p.samples) > p.window {
		p.samples = p.samples[len(p.samples)-p.window:]
	}
}

// Rate returns the estimated usage growth in fraction/second and whether
// enough data exists for an estimate.
func (p *TrendPredictor) Rate() (perSecond float64, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rateLocked()
}

func (p *TrendPredictor) rateLocked() (float64, bool) {
	n := len(p.samples)
	if n < 3 {
		return 0, false
	}
	t0 := p.samples[0].at
	var sumX, sumY, sumXX, sumXY float64
	for _, s := range p.samples {
		x := s.at.Sub(t0).Seconds()
		y := s.usage
		sumX += x
		sumY += y
		sumXX += x * x
		sumXY += x * y
	}
	fn := float64(n)
	den := fn*sumXX - sumX*sumX
	if den <= 0 {
		return 0, false
	}
	slope := (fn*sumXY - sumX*sumY) / den
	if math.IsNaN(slope) || math.IsInf(slope, 0) {
		return 0, false
	}
	return slope, true
}

// TimeToExhaustion projects how long until usage reaches 1.0 at the current
// trend. ok is false when the trend is flat, shrinking, or under-sampled.
func (p *TrendPredictor) TimeToExhaustion() (time.Duration, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rate, ok := p.rateLocked()
	if !ok || rate <= 0 {
		return 0, false
	}
	current := p.samples[len(p.samples)-1].usage
	remaining := 1.0 - current
	if remaining <= 0 {
		return 0, true
	}
	return time.Duration(remaining / rate * float64(time.Second)), true
}

// AdaptiveThreshold derives the migration threshold from the observed leak
// trend: migrate when the projected time to exhaustion drops below the
// hand-off lead time (scaled by a safety factor), i.e.
//
//	threshold = 1 - rate * leadTime * safety
//
// clamped to [Floor, Ceil]. Until a trend is measurable it returns the
// caller's preset threshold, so the framework degrades to the paper's
// static scheme.
type AdaptiveThreshold struct {
	predictor *TrendPredictor
	leadTime  time.Duration
	safety    float64

	// Floor and Ceil clamp the derived threshold.
	Floor float64
	Ceil  float64
}

// DefaultSafetyFactor leaves slack for jitter in the hand-off path.
const DefaultSafetyFactor = 2.0

// NewAdaptiveThreshold returns an adaptive threshold for a recovery path
// that needs leadTime to migrate all clients.
func NewAdaptiveThreshold(leadTime time.Duration) *AdaptiveThreshold {
	return &AdaptiveThreshold{
		predictor: NewTrendPredictor(0),
		leadTime:  leadTime,
		safety:    DefaultSafetyFactor,
		Floor:     0.20,
		Ceil:      0.95,
	}
}

// Observe feeds a usage sample to the underlying trend predictor.
func (a *AdaptiveThreshold) Observe(usage float64) {
	a.predictor.Observe(usage)
}

// Predictor exposes the underlying trend predictor.
func (a *AdaptiveThreshold) Predictor() *TrendPredictor { return a.predictor }

// Threshold returns the current migration threshold, falling back to preset
// when no trend is measurable.
func (a *AdaptiveThreshold) Threshold(preset float64) float64 {
	rate, ok := a.predictor.Rate()
	if !ok || rate <= 0 {
		return preset
	}
	th := 1 - rate*a.leadTime.Seconds()*a.safety
	if th < a.Floor {
		th = a.Floor
	}
	if th > a.Ceil {
		th = a.Ceil
	}
	return th
}
