package ftmgr

import (
	"errors"
	"net"
	"sync"
	"time"

	"mead/internal/gcs"
	"mead/internal/giop"
	"mead/internal/interceptor"
	"mead/internal/telemetry"
)

// DefaultQueryTimeout is the paper's 10 ms window for the NEEDS_ADDRESSING
// scheme: "If the client does not receive a response from the server group
// within a specified time (we used a 10ms timeout), the blocking read() at
// the client-side times out, and a CORBA COMM_FAILURE exception is
// propagated up to the client application."
const DefaultQueryTimeout = 10 * time.Millisecond

// FailoverEvent describes one client-side hand-off performed by the
// interceptor, for the experiment's fail-over accounting.
type FailoverEvent struct {
	Scheme Scheme
	Target string
	At     time.Time
}

// DialFunc opens a transport connection; the chaos harness substitutes
// netfault's injecting dialer (default net.DialTimeout).
type DialFunc func(network, addr string, timeout time.Duration) (net.Conn, error)

// ClientConfig parameterizes the client-side fault-tolerance manager.
type ClientConfig struct {
	// Scheme must be NeedsAddressing or MeadMessage; the LOCATION_FORWARD
	// scheme "does not require an Interceptor at the client because the
	// client ORB handles the retransmission through native CORBA
	// mechanisms", and the reactive baselines run without interception.
	Scheme Scheme
	// Member is the client's GCS connection (NEEDS_ADDRESSING only).
	Member *gcs.Member
	// Group is the server group queried for the new primary.
	Group string
	// QueryTimeout bounds the primary query (default 10 ms).
	QueryTimeout time.Duration
	// DialTimeout bounds redirection dials (default 2 s).
	DialTimeout time.Duration
	// Dial opens redirection connections (default net.DialTimeout); the
	// chaos harness injects here so even recovery dials cross the faulty
	// network.
	Dial DialFunc
	// OnFailover observes completed hand-offs (metrics).
	OnFailover func(FailoverEvent)
	// Telemetry, when set, records fail-over notices, transport swaps, and
	// interceptor-driven retransmissions as recovery-trace events.
	Telemetry *telemetry.Telemetry
}

// ClientManager is the Proactive Fault-Tolerance Manager half embedded in
// the client-side interceptor.
type ClientManager struct {
	cfg ClientConfig

	mu        sync.Mutex
	failovers int
}

// NewClientManager validates cfg and returns a ClientManager.
func NewClientManager(cfg ClientConfig) (*ClientManager, error) {
	switch cfg.Scheme {
	case NeedsAddressing:
		if cfg.Member == nil {
			return nil, errors.New("ftmgr: NEEDS_ADDRESSING client requires a GCS member")
		}
	case MeadMessage:
		// No GCS needed: redirection information arrives piggybacked.
	default:
		return nil, errors.New("ftmgr: client interceptor applies only to NEEDS_ADDRESSING and MEAD schemes")
	}
	if cfg.QueryTimeout == 0 {
		cfg.QueryTimeout = DefaultQueryTimeout
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.Dial == nil {
		cfg.Dial = net.DialTimeout
	}
	return &ClientManager{cfg: cfg}, nil
}

// Failovers returns how many hand-offs this manager has performed.
func (cm *ClientManager) Failovers() int {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	return cm.failovers
}

func (cm *ClientManager) noteFailover(target string) {
	cm.mu.Lock()
	cm.failovers++
	cm.mu.Unlock()
	if cm.cfg.OnFailover != nil {
		cm.cfg.OnFailover(FailoverEvent{Scheme: cm.cfg.Scheme, Target: target, At: time.Now()})
	}
}

// WrapClientConn interposes the scheme's client-side interceptor on a
// dialed connection; pass it to orb.WithClientConnWrapper.
func (cm *ClientManager) WrapClientConn(conn net.Conn) net.Conn {
	switch cm.cfg.Scheme {
	case MeadMessage:
		return interceptor.New(conn, cm.meadHooks())
	case NeedsAddressing:
		return interceptor.New(conn, cm.needsAddrHooks())
	default:
		return conn
	}
}

// meadHooks implement Section 4.3 at the client: filter MEAD fail-over
// frames out of the reply stream, redirect the connection to the named
// replica (dup2-equivalent swap), and pass the regular GIOP reply up to the
// unmodified ORB.
func (cm *ClientManager) meadHooks() interceptor.Hooks {
	var (
		pending       net.Conn
		pendingTarget string
		lastRequestID uint32
		lastOrder     giop.Header
		haveRequest   bool
	)
	// recover repairs the stream after a wire fault killed the connection:
	// prefer the already-dialed migration target (the fail-over notice beat
	// the fault), otherwise reconnect to the same replica — a wire-level
	// fault, unlike a crash, leaves the primary alive and reachable. It
	// reports the address the stream now points at.
	recover := func(c *interceptor.Conn) (string, bool) {
		if pending != nil {
			c.SwapUnder(pending)
			target := pendingTarget
			pending = nil
			cm.cfg.Telemetry.ConnSwapped(target)
			cm.noteFailover(target)
			return target, true
		}
		addr := c.Under().RemoteAddr()
		if addr == nil {
			return "", false
		}
		target := addr.String()
		newConn, err := cm.cfg.Dial("tcp", target, cm.cfg.DialTimeout)
		if err != nil {
			return "", false
		}
		c.SwapUnder(newConn)
		cm.cfg.Telemetry.ConnSwapped(target)
		return target, true
	}
	return interceptor.Hooks{
		OnWriteFrame: func(c *interceptor.Conn, f giop.Frame) ([]byte, error) {
			if f.Kind == giop.FrameGIOP && f.Header.Type == giop.MsgRequest {
				if id, err := giop.RequestIDOf(f.Header.Order, f.Body()); err == nil {
					lastRequestID = id
					lastOrder = f.Header
					haveRequest = true
				}
			}
			return f.Raw, nil
		},
		OnReadFrame: func(c *interceptor.Conn, f giop.Frame) ([]byte, error) {
			switch f.Kind {
			case giop.FrameMEAD:
				if f.Mead.Type != giop.MeadFailover {
					return nil, nil // consume unknown MEAD frames silently
				}
				addr, _, err := giop.DecodeMeadFailover(f.Mead.Payload)
				if err != nil {
					return nil, nil
				}
				newConn, err := cm.cfg.Dial("tcp", addr, cm.cfg.DialTimeout)
				if err != nil {
					// Migration target unreachable: ignore the notice and
					// keep using the (still live) failing replica.
					return nil, nil
				}
				pending = newConn
				pendingTarget = addr
				cm.cfg.Telemetry.FailoverReceived(addr)
				return nil, nil
			case giop.FrameGIOP:
				if f.Header.Type == giop.MsgReply && pending != nil {
					// The failing replica's final reply is fully buffered;
					// repoint the stream before handing the reply up, so
					// the next request already flows to the new replica.
					c.SwapUnder(pending)
					pending = nil
					cm.cfg.Telemetry.ConnSwapped(pendingTarget)
					cm.noteFailover(pendingTarget)
				}
				return f.Raw, nil
			default:
				return f.Raw, nil
			}
		},
		OnReadEOF: func(c *interceptor.Conn, readErr error) ([]byte, bool) {
			// The stream died without (or before) a fail-over notice — a
			// wire fault rather than the managed migration. Repair the
			// transport and fabricate NEEDS_ADDRESSING so the unmodified
			// ORB retransmits the in-flight request.
			if !haveRequest {
				return nil, false
			}
			if _, ok := recover(c); !ok {
				return nil, false
			}
			fabricated := giop.EncodeReply(lastOrder.Order, giop.ReplyHeader{
				RequestID: lastRequestID,
				Status:    giop.ReplyNeedsAddressingMode,
			}, nil)
			return fabricated, true
		},
		OnWriteError: func(c *interceptor.Conn, writeErr error) bool {
			// The request frame itself failed to leave: repair and let the
			// interceptor rewrite the frame on the fresh transport. The ORB
			// never sees this resend, so the retransmit is recorded here.
			target, ok := recover(c)
			if ok {
				cm.cfg.Telemetry.Retransmitted(target)
			}
			return ok
		},
	}
}

// needsAddrHooks implement Section 4.2: detect abrupt server failure as EOF
// on the blocking read, ask the replica group for the new primary within
// the query timeout, redirect the connection, and fabricate a
// NEEDS_ADDRESSING_MODE reply that makes the client ORB retransmit.
func (cm *ClientManager) needsAddrHooks() interceptor.Hooks {
	var (
		lastRequestID uint32
		lastOrder     = giop.Header{Order: 0}
		haveRequest   bool
	)
	return interceptor.Hooks{
		OnWriteFrame: func(c *interceptor.Conn, f giop.Frame) ([]byte, error) {
			if f.Kind == giop.FrameGIOP && f.Header.Type == giop.MsgRequest {
				if id, err := giop.RequestIDOf(f.Header.Order, f.Body()); err == nil {
					lastRequestID = id
					lastOrder = f.Header
					haveRequest = true
				}
			}
			return f.Raw, nil
		},
		OnReadEOF: func(c *interceptor.Conn, readErr error) ([]byte, bool) {
			if !haveRequest {
				return nil, false
			}
			if !cm.redirectToPrimary(c) {
				return nil, false // timeout: COMM_FAILURE reaches the app
			}
			fabricated := giop.EncodeReply(lastOrder.Order, giop.ReplyHeader{
				RequestID: lastRequestID,
				Status:    giop.ReplyNeedsAddressingMode,
			}, nil)
			return fabricated, true
		},
		OnWriteError: func(c *interceptor.Conn, writeErr error) bool {
			// The request died on the way out (e.g. a mid-frame reset).
			// Redirect to the current primary and resume: the interceptor
			// rewrites the whole frame, so no fabricated reply is needed —
			// and the ORB never sees the resend, so it is recorded here.
			target, ok := cm.redirectToPrimaryAddr(c)
			if ok {
				cm.cfg.Telemetry.Retransmitted(target)
			}
			return ok
		},
	}
}

// redirectToPrimary performs the NEEDS_ADDRESSING recovery: query the group
// for the agreed-upon primary within the query timeout, dial it, and swap
// the interceptor's transport over.
func (cm *ClientManager) redirectToPrimary(c *interceptor.Conn) bool {
	_, ok := cm.redirectToPrimaryAddr(c)
	return ok
}

// redirectToPrimaryAddr is redirectToPrimary, also reporting the primary's
// address for telemetry labels.
func (cm *ClientManager) redirectToPrimaryAddr(c *interceptor.Conn) (string, bool) {
	primary, ok := cm.queryPrimary()
	if !ok {
		return "", false
	}
	newConn, err := cm.cfg.Dial("tcp", primary.Addr, cm.cfg.DialTimeout)
	if err != nil {
		return "", false
	}
	c.SwapUnder(newConn)
	cm.cfg.Telemetry.ConnSwapped(primary.Addr)
	cm.noteFailover(primary.Addr)
	return primary.Addr, true
}

// queryPrimary multicasts a primary query to the server group and waits for
// the first PrimaryIs answer within the query timeout. "At this point,
// there is no agreed-upon primary replica to service the client request" is
// the failure case the paper observed in 25% of server failures.
func (cm *ClientManager) queryPrimary() (PrimaryIs, bool) {
	member := cm.cfg.Member
	// Drain stale answers from previous queries.
	for {
		select {
		case <-member.Deliveries():
			continue
		default:
		}
		break
	}
	if err := member.Multicast(cm.cfg.Group, EncodeQueryPrimary(QueryPrimary{ReplyTo: member.Name()})); err != nil {
		return PrimaryIs{}, false
	}
	deadline := time.NewTimer(cm.cfg.QueryTimeout)
	defer deadline.Stop()
	for {
		select {
		case d, ok := <-member.Deliveries():
			if !ok {
				return PrimaryIs{}, false
			}
			if d.Kind != gcs.DeliverPrivate {
				continue
			}
			msg, err := DecodeMessage(d.Payload)
			if err != nil {
				continue
			}
			if p, ok := msg.(PrimaryIs); ok {
				return p, true
			}
		case <-deadline.C:
			return PrimaryIs{}, false
		}
	}
}
