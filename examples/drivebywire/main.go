// Drivebywire frames the paper's motivation: "unanticipated runtime events,
// such as faults, can lead to missed deadlines in real-time systems." A
// periodic control loop (a drive-by-wire task polling a replicated sensor
// service) runs under the reactive baseline and under MEAD proactive
// recovery, and counts missed deadlines — invocations whose response
// arrives after the task's period budget.
package main

import (
	"fmt"
	"log"
	"time"

	"mead"
)

// The control task: 1 ms period, and the response must arrive within half
// the period for the control law to use it.
const (
	period   = time.Millisecond
	deadline = period / 2
	cycles   = 3000
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	template := mead.Scenario{
		Invocations: cycles, // used for deployment sizing only
		InjectFault: true,
		Fault: mead.FaultConfig{
			Tick:      3 * time.Millisecond,
			ChunkUnit: 16,
			Seed:      17,
		},
		RestartDelay:    40 * time.Millisecond,
		ProactiveDelay:  10 * time.Millisecond,
		CheckpointEvery: 10 * time.Millisecond,
	}

	fmt.Printf("control loop: period %v, response deadline %v, %d cycles\n\n",
		period, deadline, cycles)
	for _, scheme := range []mead.Scheme{mead.ReactiveNoCache, mead.MeadMessage} {
		missed, worst, exceptions, err := controlLoop(template, scheme)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s missed deadlines: %4d / %d (%.2f%%)   worst response: %8v   exceptions: %d\n",
			scheme.String(), missed, cycles, 100*float64(missed)/float64(cycles),
			worst.Round(time.Microsecond), exceptions)
	}
	fmt.Println("\nproactive hand-off keeps recovery inside the deadline budget;")
	fmt.Println("reactive detection+re-resolution blows through it on every failure.")
	return nil
}

func controlLoop(template mead.Scenario, scheme mead.Scheme) (missed int, worst time.Duration, exceptions int, err error) {
	sc := template
	sc.Scheme = scheme
	dep, err := mead.NewDeployment(sc)
	if err != nil {
		return 0, 0, 0, err
	}
	defer dep.Close()
	strat, err := dep.NewClient()
	if err != nil {
		return 0, 0, 0, err
	}
	defer strat.Close()

	start := time.Now()
	for i := 0; i < cycles; i++ {
		next := start.Add(time.Duration(i) * period)
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		out := strat.Invoke()
		if out.Err != nil {
			return 0, 0, 0, fmt.Errorf("%v cycle %d: %w", scheme, i, out.Err)
		}
		exceptions += len(out.Exceptions)
		if out.RTT > deadline {
			missed++
		}
		if out.RTT > worst {
			worst = out.RTT
		}
	}
	return missed, worst, exceptions, nil
}
