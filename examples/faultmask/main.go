// Faultmask runs the same faulty workload under the reactive baseline and
// under the MEAD proactive fail-over scheme, side by side, and contrasts
// what the client application experiences: COMM_FAILURE exceptions and
// multi-millisecond fail-over spikes versus complete masking.
package main

import (
	"fmt"
	"log"
	"time"

	"mead"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	template := mead.Scenario{
		Invocations: 2000,
		Period:      200 * time.Microsecond,
		InjectFault: true,
		Fault: mead.FaultConfig{
			Tick:      2 * time.Millisecond,
			ChunkUnit: 16,
			Seed:      5,
		},
		RestartDelay:    25 * time.Millisecond,
		ProactiveDelay:  5 * time.Millisecond,
		CheckpointEvery: 10 * time.Millisecond,
	}

	fmt.Println("same workload, same fault, two recovery strategies:")
	for _, scheme := range []mead.Scheme{mead.ReactiveNoCache, mead.MeadMessage} {
		sc := template
		sc.Scheme = scheme
		res, err := mead.Run(sc)
		if err != nil {
			return err
		}
		fmt.Printf("\n--- %v ---\n", scheme)
		fmt.Printf("server-side failures:        %d\n", res.ServerFailures)
		fmt.Printf("exceptions at the app:       %v\n", res.Exceptions)
		fmt.Printf("client failures per failure: %.0f%%\n", res.ClientFailurePct())
		fmt.Printf("mean fail-over time:         %v\n", res.MeanFailoverTime().Round(time.Microsecond))
		fmt.Printf("mean steady rtt:             %v\n", res.MeanSteadyRTT().Round(time.Microsecond))
		fmt.Println(res.Series().ASCIIPlot(90, 10))
	}
	fmt.Println("the reactive run exposes one COMM_FAILURE per server failure;")
	fmt.Println("the MEAD run hands clients off before the crash, masking every one.")
	return nil
}
