// Timeofday reassembles the paper's testbed by hand from the library's
// building blocks — hub, naming service, replicas, recovery manager and
// client — instead of using the one-call Deployment. This is the example to
// read to understand how the pieces fit together (and how a multi-process
// deployment with the cmd/ binaries is wired).
package main

import (
	"fmt"
	"log"
	"time"

	"mead"
)

const service = "timeofday"

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. The group-communication substrate (the Spread daemon stand-in).
	hub := mead.NewHub()
	if err := hub.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer hub.Close()

	// 2. The CORBA Naming Service.
	names := mead.NewNamingServer()
	if err := names.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer names.Close()

	// 3. Three warm-passively replicated time-of-day servers under the
	//    LOCATION_FORWARD proactive scheme, each with the paper's
	//    memory-leak fault armed to fire after its first client request.
	svcCfg := mead.ServiceConfig{
		Service:          service,
		HubAddr:          hub.Addr(),
		NamesAddr:        names.Addr(),
		Scheme:           mead.LocationForward,
		LaunchThreshold:  0.60,
		MigrateThreshold: 0.80,
		InjectFault:      true,
		Fault: mead.FaultConfig{
			Tick:      5 * time.Millisecond,
			ChunkUnit: 16,
			Seed:      7,
		},
		CheckpointEvery: 10 * time.Millisecond,
	}
	replicaNames := []string{"r1", "r2", "r3"}
	launch := func(name string) error {
		r, err := mead.NewReplica(name, svcCfg)
		if err != nil {
			return err
		}
		return r.Start()
	}
	for _, name := range replicaNames {
		if err := launch(name); err != nil {
			return err
		}
	}

	// 4. The MEAD Recovery Manager, subscribing to the server group and
	//    relaunching replicas as they rejuvenate or crash.
	rmMember, err := mead.DialGroup(hub.Addr(), "recovery-manager")
	if err != nil {
		return err
	}
	rm, err := mead.NewRecoveryManager(mead.RecoveryConfig{
		Member:         rmMember,
		Group:          svcCfg.Group(),
		ReplicaNames:   replicaNames,
		RestartDelay:   40 * time.Millisecond,
		ProactiveDelay: 10 * time.Millisecond,
		Factory:        mead.FactoryFunc(launch),
	})
	if err != nil {
		return err
	}
	if err := rm.Start(); err != nil {
		return err
	}
	defer rm.Stop()

	// Give the replicas a moment to register and announce.
	time.Sleep(50 * time.Millisecond)

	// 5. The client: resolve through the naming service and invoke at the
	//    paper's pacing. The LOCATION_FORWARD hand-offs are handled by the
	//    (unmodified) client ORB itself.
	strat, err := mead.NewClient(mead.ClientConfig{
		Scheme:    mead.LocationForward,
		Service:   service,
		NamesAddr: names.Addr(),
		HubAddr:   hub.Addr(),
	})
	if err != nil {
		return err
	}
	defer strat.Close()

	var rtts []time.Duration
	failovers := 0
	exceptions := 0
	for i := 0; i < 3000; i++ {
		out := strat.Invoke()
		if out.Err != nil {
			return fmt.Errorf("invocation %d: %w", i, out.Err)
		}
		rtts = append(rtts, out.RTT)
		exceptions += len(out.Exceptions)
		if out.Failover {
			failovers++
			fmt.Printf("hand-off at invocation %4d -> now served by %s (spike %v)\n",
				i, out.Replica, out.RTT.Round(time.Microsecond))
		}
		time.Sleep(200 * time.Microsecond)
	}

	sum := mead.Summarize(rtts)
	fmt.Printf("\nLOCATION_FORWARD run: mean rtt %v, p99 %v, max %v\n", sum.Mean, sum.P99, sum.Max)
	fmt.Printf("transparent hand-offs: %d; exceptions at the app: %d\n", failovers, exceptions)
	fmt.Printf("recovery manager: %d failures observed, %d replicas relaunched\n",
		rm.Failures(), rm.Launches())
	return nil
}
