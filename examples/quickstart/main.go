// Quickstart: boot a complete MEAD deployment (group-communication hub,
// naming service, recovery manager, three warm-passive replicas with a
// memory-leak fault) and watch the MEAD proactive fail-over scheme mask
// every failure from the client.
package main

import (
	"fmt"
	"log"
	"time"

	"mead"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One call boots hub + naming + recovery manager + 3 replicas.
	dep, err := mead.NewDeployment(mead.Scenario{
		Scheme:      mead.MeadMessage,
		InjectFault: true,
		Fault: mead.FaultConfig{
			Tick:      5 * time.Millisecond, // compressed leak for the demo
			ChunkUnit: 16,
		},
		RestartDelay:    30 * time.Millisecond,
		CheckpointEvery: 10 * time.Millisecond,
		Seed:            1,
	})
	if err != nil {
		return err
	}
	defer dep.Close()
	fmt.Printf("deployment up: hub=%s naming=%s service=%q\n",
		dep.HubAddr(), dep.NamesAddr(), dep.Service())

	strat, err := dep.NewClient()
	if err != nil {
		return err
	}
	defer strat.Close()

	failovers, exceptions := 0, 0
	current := ""
	for i := 0; i < 2000; i++ {
		out := strat.Invoke()
		if out.Err != nil {
			return fmt.Errorf("invocation %d failed: %w", i, out.Err)
		}
		exceptions += len(out.Exceptions)
		if out.Failover {
			failovers++
		}
		if out.Replica != current {
			fmt.Printf("invocation %4d served by %s (rtt %v)\n", i, out.Replica, out.RTT.Round(time.Microsecond))
			current = out.Replica
		}
		time.Sleep(200 * time.Microsecond)
	}

	fmt.Printf("\n2000 invocations, %d transparent fail-overs, %d exceptions seen by the app\n",
		failovers, exceptions)
	fmt.Printf("server-side failure events handled: %d (relaunches: %d)\n",
		dep.Recovery().Failures(), dep.Recovery().Launches())
	if exceptions == 0 {
		fmt.Println("=> every resource-exhaustion failure was masked proactively")
	}
	return nil
}
