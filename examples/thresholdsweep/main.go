// Thresholdsweep reproduces Figure 5 in miniature: it varies the
// rejuvenation threshold for the two proactive schemes and reports the
// server group's communication bandwidth, showing the paper's trade-off —
// "if the threshold is set too low, the overhead in the system increases
// due to unnecessarily migrating clients."
package main

import (
	"fmt"
	"log"
	"time"

	"mead"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	template := mead.Scenario{
		Invocations: 1500,
		Period:      200 * time.Microsecond,
		InjectFault: true,
		Fault: mead.FaultConfig{
			Tick:      2 * time.Millisecond,
			ChunkUnit: 16,
			Seed:      11,
		},
		RestartDelay:    25 * time.Millisecond,
		ProactiveDelay:  5 * time.Millisecond,
		CheckpointEvery: 10 * time.Millisecond,
	}
	thresholds := []float64{0.2, 0.4, 0.6, 0.8}
	fmt.Println("sweeping rejuvenation thresholds (compressed Figure 5)...")
	points, err := mead.RunThresholdSweep(template, thresholds,
		[]mead.Scheme{mead.LocationForward, mead.MeadMessage})
	if err != nil {
		return err
	}
	fmt.Println(mead.FormatSweep(points))
	fmt.Println("expected shape: bandwidth (and restarts) fall as the threshold rises —")
	fmt.Println("\"the best performance is achieved by delaying proactive recovery so that")
	fmt.Println(" the framework has just enough time to redirect clients away.\"")
	return nil
}
