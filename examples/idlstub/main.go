// Idlstub demonstrates the IDL toolchain end to end: the interface in
// timeofday.idl is compiled by cmd/mead-idl into typed Go stubs and servant
// adapters (gen/gen.go), which are then served and invoked over the
// mini-ORB — the workflow a CORBA application developer followed with a
// vendor IDL compiler.
package main

import (
	"fmt"
	"log"
	"time"

	"mead/examples/idlstub/gen"
	"mead/internal/giop"
	"mead/internal/orb"
)

// clockImpl implements the generated servant-side interface.
type clockImpl struct {
	count uint64
	notes []string
}

func (c *clockImpl) TimeOfDay() (ret int64, counter uint64, replica string, err error) {
	c.count++
	return time.Now().UnixNano(), c.count, "idl-demo", nil
}

func (c *clockImpl) Counter() (ret uint64, err error) {
	return c.count, nil
}

func (c *clockImpl) Status(requester string) (ret gen.Status, err error) {
	return gen.Status{
		Replica: "idl-demo",
		Health:  gen.HealthHEALTHY,
		Counter: c.count,
		Payload: []byte{0xCA, 0xFE},
		Tags:    []string{"requested-by:" + requester},
	}, nil
}

func (c *clockImpl) Scale(factor, value float64) (ret float64, valueOut float64, err error) {
	scaled := factor * value
	return scaled, scaled, nil
}

func (c *clockImpl) Note(message string) (err error) {
	c.notes = append(c.notes, message)
	return nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Server side: register the generated servant adapter.
	impl := &clockImpl{}
	srv := orb.NewServer()
	key := giop.MakeObjectKey("timeofday", "clock")
	srv.Register(key, gen.NewTimeOfDayServant(impl))
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Close()
	ior, err := srv.IORFor(gen.TimeOfDayTypeID, key)
	if err != nil {
		return err
	}

	// Client side: the typed stub over an ordinary object reference.
	stub := gen.NewTimeOfDayStub(orb.NewClient().Object(ior))
	defer stub.Ref().Close()

	ts, counter, replica, err := stub.TimeOfDay()
	if err != nil {
		return err
	}
	fmt.Printf("time_of_day -> ts=%d counter=%d replica=%s\n", ts, counter, replica)

	status, err := stub.Status("quickstart")
	if err != nil {
		return err
	}
	fmt.Printf("status      -> %+v\n", status)

	scaled, valueOut, err := stub.Scale(2.5, 4)
	if err != nil {
		return err
	}
	fmt.Printf("scale       -> 2.5 * 4 = %v (inout echo %v)\n", scaled, valueOut)

	if err := stub.Note("oneway works"); err != nil {
		return err
	}
	n, err := stub.Counter()
	if err != nil {
		return err
	}
	fmt.Printf("counter     -> %d\n", n)
	return nil
}
