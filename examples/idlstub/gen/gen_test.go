package gen

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"mead/internal/cdr"
	"mead/internal/giop"
	"mead/internal/orb"
)

// impl is a test implementation of the generated servant interface.
type impl struct {
	count uint64
	notes chan string
}

func (m *impl) TimeOfDay() (int64, uint64, string, error) {
	m.count++
	return time.Now().UnixNano(), m.count, "gen-test", nil
}

func (m *impl) Counter() (uint64, error) { return m.count, nil }

func (m *impl) Status(requester string) (Status, error) {
	if requester == "forbidden" {
		return Status{}, &orb.UserException{RepoID: "IDL:mead/Forbidden:1.0"}
	}
	return Status{
		Replica: "gen-test",
		Health:  HealthDEGRADED,
		Counter: m.count,
		Payload: []byte{1, 2, 3},
		Tags:    []string{"a", "b"},
	}, nil
}

func (m *impl) Scale(factor, value float64) (float64, float64, error) {
	return factor * value, value, nil
}

func (m *impl) Note(message string) error {
	m.notes <- message
	return nil
}

func startStub(t *testing.T) (*TimeOfDayStub, *impl) {
	t.Helper()
	server := &impl{notes: make(chan string, 8)}
	srv := orb.NewServer()
	key := giop.MakeObjectKey("timeofday", "clock")
	srv.Register(key, NewTimeOfDayServant(server))
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	ior, err := srv.IORFor(TimeOfDayTypeID, key)
	if err != nil {
		t.Fatal(err)
	}
	stub := NewTimeOfDayStub(orb.NewClient().Object(ior))
	t.Cleanup(func() { _ = stub.Ref().Close() })
	return stub, server
}

func TestStubTimeOfDay(t *testing.T) {
	stub, _ := startStub(t)
	ts, counter, replica, err := stub.TimeOfDay()
	if err != nil {
		t.Fatal(err)
	}
	if ts == 0 || counter != 1 || replica != "gen-test" {
		t.Fatalf("result = %d %d %q", ts, counter, replica)
	}
}

func TestStubStructSequenceEnum(t *testing.T) {
	stub, _ := startStub(t)
	status, err := stub.Status("tester")
	if err != nil {
		t.Fatal(err)
	}
	if status.Replica != "gen-test" || status.Health != HealthDEGRADED {
		t.Fatalf("status = %+v", status)
	}
	if !bytes.Equal(status.Payload, []byte{1, 2, 3}) {
		t.Fatalf("payload = %v", status.Payload)
	}
	if len(status.Tags) != 2 || status.Tags[1] != "b" {
		t.Fatalf("tags = %v", status.Tags)
	}
}

func TestStubUserException(t *testing.T) {
	stub, _ := startStub(t)
	_, err := stub.Status("forbidden")
	var ue *orb.UserException
	if !errors.As(err, &ue) || ue.RepoID != "IDL:mead/Forbidden:1.0" {
		t.Fatalf("err = %v", err)
	}
}

func TestStubInOut(t *testing.T) {
	stub, _ := startStub(t)
	ret, valueOut, err := stub.Scale(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 21 || valueOut != 7 {
		t.Fatalf("scale = %v, %v", ret, valueOut)
	}
}

func TestStubOneway(t *testing.T) {
	stub, server := startStub(t)
	if err := stub.Note("fire and forget"); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-server.notes:
		if msg != "fire and forget" {
			t.Fatalf("note = %q", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("oneway note never arrived")
	}
}

func TestStatusCDRRoundTrip(t *testing.T) {
	in := Status{
		Replica: "r9",
		Health:  HealthFAILING,
		Counter: 1 << 40,
		Payload: bytes.Repeat([]byte{7}, 52),
		Tags:    []string{"x"},
	}
	e := cdr.NewEncoder(cdr.BigEndian)
	EncodeStatus(e, in)
	out, err := DecodeStatus(cdr.NewDecoder(e.Bytes(), cdr.BigEndian))
	if err != nil {
		t.Fatal(err)
	}
	if out.Replica != in.Replica || out.Health != in.Health || out.Counter != in.Counter ||
		!bytes.Equal(out.Payload, in.Payload) || len(out.Tags) != 1 {
		t.Fatalf("round trip %+v -> %+v", in, out)
	}
}

func TestHealthDecodeValidates(t *testing.T) {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteULong(99)
	if _, err := DecodeHealth(cdr.NewDecoder(e.Bytes(), cdr.BigEndian)); err == nil {
		t.Fatal("out-of-range enum accepted")
	}
	e2 := cdr.NewEncoder(cdr.BigEndian)
	EncodeHealth(e2, HealthHEALTHY)
	v, err := DecodeHealth(cdr.NewDecoder(e2.Bytes(), cdr.BigEndian))
	if err != nil || v != HealthHEALTHY {
		t.Fatalf("decode = %v, %v", v, err)
	}
}

func TestUnknownOperationRejected(t *testing.T) {
	stub, _ := startStub(t)
	err := stub.Ref().Invoke("no_such_op", nil, nil)
	var se *giop.SystemException
	if !errors.As(err, &se) || se.RepoID != giop.RepoBadOperation {
		t.Fatalf("err = %v", err)
	}
}
