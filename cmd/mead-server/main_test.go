package main

import (
	"os"
	"syscall"
	"testing"
	"time"

	"mead"
)

func TestRunRejectsBadFlagsAndScheme(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-scheme", "nope"}); err == nil {
		t.Fatal("bad scheme accepted")
	}
}

func TestServerServesUntilSignal(t *testing.T) {
	if testing.Short() {
		t.Skip("boots infrastructure and signals the process")
	}
	hub := mead.NewHub()
	if err := hub.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	names := mead.NewNamingServer()
	if err := names.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer names.Close()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-name", "rtest",
			"-hub", hub.Addr(),
			"-names", names.Addr(),
			"-scheme", "mead-message",
		})
	}()

	// Wait for registration, then interrupt ourselves.
	deadline := time.Now().Add(5 * time.Second)
	for len(hub.Members("mead.timeofday")) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never joined the group")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not stop on SIGTERM")
	}
}
