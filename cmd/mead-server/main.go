// Command mead-server runs one warm-passive replica of the time-of-day
// service as its own process: it joins the group, registers with the Naming
// Service, and serves until it crashes (injected fault), rejuvenates
// (proactive migration complete), or is interrupted.
//
// A trivial supervisor loop around it recreates the paper's deployment:
//
//	mead-hub &
//	mead-names &
//	for r in r1 r2 r3; do
//	  (while mead-server -name $r -scheme mead-message -fault; do :; done) &
//	done
//	mead-client -scheme mead-message -n 10000
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mead"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mead-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mead-server", flag.ContinueOnError)
	var (
		name      = fs.String("name", "r1", "replica name (unique in the group)")
		hubAddr   = fs.String("hub", "127.0.0.1:4803", "group-communication hub address")
		namesAddr = fs.String("names", "127.0.0.1:4804", "naming service address")
		service   = fs.String("service", "timeofday", "service name")
		schemeStr = fs.String("scheme", "mead-message", "recovery scheme")
		launch    = fs.Float64("launch-threshold", 0.6, "proactive notice threshold")
		migrate   = fs.Float64("migrate-threshold", 0.8, "client-migration threshold")
		fault     = fs.Bool("fault", false, "inject the memory-leak fault")
		tick      = fs.Duration("fault-tick", 150*time.Millisecond, "leak interval")
		chunkUnit = fs.Int64("fault-chunk", 32, "bytes per Weibull unit")
		seed      = fs.Int64("seed", time.Now().UnixNano(), "fault seed")
		metrics   = fs.String("metrics", "", "serve metrics (/metrics) and the recovery trace (/trace) on this address, e.g. 127.0.0.1:9090")
		stateDir  = fs.String("statedir", "", "durable-state directory: persist an op log and incremental checkpoints under <statedir>/<name>, and cold-restart from them (plus the recovery handshake) after a crash")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scheme, err := mead.ParseScheme(*schemeStr)
	if err != nil {
		return err
	}

	tel := mead.NewTelemetry(scheme.String())
	cfg := mead.ServiceConfig{
		Service:          *service,
		HubAddr:          *hubAddr,
		NamesAddr:        *namesAddr,
		Scheme:           scheme,
		LaunchThreshold:  *launch,
		MigrateThreshold: *migrate,
		InjectFault:      *fault,
		Fault: mead.FaultConfig{
			Tick:      *tick,
			ChunkUnit: *chunkUnit,
			Seed:      *seed,
		},
		Logf: func(format string, a ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
		Telemetry: tel,
		StateDir:  *stateDir,
	}
	r, err := mead.NewReplica(*name, cfg)
	if err != nil {
		return err
	}
	if *metrics != "" {
		ms, err := mead.ServeMetrics(*metrics, tel)
		if err != nil {
			return err
		}
		defer ms.Close()
		fmt.Printf("mead-server: metrics on http://%s/metrics\n", ms.Addr())
	}
	if err := r.Start(); err != nil {
		return err
	}
	fmt.Printf("mead-server: replica %s serving %s at %s\n", *name, *service, r.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sig:
		r.Stop()
		fmt.Println("mead-server: stopped")
	case <-r.Done():
		fmt.Printf("mead-server: replica %s exited (%v) after %d requests\n",
			*name, r.ExitReason(), r.Requests())
	}
	return nil
}
