package main

import (
	"path/filepath"
	"testing"
	"time"

	"mead"
)

func TestRunRejectsBadFlagsAndScheme(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-scheme", "nope"}); err == nil {
		t.Fatal("bad scheme accepted")
	}
}

func TestClientAgainstLiveDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a deployment")
	}
	dep, err := mead.NewDeployment(mead.Scenario{
		Scheme:      mead.MeadMessage,
		InjectFault: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	csv := filepath.Join(t.TempDir(), "rtt.csv")
	err = run([]string{
		"-hub", dep.HubAddr(),
		"-names", dep.NamesAddr(),
		"-scheme", "mead-message",
		"-n", "50",
		"-period", time.Microsecond.String(),
		"-csv", csv,
	})
	if err != nil {
		t.Fatal(err)
	}
}
