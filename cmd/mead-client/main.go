// Command mead-client drives the paper's workload against a running
// deployment: paced time-of-day invocations under a chosen recovery
// strategy, with a summary of RTTs, exceptions, and fail-overs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mead"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mead-client:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mead-client", flag.ContinueOnError)
	var (
		hubAddr   = fs.String("hub", "127.0.0.1:4803", "group-communication hub address")
		namesAddr = fs.String("names", "127.0.0.1:4804", "naming service address")
		service   = fs.String("service", "timeofday", "service name")
		schemeStr = fs.String("scheme", "mead-message", "recovery scheme")
		n         = fs.Int("n", 10000, "invocations")
		period    = fs.Duration("period", time.Millisecond, "request period")
		csvPath   = fs.String("csv", "", "write per-invocation RTTs to this CSV file")
		pool      = fs.Bool("pool", false, "share one multiplexed connection per replica (reactive and location-forward schemes only)")
		stripes   = fs.Int("stripes", 0, "pooled connections per replica address (with -pool; 0/1 = one)")
		batch     = fs.Bool("batch", false, "coalesce concurrent requests into batch frames (with -pool; servers from this deployment only)")
		metrics   = fs.String("metrics", "", "serve metrics (/metrics) and the recovery trace (/trace) on this address, e.g. 127.0.0.1:9091")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scheme, err := mead.ParseScheme(*schemeStr)
	if err != nil {
		return err
	}
	tel := mead.NewTelemetry(scheme.String())
	strat, err := mead.NewClient(mead.ClientConfig{
		Scheme:      scheme,
		Service:     *service,
		NamesAddr:   *namesAddr,
		HubAddr:     *hubAddr,
		SharedPool:  *pool,
		PoolStripes: *stripes,
		Batching:    *batch,
		Telemetry:   tel,
	})
	if err != nil {
		return err
	}
	defer strat.Close()
	if *metrics != "" {
		ms, err := mead.ServeMetrics(*metrics, tel)
		if err != nil {
			return err
		}
		defer ms.Close()
		fmt.Printf("mead-client: metrics on http://%s/metrics\n", ms.Addr())
	}

	rtts := make([]time.Duration, 0, *n)
	exceptions := make(map[string]int)
	failovers := 0
	failed := 0
	start := time.Now()
	for i := 0; i < *n; i++ {
		next := start.Add(time.Duration(i) * *period)
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		out := strat.Invoke()
		rtts = append(rtts, out.RTT)
		if out.Failover {
			failovers++
		}
		for _, e := range out.Exceptions {
			exceptions[e]++
		}
		if out.Err != nil {
			failed++
		}
	}

	sum := mead.Summarize(rtts)
	fmt.Printf("mead-client: %d invocations under %v in %v\n", *n, scheme, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  rtt: mean=%v p50=%v p99=%v max=%v\n", sum.Mean, sum.P50, sum.P99, sum.Max)
	fmt.Printf("  failovers=%d exceptions=%v failed=%d\n", failovers, exceptions, failed)
	outliers := mead.Outliers(rtts)
	fmt.Printf("  jitter: 3-sigma outliers %.2f%%, max spike %v\n", 100*outliers.Fraction, outliers.MaxSpike)

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		s := mead.Series{Label: scheme.String(), Values: rtts}
		return s.WriteCSV(f)
	}
	return nil
}
