// Command mead-experiment reproduces the paper's evaluation (Section 5):
// Table 1, the Figure 3 and 4 RTT series, the Figure 5 threshold sweep, and
// the Section 5.2.5 jitter analysis, over an in-process MEAD deployment.
//
// Usage:
//
//	mead-experiment -run all                       # everything, paper scale
//	mead-experiment -run table1 -quick             # compressed run
//	mead-experiment -run fig5 -out results/        # CSV output
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mead"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mead-experiment:", err)
		os.Exit(1)
	}
}

type options struct {
	what        string
	invocations int
	period      time.Duration
	threshold   float64
	clients     int
	gcsDelay    time.Duration
	quick       bool
	verbose     bool
	outDir      string
	seed        int64
}

func run(args []string) error {
	fs := flag.NewFlagSet("mead-experiment", flag.ContinueOnError)
	var opt options
	fs.StringVar(&opt.what, "run", "all", "experiment: table1 | fig3 | fig4 | fig5 | jitter | all")
	fs.IntVar(&opt.invocations, "invocations", 0, "client invocations per run (default 10000, paper scale)")
	fs.DurationVar(&opt.period, "period", 0, "client request period (default 1ms, paper scale)")
	fs.Float64Var(&opt.threshold, "threshold", 0.8, "rejuvenation threshold for proactive schemes")
	fs.IntVar(&opt.clients, "clients", 1, "concurrent clients")
	fs.DurationVar(&opt.gcsDelay, "gcs-delay", 0, "artificial group-communication delivery latency (LAN emulation)")
	fs.BoolVar(&opt.quick, "quick", false, "compressed runs (~1s per scheme instead of ~10s)")
	fs.BoolVar(&opt.verbose, "v", false, "log deployment progress")
	fs.StringVar(&opt.outDir, "out", "", "directory for CSV series output (optional)")
	fs.Int64Var(&opt.seed, "seed", 2004, "fault-injection seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch opt.what {
	case "table1":
		return runTable1(opt)
	case "fig3":
		return runFigure(opt, []mead.Scheme{mead.ReactiveNoCache, mead.ReactiveCache}, "Figure 3 (reactive schemes)")
	case "fig4":
		return runFigure(opt, []mead.Scheme{mead.NeedsAddressing, mead.LocationForward, mead.MeadMessage}, "Figure 4 (proactive schemes)")
	case "fig5":
		return runSweep(opt)
	case "jitter":
		return runJitter(opt)
	case "all":
		if err := runTable1(opt); err != nil {
			return err
		}
		if err := runFigure(opt, []mead.Scheme{mead.ReactiveNoCache, mead.ReactiveCache}, "Figure 3 (reactive schemes)"); err != nil {
			return err
		}
		if err := runFigure(opt, []mead.Scheme{mead.NeedsAddressing, mead.LocationForward, mead.MeadMessage}, "Figure 4 (proactive schemes)"); err != nil {
			return err
		}
		if err := runSweep(opt); err != nil {
			return err
		}
		return runJitter(opt)
	default:
		return fmt.Errorf("unknown -run %q", opt.what)
	}
}

// template builds the base scenario from the options.
func template(opt options) mead.Scenario {
	sc := mead.Scenario{
		Invocations: opt.invocations,
		Period:      opt.period,
		Threshold:   opt.threshold,
		Clients:     opt.clients,
		GCSDelay:    opt.gcsDelay,
		InjectFault: true,
		Seed:        opt.seed,
	}
	if opt.quick {
		if sc.Invocations == 0 {
			sc.Invocations = 1000
		}
		if sc.Period == 0 {
			sc.Period = 200 * time.Microsecond
		}
		sc.Fault = mead.FaultConfig{
			Tick:      2 * time.Millisecond,
			ChunkUnit: 16,
		}
		sc.RestartDelay = 25 * time.Millisecond
		sc.ProactiveDelay = 5 * time.Millisecond
		sc.CheckpointEvery = 10 * time.Millisecond
		sc.QueryTimeout = 20 * time.Millisecond
	} else {
		// Paper scale with a fault tick compressed to approximate the
		// paper's ~40 failures per 10,000 invocations (see EXPERIMENTS.md
		// on the paper's internally inconsistent fault parameters).
		sc.Fault = mead.FaultConfig{
			Tick:      15 * time.Millisecond,
			ChunkUnit: 32,
		}
	}
	if opt.verbose {
		sc.Logf = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	return sc
}

func runTable1(opt options) error {
	fmt.Println("== Table 1: Overhead and fail-over times ==")
	table, results, err := mead.RunTable1(template(opt))
	if err != nil {
		return err
	}
	fmt.Println(table.Format())
	fmt.Println("== Section 5.2.1: client-side failure breakdown ==")
	fmt.Println(table.FailureBreakdown())
	return writeSeriesCSVs(opt, results)
}

func runFigure(opt options, schemes []mead.Scheme, title string) error {
	fmt.Printf("== %s ==\n", title)
	results := make(map[mead.Scheme]*mead.Result, len(schemes))
	for _, scheme := range schemes {
		sc := template(opt)
		sc.Scheme = scheme
		res, err := mead.Run(sc)
		if err != nil {
			return err
		}
		results[scheme] = res
		series := res.Series()
		fmt.Println(series.ASCIIPlot(100, 12))
		fmt.Printf("  failovers=%d exceptions=%v mean-steady=%v mean-failover=%v\n\n",
			len(res.Failovers), res.Exceptions, res.MeanSteadyRTT(), res.MeanFailoverTime())
	}
	return writeSeriesCSVs(opt, results)
}

func runSweep(opt options) error {
	fmt.Println("== Figure 5: group bandwidth vs rejuvenation threshold ==")
	thresholds := []float64{0.2, 0.4, 0.6, 0.8}
	points, err := mead.RunThresholdSweep(template(opt), thresholds,
		[]mead.Scheme{mead.LocationForward, mead.MeadMessage})
	if err != nil {
		return err
	}
	fmt.Println(mead.FormatSweep(points))
	if opt.outDir == "" {
		return nil
	}
	if err := os.MkdirAll(opt.outDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(opt.outDir, "fig5_threshold_sweep.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "scheme,threshold_pct,bandwidth_bps,restarts")
	for _, p := range points {
		fmt.Fprintf(f, "%s,%.0f,%.1f,%d\n", p.Scheme, p.Threshold*100, p.BandwidthBps, p.ServerFailures)
	}
	return nil
}

func runJitter(opt options) error {
	fmt.Println("== Section 5.2.5: jitter (3-sigma outliers) ==")
	faultFree, err := mead.RunFaultFree(template(opt))
	if err != nil {
		return err
	}
	printJitter("fault-free", faultFree)
	for _, scheme := range mead.Schemes() {
		sc := template(opt)
		sc.Scheme = scheme
		res, err := mead.Run(sc)
		if err != nil {
			return err
		}
		printJitter(scheme.String(), res)
	}
	return nil
}

func printJitter(label string, res *mead.Result) {
	r := res.Jitter()
	fmt.Printf("%-18s outliers=%5.2f%%  threshold=%v  max-spike=%v\n",
		label, 100*r.Fraction, r.Threshold.Round(time.Microsecond), r.MaxSpike.Round(time.Microsecond))
}

func writeSeriesCSVs(opt options, results map[mead.Scheme]*mead.Result) error {
	if opt.outDir == "" {
		return nil
	}
	if err := os.MkdirAll(opt.outDir, 0o755); err != nil {
		return err
	}
	for scheme, res := range results {
		name := "rtt_" + strings.ReplaceAll(scheme.String(), "-", "_") + ".csv"
		f, err := os.Create(filepath.Join(opt.outDir, name))
		if err != nil {
			return err
		}
		if err := res.Series().WriteCSV(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
