package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "bogus"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestTemplateQuickDefaults(t *testing.T) {
	sc := template(options{quick: true, threshold: 0.8})
	if sc.Invocations != 1000 || sc.Period != 200*time.Microsecond {
		t.Fatalf("quick template = %+v", sc)
	}
	if sc.Fault.Tick == 0 {
		t.Fatal("quick template has no fault tick")
	}
	slow := template(options{threshold: 0.8})
	if slow.Invocations != 0 || slow.Period != 0 {
		t.Fatalf("paper-scale template overrides defaults: %+v", slow)
	}
}

func TestQuickTable1EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs five scenarios")
	}
	dir := t.TempDir()
	err := run([]string{"-run", "table1", "-quick", "-invocations", "200", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("CSV files written = %d, want 5", len(entries))
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".csv" {
			t.Fatalf("unexpected output file %s", e.Name())
		}
	}
}

func TestQuickJitterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six scenarios")
	}
	if err := run([]string{"-run", "jitter", "-quick", "-invocations", "150"}); err != nil {
		t.Fatal(err)
	}
}
