package main

import (
	"os"
	"syscall"
	"testing"
	"time"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-addr", "256.0.0.1:-1"}); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestHubServesUntilSignal(t *testing.T) {
	if testing.Short() {
		t.Skip("signals the process")
	}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0"})
	}()
	time.Sleep(50 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hub did not stop on SIGTERM")
	}
}
