// Command mead-hub runs the standalone group-communication hub (the Spread
// daemon stand-in) for multi-process deployments.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"mead"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mead-hub:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mead-hub", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:4803", "listen address")
	metrics := fs.String("metrics", "", "serve metrics (/metrics) on this address, e.g. 127.0.0.1:9090")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tel := mead.NewTelemetry("")
	hub := mead.NewHub(mead.WithHubTelemetry(tel))
	if err := hub.Start(*addr); err != nil {
		return err
	}
	defer hub.Close()
	fmt.Printf("mead-hub: serving group communication on %s\n", hub.Addr())
	if *metrics != "" {
		ms, err := mead.ServeMetrics(*metrics, tel)
		if err != nil {
			return err
		}
		defer ms.Close()
		fmt.Printf("mead-hub: metrics on http://%s/metrics\n", ms.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("mead-hub: shutting down")
	return nil
}
