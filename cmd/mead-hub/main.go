// Command mead-hub runs the standalone group-communication hub (the Spread
// daemon stand-in) for multi-process deployments.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"mead"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mead-hub:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mead-hub", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:4803", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	hub := mead.NewHub()
	if err := hub.Start(*addr); err != nil {
		return err
	}
	defer hub.Close()
	fmt.Printf("mead-hub: serving group communication on %s\n", hub.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("mead-hub: shutting down")
	return nil
}
