// Command mead-names runs the standalone Naming Service for multi-process
// deployments.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"mead"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mead-names:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mead-names", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:4804", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv := mead.NewNamingServer()
	if err := srv.Start(*addr); err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("mead-names: naming service on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("mead-names: shutting down")
	return nil
}
