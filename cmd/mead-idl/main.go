// Command mead-idl is the IDL compiler for the mini-ORB: it reads an OMG
// IDL subset and emits Go client stubs and servant adapters over
// internal/orb, as a CORBA vendor's IDL compiler would emit C++ stubs and
// skeletons over its ORB.
//
//	mead-idl -in timeofday.idl -pkg gen -out gen/gen.go
package main

import (
	"flag"
	"fmt"
	"os"

	"mead/internal/idl"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mead-idl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mead-idl", flag.ContinueOnError)
	var (
		in  = fs.String("in", "", "input IDL file")
		pkg = fs.String("pkg", "gen", "Go package name for the output")
		out = fs.String("out", "", "output Go file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	src, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	file, err := idl.Parse(string(src))
	if err != nil {
		return err
	}
	code, err := idl.Generate(file, *pkg)
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = os.Stdout.Write(code)
		return err
	}
	return os.WriteFile(*out, code, 0o644)
}
