package mead

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mead/internal/cdr"
	"mead/internal/giop"
	"mead/internal/orb"
)

// benchScenario is the compressed workload used by the table/figure
// benches: ~60 ms of paced client traffic per iteration, with the leak
// crossing thresholds gradually as in the paper.
func benchScenario(scheme Scheme) Scenario {
	return Scenario{
		Scheme:      scheme,
		Invocations: 600,
		Period:      100 * time.Microsecond,
		InjectFault: true,
		Fault: FaultConfig{
			Tick:      time.Millisecond,
			ChunkUnit: 16,
			Seed:      2004,
		},
		RestartDelay:    20 * time.Millisecond,
		ProactiveDelay:  5 * time.Millisecond,
		CheckpointEvery: 10 * time.Millisecond,
		QueryTimeout:    20 * time.Millisecond,
	}
}

// runScheme drives one scenario per iteration and reports the Table 1
// metrics for the scheme.
func runScheme(b *testing.B, scheme Scheme) {
	b.Helper()
	var (
		steadyUS   float64
		failoverMS float64
		clientPct  float64
		serverFail float64
		bwBps      float64
	)
	for i := 0; i < b.N; i++ {
		sc := benchScenario(scheme)
		sc.Seed += int64(i)
		res, err := Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		steadyUS += float64(res.MeanSteadyRTT()) / float64(time.Microsecond)
		failoverMS += float64(res.MeanFailoverTime()) / float64(time.Millisecond)
		clientPct += res.ClientFailurePct()
		serverFail += float64(res.ServerFailures)
		bwBps += res.BandwidthBytesPerSec()
	}
	n := float64(b.N)
	b.ReportMetric(steadyUS/n, "rtt_us")
	b.ReportMetric(failoverMS/n, "failover_ms")
	b.ReportMetric(clientPct/n, "client_fail_pct")
	b.ReportMetric(serverFail/n, "server_failures")
	b.ReportMetric(bwBps/n, "group_Bps")
}

// Table 1 — one bench per recovery strategy (rows of the paper's table).

func BenchmarkTable1_ReactiveNoCache(b *testing.B) { runScheme(b, ReactiveNoCache) }
func BenchmarkTable1_ReactiveCache(b *testing.B)   { runScheme(b, ReactiveCache) }
func BenchmarkTable1_NeedsAddressing(b *testing.B) { runScheme(b, NeedsAddressing) }
func BenchmarkTable1_LocationForward(b *testing.B) { runScheme(b, LocationForward) }
func BenchmarkTable1_MeadMessage(b *testing.B)     { runScheme(b, MeadMessage) }

// Figure 3 — RTT-versus-invocation series for the two reactive schemes;
// the jitter metrics summarize the spike structure the figure plots.

func runSeriesBench(b *testing.B, scheme Scheme) {
	b.Helper()
	var outlierPct, maxSpikeMS, failovers float64
	for i := 0; i < b.N; i++ {
		sc := benchScenario(scheme)
		sc.Seed += int64(i)
		res, err := Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		j := res.Jitter()
		outlierPct += 100 * j.Fraction
		maxSpikeMS += float64(j.MaxSpike) / float64(time.Millisecond)
		failovers += float64(len(res.Failovers))
	}
	n := float64(b.N)
	b.ReportMetric(outlierPct/n, "outlier_pct")
	b.ReportMetric(maxSpikeMS/n, "max_spike_ms")
	b.ReportMetric(failovers/n, "failovers")
}

func BenchmarkFigure3_ReactiveNoCache(b *testing.B) { runSeriesBench(b, ReactiveNoCache) }
func BenchmarkFigure3_ReactiveCache(b *testing.B)   { runSeriesBench(b, ReactiveCache) }

// Figure 4 — RTT series for the three proactive schemes.

func BenchmarkFigure4_NeedsAddressing(b *testing.B) { runSeriesBench(b, NeedsAddressing) }
func BenchmarkFigure4_LocationForward(b *testing.B) { runSeriesBench(b, LocationForward) }
func BenchmarkFigure4_MeadMessage(b *testing.B)     { runSeriesBench(b, MeadMessage) }

// Figure 5 — group-communication bandwidth versus rejuvenation threshold
// for the two proactive schemes.

func runThresholdBench(b *testing.B, scheme Scheme, threshold float64) {
	b.Helper()
	var bwBps, restarts float64
	for i := 0; i < b.N; i++ {
		sc := benchScenario(scheme)
		sc.Seed += int64(i)
		sc.Threshold = threshold
		sc.LaunchThreshold = 0.75 * threshold
		res, err := Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		bwBps += res.BandwidthBytesPerSec()
		restarts += float64(res.ServerFailures)
	}
	n := float64(b.N)
	b.ReportMetric(bwBps/n, "group_Bps")
	b.ReportMetric(restarts/n, "restarts")
}

func BenchmarkFigure5_LocationForward_T20(b *testing.B) { runThresholdBench(b, LocationForward, 0.2) }
func BenchmarkFigure5_LocationForward_T40(b *testing.B) { runThresholdBench(b, LocationForward, 0.4) }
func BenchmarkFigure5_LocationForward_T60(b *testing.B) { runThresholdBench(b, LocationForward, 0.6) }
func BenchmarkFigure5_LocationForward_T80(b *testing.B) { runThresholdBench(b, LocationForward, 0.8) }
func BenchmarkFigure5_MeadMessage_T20(b *testing.B)     { runThresholdBench(b, MeadMessage, 0.2) }
func BenchmarkFigure5_MeadMessage_T40(b *testing.B)     { runThresholdBench(b, MeadMessage, 0.4) }
func BenchmarkFigure5_MeadMessage_T60(b *testing.B)     { runThresholdBench(b, MeadMessage, 0.6) }
func BenchmarkFigure5_MeadMessage_T80(b *testing.B)     { runThresholdBench(b, MeadMessage, 0.8) }

// Section 5.2.5 — jitter baseline without fault injection.

func BenchmarkJitter_FaultFree(b *testing.B) {
	var outlierPct, maxSpikeMS float64
	for i := 0; i < b.N; i++ {
		sc := benchScenario(ReactiveNoCache)
		sc.Seed += int64(i)
		res, err := RunFaultFree(sc)
		if err != nil {
			b.Fatal(err)
		}
		j := res.Jitter()
		outlierPct += 100 * j.Fraction
		maxSpikeMS += float64(j.MaxSpike) / float64(time.Millisecond)
	}
	n := float64(b.N)
	b.ReportMetric(outlierPct/n, "outlier_pct")
	b.ReportMetric(maxSpikeMS/n, "max_spike_ms")
}

// Ablation benches (DESIGN.md §6): the design choices the paper calls out.

// BenchmarkAblation_ObjectKeyHash16 measures the paper's 16-bit hash lookup
// against the byte-by-byte key comparison it replaced ("as opposed to a
// byte-by-byte comparison of the object key, which was typically 52 bytes").
func BenchmarkAblation_ObjectKeyHash16(b *testing.B) {
	keys := make([][]byte, 64)
	for i := range keys {
		keys[i] = giop.MakeObjectKey("timeofday", fmt.Sprintf("obj-%d", i))
	}
	table := make(map[uint16]int, len(keys))
	for i, k := range keys {
		table[giop.Hash16(k)] = i
	}
	needle := keys[37]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := table[giop.Hash16(needle)]; !ok {
			b.Fatal("lookup failed")
		}
	}
}

func BenchmarkAblation_ObjectKeyByteCompare(b *testing.B) {
	keys := make([][]byte, 64)
	for i := range keys {
		keys[i] = giop.MakeObjectKey("timeofday", fmt.Sprintf("obj-%d", i))
	}
	needle := keys[37]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found := -1
		for j, k := range keys {
			if bytes.Equal(k, needle) {
				found = j
				break
			}
		}
		if found < 0 {
			b.Fatal("lookup failed")
		}
	}
}

// BenchmarkAblation_RequestParse contrasts the per-request costs behind the
// schemes' overheads: the LOCATION_FORWARD scheme's full request parse
// versus the NEEDS_ADDRESSING scheme's request-id-only parse versus the
// MEAD scheme's frame-type check (no parse at all).
func BenchmarkAblation_RequestParse_Full(b *testing.B) {
	msg := giop.EncodeRequest(cdr.BigEndian, giop.RequestHeader{
		RequestID:        42,
		ResponseExpected: true,
		ObjectKey:        giop.MakeObjectKey("timeofday", "clock"),
		Operation:        "time_of_day",
	}, nil)
	body := msg[giop.HeaderLen:]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := giop.DecodeRequest(cdr.BigEndian, body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_RequestParse_IDOnly(b *testing.B) {
	msg := giop.EncodeRequest(cdr.BigEndian, giop.RequestHeader{
		RequestID:        42,
		ResponseExpected: true,
		ObjectKey:        giop.MakeObjectKey("timeofday", "clock"),
		Operation:        "time_of_day",
	}, nil)
	body := msg[giop.HeaderLen:]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := giop.RequestIDOf(cdr.BigEndian, body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_RequestParse_MagicOnly(b *testing.B) {
	msg := giop.EncodeRequest(cdr.BigEndian, giop.RequestHeader{RequestID: 42}, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := giop.ParseHeader(msg[:giop.HeaderLen]); err != nil {
			b.Fatal(err)
		}
	}
}

// Protocol micro-benches: the marshalling costs under everything else.

func BenchmarkGIOPRequestEncode(b *testing.B) {
	hdr := giop.RequestHeader{
		RequestID:        1,
		ResponseExpected: true,
		ObjectKey:        giop.MakeObjectKey("timeofday", "clock"),
		Operation:        "time_of_day",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = giop.EncodeRequest(cdr.BigEndian, hdr, nil)
	}
}

// BenchmarkGIOPRequestDecode measures the steady-state server-side receive
// cost: parse a Request body with the pooled decoder, borrow the object key,
// intern the operation name, release. The zero-allocation receive path
// targets 0 allocs/op here (≤2 is the acceptance bound).
func BenchmarkGIOPRequestDecode(b *testing.B) {
	msg := giop.EncodeRequest(cdr.BigEndian, giop.RequestHeader{
		RequestID:        1,
		ResponseExpected: true,
		ObjectKey:        giop.MakeObjectKey("timeofday", "clock"),
		Operation:        "time_of_day",
	}, nil)
	body := msg[giop.HeaderLen:]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, d, err := giop.DecodeRequest(cdr.BigEndian, body)
		if err != nil {
			b.Fatal(err)
		}
		d.Release()
	}
}

// BenchmarkGIOPReplyDecode is the client-side mirror: parse a Reply body and
// read the result payload from the borrowed argument stream.
func BenchmarkGIOPReplyDecode(b *testing.B) {
	msg := giop.EncodeReply(cdr.BigEndian, giop.ReplyHeader{
		RequestID: 1,
		Status:    giop.ReplyNoException,
	}, func(e *cdr.Encoder) { e.WriteLongLong(1234567890) })
	body := msg[giop.HeaderLen:]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, d, err := giop.DecodeReply(cdr.BigEndian, body)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.ReadLongLong(); err != nil {
			b.Fatal(err)
		}
		d.Release()
	}
}

func BenchmarkIORStringRoundTrip(b *testing.B) {
	ior := giop.NewIOR("IDL:mead/TimeOfDay:1.0", "127.0.0.1", 40001,
		giop.MakeObjectKey("timeofday", "clock"))
	s := ior.String()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := giop.ParseIOR(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_EventDrivenMonitoring vs _TimerDrivenMonitoring compare
// the paper's chosen event-driven (write-path) threshold checking against
// the timer-driven design it rejected, under identical faulty workloads.
func runMonitoringAblation(b *testing.B, interval time.Duration) {
	b.Helper()
	var steadyUS, outlierPct float64
	for i := 0; i < b.N; i++ {
		sc := benchScenario(MeadMessage)
		sc.Seed += int64(i)
		sc.MonitorInterval = interval
		res, err := Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		steadyUS += float64(res.MeanSteadyRTT()) / float64(time.Microsecond)
		outlierPct += 100 * res.Jitter().Fraction
	}
	n := float64(b.N)
	b.ReportMetric(steadyUS/n, "rtt_us")
	b.ReportMetric(outlierPct/n, "outlier_pct")
}

func BenchmarkAblation_EventDrivenMonitoring(b *testing.B) {
	runMonitoringAblation(b, 0)
}

func BenchmarkAblation_TimerDrivenMonitoring(b *testing.B) {
	runMonitoringAblation(b, time.Millisecond)
}

// BenchmarkAblation_AdaptiveThresholds measures the future-work extension
// against the preset-threshold configuration.
func BenchmarkAblation_AdaptiveThresholds(b *testing.B) {
	var failoverMS, clientPct float64
	for i := 0; i < b.N; i++ {
		sc := benchScenario(MeadMessage)
		sc.Seed += int64(i)
		sc.AdaptiveLeadTime = 5 * time.Millisecond
		res, err := Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		failoverMS += float64(res.MeanFailoverTime()) / float64(time.Millisecond)
		clientPct += res.ClientFailurePct()
	}
	n := float64(b.N)
	b.ReportMetric(failoverMS/n, "failover_ms")
	b.ReportMetric(clientPct/n, "client_fail_pct")
}

// BenchmarkMultiClient_MeadMessage exercises "the migration of all its
// current clients": four concurrent clients handed off per rejuvenation.
func BenchmarkMultiClient_MeadMessage(b *testing.B) {
	var clientPct, totalFailovers float64
	for i := 0; i < b.N; i++ {
		sc := benchScenario(MeadMessage)
		sc.Seed += int64(i)
		sc.Clients = 4
		res, err := Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		clientPct += res.ClientFailurePct()
		totalFailovers += float64(res.TotalFailovers)
	}
	n := float64(b.N)
	b.ReportMetric(clientPct/n, "client_fail_pct")
	b.ReportMetric(totalFailovers/n, "total_failovers")
}

// BenchmarkAblation_ObjectTableScaling measures the paper's prediction that
// the LOCATION_FORWARD scheme's per-object IOR bookkeeping grows with the
// number of objects a server hosts ("we expect that as the server supports
// more objects, the overhead of the GIOP LOCATION_FORWARD scheme will
// increase significantly above the rest since it maintains an IOR entry for
// each object instantiated").
func runObjectScalingBench(b *testing.B, objects int) {
	b.Helper()
	var steadyUS, announceBytes float64
	for i := 0; i < b.N; i++ {
		sc := benchScenario(LocationForward)
		sc.Seed += int64(i)
		sc.Invocations = 300
		sc.Objects = objects
		res, err := Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		steadyUS += float64(res.MeanSteadyRTT()) / float64(time.Microsecond)
		announceBytes += float64(res.GroupBytes)
	}
	n := float64(b.N)
	b.ReportMetric(steadyUS/n, "rtt_us")
	b.ReportMetric(announceBytes/n, "group_bytes")
}

func BenchmarkAblation_ObjectTable_1(b *testing.B)   { runObjectScalingBench(b, 1) }
func BenchmarkAblation_ObjectTable_64(b *testing.B)  { runObjectScalingBench(b, 64) }
func BenchmarkAblation_ObjectTable_512(b *testing.B) { runObjectScalingBench(b, 512) }

// BenchmarkSerializedInvocations vs BenchmarkPipelinedInvocations measure
// the tentpole of the multiplexed client transport: N concurrent callers
// share one reference to one replica. On the serialized (private-connection)
// path every invocation queues behind the reference's mutex; on the pooled
// path the same single TCP connection carries N concurrent in-flight
// requests demultiplexed by request id.
func runInvocationBench(b *testing.B, callers int, pooled bool, copts ...orb.ClientOption) {
	b.Helper()
	runInvocationBenchServant(b, callers, pooled, orb.ServantFunc(func(op string, args *cdr.Decoder, result *cdr.Encoder) error {
		result.WriteLongLong(time.Now().UnixNano())
		return nil
	}), copts...)
}

// runInvocationBenchServant is runInvocationBench with a caller-supplied
// servant, so benches can put extra server-side work (durable logging) on
// the dispatch path.
func runInvocationBenchServant(b *testing.B, callers int, pooled bool, servant orb.Servant, copts ...orb.ClientOption) {
	b.Helper()
	key := giop.MakeObjectKey("bench", "clock")
	s := orb.NewServer()
	s.Register(key, servant)
	if err := s.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	if err := s.Start(); err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ior, err := s.IORFor("IDL:mead/TimeOfDay:1.0", key)
	if err != nil {
		b.Fatal(err)
	}

	if pooled {
		copts = append(copts, orb.WithConnectionPool())
	}
	c := orb.NewClient(copts...)
	defer c.Close()
	o := c.Object(ior)
	defer o.Close()

	invoke := func() error {
		return o.Invoke("time_of_day", nil, func(d *cdr.Decoder) error {
			_, err := d.ReadLongLong()
			return err
		})
	}
	if err := invoke(); err != nil { // warm the connection
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	var failed atomic.Int64
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				if err := invoke(); err != nil {
					failed.Add(1)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	if failed.Load() != 0 {
		b.Fatalf("%d callers failed", failed.Load())
	}
}

func BenchmarkSerializedInvocations(b *testing.B) {
	for _, callers := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("%d", callers), func(b *testing.B) {
			runInvocationBench(b, callers, false)
		})
	}
}

func BenchmarkPipelinedInvocations(b *testing.B) {
	for _, callers := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("%d", callers), func(b *testing.B) {
			runInvocationBench(b, callers, true)
		})
	}
}

// BenchmarkInvokePipelined is the multi-core wire-path headline: 64
// concurrent callers over a striped pool (one stripe per core, placed by
// power-of-two-choices) with request batching coalescing their bursts into
// vectored batch frames, against a server sharding accepts across cores.
// Compare across -cpu 1,2,4 — the striped path is what lets throughput
// scale with GOMAXPROCS instead of serializing on one connection writer.
func BenchmarkInvokePipelined(b *testing.B) {
	stripes := runtime.GOMAXPROCS(0)
	runInvocationBench(b, 64, true,
		orb.WithPoolStripes(stripes),
		orb.WithRequestBatching())
}
